"""CI smoke: SIGKILL a running `repro serve` mid-sweep, resume, compare.

Starts the daemon on a unix socket, submits a batch of alone runs,
kills the process with SIGKILL as soon as the sweep journal's plan
segment lands (the batch is resumable from that instant), restarts
with ``--resume``, and asserts the recovered cache payloads are
byte-identical to an uninterrupted local session.

The check is correct regardless of kill timing: if the daemon finished
the batch before the signal landed, the journal is sealed, ``--resume``
is a no-op, and the payloads are already in the cache — either way
every key must be present and identical to the baseline.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path


def wait_for(cond, timeout_s: float, what: str) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if cond():
            return
        time.sleep(0.05)
    raise SystemExit(f"serve smoke: timed out waiting for {what}")


def main() -> int:
    from repro.experiments.config import get_scale
    from repro.experiments.engine import KIND_ALONE, ExperimentSession, PlannedRun, ResultCache
    from repro.service import ServiceClient
    from repro.service.journal import SweepJournal
    from repro.workloads.mixes import make_mixes

    sc = get_scale()
    mix = make_mixes("pref_agg", 1, seed=sc.seed)[0]
    runs = [PlannedRun(KIND_ALONE, sc, bench=b) for b in mix.benchmarks]

    tmp = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    sock, wal, cache_dir = tmp / "svc.sock", tmp / "wal", tmp / "cache"

    def spawn(*extra: str) -> subprocess.Popen:
        return subprocess.Popen([
            sys.executable, "-m", "repro", "serve",
            "--unix", str(sock), "--journal-dir", str(wal),
            "--cache-dir", str(cache_dir), "--workers", "1", *extra,
        ])

    proc = spawn()
    wait_for(sock.exists, 60, "the daemon's socket")

    # Submit from a background thread; the connection dies with the
    # daemon, which is exactly the crash being simulated.
    def submit() -> None:
        try:
            with ServiceClient(path=sock) as cli:
                cli.submit(runs)
        except (OSError, EOFError, RuntimeError):
            pass

    t = threading.Thread(target=submit, daemon=True)
    t.start()

    # The journal's plan segment is written atomically before any run
    # executes: the moment it exists, the sweep survives SIGKILL.
    wait_for(lambda: any(wal.glob("*.jsonl")), 60, "the sweep journal")
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)
    t.join(timeout=30)
    pending = len(SweepJournal.incomplete(wal))
    print(f"killed daemon; {pending} unsealed journal(s) on disk")

    sock.unlink(missing_ok=True)  # SIGKILL skipped the daemon's cleanup
    proc = spawn("--resume")
    try:
        # serve() replays unsealed journals before binding the socket.
        wait_for(sock.exists, 300, "the resumed daemon's socket")
        with ServiceClient(path=sock) as cli:
            assert cli.ping()["ok"]
            cli.shutdown()
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()

    assert SweepJournal.incomplete(wal) == [], "resume left unsealed journals"
    store = ResultCache(cache_dir)
    recovered = {}
    for r in runs:
        entry = store.get(r.key())
        assert entry is not None, f"missing cache entry after resume: {r.key()}"
        recovered[r.key()] = entry["payload"]

    with ExperimentSession(cache_dir=tmp / "baseline", max_workers=1) as session:
        baseline = session.execute(runs)
    assert json.dumps(recovered, sort_keys=True) == json.dumps(baseline, sort_keys=True), \
        "resumed payloads diverged from an uninterrupted run"
    print(f"serve resume smoke OK: {len(runs)} payloads bit-identical after SIGKILL + --resume")
    return 0


if __name__ == "__main__":
    sys.exit(main())
