"""HS, WS, ANTT and worst-case speedup (paper Sec. IV-C).

Definitions, for ``N`` programs on ``N`` cores:

* harmonic speedup      ``HS = N / sum_i(IPC_alone_i / IPC_together_i)``
* average normalized turnaround time ``ANTT = 1 / HS``
* weighted speedup vs. a reference
                        ``WS = sum_i(IPC_x_i / IPC_ref_i)``
  (reported normalized: divided by N so the reference scores 1.0)
* worst-case speedup    ``min_i(IPC_x_i / IPC_ref_i)`` — Figs. 8/10/12.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _as_pairs(x: Sequence[float], ref: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(x, dtype=np.float64)
    b = np.asarray(ref, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise ValueError("need two equal-length non-empty 1-D sequences")
    return a, b


def harmonic_mean(values: Sequence[float]) -> float:
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise ValueError("empty sequence")
    if (v <= 0).any():
        return 0.0
    return float(v.size / np.sum(1.0 / v))


def normalized_ipcs(ipc: Sequence[float], ipc_ref: Sequence[float]) -> np.ndarray:
    """Per-program IPC ratios vs. a reference run (alone or baseline)."""
    a, b = _as_pairs(ipc, ipc_ref)
    if (b <= 0).any():
        raise ValueError("reference IPCs must be positive")
    return a / b


def harmonic_speedup(ipc_together: Sequence[float], ipc_alone: Sequence[float]) -> float:
    """HS: harmonic mean of per-program speedups vs. running alone.

    Captures both throughput and fairness; 1/HS is the average
    normalized turnaround time (Eyerman & Eeckhout)."""
    ratios = normalized_ipcs(ipc_together, ipc_alone)
    return harmonic_mean(ratios)


def antt(ipc_together: Sequence[float], ipc_alone: Sequence[float]) -> float:
    hs = harmonic_speedup(ipc_together, ipc_alone)
    if hs <= 0:
        return float("inf")
    return 1.0 / hs


def weighted_speedup(ipc_x: Sequence[float], ipc_ref: Sequence[float], *, normalized: bool = True) -> float:
    """WS vs. a reference; ``normalized`` divides by N (baseline -> 1.0)."""
    ratios = normalized_ipcs(ipc_x, ipc_ref)
    total = float(np.sum(ratios))
    return total / ratios.size if normalized else total


def worst_case_speedup(ipc_x: Sequence[float], ipc_ref: Sequence[float]) -> float:
    """The lowest per-program speedup in a workload (Figs. 8/10/12)."""
    return float(np.min(normalized_ipcs(ipc_x, ipc_ref)))
