"""System-level performance/fairness metrics (paper Sec. IV-C)."""

from repro.metrics.speedup import (
    antt,
    harmonic_mean,
    harmonic_speedup,
    normalized_ipcs,
    weighted_speedup,
    worst_case_speedup,
)

__all__ = [
    "antt",
    "harmonic_mean",
    "harmonic_speedup",
    "normalized_ipcs",
    "weighted_speedup",
    "worst_case_speedup",
]
