"""Multi-seed analysis: observations, bootstrap CIs, significance tests.

The paper's figures report one number per (workload, mechanism) at the
scale's default seed.  This pipeline widens that to a **seed axis**:

1. one :class:`~repro.experiments.engine.RunSpec` with ``seeds=(...)``
   executes every (seed x mix x mechanism) run through the session —
   deduplicated, batched, parallel on misses, cached like everything
   else;
2. per-seed sweeps assemble the evaluations from the warm cache into a
   tidy *observations* table (one row per seed x workload x mechanism
   x metric);
3. :mod:`repro.analysis.stats` folds observations into a *summary*
   table — mean, seeded-bootstrap CI bounds, and paired
   permutation/sign p-values against a reference mechanism — plus a
   CI bar chart spec.

Everything downstream of the runs is deterministic: same observations
and same ``bootstrap_seed`` reproduce identical CI bounds and p-values.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.analysis import vega as _vega
from repro.analysis.stats import bootstrap_ci, paired_permutation_test, sign_test
from repro.analysis.tables import TIDY_SCHEMA_VERSION, TableBuilder, TidyTable

__all__ = [
    "AnalysisResult",
    "DEFAULT_METRICS",
    "collect_observations",
    "run_analysis",
    "seed_axis",
    "summarize",
    "write_analysis",
]

#: Metrics summarized by default: the paper's headline axes plus the
#: fairness columns the engine computes alongside them.
DEFAULT_METRICS = ("hs_norm", "ws", "worst", "hm_ipc", "fair_slowdown", "unfairness")

#: Pseudo-category for rows aggregated across every workload category.
OVERALL = "overall"


def seed_axis(base_seed: int, n_seeds: int) -> tuple[int, ...]:
    """``n_seeds`` consecutive seeds starting at the scale's default."""
    if n_seeds < 1:
        raise ValueError("n_seeds must be >= 1")
    return tuple(base_seed + i for i in range(n_seeds))


def collect_observations(
    mechanisms: Sequence[str],
    sc,
    *,
    seeds: Sequence[int],
    session=None,
) -> TidyTable:
    """One tidy row per (seed x workload x mechanism x metric).

    The whole (seed x mix x mechanism) plan executes as a single batch
    first — the seed axis rides the ordinary cache-key machinery, since
    each generated mix carries its seed into the run's content key —
    then per-seed evaluations assemble from the warm cache.
    """
    from repro.experiments.engine import RunSpec, default_session

    session = session or default_session()
    mechs = tuple(dict.fromkeys(mechanisms))
    spec = RunSpec(mechanisms=mechs, seeds=tuple(seeds))
    session.execute(spec.expand(sc), strict=False)
    b = TableBuilder("analysis")
    for seed in seeds:
        sc_seed = dataclasses.replace(sc, seed=seed)
        for ev in session.sweep(mechs, sc_seed):
            for mech, metrics in ev.metrics.items():
                b.add_metrics(
                    metrics,
                    workload=ev.mix.name,
                    category=ev.mix.category,
                    mechanism=mech,
                    seed=seed,
                )
    return b.build()


SUMMARY_COLUMNS = (
    "figure", "category", "mechanism", "metric", "n",
    "mean", "ci_lo", "ci_hi", "p_perm", "p_sign", "vs",
)


def _paired_values(obs: TidyTable, mechanism: str, metric: str, category: str) -> dict[tuple, float]:
    """(workload, seed) -> value for one (mechanism, metric) slice."""
    rows = obs.filter(mechanism=mechanism, metric=metric)
    if category != OVERALL:
        rows = rows.filter(category=category)
    return {(r["workload"], r["seed"]): r["value"] for r in rows}


def summarize(
    obs: TidyTable,
    *,
    metrics: Sequence[str] = DEFAULT_METRICS,
    vs: str = "pt",
    confidence: float = 0.95,
    n_resamples: int = 2000,
    bootstrap_seed: int = 0,
) -> TidyTable:
    """Fold observations into mean / CI / significance summary rows.

    One row per (category + overall) x mechanism x metric.  CI bounds
    come from the seeded percentile bootstrap; ``p_perm`` / ``p_sign``
    compare each mechanism against ``vs`` pairing observations on
    (workload, seed) — mechanisms with no counterpart (or the reference
    itself) carry ``None``.
    """
    mechanisms = [m for m in obs.distinct("mechanism") if m is not None]
    categories = [c for c in obs.distinct("category") if c is not None]
    groups = categories + [OVERALL]
    out = TidyTable(SUMMARY_COLUMNS)
    for metric in metrics:
        if not obs.filter(metric=metric).rows:
            continue
        for cat in groups:
            ref = _paired_values(obs, vs, metric, cat) if vs in mechanisms else {}
            for mech in mechanisms:
                cells = _paired_values(obs, mech, metric, cat)
                if not cells:
                    continue
                values = list(cells.values())
                ci = bootstrap_ci(
                    values, confidence=confidence,
                    n_resamples=n_resamples, seed=bootstrap_seed,
                )
                p_perm = p_sign = None
                if ref and mech != vs:
                    shared = sorted(set(cells) & set(ref))
                    if len(shared) >= 2:
                        a = [cells[k] for k in shared]
                        r = [ref[k] for k in shared]
                        p_perm = paired_permutation_test(
                            a, r, n_resamples=n_resamples, seed=bootstrap_seed
                        ).p_value
                        p_sign = sign_test(a, r).p_value
                out.rows.append({
                    "figure": "analysis",
                    "category": cat,
                    "mechanism": mech,
                    "metric": metric,
                    "n": ci.n,
                    "mean": ci.stat,
                    "ci_lo": ci.lo,
                    "ci_hi": ci.hi,
                    "p_perm": p_perm,
                    "p_sign": p_sign,
                    "vs": vs if mech != vs else None,
                })
    return out


@dataclass(frozen=True)
class AnalysisResult:
    """The three artifacts of one multi-seed analysis."""

    observations: TidyTable
    summary: TidyTable
    spec: dict
    seeds: tuple[int, ...]
    scale: str
    vs: str


def run_analysis(
    mechanisms: Sequence[str],
    sc,
    *,
    n_seeds: int = 3,
    seeds: Sequence[int] | None = None,
    vs: str = "pt",
    metrics: Sequence[str] = DEFAULT_METRICS,
    chart_metric: str = "hs_norm",
    confidence: float = 0.95,
    n_resamples: int = 2000,
    bootstrap_seed: int = 0,
    session=None,
) -> AnalysisResult:
    """End-to-end multi-seed analysis for ``mechanisms`` at scale ``sc``."""
    axis = tuple(seeds) if seeds is not None else seed_axis(sc.seed, n_seeds)
    obs = collect_observations(mechanisms, sc, seeds=axis, session=session)
    summary = summarize(
        obs, metrics=metrics, vs=vs, confidence=confidence,
        n_resamples=n_resamples, bootstrap_seed=bootstrap_seed,
    )
    chart_rows = summary.filter(metric=chart_metric)
    spec = _vega.ci_bar_chart(
        chart_rows,
        title=f"{chart_metric} with {int(confidence * 100)}% bootstrap CIs "
              f"({len(axis)} seed{'s' if len(axis) != 1 else ''})",
        fig_id="analysis",
        schema_version=TIDY_SCHEMA_VERSION,
        x="category", x_offset="mechanism", color="mechanism",
        y_title=chart_metric,
    )
    return AnalysisResult(obs, summary, spec, axis, sc.name, vs)


def write_analysis(result: AnalysisResult, out_dir: str | Path) -> dict[str, Path]:
    """Emit ``observations.csv``, ``summary.csv``, ``summary.vl.json``
    and a schema-versioned ``manifest.json`` under ``out_dir``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "observations.csv": out_dir / "observations.csv",
        "summary.csv": out_dir / "summary.csv",
        "summary.vl.json": out_dir / "summary.vl.json",
        "manifest.json": out_dir / "manifest.json",
    }
    paths["observations.csv"].write_text(result.observations.to_csv())
    paths["summary.csv"].write_text(result.summary.to_csv())
    paths["summary.vl.json"].write_text(json.dumps(result.spec, sort_keys=True, indent=2) + "\n")
    manifest = {
        "tidy_schema": TIDY_SCHEMA_VERSION,
        "scale": result.scale,
        "seeds": list(result.seeds),
        "vs": result.vs,
        "observations": len(result.observations),
        "summary_rows": len(result.summary),
    }
    paths["manifest.json"].write_text(json.dumps(manifest, sort_keys=True, indent=2) + "\n")
    return paths
