"""Declarative analysis layer: tidy tables, statistics, figure artifacts.

Three layers, each usable alone:

* :mod:`repro.analysis.tables` — long-form :class:`TidyTable` rows with
  a fixed schema and a round-trip-safe CSV codec (:class:`TableBuilder`
  accumulates them with validation);
* :mod:`repro.analysis.stats` — deterministic seeded bootstrap CIs,
  paired permutation / sign tests, and the fairness metrics (hm-IPC,
  fair slowdown, unfairness);
* :mod:`repro.analysis.artifacts` / :mod:`repro.analysis.vega` — one
  :class:`FigureSpec` per paper figure, emitting canonical ``.csv`` +
  ``.vl.json`` artifacts (optional PNG via :mod:`repro.analysis.render`).

:mod:`repro.analysis.analyze` composes them into the multi-seed
pipeline behind ``repro analyze``; :mod:`repro.analysis.format` is the
shared presentation formatter every human-facing table renders through.

See ``docs/analysis.md``.
"""

from repro.analysis.analyze import (
    AnalysisResult,
    collect_observations,
    run_analysis,
    seed_axis,
    summarize,
    write_analysis,
)
from repro.analysis.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    FIGURE_IDS,
    BuiltFigure,
    FigureSpec,
    build_artifacts,
    check_artifacts,
    figure_table,
    figure_vega,
    get_figure_spec,
    write_artifacts,
)
from repro.analysis.format import fmt_value, render_ascii_table, render_markdown_table
from repro.analysis.stats import (
    BootstrapCI,
    PairedTest,
    bootstrap_ci,
    fair_slowdown,
    hm_ipc,
    paired_permutation_test,
    sign_test,
    slowdowns,
    unfairness,
)
from repro.analysis.tables import (
    SCHEMA_COLUMNS,
    TIDY_SCHEMA_VERSION,
    TableBuilder,
    TidyTable,
    decode_cell,
    encode_cell,
    flatten_row,
    unflatten_row,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "AnalysisResult",
    "BootstrapCI",
    "BuiltFigure",
    "FIGURE_IDS",
    "FigureSpec",
    "PairedTest",
    "SCHEMA_COLUMNS",
    "TIDY_SCHEMA_VERSION",
    "TableBuilder",
    "TidyTable",
    "bootstrap_ci",
    "build_artifacts",
    "check_artifacts",
    "collect_observations",
    "decode_cell",
    "encode_cell",
    "fair_slowdown",
    "figure_table",
    "figure_vega",
    "flatten_row",
    "fmt_value",
    "get_figure_spec",
    "hm_ipc",
    "paired_permutation_test",
    "render_ascii_table",
    "render_markdown_table",
    "run_analysis",
    "seed_axis",
    "sign_test",
    "slowdowns",
    "summarize",
    "unfairness",
    "unflatten_row",
    "write_analysis",
    "write_artifacts",
]
