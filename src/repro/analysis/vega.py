"""Vega-Lite spec builders (no plotting dependency required).

A Vega-Lite spec is just JSON, so the canonical figure format needs no
``altair``: these helpers assemble v5 specs as plain dicts with the
tidy rows inlined under ``data.values``.  Specs are text, diffable and
version-controllable; rendering to PNG/SVG is an optional extra
(:mod:`repro.analysis.render`) gated on optional packages.

Every spec carries ``usermeta.repro`` with the artifact schema version
and figure id, so a golden-file mismatch names the schema that wrote
each side instead of producing an opaque diff.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.tables import TidyTable

__all__ = [
    "VEGA_LITE_SCHEMA",
    "bar_chart",
    "ci_bar_chart",
    "heatmap",
    "line_chart",
]

VEGA_LITE_SCHEMA = "https://vega.github.io/schema/vega-lite/v5.json"


def _base(table: TidyTable, *, title: str, fig_id: str, schema_version: int) -> dict:
    return {
        "$schema": VEGA_LITE_SCHEMA,
        "title": title,
        "usermeta": {"repro": {"figure": fig_id, "schema": schema_version}},
        "data": {"values": table.to_records()},
    }


def _field(name: str, kind: str, *, title: str | None = None, **extra: object) -> dict:
    enc: dict = {"field": name, "type": kind}
    if title is not None:
        enc["title"] = title
    enc.update(extra)
    return enc


def bar_chart(
    table: TidyTable,
    *,
    title: str,
    fig_id: str,
    schema_version: int,
    x: str,
    y: str = "value",
    color: str | None = None,
    x_offset: str | None = None,
    y_title: str | None = None,
    aggregate: str | None = None,
    sort: Sequence[str] | str | None = None,
) -> dict:
    """A (grouped) bar chart; ``aggregate`` lets the renderer average
    per-workload observations into category bars without the spec
    duplicating any data."""
    spec = _base(table, title=title, fig_id=fig_id, schema_version=schema_version)
    y_enc = _field(y, "quantitative", title=y_title)
    if aggregate is not None:
        y_enc["aggregate"] = aggregate
    x_enc = _field(x, "nominal")
    if sort is not None:
        x_enc["sort"] = list(sort) if not isinstance(sort, str) else sort
    encoding: dict = {"x": x_enc, "y": y_enc}
    if color is not None:
        encoding["color"] = _field(color, "nominal")
    if x_offset is not None:
        encoding["xOffset"] = _field(x_offset, "nominal")
    spec["mark"] = {"type": "bar"}
    spec["encoding"] = encoding
    return spec


def line_chart(
    table: TidyTable,
    *,
    title: str,
    fig_id: str,
    schema_version: int,
    x: str,
    y: str = "value",
    color: str | None = None,
    y_title: str | None = None,
) -> dict:
    """A point-marked line chart (e.g. IPC vs. allocated ways)."""
    spec = _base(table, title=title, fig_id=fig_id, schema_version=schema_version)
    encoding: dict = {
        "x": _field(x, "quantitative"),
        "y": _field(y, "quantitative", title=y_title),
    }
    if color is not None:
        encoding["color"] = _field(color, "nominal")
    spec["mark"] = {"type": "line", "point": True}
    spec["encoding"] = encoding
    return spec


def heatmap(
    table: TidyTable,
    *,
    title: str,
    fig_id: str,
    schema_version: int,
    x: str,
    y: str,
    value: str = "value",
) -> dict:
    """A rect heatmap (e.g. Table I metrics per core)."""
    spec = _base(table, title=title, fig_id=fig_id, schema_version=schema_version)
    spec["mark"] = {"type": "rect"}
    spec["encoding"] = {
        "x": _field(x, "ordinal"),
        "y": _field(y, "nominal"),
        "color": _field(value, "quantitative"),
    }
    return spec


def ci_bar_chart(
    table: TidyTable,
    *,
    title: str,
    fig_id: str,
    schema_version: int,
    x: str,
    x_offset: str | None = None,
    color: str | None = None,
    y: str = "mean",
    lo: str = "ci_lo",
    hi: str = "ci_hi",
    y_title: str | None = None,
) -> dict:
    """Bars with pre-computed bootstrap CI whiskers layered on top.

    The CI bounds come from :mod:`repro.analysis.stats` columns — the
    spec renders exactly the numbers the analysis produced rather than
    re-deriving intervals in the renderer.
    """
    spec = _base(table, title=title, fig_id=fig_id, schema_version=schema_version)
    x_enc = _field(x, "nominal")
    shared: dict = {"x": x_enc}
    if x_offset is not None:
        shared["xOffset"] = _field(x_offset, "nominal")
    bar_enc = dict(shared)
    bar_enc["y"] = _field(y, "quantitative", title=y_title)
    if color is not None:
        bar_enc["color"] = _field(color, "nominal")
    rule_enc = dict(shared)
    rule_enc["y"] = _field(lo, "quantitative", title=y_title)
    rule_enc["y2"] = {"field": hi}
    spec["layer"] = [
        {"mark": {"type": "bar"}, "encoding": bar_enc},
        {"mark": {"type": "rule"}, "encoding": rule_enc},
    ]
    return spec
