"""Optional raster rendering of Vega-Lite specs.

The canonical artifacts are text (``.csv`` + ``.vl.json``); PNGs are a
convenience that needs an optional renderer package.  Nothing here is
required by any test or figure path — if no renderer is installed,
:func:`render_png` raises :class:`RenderUnavailable` with instructions
instead of the repo growing a hard dependency.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["RenderUnavailable", "render_png", "renderer_available"]


class RenderUnavailable(RuntimeError):
    """No optional Vega renderer is installed in this environment."""


def _vl_convert():
    try:
        import vl_convert  # type: ignore[import-not-found]
    except ImportError:
        return None
    return vl_convert


def renderer_available() -> bool:
    """True when an optional renderer (``vl-convert-python``) is importable."""
    return _vl_convert() is not None


def render_png(spec: dict, path: str | Path, *, scale: float = 2.0) -> Path:
    """Render one Vega-Lite spec dict to ``path`` as PNG.

    Requires the optional ``vl-convert-python`` package; without it the
    call raises :class:`RenderUnavailable` (the text artifacts are the
    canonical output either way).
    """
    vlc = _vl_convert()
    if vlc is None:
        raise RenderUnavailable(
            "PNG rendering needs the optional 'vl-convert-python' package; "
            "the .vl.json artifact renders in any Vega-Lite viewer"
        )
    path = Path(path)
    path.write_bytes(vlc.vegalite_to_png(spec, scale=scale))
    return path
