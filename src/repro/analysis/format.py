"""Shared value/table formatting for every human-facing renderer.

Before the analysis layer existed, ``report.render_table``,
``report._fmt_value`` and ``examples/regenerate_figures.md_table`` each
re-implemented the same three-decimal float table.  This module is the
single home of that logic: the ASCII renderer used by the CLI, the
markdown renderer used by the report driver, and the value formatter
both share.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "fmt_value",
    "render_ascii_table",
    "render_markdown_table",
]

#: Decimal places used by every presentation-layer table.  Canonical
#: artifacts (``repro.analysis.tables``) are *not* formatted through
#: this — they keep full ``repr`` precision so goldens pin bits.
FLOAT_DECIMALS = 3


def fmt_value(v: object, *, decimals: int = FLOAT_DECIMALS, max_len: int | None = None) -> str:
    """One presentation-formatted cell: floats to ``decimals`` places,
    lists rendered compactly (and elided past ``max_len``), everything
    else via ``str``."""
    if isinstance(v, float):
        return f"{v:.{decimals}f}"
    if isinstance(v, (list, tuple)):
        s = "[" + ",".join(fmt_value(x, decimals=decimals) for x in v) + "]"
        if max_len is not None and len(s) > max_len:
            return s[: max_len - 3] + "...]"
        return s
    return str(v)


def _cells(rows: Sequence[Sequence[object]], decimals: int) -> list[list[str]]:
    return [[fmt_value(v, decimals=decimals) for v in row] for row in rows]


def render_ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
    decimals: int = FLOAT_DECIMALS,
) -> str:
    """Fixed-width ASCII table; floats rendered to ``decimals`` places."""
    cells = _cells(rows, decimals)
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    decimals: int = FLOAT_DECIMALS,
) -> str:
    """GitHub-flavoured markdown table with the shared float format."""
    out = ["| " + " | ".join(str(h) for h in headers) + " |",
           "|" + "---|" * len(headers)]
    out += ["| " + " | ".join(cells) + " |" for cells in _cells(rows, decimals)]
    return "\n".join(out)
