"""Tidy (long-form) tables: the analysis layer's one data shape.

Every figure and report path normalizes into rows of a fixed schema —
one *observation* per row::

    figure, workload, category, mechanism, seed, metric, value [, extras]

(the PharmacoDI table-builder idiom: nested result dicts become flat,
join-able tables before any statistics or rendering happens).  A
:class:`TidyTable` carries those rows plus an explicit column order;
:class:`TableBuilder` accumulates them with schema validation.

Cell encoding is **round-trip safe**, unlike the old
``export._flatten`` (which flattened nested dicts a single level and
``";"``-joined lists with no escaping):

* nested dict keys join with ``"."``; literal dots inside a key are
  escaped as ``"\\."`` so :func:`unflatten_row` can reverse the join;
* lists / tuples / nested containers serialize as JSON text;
* a *string* that would itself parse as JSON (or is empty) is
  JSON-quoted, so ``"1.5"`` the string survives next to ``1.5`` the
  float;
* floats keep full ``repr`` precision — canonical CSVs pin bits, and
  presentation rounding happens only in :mod:`repro.analysis.format`.

JSON has no tuple type, so tuples come back as lists — the one
documented lossy corner.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "SCHEMA_COLUMNS",
    "TIDY_SCHEMA_VERSION",
    "TableBuilder",
    "TidyTable",
    "decode_cell",
    "encode_cell",
    "flatten_row",
    "unflatten_row",
]

#: Bump when the tidy schema (fixed columns or cell encoding) changes;
#: artifact manifests and goldens carry it so stale comparisons fail
#: loudly instead of diffing noise.
TIDY_SCHEMA_VERSION = 1

#: The fixed leading columns of every tidy table, in order.
SCHEMA_COLUMNS = ("figure", "workload", "category", "mechanism", "seed", "metric", "value")


# ------------------------------------------------------------- cell codec


def _plain(v: object) -> object:
    """Numpy scalars and tuples down to plain Python (JSON-able) values."""
    if hasattr(v, "item") and not isinstance(v, (str, bytes)):
        v = v.item()
    if isinstance(v, tuple):
        return [_plain(x) for x in v]
    if isinstance(v, list):
        return [_plain(x) for x in v]
    if isinstance(v, dict):
        return {str(k): _plain(x) for k, x in v.items()}
    return v


def encode_cell(v: object) -> str:
    """One CSV cell, invertible by :func:`decode_cell`.

    ``None`` is the empty cell; bools are JSON ``true``/``false``;
    numbers keep full ``repr`` precision; containers are JSON; strings
    pass through verbatim *unless* they would decode as something else,
    in which case they are JSON-quoted.
    """
    v = _plain(v)
    if v is None:
        return ""
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, (int, float)):
        return repr(v)
    if isinstance(v, str):
        if v == "":
            return '""'
        try:
            json.loads(v)
        except ValueError:
            return v
        return json.dumps(v)  # would masquerade as a number/JSON value
    return json.dumps(v, sort_keys=True, separators=(",", ":"))


def decode_cell(s: str) -> object:
    """Invert :func:`encode_cell`."""
    if s == "":
        return None
    try:
        return json.loads(s)
    except ValueError:
        return s


# -------------------------------------------------- flatten / unflatten


def _escape_key(k: str) -> str:
    return k.replace("\\", "\\\\").replace(".", "\\.")


def _split_path(path: str) -> list[str]:
    """Split a flattened key on unescaped dots."""
    parts: list[str] = []
    buf: list[str] = []
    i = 0
    while i < len(path):
        c = path[i]
        if c == "\\" and i + 1 < len(path):
            buf.append(path[i + 1])
            i += 2
            continue
        if c == ".":
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(c)
        i += 1
    parts.append("".join(buf))
    return parts


def flatten_row(row: dict) -> dict:
    """Flatten nested dicts into dotted columns, recursively and safely.

    Unlike the old one-level ``export._flatten``, nesting of any depth
    flattens, keys containing dots are escaped, and list values are
    preserved as lists (the CSV writer JSON-encodes them).  Reversed by
    :func:`unflatten_row`.
    """
    out: dict[str, object] = {}

    def walk(prefix: str, value: object) -> None:
        if isinstance(value, dict) and value:
            for k, v in value.items():
                key = _escape_key(str(k))
                walk(f"{prefix}.{key}" if prefix else key, v)
        else:
            out[prefix] = _plain(value)

    for k, v in row.items():
        walk(_escape_key(str(k)), v)
    return out


def unflatten_row(flat: dict) -> dict:
    """Rebuild the nested dict a :func:`flatten_row` call started from."""
    out: dict = {}
    for path, value in flat.items():
        parts = _split_path(path)
        node = out
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return out


# ------------------------------------------------------------ tidy table


@dataclass
class TidyTable:
    """Long-form rows plus an explicit, stable column order.

    Rows are plain dicts; absent cells read as ``None``.  The class is
    deliberately small — filtering, grouping, pivoting and (de)serial-
    ization — so it stays dependency-free (no pandas in this repo).
    """

    columns: tuple[str, ...]
    rows: list[dict] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.rows)

    # ----------------------------------------------------------- queries

    def filter(self, pred: Callable[[dict], bool] | None = None, **eq: object) -> "TidyTable":
        """Rows matching the predicate and/or column equality tests."""
        def keep(r: dict) -> bool:
            if pred is not None and not pred(r):
                return False
            return all(r.get(k) == v for k, v in eq.items())

        return TidyTable(self.columns, [r for r in self.rows if keep(r)])

    def distinct(self, column: str) -> list:
        """Unique values of one column, first-seen order."""
        return list(dict.fromkeys(r.get(column) for r in self.rows))

    def values(self, column: str, **eq: object) -> list:
        """The ``column`` cells of rows matching the equality filters."""
        return [r.get(column) for r in self.filter(**eq).rows]

    def group(self, *keys: str) -> dict[tuple, "TidyTable"]:
        """Split into sub-tables keyed by the given columns (seen order)."""
        out: dict[tuple, TidyTable] = {}
        for r in self.rows:
            k = tuple(r.get(c) for c in keys)
            out.setdefault(k, TidyTable(self.columns)).rows.append(r)
        return out

    def pivot(self, index: str, column: str, value: str = "value") -> tuple[list[str], list[list]]:
        """Wide ``(headers, rows)`` view for the presentation renderers.

        One output row per distinct ``index`` cell, one column per
        distinct ``column`` cell; collisions keep the last observation.
        """
        col_values = self.distinct(column)
        headers = [index] + [str(c) for c in col_values]
        wide: dict[object, dict] = {}
        for r in self.rows:
            wide.setdefault(r.get(index), {})[r.get(column)] = r.get(value)
        out_rows = [[idx] + [cells.get(c) for c in col_values] for idx, cells in wide.items()]
        return headers, out_rows

    def extend(self, other: "TidyTable") -> "TidyTable":
        """Concatenate two tables; columns are the union, fixed-first."""
        cols = list(self.columns) + [c for c in other.columns if c not in self.columns]
        return TidyTable(tuple(cols), self.rows + other.rows)

    # ------------------------------------------------------------- codec

    def to_csv(self) -> str:
        """Canonical CSV: header row plus one encoded line per row."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(self.columns)
        for r in self.rows:
            writer.writerow([encode_cell(r.get(c)) for c in self.columns])
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "TidyTable":
        """Invert :meth:`to_csv` (types restored by :func:`decode_cell`)."""
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration:
            return cls(())
        rows = [
            {c: decode_cell(cell) for c, cell in zip(header, line)}
            for line in reader
        ]
        return cls(tuple(header), rows)

    def to_records(self) -> list[dict]:
        """JSON-safe row dicts in column order (for Vega-Lite inlining)."""
        return [{c: _plain(r.get(c)) for c in self.columns if r.get(c) is not None} for r in self.rows]


# ---------------------------------------------------------- table builder


class TableBuilder:
    """Accumulates tidy observations with schema validation.

    ``extra_columns`` declares any figure-specific columns (``ways``,
    ``core``, ``benchmark``...) up front, so every produced table has a
    deterministic column order: the fixed :data:`SCHEMA_COLUMNS`
    followed by the declared extras.
    """

    def __init__(self, figure: str, *, extra_columns: Sequence[str] = ()) -> None:
        self.figure = figure
        for c in extra_columns:
            if c in SCHEMA_COLUMNS:
                raise ValueError(f"extra column {c!r} shadows a schema column")
        self.extra_columns = tuple(extra_columns)
        self._rows: list[dict] = []

    def add(
        self,
        *,
        metric: str,
        value: object,
        workload: str | None = None,
        category: str | None = None,
        mechanism: str | None = None,
        seed: int | None = None,
        **extras: object,
    ) -> "TableBuilder":
        unknown = set(extras) - set(self.extra_columns)
        if unknown:
            raise ValueError(
                f"undeclared extra column(s) {sorted(unknown)}; "
                f"declared: {list(self.extra_columns)}"
            )
        row = {
            "figure": self.figure,
            "workload": workload,
            "category": category,
            "mechanism": mechanism,
            "seed": seed,
            "metric": metric,
            "value": _plain(value),
        }
        for c in self.extra_columns:
            row[c] = _plain(extras.get(c))
        self._rows.append(row)
        return self

    def add_metrics(self, metrics: dict[str, object], **common: object) -> "TableBuilder":
        """One observation per ``{metric: value}`` item, shared context."""
        for m, v in metrics.items():
            self.add(metric=m, value=v, **common)
        return self

    def build(self) -> TidyTable:
        return TidyTable(SCHEMA_COLUMNS + self.extra_columns, list(self._rows))


def concat(tables: Iterable[TidyTable]) -> TidyTable:
    """Concatenate many tidy tables (union of columns, fixed-first)."""
    out: TidyTable | None = None
    for t in tables:
        out = t if out is None else out.extend(t)
    return out if out is not None else TidyTable(SCHEMA_COLUMNS)
