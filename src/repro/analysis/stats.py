"""Deterministic statistics for multi-seed sweeps.

Everything here is a pure function of its inputs **plus an explicit
seed**: the bootstrap and the permutation test draw from
``numpy.random.default_rng(seed)``, so the same observations and the
same seed reproduce the same CI bounds and p-values to the bit — the
property the determinism tests pin.

Also home to the fairness metrics LFOC-style analyses need next to
hm-IPC: per-program *slowdown* (alone IPC over shared IPC), the average
slowdown (ANTT, Eyerman & Eeckhout's "fair slowdown" axis), and
*unfairness* (max slowdown over min slowdown; 1.0 is perfectly fair).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Callable, Sequence

import numpy as np

from repro.metrics.speedup import harmonic_mean

__all__ = [
    "BootstrapCI",
    "PairedTest",
    "bootstrap_ci",
    "fair_slowdown",
    "hm_ipc",
    "paired_permutation_test",
    "sign_test",
    "slowdowns",
    "unfairness",
]


# ------------------------------------------------------------- bootstrap


@dataclass(frozen=True)
class BootstrapCI:
    """A statistic with its seeded-bootstrap confidence interval."""

    stat: float
    lo: float
    hi: float
    n: int
    confidence: float
    n_resamples: int
    seed: int

    @property
    def half_width(self) -> float:
        return (self.hi - self.lo) / 2.0


def bootstrap_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
    statistic: Callable[[np.ndarray], float] | None = None,
) -> BootstrapCI:
    """Percentile bootstrap CI of ``statistic`` (default: the mean).

    Deterministic for a given ``(values, confidence, n_resamples,
    seed)``.  With a single observation the interval collapses to the
    point estimate (nothing to resample).
    """
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1 or v.size == 0:
        raise ValueError("need a non-empty 1-D sequence of observations")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    if statistic is None:
        point = float(np.mean(v))
    else:
        point = float(statistic(v))
    if v.size == 1:
        return BootstrapCI(point, point, point, 1, confidence, n_resamples, seed)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, v.size, size=(n_resamples, v.size))
    if statistic is None:
        stats = v[idx].mean(axis=1)
    else:
        stats = np.array([statistic(v[row]) for row in idx], dtype=np.float64)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(stats, [alpha, 1.0 - alpha])
    return BootstrapCI(point, float(lo), float(hi), int(v.size), confidence, n_resamples, seed)


# ----------------------------------------------------------- paired tests


@dataclass(frozen=True)
class PairedTest:
    """Outcome of a paired two-sided test between two mechanisms."""

    mean_diff: float
    p_value: float
    n: int
    method: str
    seed: int | None = None


def _paired(a: Sequence[float], b: Sequence[float]) -> np.ndarray:
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or x.size == 0:
        raise ValueError("need two equal-length non-empty 1-D sequences")
    return x - y


def paired_permutation_test(
    a: Sequence[float],
    b: Sequence[float],
    *,
    n_resamples: int = 5000,
    seed: int = 0,
) -> PairedTest:
    """Seeded sign-flip permutation test on paired differences.

    Two-sided: the p-value is the fraction of random sign assignments
    whose mean |difference| reaches the observed one, with the +1/+1
    continuity correction so p is never exactly zero.
    """
    d = _paired(a, b)
    observed = float(np.mean(d))
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    rng = np.random.default_rng(seed)
    signs = rng.integers(0, 2, size=(n_resamples, d.size)) * 2 - 1
    perm = (signs * d).mean(axis=1)
    hits = int(np.count_nonzero(np.abs(perm) >= abs(observed) - 1e-15))
    p = (hits + 1) / (n_resamples + 1)
    return PairedTest(observed, float(p), int(d.size), "permutation", seed)


def sign_test(a: Sequence[float], b: Sequence[float]) -> PairedTest:
    """Exact two-sided sign test on paired differences (ties dropped)."""
    d = _paired(a, b)
    wins = int(np.count_nonzero(d > 0))
    losses = int(np.count_nonzero(d < 0))
    n = wins + losses
    if n == 0:
        return PairedTest(float(np.mean(d)), 1.0, 0, "sign")
    k = min(wins, losses)
    tail = sum(comb(n, i) for i in range(0, k + 1)) / 2.0**n
    p = min(1.0, 2.0 * tail)
    return PairedTest(float(np.mean(d)), float(p), n, "sign")


# ------------------------------------------------------ fairness metrics


def hm_ipc(ipcs: Sequence[float]) -> float:
    """Harmonic-mean IPC across cores (0.0 if any core is stalled flat)."""
    return harmonic_mean(ipcs)


def slowdowns(ipc_alone: Sequence[float], ipc_together: Sequence[float]) -> np.ndarray:
    """Per-program slowdown: alone IPC over shared-run IPC (>= 1 typical)."""
    alone = np.asarray(ipc_alone, dtype=np.float64)
    together = np.asarray(ipc_together, dtype=np.float64)
    if alone.shape != together.shape or alone.ndim != 1 or alone.size == 0:
        raise ValueError("need two equal-length non-empty 1-D sequences")
    if (together <= 0).any():
        return np.full_like(alone, np.inf)
    return alone / together


def fair_slowdown(ipc_alone: Sequence[float], ipc_together: Sequence[float]) -> float:
    """Average per-program slowdown — ANTT, the fairness-aware mean."""
    return float(np.mean(slowdowns(ipc_alone, ipc_together)))


def unfairness(ipc_alone: Sequence[float], ipc_together: Sequence[float]) -> float:
    """Max slowdown over min slowdown (LFOC's fairness ratio; 1.0 = fair)."""
    s = slowdowns(ipc_alone, ipc_together)
    if not np.isfinite(s).all():
        return float("inf")
    lo = float(np.min(s))
    if lo <= 0:
        return float("inf")
    return float(np.max(s) / lo)
