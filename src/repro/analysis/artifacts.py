"""Declarative figure artifacts: one :class:`FigureSpec` per paper figure.

Every figure the repo reproduces is registered here with three pieces:

* **build** — the existing ``repro.experiments.figures`` driver that
  produces the figure dict (numbers unchanged; this layer never
  recomputes them);
* **tidy** — a converter from that dict into a long-form
  :class:`~repro.analysis.tables.TidyTable` (one observation per row);
* **vega** — a Vega-Lite spec builder over the tidy rows.

``write_artifacts`` emits the canonical artifact set for a list of
figures — ``<id>.csv`` (tidy, full ``repr`` precision) plus
``<id>.vl.json`` and a schema-versioned ``manifest.json`` — and
``check_artifacts`` diffs a produced set against committed goldens,
naming schema versions on mismatch instead of failing opaquely.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis import vega as _vega
from repro.analysis.tables import TIDY_SCHEMA_VERSION, TableBuilder, TidyTable
from repro.experiments.config import ScaleConfig, get_scale

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "BuiltFigure",
    "FIGURE_IDS",
    "FigureSpec",
    "build_artifacts",
    "check_artifacts",
    "figure_table",
    "figure_vega",
    "get_figure_spec",
    "write_artifacts",
]

#: Bump when the emitted artifact layout (file set, manifest fields,
#: tidy conversion of any figure) changes; goldens carry it.
ARTIFACT_SCHEMA_VERSION = 1


# -------------------------------------------------------- tidy converters


def _tidy_benchmark_rows(figure: dict, seed: int | None) -> TidyTable:
    """fig01/fig02: per-benchmark scalar metrics."""
    b = TableBuilder(figure["figure"], extra_columns=("benchmark",))
    for row in figure["rows"]:
        metrics = {k: v for k, v in row.items() if k != "benchmark"}
        b.add_metrics(metrics, seed=seed, benchmark=row["benchmark"])
    return b.build()


def _tidy_fig03(figure: dict, seed: int | None) -> TidyTable:
    """fig03: the ways sweep unrolls into one ``ipc`` row per point."""
    b = TableBuilder(figure["figure"], extra_columns=("benchmark", "ways"))
    for row in figure["rows"]:
        bench = row["benchmark"]
        # Sort numerically: the dict's order depends on whether the sweep
        # came from memory or a JSON round-trip (which sorts "12" < "2").
        for w, ipc in sorted(row["ipc_by_ways"].items(), key=lambda kv: int(kv[0])):
            b.add(metric="ipc", value=ipc, seed=seed, benchmark=bench, ways=int(w))
        b.add(metric="min_ways_90pct", value=row["min_ways_90pct"], seed=seed, benchmark=bench)
        b.add(metric="min_ways_80pct", value=row["min_ways_80pct"], seed=seed, benchmark=bench)
    return b.build()


def _tidy_fig05(figure: dict, seed: int | None) -> TidyTable:
    b = TableBuilder(figure["figure"])
    for row in figure["rows"]:
        common = {"workload": row["workload"], "category": row["category"], "seed": seed}
        b.add(metric="benchmarks", value=row["benchmarks"], **common)
        b.add(metric="agg_set", value=row["agg_set"], **common)
        b.add(metric="agg_benchmarks", value=row["agg_benchmarks"], **common)
        b.add(metric="n_agg", value=len(row["agg_set"]), **common)
    return b.build()


def _tidy_mechanism(figure: dict, seed: int | None) -> TidyTable:
    """figs 7-15: (workload x mechanism) observations + category means.

    Per-workload rows keep the figure's metric name; the precomputed
    category means land under ``<metric>_mean`` with no workload, so
    observations and aggregates never mix in a filter.
    """
    b = TableBuilder(figure["figure"])

    def rows_block(rows: list[dict], metric: str) -> None:
        for row in rows:
            for mech, v in row.items():
                if mech in ("workload", "category"):
                    continue
                b.add(metric=metric, value=v, workload=row["workload"],
                      category=row["category"], mechanism=mech, seed=seed)

    def means_block(means: dict, metric: str) -> None:
        for cat, per_mech in means.items():
            for mech, v in per_mech.items():
                b.add(metric=f"{metric}_mean", value=v, category=cat,
                      mechanism=mech, seed=seed)

    metric = figure["metric"]
    rows_block(figure["rows"], metric)
    means_block(figure["category_means"], metric)
    if "rows_ws" in figure:
        rows_block(figure["rows_ws"], "ws")
        means_block(figure["category_means_ws"], "ws")
    return b.build()


def _tidy_table1(figure: dict, seed: int | None) -> TidyTable:
    b = TableBuilder(figure["figure"], extra_columns=("core", "benchmark"))
    for row in figure["rows"]:
        metrics = {k: v for k, v in row.items() if k not in ("core", "benchmark")}
        b.add_metrics(metrics, seed=seed, core=row["core"], benchmark=row["benchmark"])
    return b.build()


# --------------------------------------------------------- vega converters


def _vega_grouped_bw(table: TidyTable, spec: "FigureSpec") -> dict:
    out = _vega.bar_chart(
        table, title=spec.title, fig_id=spec.fig_id,
        schema_version=ARTIFACT_SCHEMA_VERSION,
        x="benchmark", x_offset="metric", color="metric", y_title="MB/s",
    )
    out["transform"] = [{"filter": "datum.metric != 'increase_pct'"}]
    return out


def _vega_speedup(table: TidyTable, spec: "FigureSpec") -> dict:
    out = _vega.bar_chart(
        table, title=spec.title, fig_id=spec.fig_id,
        schema_version=ARTIFACT_SCHEMA_VERSION,
        x="benchmark", y_title="prefetch speedup (%)",
    )
    out["transform"] = [{"filter": "datum.metric == 'speedup_pct'"}]
    return out


def _vega_ways(table: TidyTable, spec: "FigureSpec") -> dict:
    out = _vega.line_chart(
        table, title=spec.title, fig_id=spec.fig_id,
        schema_version=ARTIFACT_SCHEMA_VERSION,
        x="ways", color="benchmark", y_title="IPC",
    )
    out["transform"] = [{"filter": "datum.metric == 'ipc'"}]
    return out


def _vega_detection(table: TidyTable, spec: "FigureSpec") -> dict:
    out = _vega.bar_chart(
        table, title=spec.title, fig_id=spec.fig_id,
        schema_version=ARTIFACT_SCHEMA_VERSION,
        x="workload", color="category", y_title="detected Agg cores",
    )
    out["transform"] = [{"filter": "datum.metric == 'n_agg'"}]
    return out


def _vega_mechanism(table: TidyTable, spec: "FigureSpec") -> dict:
    metric = next((r["metric"] for r in table), "hs_norm")
    out = _vega.bar_chart(
        table, title=spec.title, fig_id=spec.fig_id,
        schema_version=ARTIFACT_SCHEMA_VERSION,
        x="category", x_offset="mechanism", color="mechanism",
        aggregate="mean", y_title=metric,
    )
    out["transform"] = [{"filter": f"datum.metric == '{metric}'"}]
    return out


def _vega_table1(table: TidyTable, spec: "FigureSpec") -> dict:
    return _vega.heatmap(
        table, title=spec.title, fig_id=spec.fig_id,
        schema_version=ARTIFACT_SCHEMA_VERSION,
        x="core", y="metric",
    )


# --------------------------------------------------------------- registry


@dataclass(frozen=True)
class FigureSpec:
    """One registered figure: build -> tidy -> Vega-Lite."""

    fig_id: str
    title: str
    #: dotted name of the driver in :mod:`repro.experiments.figures`
    builder: str
    #: whether the driver accepts an :class:`EvalStore` (figs 7-15)
    takes_store: bool
    tidy: Callable[[dict, int | None], TidyTable]
    vega: Callable[[TidyTable, "FigureSpec"], dict]

    def build(self, sc: ScaleConfig | None = None, store=None) -> dict:
        """Produce the figure dict via the registered experiments driver."""
        from repro.experiments import figures as _figures

        fn = getattr(_figures, self.builder)
        return fn(sc, store) if self.takes_store else fn(sc)

    def table(self, figure: dict, *, seed: int | None = None) -> TidyTable:
        return self.tidy(figure, seed)

    def spec(self, table: TidyTable) -> dict:
        return self.vega(table, self)


def _spec(fig_id, title, builder, tidy, vega_fn, *, takes_store=False) -> FigureSpec:
    return FigureSpec(fig_id, title, builder, takes_store, tidy, vega_fn)


FIGURE_SPECS: dict[str, FigureSpec] = {
    s.fig_id: s
    for s in (
        _spec("table1", "Table I: prefetch metrics per core (one Mix workload)",
              "table1_metrics", _tidy_table1, _vega_table1),
        _spec("fig01", "Fig. 1: memory bandwidth per benchmark",
              "fig01_bandwidth", _tidy_benchmark_rows, _vega_grouped_bw),
        _spec("fig02", "Fig. 2: IPC speedup from prefetching",
              "fig02_prefetch_speedup", _tidy_benchmark_rows, _vega_speedup),
        _spec("fig03", "Fig. 3: IPC vs. allocated LLC ways",
              "fig03_way_sensitivity", _tidy_fig03, _vega_ways),
        _spec("fig05", "Fig. 5: detected Agg sets per workload",
              "fig05_detection", _tidy_fig05, _vega_detection),
        _spec("fig07", "Fig. 7: PT normalized HS / WS",
              "fig07_pt", _tidy_mechanism, _vega_mechanism, takes_store=True),
        _spec("fig08", "Fig. 8: PT worst-case normalized IPC",
              "fig08_pt_worstcase", _tidy_mechanism, _vega_mechanism, takes_store=True),
        _spec("fig09", "Fig. 9: CP mechanisms normalized HS / WS",
              "fig09_cp", _tidy_mechanism, _vega_mechanism, takes_store=True),
        _spec("fig10", "Fig. 10: CP mechanisms worst-case normalized IPC",
              "fig10_cp_worstcase", _tidy_mechanism, _vega_mechanism, takes_store=True),
        _spec("fig11", "Fig. 11: CMM mechanisms normalized HS / WS",
              "fig11_cmm", _tidy_mechanism, _vega_mechanism, takes_store=True),
        _spec("fig12", "Fig. 12: CMM mechanisms worst-case normalized IPC",
              "fig12_cmm_worstcase", _tidy_mechanism, _vega_mechanism, takes_store=True),
        _spec("fig13", "Fig. 13: all mechanisms, normalized HS",
              "fig13_all", _tidy_mechanism, _vega_mechanism, takes_store=True),
        _spec("fig14", "Fig. 14: normalized memory traffic",
              "fig14_bandwidth", _tidy_mechanism, _vega_mechanism, takes_store=True),
        _spec("fig15", "Fig. 15: normalized STALLS_L2_PENDING",
              "fig15_stalls", _tidy_mechanism, _vega_mechanism, takes_store=True),
    )
}

#: Registered figure ids in presentation order.
FIGURE_IDS: tuple[str, ...] = tuple(FIGURE_SPECS)


def get_figure_spec(fig_id: str) -> FigureSpec:
    try:
        return FIGURE_SPECS[fig_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {fig_id!r}; one of {', '.join(FIGURE_IDS)}"
        ) from None


def figure_table(figure: dict, *, seed: int | None = None) -> TidyTable:
    """Tidy rows for any figure dict (dispatch on its ``figure`` id)."""
    return get_figure_spec(figure["figure"]).table(figure, seed=seed)


def figure_vega(figure: dict, table: TidyTable | None = None, *, seed: int | None = None) -> dict:
    """Vega-Lite spec for any figure dict (tidy conversion included)."""
    spec = get_figure_spec(figure["figure"])
    return spec.spec(table if table is not None else spec.table(figure, seed=seed))


# ------------------------------------------------------------ artifact IO


@dataclass(frozen=True)
class BuiltFigure:
    """One figure taken through the whole layer: dict -> tidy -> spec."""

    fig_id: str
    figure: dict
    table: TidyTable
    spec: dict


def build_artifacts(
    fig_ids: Sequence[str] | None = None,
    sc: ScaleConfig | None = None,
    *,
    store=None,
    session=None,
) -> list[BuiltFigure]:
    """Build the requested figures and convert each to tidy + Vega form.

    Mechanism figures share one :class:`EvalStore` (created against
    ``session`` unless one is injected), so the whole batch executes
    through a single deduplicated plan / warm cache.
    """
    from repro.experiments.figures import EvalStore

    sc = sc or get_scale()
    ids = list(fig_ids) if fig_ids else list(FIGURE_IDS)
    specs = [get_figure_spec(i) for i in ids]
    if store is None and any(s.takes_store for s in specs):
        store = EvalStore(sc, session=session)
    out = []
    for spec in specs:
        figure = spec.build(sc, store) if spec.takes_store else spec.build(sc)
        table = spec.table(figure, seed=sc.seed)
        out.append(BuiltFigure(spec.fig_id, figure, table, spec.spec(table)))
    return out


def _stable_json(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, indent=2) + "\n"


def write_artifacts(
    built: Sequence[BuiltFigure],
    out_dir: str | Path,
    *,
    scale: str,
    seed: int,
    png: bool = False,
) -> dict[str, Path]:
    """Emit the canonical artifact set for ``built`` under ``out_dir``.

    Per figure: ``<id>.csv`` (tidy, full precision) and ``<id>.vl.json``
    (stable sorted-key serialization); plus one ``manifest.json``
    carrying the schema versions, scale and seed.  With ``png=True``
    each spec is also rendered via :mod:`repro.analysis.render`
    (requires an optional renderer package).
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}
    manifest: dict = {
        "artifact_schema": ARTIFACT_SCHEMA_VERSION,
        "tidy_schema": TIDY_SCHEMA_VERSION,
        "scale": scale,
        "seed": seed,
        "figures": {},
    }
    for bf in built:
        csv_path = out_dir / f"{bf.fig_id}.csv"
        vl_path = out_dir / f"{bf.fig_id}.vl.json"
        csv_path.write_text(bf.table.to_csv())
        vl_path.write_text(_stable_json(bf.spec))
        paths[f"{bf.fig_id}.csv"] = csv_path
        paths[f"{bf.fig_id}.vl.json"] = vl_path
        manifest["figures"][bf.fig_id] = {
            "csv": csv_path.name,
            "vega": vl_path.name,
            "rows": len(bf.table),
        }
        if png:
            from repro.analysis.render import render_png

            png_path = out_dir / f"{bf.fig_id}.png"
            render_png(bf.spec, png_path)
            paths[f"{bf.fig_id}.png"] = png_path
    man_path = out_dir / "manifest.json"
    man_path.write_text(_stable_json(manifest))
    paths["manifest.json"] = man_path
    return paths


def _manifest_schema(directory: Path) -> str:
    try:
        man = json.loads((directory / "manifest.json").read_text())
    except (OSError, json.JSONDecodeError):
        return "unknown"
    return f"artifact={man.get('artifact_schema')} tidy={man.get('tidy_schema')}"


def check_artifacts(out_dir: str | Path, golden_dir: str | Path) -> list[str]:
    """Diff a produced artifact set against a committed golden set.

    Returns human-readable difference descriptions (empty = identical).
    Every golden file must exist and match byte-for-byte; extra
    produced files are reported too.  On any content mismatch the
    schema versions of both manifests are named, so a stale golden
    written under an older schema fails with its cause visible.
    """
    out_dir, golden_dir = Path(out_dir), Path(golden_dir)
    problems: list[str] = []
    golden_files = sorted(p.name for p in golden_dir.iterdir() if p.is_file())
    if not golden_files:
        return [f"golden directory {golden_dir} is empty"]
    produced = sorted(p.name for p in out_dir.iterdir() if p.is_file()) if out_dir.is_dir() else []
    mismatched = False
    for name in golden_files:
        if name not in produced:
            problems.append(f"missing artifact: {name}")
            continue
        if (golden_dir / name).read_bytes() != (out_dir / name).read_bytes():
            problems.append(f"content mismatch: {name}")
            mismatched = True
    for name in produced:
        if name not in golden_files and not name.endswith(".png"):
            problems.append(f"unexpected artifact: {name}")
    if mismatched:
        problems.append(
            f"schema versions: produced {_manifest_schema(out_dir)}, "
            f"golden {_manifest_schema(golden_dir)}"
        )
    return problems
