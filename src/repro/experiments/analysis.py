"""Post-hoc analysis helpers: prefetch accuracy and decision timelines.

Real PMUs cannot measure prefetch *accuracy* (the paper's footnote 2);
the simulator can, via the used-bit bookkeeping in ``CacheStats``.
These helpers expose that ground truth for evaluation and debugging —
the CMM front-end itself never sees it, staying faithful to the
software constraints the paper operates under.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.controller import RunStats
from repro.sim.machine import Machine


@dataclass(frozen=True)
class CoreAccuracy:
    """Ground-truth prefetch effectiveness of one core."""

    core: int
    l1_accuracy: float      # fraction of L1 prefetch fills demand-used
    l2_accuracy: float      # fraction of L2 prefetch fills demand-used
    llc_pref_fills: int     # prefetch fills that reached the shared LLC
    l2_pref_fills: int


def prefetch_accuracy(machine: Machine) -> list[CoreAccuracy]:
    """Per-core ground-truth prefetch accuracy from cache bookkeeping."""
    out = []
    for core, cs in enumerate(machine.cores):
        if not cs.active:
            continue
        out.append(
            CoreAccuracy(
                core=core,
                l1_accuracy=cs.l1.stats.prefetch_accuracy,
                l2_accuracy=cs.l2.stats.prefetch_accuracy,
                llc_pref_fills=machine.llc.stats.pref_fills,
                l2_pref_fills=cs.l2.stats.pref_fills,
            )
        )
    return out


@dataclass(frozen=True)
class EpochDecision:
    """One epoch's back-end decision, summarised for inspection."""

    epoch: int
    sampling_intervals: int
    throttled_cores: tuple[int, ...]
    partitioned_cores: tuple[int, ...]  # cores in a non-default CLOS
    clos_cbm: tuple[tuple[int, int], ...]


def decision_timeline(stats: RunStats) -> list[EpochDecision]:
    """The sequence of configurations a controller run applied."""
    out = []
    for i, rec in enumerate(stats.epochs):
        cfg = rec.chosen
        out.append(
            EpochDecision(
                epoch=i,
                sampling_intervals=rec.sampling_intervals,
                throttled_cores=cfg.throttled_cores(),
                partitioned_cores=tuple(
                    c for c, clos in enumerate(cfg.core_clos) if clos != 0
                ),
                clos_cbm=cfg.clos_cbm,
            )
        )
    return out


def timeline_summary(stats: RunStats) -> str:
    """Human-readable one-line-per-epoch decision dump."""
    lines = []
    for d in decision_timeline(stats):
        cbms = ", ".join(f"clos{c}=0x{m:x}" for c, m in d.clos_cbm)
        lines.append(
            f"epoch {d.epoch}: {d.sampling_intervals} samples, "
            f"throttled={list(d.throttled_cores)}, "
            f"partitioned={list(d.partitioned_cores)}, {cbms}"
        )
    return "\n".join(lines)
