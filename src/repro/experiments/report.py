"""Plain-text rendering of experiment results (the paper's rows/series).

Value and table formatting is shared with every other human-facing
renderer through :mod:`repro.analysis.format`; this module keeps only
the trace timeline, which has no tabular shape.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.format import fmt_value, render_ascii_table


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = "") -> str:
    """Fixed-width ASCII table; floats rendered to three decimals."""
    return render_ascii_table(headers, rows, title=title)


def render_series(name: str, labels: Sequence[str], values: Sequence[float]) -> str:
    """One named series, label=value pairs (a figure's bar heights)."""
    pairs = ", ".join(f"{l}={v:.3f}" for l, v in zip(labels, values))
    return f"{name}: {pairs}"


def _fmt_value(v: object) -> str:
    return fmt_value(v, max_len=40)


def render_trace_timeline(traces, *, title: str = "") -> str:
    """Per-epoch decision timeline from :class:`~repro.core.trace.EpochTrace` records.

    One block per epoch: the stages that ran (skipped ones included,
    with the reason), every scored candidate, and the winning
    configuration the epoch actuated.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    for t in traces:
        head = f"epoch {t.epoch}  policy={t.policy}  sampling_intervals={t.sampling_intervals}"
        if t.degraded:
            head += "  DEGRADED"
        if t.failure:
            head += f"  failure: {t.failure}"
        lines.append(head)
        for s in t.stages:
            if s.skipped:
                lines.append(f"  {s.stage:<28} skipped ({s.detail.get('reason', '?')})")
                continue
            parts = [
                f"{k}={_fmt_value(v)}"
                for k, v in s.detail.items()
                if k != "candidates" and not isinstance(v, dict)
            ]
            lines.append(f"  {s.stage:<28} {'  '.join(parts)}".rstrip())
            for c in s.detail.get("candidates", ()):
                extra = "".join(
                    f"  {k}={_fmt_value(v)}"
                    for k, v in c.items()
                    if k not in ("off", "hm_ipc")
                )
                lines.append(f"      candidate off={c.get('off')}  hm_ipc={c.get('hm_ipc', 0.0):.4f}{extra}")
        if t.winner is not None:
            lines.append(
                f"  winner: throttled={t.winner.get('throttled')}  "
                f"clos_cbm={t.winner.get('clos_cbm')}"
            )
    return "\n".join(lines)
