"""Plain-text rendering of experiment results (the paper's rows/series)."""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = "") -> str:
    """Fixed-width ASCII table; floats rendered to three decimals."""

    def fmt(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, labels: Sequence[str], values: Sequence[float]) -> str:
    """One named series, label=value pairs (a figure's bar heights)."""
    pairs = ", ".join(f"{l}={v:.3f}" for l, v in zip(labels, values))
    return f"{name}: {pairs}"
