"""Seeded chaos scenarios: drive the CMM loop through injected faults.

A chaos run wraps a simulated machine in
:class:`~repro.platform.faults.FaultyPlatform` under a named scenario
(:data:`~repro.platform.faults.SCENARIOS`) and checks the contract the
robustness layer promises:

* the controller never raises — every epoch completes or degrades;
* accumulated counters stay finite (no corrupt sample leaks through);
* if the safe-state fallback fired, the platform is verifiably back in
  the paper's default configuration (all prefetchers on, partitions
  reset) and a structured ``DegradedState`` was reported.

Used by ``repro chaos`` (the CLI gate CI runs across seeds) and the
chaos test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.controller import CMMController, DegradedState, ResilienceConfig, RunStats
from repro.core.epoch import EpochConfig
from repro.core.policies import make_policy
from repro.experiments.config import ScaleConfig, get_scale
from repro.platform.faults import FaultyPlatform, scenario_plan, verify_safe_state
from repro.platform.simulated import SimulatedPlatform
from repro.workloads.mixes import WorkloadMix, make_mixes

__all__ = ["ChaosReport", "run_chaos_scenario"]


@dataclass
class ChaosReport:
    """Outcome of one seeded chaos scenario run."""

    scenario: str
    seed: int
    mechanism: str
    epochs_requested: int
    epochs_completed: int
    injected: dict[str, int]
    failures: int
    degraded: DegradedState | None
    problems: list[str] = field(default_factory=list)
    stats: RunStats | None = None

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        state = "degraded" if self.degraded else "nominal"
        faults = sum(self.injected.values())
        verdict = "ok" if self.ok else "FAIL: " + "; ".join(self.problems)
        return (
            f"{self.scenario} seed={self.seed}: {self.epochs_completed}/"
            f"{self.epochs_requested} epochs, {faults} faults injected, "
            f"{self.failures} failures, {state} — {verdict}"
        )


def run_chaos_scenario(
    scenario: str,
    seed: int = 0,
    *,
    mechanism: str = "cmm-a",
    n_epochs: int = 6,
    category: str = "pref_agg",
    sc: ScaleConfig | None = None,
    resilience_cfg: ResilienceConfig | None = None,
) -> ChaosReport:
    """Run one scenario to completion and validate the end state."""
    from repro.experiments.runner import build_machine  # avoid import cycle

    sc = sc or get_scale()
    mix: WorkloadMix = make_mixes(category, 1, seed=sc.seed + seed)[0]
    machine = build_machine(mix, sc)
    inner = SimulatedPlatform(machine)
    platform = FaultyPlatform(inner, scenario_plan(scenario, seed))
    controller = CMMController(
        platform,
        make_policy(mechanism),
        epoch_cfg=EpochConfig(exec_units=sc.exec_units, sample_units=sc.sample_units),
        resilience_cfg=resilience_cfg,
        sleep=lambda _s: None,  # chaos runs are simulated; never wall-sleep
    )

    problems: list[str] = []
    try:
        stats = controller.run(n_epochs)
    except Exception as e:  # the contract: the controller never raises
        return ChaosReport(
            scenario=scenario,
            seed=seed,
            mechanism=mechanism,
            epochs_requested=n_epochs,
            epochs_completed=0,
            injected=dict(platform.injected),
            failures=0,
            degraded=None,
            problems=[f"controller raised {type(e).__name__}: {e}"],
        )

    if len(stats.epochs) != n_epochs:
        problems.append(f"completed {len(stats.epochs)}/{n_epochs} epochs")
    if stats.totals is None or not np.all(np.isfinite(stats.totals)):
        problems.append("non-finite counters leaked into RunStats totals")
    if stats.degraded is not None:
        if not stats.degraded.safe_state_applied:
            problems.append("degraded but safe state could not be applied")
        problems.extend(verify_safe_state(inner))

    return ChaosReport(
        scenario=scenario,
        seed=seed,
        mechanism=mechanism,
        epochs_requested=n_epochs,
        epochs_completed=len(stats.epochs),
        injected=dict(platform.injected),
        failures=len(stats.failures),
        degraded=stats.degraded,
        problems=problems,
        stats=stats,
    )
