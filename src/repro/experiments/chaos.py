"""Seeded chaos scenarios: drive the CMM loop through injected faults.

A chaos run wraps a simulated machine in
:class:`~repro.platform.faults.FaultyPlatform` under a named scenario
(:data:`~repro.platform.faults.SCENARIOS`) and checks the contract the
robustness layer promises:

* the controller never raises — every epoch completes or degrades;
* accumulated counters stay finite (no corrupt sample leaks through);
* if the safe-state fallback fired, the platform is verifiably back in
  the paper's default configuration (all prefetchers on, partitions
  reset) and a structured ``DegradedState`` was reported.

Used by ``repro chaos`` (the CLI gate CI runs across seeds) and the
chaos test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.controller import CMMController, DegradedState, ResilienceConfig, RunStats
from repro.core.epoch import EpochConfig
from repro.core.policies import make_policy
from repro.experiments.config import ScaleConfig, get_scale
from repro.platform.faults import FaultyPlatform, scenario_plan, verify_safe_state
from repro.platform.simulated import SimulatedPlatform
from repro.workloads.mixes import WorkloadMix, make_mixes

__all__ = [
    "ChaosReport",
    "ServiceChaosReport",
    "chaos_failing_hook",
    "run_chaos_scenario",
    "run_service_chaos_scenario",
]


@dataclass
class ChaosReport:
    """Outcome of one seeded chaos scenario run."""

    scenario: str
    seed: int
    mechanism: str
    epochs_requested: int
    epochs_completed: int
    injected: dict[str, int]
    failures: int
    degraded: DegradedState | None
    problems: list[str] = field(default_factory=list)
    stats: RunStats | None = None
    #: Zero-copy trace go-live fallbacks the run took (RunStats passthrough).
    trace_fallbacks: int = 0
    #: Batch-engine lockstep degradations the run took (RunStats passthrough).
    batch_degradations: int = 0
    #: Native-kernel-tier fallbacks the run took (RunStats passthrough).
    native_fallbacks: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        state = "degraded" if self.degraded else "nominal"
        faults = sum(self.injected.values())
        verdict = "ok" if self.ok else "FAIL: " + "; ".join(self.problems)
        return (
            f"{self.scenario} seed={self.seed}: {self.epochs_completed}/"
            f"{self.epochs_requested} epochs, {faults} faults injected, "
            f"{self.failures} failures, {self.trace_fallbacks} trace fallbacks, "
            f"{self.batch_degradations} batch degradations, "
            f"{self.native_fallbacks} native fallbacks, {state} — {verdict}"
        )


def run_chaos_scenario(
    scenario: str,
    seed: int = 0,
    *,
    mechanism: str = "cmm-a",
    n_epochs: int = 6,
    category: str = "pref_agg",
    sc: ScaleConfig | None = None,
    resilience_cfg: ResilienceConfig | None = None,
) -> ChaosReport:
    """Run one scenario to completion and validate the end state."""
    from repro.experiments.runner import build_machine  # avoid import cycle

    sc = sc or get_scale()
    mix: WorkloadMix = make_mixes(category, 1, seed=sc.seed + seed)[0]
    machine = build_machine(mix, sc)
    inner = SimulatedPlatform(machine)
    platform = FaultyPlatform(inner, scenario_plan(scenario, seed))
    controller = CMMController(
        platform,
        make_policy(mechanism),
        epoch_cfg=EpochConfig(exec_units=sc.exec_units, sample_units=sc.sample_units),
        resilience_cfg=resilience_cfg,
        sleep=lambda _s: None,  # chaos runs are simulated; never wall-sleep
    )

    problems: list[str] = []
    try:
        stats = controller.run(n_epochs)
    except Exception as e:  # the contract: the controller never raises
        return ChaosReport(
            scenario=scenario,
            seed=seed,
            mechanism=mechanism,
            epochs_requested=n_epochs,
            epochs_completed=0,
            injected=dict(platform.injected),
            failures=0,
            degraded=None,
            problems=[f"controller raised {type(e).__name__}: {e}"],
        )

    if len(stats.epochs) != n_epochs:
        problems.append(f"completed {len(stats.epochs)}/{n_epochs} epochs")
    if stats.totals is None or not np.all(np.isfinite(stats.totals)):
        problems.append("non-finite counters leaked into RunStats totals")
    if stats.degraded is not None:
        if not stats.degraded.safe_state_applied:
            problems.append("degraded but safe state could not be applied")
        problems.extend(verify_safe_state(inner))

    return ChaosReport(
        scenario=scenario,
        seed=seed,
        mechanism=mechanism,
        epochs_requested=n_epochs,
        epochs_completed=len(stats.epochs),
        injected=dict(platform.injected),
        failures=len(stats.failures),
        degraded=stats.degraded,
        problems=problems,
        stats=stats,
        trace_fallbacks=stats.trace_fallbacks,
        batch_degradations=stats.batch_degradations,
        native_fallbacks=stats.native_fallbacks,
    )


# ------------------------------------------------------- service chaos
#
# The same seeded-fault discipline applied to the experiment service:
# many concurrent clients, overlapping batches, a remote cache tier
# under injected network/storage faults.  The gate pins the service's
# whole contract at once — single-flight (a key executes at most once
# across every client), no hangs (every client gets a result or a
# structured error), degradation (remote faults are counted, never
# fatal), and bit-identity (payloads match a fault-free local session).


def chaos_failing_hook(run) -> dict:
    """Hook bench that always fails; drives the structured-error path."""
    raise RuntimeError("chaos_failing_hook: injected run failure")


#: Remote-tier counters that witness an absorbed fault: terminal
#: errors, retried attempts, breaker short-circuits, abandoned hedged
#: reads, and remote blobs rejected by validation.
_DEGRADATION_COUNTERS = (
    "get_errors", "put_errors", "retries",
    "short_circuited", "hedge_abandoned", "remote_invalid",
)


@dataclass
class ServiceChaosReport:
    """Outcome of one seeded service chaos scenario run."""

    scenario: str
    seed: int
    clients: int
    unique_keys: int
    outcomes: int
    executions: int
    replays: int
    deduped: int
    structured_errors: int
    injected: dict[str, int]
    remote: dict = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        faults = sum(self.injected.values())
        degradations = sum(self.remote.get(k, 0) for k in _DEGRADATION_COUNTERS)
        verdict = "ok" if self.ok else "FAIL: " + "; ".join(self.problems)
        return (
            f"service/{self.scenario} seed={self.seed}: {self.clients} clients, "
            f"{self.unique_keys} keys, {self.executions} executed, "
            f"{self.replays} cache replays, {self.deduped} deduped, "
            f"{self.structured_errors} structured errors, {faults} faults injected, "
            f"{degradations} degradations (breaker {self.remote.get('breaker', '?')}) "
            f"— {verdict}"
        )


def run_service_chaos_scenario(
    scenario: str,
    seed: int = 0,
    *,
    clients: int = 8,
    batches_per_client: int = 2,
    sc: ScaleConfig | None = None,
    client_timeout_s: float = 120.0,
) -> ServiceChaosReport:
    """Hammer an in-process service with concurrent clients under faults.

    ``clients`` threads each drive their own :class:`ServiceClient`
    against one background :class:`ExperimentService` whose cache has a
    faulty in-memory remote tier (:data:`SERVICE_SCENARIOS`).  Batches
    overlap heavily (every client submits a rotation of the same run
    pool, including one always-failing hook run), so the single-flight
    invariant is under real contention.
    """
    import json as _json
    import threading

    from repro.experiments.engine import (
        KIND_ALONE,
        KIND_HOOK,
        ExperimentSession,
        PlannedRun,
        ResultCache,
    )
    from repro.platform.faults import FaultyTier, service_scenario_plan
    from repro.service import (
        ExperimentService,
        InMemoryCacheTier,
        RemoteTierConfig,
        ResilientTier,
        SchedulerConfig,
        ServiceClient,
        TieredResultCache,
    )

    sc = sc or get_scale()
    plan = service_scenario_plan(scenario, seed)
    faulty = FaultyTier(InMemoryCacheTier(), plan)
    resilient = ResilientTier(
        faulty,
        # Tight, wall-clock-friendly knobs: no backoff sleeping, a hedge
        # deadline shorter than the injected latency so slow reads are
        # abandoned, a breaker that can open and half-open within the run.
        RemoteTierConfig(
            retries=1,
            backoff_base_s=0.0,
            jitter_seed=seed,
            breaker_threshold=3,
            breaker_cooldown_s=0.05,
            hedge_timeout_s=0.02,
        ),
    )
    cache = TieredResultCache(None, remote=resilient)
    session = ExperimentSession(scale=sc, cache=cache, max_workers=1)
    service = ExperimentService(
        session=session,
        scheduler_config=SchedulerConfig(max_pending=512, max_client_pending=128),
    )

    benches = list(
        dict.fromkeys(make_mixes("pref_agg", 1, seed=sc.seed + seed)[0].benchmarks)
    )[:4]
    pool = [PlannedRun(KIND_ALONE, sc, bench=b) for b in benches]
    pool.append(
        PlannedRun(KIND_HOOK, sc, bench="repro.experiments.chaos:chaos_failing_hook")
    )
    expect_keys = {r.key() for r in pool}
    fail_key = pool[-1].key()

    responses: dict[int, list[dict]] = {}
    hung: list[str] = []

    def drive(idx: int) -> None:
        with ServiceClient(service=service, client_name=f"chaos-{idx}") as cli:
            got = []
            for b in range(batches_per_client):
                rot = (idx + b) % len(pool)
                got.append(cli.submit(pool[rot:] + pool[:rot]))
            responses[idx] = got

    service.start_background()
    problems: list[str] = []
    try:
        threads = [
            threading.Thread(target=drive, args=(i,), name=f"chaos-client-{i}")
            for i in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=client_timeout_s)
            if t.is_alive():
                hung.append(t.name)
        if hung:
            problems.append(f"clients hung past {client_timeout_s}s: {hung}")

        outcomes = 0
        structured_errors = 0
        for idx in range(clients):
            for resp in responses.get(idx, []):
                if not resp.get("ok"):
                    err = resp.get("error")
                    if not isinstance(err, dict) or "type" not in err:
                        problems.append(f"client {idx}: unstructured refusal {resp!r}")
                    structured_errors += 1
                    continue
                for outcome in resp["results"]:
                    outcomes += 1
                    if outcome.get("ok"):
                        if "payload" not in outcome:
                            problems.append(f"ok outcome without payload: {outcome['key']}")
                    else:
                        structured_errors += 1
                        err = outcome.get("error")
                        if not isinstance(err, dict) or "type" not in err:
                            problems.append(f"unstructured error for {outcome['key']}")
                        elif outcome["key"] == fail_key and err["type"] != "run-failed":
                            problems.append(
                                f"failing hook reported {err['type']!r}, not 'run-failed'"
                            )
        if not hung and outcomes == 0:
            problems.append("no outcomes returned by any client")

        # Single-flight: at most one real (non-cached, successful)
        # execution per key across every client and batch.
        per_key: dict[str, int] = {}
        for rec in session.records:
            if not rec.cached and rec.error is None:
                per_key[rec.key] = per_key.get(rec.key, 0) + 1
        for key, n in per_key.items():
            if n > 1:
                problems.append(f"single-flight violated: key {key[:12]}… executed {n}×")
        if set(per_key) - expect_keys:
            problems.append("executed keys outside the submitted pool")

        # Cold-reader phase: a fresh local tier reading through the same
        # faulty remote.  The service itself only touches the remote on
        # first-miss (when it is still empty), so GET-side faults —
        # truncated bodies, refusals against real blobs — are exercised
        # here, along with the strict validation that keeps torn JSON
        # out of the local tier.
        cold = TieredResultCache(None, remote=resilient)
        cold_payloads: dict[str, dict] = {}
        for run in pool[:-1]:
            rec = cold.get(run.key())
            if rec is not None:
                cold_payloads[run.key()] = rec["payload"]

        # Degradation, never failure: every *observable* injected fault
        # must be absorbed and counted by the resilience layer.  Dropped
        # puts are deliberately silent at write time (acked, never
        # stored) — they surface later as remote misses, not counters.
        remote = cache.remote_status() or {}
        remote["remote_invalid"] = cache.remote_invalid + cold.remote_invalid
        degradations = sum(remote.get(k, 0) for k in _DEGRADATION_COUNTERS)
        observable = {"refused", "server_error", "flap_refused", "latency", "truncated"}
        if any(faulty.injected.get(k) for k in observable) and degradations == 0:
            problems.append(
                f"faults injected ({dict(faulty.injected)}) but no degradation counted"
            )
    finally:
        service.close()

    # Bit-identity: a fault-free local session must produce byte-equal
    # payloads for every key the service executed successfully.
    with ExperimentSession(scale=sc, cache=ResultCache(), max_workers=1) as clean:
        clean_payloads = clean.execute(pool[:-1], strict=True)
    for run in pool[:-1]:
        key = run.key()
        rec = cache._mem.get(key)
        if rec is None:
            if not hung:
                problems.append(f"service never cached {run.label}")
            continue
        b = _json.dumps(clean_payloads[key], sort_keys=True)
        if _json.dumps(rec["payload"], sort_keys=True) != b:
            problems.append(f"payload for {run.label} differs from fault-free session")
        cold_rec = cold_payloads.get(key)
        if cold_rec is not None and _json.dumps(cold_rec, sort_keys=True) != b:
            problems.append(f"cold remote read of {run.label} differs from fault-free session")

    sched = service.scheduler.counters
    return ServiceChaosReport(
        scenario=scenario,
        seed=seed,
        clients=clients,
        unique_keys=len(expect_keys),
        outcomes=outcomes,
        executions=sched["executed"],
        replays=sched["cache_replays"],
        deduped=sched["deduped"],
        structured_errors=structured_errors,
        injected=dict(faulty.injected),
        remote=remote,
        problems=problems,
    )
