"""Batched multi-run execution: ``repro.simulate_batch`` and the
session's mix-affine group dispatch.

This is the experiment-layer face of the sim-layer batch kernel
(:mod:`repro.sim.batch`).  A *batch* is a set of runs over the **same
workload mix** — the natural shape of the paper's sweeps (one mix under
PT / Dunn / CMM / partition-size ablations).  All runs share one
:class:`~repro.sim.batch.BatchKernel`: a single zero-copy materialized
trace per core plus the lane trees that deduplicate the private-core
simulation across runs.  Groups of 2+ mechanism runs go further and
execute in **masked lockstep** (:func:`_lockstep_mechanisms`): one
:class:`~repro.sim.batch.GroupedCore` per core and one grouped LLC
advance every run's controller loop together, per-run prefetch-mask
and CAT-allow tensors applied per quantum, so runs stay batched even
after their policies diverge.  Results are bit-identical to running
each configuration on its own scalar fast machine; a
:class:`~repro.sim.batch.LockstepError` degrades the group to per-run
lane-tree machines (counted in ``RunStats.batch_degradations``).

Two entry points:

* :func:`simulate_batch` — public API (re-exported as
  ``repro.simulate_batch``): takes :class:`BatchRunSpec` rows (either a
  named mechanism driven by the CMM controller, or a *static*
  prefetch-mask / CAT configuration run for a fixed access count) and
  returns one :class:`~repro.core.controller.RunStats` per spec.
  Specs are grouped by mix; a group that cannot be batched (trace
  plane off) transparently falls back to per-run scalar-fast machines.
* :func:`compute_mechanism_group` — used by
  ``ExperimentSession._execute_serial`` to batch a mix-affine group of
  planned mechanism runs; payloads are byte-identical to the scalar
  ``_compute_mechanism`` path, so the result cache cannot tell (and
  does not care) which path produced an entry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.controller import RunStats
from repro.experiments.config import ScaleConfig, get_scale
from repro.sim import tracestore
from repro.sim.batch import (
    BatchKernel,
    LockstepError,
    LockstepGroup,
    note_degradation,
    run_static_sweep,
)
from repro.sim.machine import CORE_ADDRESS_STRIDE_LINES, Machine
from repro.workloads.mixes import WorkloadMix

__all__ = ["BatchRunSpec", "BatchUnavailable", "simulate_batch", "compute_mechanism_group"]


class BatchUnavailable(RuntimeError):
    """A group could not be batched (e.g. trace plane off); callers
    fall back to per-run scalar execution."""


@dataclass(frozen=True)
class BatchRunSpec:
    """One run in a batch: a mechanism, or a static control configuration.

    Exactly one of ``mechanism`` (controller-driven, ``sc.n_epochs``
    epochs) or ``n_accesses`` (static: apply ``masks`` / CAT and run
    that many accesses per core) must be set.  ``masks`` are per-core
    MSR 0x1A4 prefetcher masks; ``clos_cbms`` are ``(clos, cbm)`` CAT
    writes and ``core_clos`` the per-core CLOS assignment — all applied
    before the run starts (mechanism runs take control afterwards).
    """

    mix: WorkloadMix
    mechanism: str | None = None
    n_accesses: int | None = None
    masks: tuple[int, ...] = ()
    clos_cbms: tuple[tuple[int, int], ...] = ()
    core_clos: tuple[int, ...] = ()
    label: str | None = None

    def __post_init__(self) -> None:
        if (self.mechanism is None) == (self.n_accesses is None):
            raise ValueError("set exactly one of mechanism= or n_accesses=")

    @property
    def name(self) -> str:
        return self.label or self.mechanism or f"static:{self.n_accesses}"


def _mix_key(mix: WorkloadMix) -> tuple:
    return (mix.name, mix.seed, tuple(mix.benchmarks))


def _mechanism_trace_length(sc: ScaleConfig) -> int:
    from repro.experiments.runner import mechanism_trace_length

    return mechanism_trace_length(sc)


def build_batch_kernel(
    mix: WorkloadMix, sc: ScaleConfig, trace_store, *, length: int | None = None
) -> BatchKernel | None:
    """A shared kernel for ``mix``, or ``None`` when it can't be built.

    Requires every core's trace to come from the trace plane as a
    forkable :class:`~repro.sim.tracestore.MaterializedTrace`; the
    request mirrors :func:`repro.experiments.runner.build_machine`
    byte for byte (same llc_lines / base_line / seed / length), which
    is what makes batch results bit-identical to scalar ones.
    """
    if trace_store is None:
        return None
    params = sc.params()
    if mix.n_cores > params.n_cores:
        raise ValueError(f"mix {mix.name} needs {mix.n_cores} cores, machine has {params.n_cores}")
    length = length if length is not None else _mechanism_trace_length(sc)
    kernel = BatchKernel(params, quantum=sc.quantum)
    for core, bench in enumerate(mix.benchmarks):
        trace = trace_store.trace_for(
            bench,
            llc_lines=params.llc.lines,
            base_line=core * CORE_ADDRESS_STRIDE_LINES,
            seed=mix.seed + core,
            length=length,
        )
        if trace is None or not hasattr(trace, "fork"):
            return None
        kernel.add_core(core, trace)
    return kernel


def _run_mechanism(machine, mechanism: str, sc: ScaleConfig) -> RunStats:
    """Drive one machine with a named policy — the scalar semantics."""
    from repro.experiments.runner import drive_mechanism

    return drive_mechanism(machine, mechanism, sc)


def _lockstep_mechanisms(kernel: BatchKernel, mechanisms, sc: ScaleConfig) -> list[RunStats]:
    """Run a group of mechanism runs in masked lockstep; one RunStats each.

    Every run gets its own unmodified controller loop on a
    :class:`~repro.sim.batch.LockstepMachine`; the group shares one
    :class:`~repro.sim.batch.GroupedCore` per core and one grouped LLC,
    so runs stay batched even after their per-quantum decisions diverge.
    Raises :class:`~repro.sim.batch.LockstepError` when the group cannot
    complete batched; callers fall back per-run (bit-identical results).
    """
    group = LockstepGroup(kernel, len(mechanisms))
    drivers = [
        (lambda m, _mech=mech: _run_mechanism(m, _mech, sc)) for mech in mechanisms
    ]
    return group.run(drivers)


def _apply_static(machine, spec: BatchRunSpec) -> None:
    for cpu, mask in enumerate(spec.masks):
        machine.prefetch_msr.set_mask(cpu, mask)
    for clos, cbm in spec.clos_cbms:
        machine.cat.set_cbm(clos, cbm)
    for cpu, clos in enumerate(spec.core_clos):
        machine.cat.assign_core(cpu, clos)


def _run_static(machine, spec: BatchRunSpec) -> RunStats:
    _apply_static(machine, spec)
    snap = machine.pmu.snapshot()
    machine.run_accesses(spec.n_accesses)
    sample = machine.pmu.delta_since(snap)
    return RunStats(
        n_cores=machine.params.n_cores,
        cycles_per_second=machine.params.cycles_per_second,
        totals=sample.deltas,
        wall_cycles=sample.wall_cycles,
        epochs=[],
        trace_fallbacks=machine.trace_fallbacks(),
        batch_degradations=machine.batch_degradations(),
    )


def _scalar_machine(mix: WorkloadMix, sc: ScaleConfig, trace_store) -> Machine:
    from repro.experiments.runner import build_machine

    return build_machine(mix, sc, trace_store=trace_store)


def simulate_batch(
    specs,
    sc: ScaleConfig | None = None,
    *,
    trace_store=None,
) -> list[RunStats]:
    """Run every spec, batching runs that share a mix; one RunStats each.

    ``trace_store`` defaults to the active worker view, else the
    default session's store.  Groups whose traces cannot be served by
    the plane fall back to per-run scalar-fast machines — same
    results, no sharing.
    """
    specs = list(specs)
    if not specs:
        return []
    sc = sc or get_scale()
    if trace_store is None:
        trace_store = tracestore.active_view()
    if trace_store is None:
        from repro.experiments.engine import default_session

        trace_store = default_session().trace_store
    groups: dict[tuple, list[int]] = {}
    for i, spec in enumerate(specs):
        if not isinstance(spec, BatchRunSpec):
            raise TypeError(f"simulate_batch takes BatchRunSpec rows, got {type(spec).__name__}")
        groups.setdefault(_mix_key(spec.mix), []).append(i)

    out: list[RunStats | None] = [None] * len(specs)
    for indices in groups.values():
        mix = specs[indices[0]].mix
        lens = [specs[i].n_accesses for i in indices if specs[i].n_accesses is not None]
        if any(specs[i].mechanism is not None for i in indices):
            lens.append(_mechanism_trace_length(sc))
        length = max(lens)
        kernel = build_batch_kernel(mix, sc, trace_store, length=length)
        done: set[int] = set()
        degraded: set[int] = set()
        if kernel is not None:
            results, degraded = _run_lockstep_sweeps(kernel, specs, indices)
            for i, stats in results.items():
                out[i] = stats
                done.add(i)
            mech_idx = [i for i in indices if specs[i].mechanism is not None]
            if len(mech_idx) >= 2:
                try:
                    mech_stats = _lockstep_mechanisms(
                        kernel, [specs[i].mechanism for i in mech_idx], sc
                    )
                except LockstepError:
                    note_degradation()
                    degraded.update(mech_idx)
                else:
                    for i, stats in zip(mech_idx, mech_stats):
                        out[i] = stats
                        done.add(i)
        elif len(indices) >= 2:
            # A 2+ run group the batch plane could not serve at all.
            note_degradation()
        for i in indices:
            if i in done:
                continue
            spec = specs[i]
            machine = kernel.machine() if kernel is not None else _scalar_machine(mix, sc, trace_store)
            if i in degraded:
                machine._batch_degradations = 1
            if spec.mechanism is not None:
                out[i] = _run_mechanism(machine, spec.mechanism, sc)
            else:
                out[i] = _run_static(machine, spec)
    return out


def _run_lockstep_sweeps(kernel: BatchKernel, specs, indices):
    """Run static sub-groups in lockstep; return ``(results, degraded)``.

    Static specs sharing one (pf-mask vector, access count) pair have
    identical core phases and merged request streams, so they advance
    through :func:`repro.sim.batch.run_static_sweep`'s grouped SoA LLC
    in a single pass — the sweep shape where the batch engine's ~Nx
    throughput comes from.  Sub-groups of one and mechanism specs stay
    on the per-run path; a sweep that fails lands its indices in the
    ``degraded`` set (per-run fallback, bit-identical, counted).
    """
    results: dict[int, RunStats] = {}
    degraded: set[int] = set()
    sweeps: dict[tuple, list[int]] = {}
    for i in indices:
        spec = specs[i]
        if spec.n_accesses is not None:
            sweeps.setdefault((spec.masks, spec.n_accesses), []).append(i)
    params = kernel.params
    for (masks, n_acc), idxs in sweeps.items():
        if len(idxs) < 2:
            continue
        configs = [(specs[i].clos_cbms, specs[i].core_clos) for i in idxs]
        try:
            rows = run_static_sweep(kernel, configs, masks, n_acc)
        except Exception:
            note_degradation()
            degraded.update(idxs)
            continue  # per-run fallback handles these indices
        fallbacks = kernel.trace_fallbacks()
        for i, row in zip(idxs, rows):
            results[i] = RunStats(
                n_cores=params.n_cores,
                cycles_per_second=params.cycles_per_second,
                totals=row.pmu_counts,
                wall_cycles=row.wall_cycles,
                epochs=[],
                trace_fallbacks=fallbacks,
            )
    return results, degraded


def _payload(stats: RunStats) -> dict:
    """The session's mechanism result payload (cache/wire format).

    Byte-identical across the scalar, lane-tree and lockstep paths —
    the result cache cannot tell which one produced an entry.
    """
    from repro.core.trace import traces_to_dicts

    return {
        "n_cores": stats.n_cores,
        "cycles_per_second": stats.cycles_per_second,
        "wall_cycles": stats.wall_cycles,
        "totals": stats.totals.tolist(),
        "n_epochs": len(stats.epochs),
        "traces": traces_to_dicts(stats.traces),
    }


def compute_mechanism_group(runs, trace_store, *, lockstep: bool = True) -> list[tuple[dict, float]]:
    """Batch-execute a mix-affine group of planned mechanism runs.

    ``runs`` are :class:`~repro.experiments.engine.PlannedRun` rows of
    kind ``mechanism`` sharing one mix and scale.  Returns ``(payload,
    seconds)`` per run, where the payload dict is byte-identical to the
    scalar ``_compute_mechanism`` one.  Raises :class:`BatchUnavailable`
    when the group can't be batched; the session then falls back to the
    per-run scalar path.

    With ``lockstep`` (the session passes the ``batch`` engine's
    ``dynamic`` capability) a group of 2+ runs executes in masked
    lockstep — one grouped SoA pass even though the mechanisms diverge.
    A :class:`~repro.sim.batch.LockstepError` degrades the group to the
    per-run lane-tree path, counted as a degradation per run.
    """
    r0 = runs[0]
    sc = r0.sc
    kernel = build_batch_kernel(r0.mix, sc, trace_store)
    if kernel is None:
        raise BatchUnavailable(f"trace plane cannot serve mix {r0.mix.name}")
    degraded = False
    if lockstep and len(runs) >= 2:
        t0 = time.perf_counter()
        try:
            all_stats = _lockstep_mechanisms(kernel, [r.mechanism for r in runs], sc)
        except LockstepError:
            note_degradation()
            degraded = True
        else:
            per_run = (time.perf_counter() - t0) / len(runs)
            return [(_payload(stats), per_run) for stats in all_stats]
    out: list[tuple[dict, float]] = []
    for r in runs:
        t0 = time.perf_counter()
        machine = kernel.machine()
        if degraded:
            machine._batch_degradations = 1
        stats = _run_mechanism(machine, r.mechanism, sc)
        out.append((_payload(stats), time.perf_counter() - t0))
    return out
