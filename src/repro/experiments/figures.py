"""One driver per paper table/figure (the experiment index of DESIGN.md).

Every ``figNN_*`` function returns a plain dict of rows/series matching
what the paper plots, and can be rendered with
:mod:`repro.experiments.report`.  Figures 7-15 share the same 4x
workload-category sweep; an :class:`EvalStore` assembles (workload,
mechanism) evaluations through an
:class:`~repro.experiments.engine.ExperimentSession`, so runs are
deduplicated, executed in parallel on cache misses, and replayed from
the on-disk store when a figure is regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.frontend import AggDetector
from repro.core.metrics_defs import compute_metrics, summarize_sample
from repro.experiments.config import ScaleConfig, get_scale
from repro.experiments.engine import ExperimentSession, RunSpec, default_session
from repro.experiments.runner import WorkloadEval, build_machine
from repro.platform.simulated import SimulatedPlatform
from repro.workloads.mixes import CATEGORIES, WorkloadMix, make_mixes
from repro.workloads.speclike import BENCHMARKS

CP_MECHS = ("dunn", "pref-cp", "pref-cp2")
CMM_MECHS = ("cmm-a", "cmm-b", "cmm-c")
ALL_MECHS = ("pt",) + CP_MECHS + CMM_MECHS


# ------------------------------------------------------------------ store


@dataclass
class EvalStore:
    """Caches workload evaluations; extends them with missing mechanisms.

    Backed by an :class:`ExperimentSession` (the default one unless a
    session is injected), so every run it triggers lands in — and can
    replay from — the session's result cache.
    """

    sc: ScaleConfig
    session: ExperimentSession | None = None
    _mixes: dict[str, list[WorkloadMix]] = field(default_factory=dict)
    _evals: dict[str, WorkloadEval] = field(default_factory=dict)

    def _session(self) -> ExperimentSession:
        return self.session or default_session()

    def mixes(self, category: str) -> list[WorkloadMix]:
        if category not in self._mixes:
            self._mixes[category] = make_mixes(
                category, self.sc.workloads_per_category, seed=self.sc.seed
            )
        return self._mixes[category]

    def eval(self, mix: WorkloadMix, mechanisms: tuple[str, ...]) -> WorkloadEval:
        ev = self._evals.get(mix.name)
        if ev is None:
            ev = self._session().evaluate(mix, mechanisms, self.sc)
            self._evals[mix.name] = ev
            return ev
        missing = tuple(m for m in mechanisms if m not in ev.metrics)
        if missing:
            fresh = self._session().evaluate(mix, missing, self.sc)
            ev.runs.update(fresh.runs)
            for m in missing:
                ev.metrics[m] = fresh.metrics[m]
        return ev

    def sweep(self, mechanisms: tuple[str, ...]) -> list[WorkloadEval]:
        """All categories x workloads, in the paper's presentation order.

        Executes the whole (mix x mechanism) plan in one batch first —
        deduplicated, parallel across the session's workers on misses —
        then assembles per-workload evaluations from the cache.
        """
        all_mixes = tuple(mix for cat in CATEGORIES for mix in self.mixes(cat))
        spec = RunSpec(mechanisms=tuple(mechanisms), mixes=all_mixes)
        self._session().execute(spec.expand(self.sc))
        return [self.eval(mix, tuple(mechanisms)) for mix in all_mixes]


_STORES: dict[str, EvalStore] = {}


def get_store(sc: ScaleConfig | None = None, session: ExperimentSession | None = None) -> EvalStore:
    sc = sc or get_scale()
    if sc.name not in _STORES:
        _STORES[sc.name] = EvalStore(sc, session=session)
    return _STORES[sc.name]


# ------------------------------------------------------- Figs. 1-3 (alone)

_PROFILES: dict[tuple[str, str, bool], dict] = {}


def _profiles(
    sc: ScaleConfig, *, ways: bool = False, session: ExperimentSession | None = None
) -> dict[str, object]:
    key = sc.name
    cache_key = (key, "profiles", ways)
    if cache_key not in _PROFILES:
        sweep = (1, 2, 4, 6, 8, 12, 16, 20) if ways else None
        sess = session or default_session()
        _PROFILES[cache_key] = sess.profile_all(tuple(BENCHMARKS), sc, way_sweep=sweep)
    return _PROFILES[cache_key]


def fig01_bandwidth(sc: ScaleConfig | None = None) -> dict:
    """Memory bandwidth per benchmark, demand vs. prefetch increase."""
    sc = sc or get_scale()
    profiles = _profiles(sc)
    rows = []
    for name, p in profiles.items():
        rows.append(
            {
                "benchmark": name,
                "demand_bw_mbs": p.demand_bw_off_mbs,
                "total_bw_mbs": p.total_bw_on_mbs,
                "increase_pct": 100.0 * p.bw_increase,
            }
        )
    rows.sort(key=lambda r: -r["total_bw_mbs"])
    return {"figure": "fig01", "rows": rows}


def fig02_prefetch_speedup(sc: ScaleConfig | None = None) -> dict:
    """IPC speedup from prefetching per benchmark."""
    sc = sc or get_scale()
    profiles = _profiles(sc)
    rows = [
        {"benchmark": name, "ipc_on": p.ipc_on, "ipc_off": p.ipc_off,
         "speedup_pct": 100.0 * p.prefetch_speedup}
        for name, p in profiles.items()
    ]
    rows.sort(key=lambda r: -r["speedup_pct"])
    return {"figure": "fig02", "rows": rows}


def fig03_way_sensitivity(sc: ScaleConfig | None = None) -> dict:
    """IPC vs. number of LLC ways (prefetchers on)."""
    sc = sc or get_scale()
    profiles = _profiles(sc, ways=True)
    rows = []
    for name, p in profiles.items():
        rows.append(
            {
                "benchmark": name,
                "ipc_by_ways": dict(p.ipc_by_ways),
                "min_ways_90pct": p.min_ways_for_frac(0.90),
                "min_ways_80pct": p.min_ways_for_frac(0.80),
            }
        )
    return {"figure": "fig03", "rows": rows}


# -------------------------------------------------------- Fig. 5 (detection)


def fig05_detection(sc: ScaleConfig | None = None) -> dict:
    """The Agg sets the front-end finds in each workload category."""
    sc = sc or get_scale()
    detector = AggDetector()
    rows = []
    for cat in CATEGORIES:
        for mix in make_mixes(cat, sc.workloads_per_category, seed=sc.seed):
            m = build_machine(mix, sc)
            plat = SimulatedPlatform(m)
            plat.run_interval(max(sc.sample_units, 2048))  # warm-up
            sample = plat.run_interval(sc.sample_units)
            summaries = summarize_sample(sample, plat.cycles_per_second)
            report = detector.detect(summaries)
            rows.append(
                {
                    "workload": mix.name,
                    "category": cat,
                    "benchmarks": mix.benchmarks,
                    "agg_set": report.agg_set,
                    "agg_benchmarks": tuple(mix.benchmarks[c] for c in report.agg_set),
                }
            )
    return {"figure": "fig05", "rows": rows}


# ------------------------------------------------- Figs. 7-15 (mechanisms)


def _mechanism_figure(
    figure: str,
    mechanisms: tuple[str, ...],
    metric: str,
    sc: ScaleConfig | None,
    store: "EvalStore | None" = None,
) -> dict:
    sc = sc or get_scale()
    store = store or get_store(sc)
    evals = store.sweep(mechanisms)
    rows = []
    for ev in evals:
        row = {"workload": ev.mix.name, "category": ev.mix.category}
        for mech in mechanisms:
            row[mech] = ev.metric(mech, metric)
        rows.append(row)
    cat_means = {}
    for cat in CATEGORIES:
        sub = [r for r in rows if r["category"] == cat]
        cat_means[cat] = {m: float(np.mean([r[m] for r in sub])) for m in mechanisms}
    return {"figure": figure, "metric": metric, "rows": rows, "category_means": cat_means}


def fig07_pt(sc: ScaleConfig | None = None, store: EvalStore | None = None) -> dict:
    """PT: normalized HS and WS vs. baseline."""
    d = _mechanism_figure("fig07", ("pt",), "hs_norm", sc, store)
    ws = _mechanism_figure("fig07", ("pt",), "ws", sc, store)
    d["rows_ws"] = ws["rows"]
    d["category_means_ws"] = ws["category_means"]
    return d


def fig08_pt_worstcase(sc: ScaleConfig | None = None, store: EvalStore | None = None) -> dict:
    """PT: lowest per-application normalized IPC per workload."""
    return _mechanism_figure("fig08", ("pt",), "worst", sc, store)


def fig09_cp(sc: ScaleConfig | None = None, store: EvalStore | None = None) -> dict:
    """CP: Dunn vs. Pref-CP vs. Pref-CP2 (normalized HS and WS)."""
    d = _mechanism_figure("fig09", CP_MECHS, "hs_norm", sc, store)
    ws = _mechanism_figure("fig09", CP_MECHS, "ws", sc, store)
    d["rows_ws"] = ws["rows"]
    d["category_means_ws"] = ws["category_means"]
    return d


def fig10_cp_worstcase(sc: ScaleConfig | None = None, store: EvalStore | None = None) -> dict:
    return _mechanism_figure("fig10", CP_MECHS, "worst", sc, store)


def fig11_cmm(sc: ScaleConfig | None = None, store: EvalStore | None = None) -> dict:
    """CMM-a/b/c (normalized HS and WS)."""
    d = _mechanism_figure("fig11", CMM_MECHS, "hs_norm", sc, store)
    ws = _mechanism_figure("fig11", CMM_MECHS, "ws", sc, store)
    d["rows_ws"] = ws["rows"]
    d["category_means_ws"] = ws["category_means"]
    return d


def fig12_cmm_worstcase(sc: ScaleConfig | None = None, store: EvalStore | None = None) -> dict:
    return _mechanism_figure("fig12", CMM_MECHS, "worst", sc, store)


def fig13_all(sc: ScaleConfig | None = None, store: EvalStore | None = None) -> dict:
    """All seven mechanisms, normalized HS."""
    return _mechanism_figure("fig13", ALL_MECHS, "hs_norm", sc, store)


def fig14_bandwidth(sc: ScaleConfig | None = None, store: EvalStore | None = None) -> dict:
    """Normalized memory traffic of the seven mechanisms."""
    return _mechanism_figure("fig14", ALL_MECHS, "bw_norm", sc, store)


def fig15_stalls(sc: ScaleConfig | None = None, store: EvalStore | None = None) -> dict:
    """Normalized aggregate STALLS_L2_PENDING of the seven mechanisms."""
    return _mechanism_figure("fig15", ALL_MECHS, "stalls_norm", sc, store)


# ------------------------------------------------------------- Table I


def table1_metrics(sc: ScaleConfig | None = None) -> dict:
    """Table I metric values measured on one mixed workload."""
    sc = sc or get_scale()
    mix = make_mixes("pref_agg", 1, seed=sc.seed)[0]
    m = build_machine(mix, sc)
    plat = SimulatedPlatform(m)
    plat.run_interval(max(sc.sample_units, 2048))
    sample = plat.run_interval(sc.sample_units)
    rows = []
    for cpu in range(mix.n_cores):
        mt = compute_metrics(sample, cpu, plat.cycles_per_second)
        rows.append(
            {
                "core": cpu,
                "benchmark": mix.benchmarks[cpu],
                "M1_l2_llc_traffic": mt.l2_llc_traffic,
                "M2_l2_pref_miss_frac": mt.l2_pref_miss_frac,
                "M3_l2_ptr": mt.l2_ptr,
                "M4_pga": mt.pga,
                "M5_l2_pmr": mt.l2_pmr,
                "M6_l2_ppm": mt.l2_ppm,
                "M7_llc_pt": mt.llc_pt,
            }
        )
    return {"figure": "table1", "rows": rows}
