"""Experiment scale presets."""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass

from repro.sim.params import MachineParams, scaled_params


@dataclass(frozen=True)
class ScaleConfig:
    """Everything that sizes an experiment run."""

    name: str
    llc_scale: int              # machine capacity divisor
    n_cores: int = 8
    quantum: int = 1024         # simulator interleave granularity
    sample_units: int = 1024    # sampling-interval accesses/core
    exec_units: int = 16384     # execution-epoch accesses/core
    n_epochs: int = 1
    workloads_per_category: int = 2
    alone_accesses: int = 16384     # measured window for alone-IPC runs
    profile_accesses: int = 40960   # Figs. 1-3 profiling runs
    seed: int = 2019

    def params(self) -> MachineParams:
        return scaled_params(self.llc_scale, n_cores=self.n_cores)

    def cache_key(self) -> dict:
        """The fields that size one simulated run, as a stable dict.

        The experiment engine hashes this into its content-addressed
        result keys.  ``name`` and ``workloads_per_category`` are
        presentation/sweep-shape knobs that don't change any single
        run's outcome, and ``seed`` is already captured by the concrete
        mix a run executes, so all three are excluded: two scales with
        identical simulation parameters share cache entries.
        """
        d = asdict(self)
        for presentation_only in ("name", "workloads_per_category", "seed"):
            d.pop(presentation_only)
        return d


TINY = ScaleConfig(
    name="tiny",
    llc_scale=16,
    quantum=512,
    sample_units=768,
    exec_units=12288,
    n_epochs=1,
    workloads_per_category=2,
    alone_accesses=12288,
    # long enough that the slowest pointer-chase lap fits in both the
    # warm-up and the measured window (soplex: ~31k accesses per lap)
    profile_accesses=40960,
)

SMALL = ScaleConfig(
    name="small",
    llc_scale=16,
    quantum=1024,
    sample_units=1536,
    exec_units=24576,
    n_epochs=2,
    workloads_per_category=4,
    alone_accesses=24576,
    profile_accesses=40960,
)

FULL = ScaleConfig(
    name="full",
    llc_scale=8,
    quantum=2048,
    sample_units=2048,
    exec_units=102400,  # the paper's 50:1 epoch-to-interval ratio
    n_epochs=3,
    workloads_per_category=10,
    alone_accesses=65536,
    profile_accesses=131072,
)

SCALES: dict[str, ScaleConfig] = {"tiny": TINY, "small": SMALL, "full": FULL}


def get_scale(name: str | None = None) -> ScaleConfig:
    """Resolve a scale by argument, ``REPRO_SCALE`` env var, or default."""
    raw = name if name is not None else os.environ.get("REPRO_SCALE", "tiny")
    normalized = raw.strip().lower()
    try:
        return SCALES[normalized]
    except KeyError:
        raise KeyError(
            f"unknown scale {raw!r} (looked up as {normalized!r}); one of {sorted(SCALES)}"
        ) from None
