"""Run (workload x mechanism) and compute the paper's metrics.

The runner builds a fresh machine per run (no state leaks between
mechanisms), attaches one benchmark trace per core, wraps the machine
in a :class:`SimulatedPlatform`, and drives it with a
:class:`CMMController` carrying the requested policy.

Execution and caching live in :mod:`repro.experiments.engine`:
an :class:`~repro.experiments.engine.ExperimentSession` deduplicates,
parallelises and persists runs, and batch execution lives in
:func:`repro.simulate_batch`.  This module keeps the result types
(:class:`RunResult`, :class:`WorkloadEval`), the machine factory, and
the injectable :class:`AloneCache`.  The pre-engine shims
(``run_mechanism``, ``run_policy_object``, ``evaluate_workload``,
``ALONE_CACHE``) were removed in 2.0 — see CHANGELOG.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.controller import RunStats
from repro.experiments.config import ScaleConfig
from repro.sim.machine import Machine
from repro.sim.pmu import Event
from repro.workloads.mixes import WorkloadMix
from repro.workloads.speclike import build_trace


def mechanism_trace_length(sc: ScaleConfig) -> int:
    """Upper bound on per-core accesses a mechanism run can consume.

    Warm-up plus, per epoch, the policy's worst-case profiling budget
    and the execution interval (:class:`~repro.core.epoch.EpochConfig`
    defaults).  The trace plane materializes this many accesses up
    front; a run that somehow outruns it just drops back to live
    generation, so the bound is a sizing hint, not a correctness limit.
    """
    from repro.core.epoch import EpochConfig

    cfg = EpochConfig(exec_units=sc.exec_units, sample_units=sc.sample_units)
    per_epoch = cfg.max_sampling_intervals * cfg.sample_units + cfg.exec_units
    return cfg.warmup_units + sc.n_epochs * per_epoch


def drive_mechanism(machine: Machine, mechanism: str, sc: ScaleConfig) -> RunStats:
    """Drive one machine with a named policy — the scalar semantics.

    The single place controller construction for a mechanism run lives:
    the session's scalar path, the batch layer's per-run fallback and
    the lockstep drivers all call this, so every path is the same
    controller fed the same :class:`~repro.core.epoch.EpochConfig`.
    """
    from repro.core.controller import CMMController
    from repro.core.epoch import EpochConfig
    from repro.core.policies import make_policy
    from repro.platform.simulated import SimulatedPlatform

    controller = CMMController(
        SimulatedPlatform(machine),
        make_policy(mechanism),
        epoch_cfg=EpochConfig(exec_units=sc.exec_units, sample_units=sc.sample_units),
    )
    return controller.run(sc.n_epochs)


def build_machine(
    mix: WorkloadMix, sc: ScaleConfig, *, trace_store=None, engine=None
) -> Machine:
    """A fresh machine with the mix's benchmarks attached, one per core.

    ``trace_store`` (a :class:`~repro.sim.tracestore.TraceStore` or a
    worker-side manifest view) serves materialized traces instead of
    synthesising fresh generators — bit-identical either way.  ``None``
    (the default) keeps the classic live-generation path.  ``engine``
    pins a simulation engine (differential tests, bench lanes); ``None``
    keeps the normal params/env/auto resolution.
    """
    params = sc.params()
    if mix.n_cores > params.n_cores:
        raise ValueError(f"mix {mix.name} needs {mix.n_cores} cores, machine has {params.n_cores}")
    m = Machine(params, quantum=sc.quantum, engine=engine)
    length = mechanism_trace_length(sc) if trace_store is not None else 0
    for core, bench in enumerate(mix.benchmarks):
        trace = None
        if trace_store is not None:
            trace = trace_store.trace_for(
                bench,
                llc_lines=params.llc.lines,
                base_line=m.core_base_line(core),
                seed=mix.seed + core,
                length=length,
            )
        if trace is None:
            trace = build_trace(
                bench,
                llc_lines=params.llc.lines,
                base_line=m.core_base_line(core),
                seed=mix.seed + core,
            )
        m.attach_trace(core, trace)
    return m


@dataclass
class RunResult:
    """Outcome of one (workload, mechanism) run."""

    mix: WorkloadMix
    mechanism: str
    stats: RunStats

    @property
    def ipc(self) -> np.ndarray:
        return self.stats.ipc_all()[: self.mix.n_cores]

    @property
    def mem_bandwidth_mbs(self) -> float:
        return self.stats.mem_bandwidth_mbs()

    @property
    def total_stalls(self) -> float:
        return self.stats.total(Event.STALLS_L2_PENDING)

    @property
    def stalls_per_kinst(self) -> float:
        """L2-pending stall cycles per kilo-instruction.

        Normalizing by work (not run length) keeps the comparison fair:
        managed runs include profiling intervals the baseline lacks.
        """
        inst = self.stats.total(Event.INSTRUCTIONS)
        return 1000.0 * self.total_stalls / inst if inst > 0 else 0.0


class AloneCache:
    """Per-scale in-memory cache of alone-run IPCs (prefetchers on, full LLC).

    Still usable standalone (and injectable into
    :meth:`ExperimentSession.evaluate` via ``alone_cache=``), but
    sessions supersede it: :meth:`ExperimentSession.alone_ipc`
    persists the same measurement in the on-disk store.
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[str, str], float] = {}

    def ipc(self, bench: str, sc: ScaleConfig) -> float:
        key = (bench, sc.name)
        if key not in self._cache:
            self._cache[key] = self._measure(bench, sc)
        return self._cache[key]

    def ipcs_for(self, mix: WorkloadMix, sc: ScaleConfig) -> np.ndarray:
        return np.array([self.ipc(b, sc) for b in mix.benchmarks])

    def _measure(self, bench: str, sc: ScaleConfig) -> float:
        params = sc.params()
        m = Machine(params, quantum=sc.quantum)
        trace = build_trace(bench, llc_lines=params.llc.lines, base_line=m.core_base_line(0), seed=0)
        m.attach_trace(0, trace)
        m.run_accesses(sc.alone_accesses)  # warm-up lap
        snap = m.pmu.snapshot()
        m.run_accesses(sc.alone_accesses)
        sample = m.pmu.delta_since(snap)
        return sample.ipc(0)


@dataclass
class WorkloadEval:
    """One workload evaluated under several mechanisms."""

    mix: WorkloadMix
    baseline: RunResult
    runs: dict[str, RunResult]
    alone_ipc: np.ndarray
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)

    def metric(self, mechanism: str, name: str) -> float:
        return self.metrics[mechanism][name]
