"""Run (workload x mechanism) and compute the paper's metrics.

The runner builds a fresh machine per run (no state leaks between
mechanisms), attaches one benchmark trace per core, wraps the machine
in a :class:`SimulatedPlatform`, and drives it with a
:class:`CMMController` carrying the requested policy.  Per-benchmark
alone-IPCs (for HS) are measured once and cached per scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.controller import CMMController, RunStats
from repro.core.epoch import EpochConfig
from repro.core.policies import make_policy
from repro.experiments.config import ScaleConfig, get_scale
from repro.metrics.speedup import harmonic_speedup, weighted_speedup, worst_case_speedup
from repro.platform.simulated import SimulatedPlatform
from repro.sim.machine import Machine
from repro.sim.pmu import Event
from repro.workloads.mixes import WorkloadMix
from repro.workloads.speclike import build_trace


def build_machine(mix: WorkloadMix, sc: ScaleConfig) -> Machine:
    """A fresh machine with the mix's benchmarks attached, one per core."""
    params = sc.params()
    if mix.n_cores > params.n_cores:
        raise ValueError(f"mix {mix.name} needs {mix.n_cores} cores, machine has {params.n_cores}")
    m = Machine(params, quantum=sc.quantum)
    for core, bench in enumerate(mix.benchmarks):
        trace = build_trace(
            bench,
            llc_lines=params.llc.lines,
            base_line=m.core_base_line(core),
            seed=mix.seed + core,
        )
        m.attach_trace(core, trace)
    return m


@dataclass
class RunResult:
    """Outcome of one (workload, mechanism) run."""

    mix: WorkloadMix
    mechanism: str
    stats: RunStats

    @property
    def ipc(self) -> np.ndarray:
        return self.stats.ipc_all()[: self.mix.n_cores]

    @property
    def mem_bandwidth_mbs(self) -> float:
        return self.stats.mem_bandwidth_mbs()

    @property
    def total_stalls(self) -> float:
        return self.stats.total(Event.STALLS_L2_PENDING)

    @property
    def stalls_per_kinst(self) -> float:
        """L2-pending stall cycles per kilo-instruction.

        Normalizing by work (not run length) keeps the comparison fair:
        managed runs include profiling intervals the baseline lacks.
        """
        inst = self.stats.total(Event.INSTRUCTIONS)
        return 1000.0 * self.total_stalls / inst if inst > 0 else 0.0


def run_mechanism(mix: WorkloadMix, mechanism: str, sc: ScaleConfig | None = None) -> RunResult:
    """Run one workload under one mechanism for the scale's epochs."""
    sc = sc or get_scale()
    return run_policy_object(mix, make_policy(mechanism), sc, label=mechanism)


def run_policy_object(
    mix: WorkloadMix,
    policy,
    sc: ScaleConfig | None = None,
    *,
    label: str | None = None,
    detector_cfg=None,
    sample_units: int | None = None,
) -> RunResult:
    """Run a workload under an arbitrary (possibly customised) policy.

    The hook the ablation benchmarks use: swept parameters live on the
    policy object or in ``detector_cfg``/``sample_units``.
    """
    sc = sc or get_scale()
    machine = build_machine(mix, sc)
    platform = SimulatedPlatform(machine)
    epoch_cfg = EpochConfig(
        exec_units=sc.exec_units,
        sample_units=sample_units if sample_units is not None else sc.sample_units,
    )
    controller = CMMController(platform, policy, epoch_cfg=epoch_cfg, detector_cfg=detector_cfg)
    stats = controller.run(sc.n_epochs)
    return RunResult(mix, label or getattr(policy, "name", "custom"), stats)


class AloneCache:
    """Per-scale cache of alone-run IPCs (prefetchers on, full LLC)."""

    def __init__(self) -> None:
        self._cache: dict[tuple[str, str], float] = {}

    def ipc(self, bench: str, sc: ScaleConfig) -> float:
        key = (bench, sc.name)
        if key not in self._cache:
            self._cache[key] = self._measure(bench, sc)
        return self._cache[key]

    def ipcs_for(self, mix: WorkloadMix, sc: ScaleConfig) -> np.ndarray:
        return np.array([self.ipc(b, sc) for b in mix.benchmarks])

    def _measure(self, bench: str, sc: ScaleConfig) -> float:
        params = sc.params()
        m = Machine(params, quantum=sc.quantum)
        trace = build_trace(bench, llc_lines=params.llc.lines, base_line=m.core_base_line(0), seed=0)
        m.attach_trace(0, trace)
        m.run_accesses(sc.alone_accesses)  # warm-up lap
        snap = m.pmu.snapshot()
        m.run_accesses(sc.alone_accesses)
        sample = m.pmu.delta_since(snap)
        return sample.ipc(0)


#: Module-level cache shared by figure drivers and benchmarks.
ALONE_CACHE = AloneCache()


@dataclass
class WorkloadEval:
    """One workload evaluated under several mechanisms."""

    mix: WorkloadMix
    baseline: RunResult
    runs: dict[str, RunResult]
    alone_ipc: np.ndarray
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)

    def metric(self, mechanism: str, name: str) -> float:
        return self.metrics[mechanism][name]


def evaluate_workload(
    mix: WorkloadMix,
    mechanisms: tuple[str, ...],
    sc: ScaleConfig | None = None,
    *,
    alone_cache: AloneCache | None = None,
) -> WorkloadEval:
    """Run baseline + mechanisms and compute HS/WS/worst-case/BW/stalls.

    ``hs_norm``/``ws``/``worst`` are relative to the baseline run, and
    ``bw_norm``/``stalls_norm`` normalize traffic and L2-pending stalls
    to baseline — exactly the quantities Figs. 7-15 plot.
    """
    sc = sc or get_scale()
    cache = alone_cache or ALONE_CACHE
    alone = cache.ipcs_for(mix, sc)

    base = run_mechanism(mix, "baseline", sc)
    base_hs = harmonic_speedup(base.ipc, alone)
    ev = WorkloadEval(mix=mix, baseline=base, runs={}, alone_ipc=alone)
    ev.metrics["baseline"] = {
        "hs": base_hs,
        "hs_norm": 1.0,
        "ws": 1.0,
        "worst": 1.0,
        "bw_mbs": base.mem_bandwidth_mbs,
        "bw_norm": 1.0,
        "stalls_norm": 1.0,
    }

    for mech in mechanisms:
        if mech == "baseline":
            continue
        run = run_mechanism(mix, mech, sc)
        ev.runs[mech] = run
        hs = harmonic_speedup(run.ipc, alone)
        ev.metrics[mech] = {
            "hs": hs,
            "hs_norm": hs / base_hs if base_hs > 0 else 0.0,
            "ws": weighted_speedup(run.ipc, base.ipc),
            "worst": worst_case_speedup(run.ipc, base.ipc),
            "bw_mbs": run.mem_bandwidth_mbs,
            "bw_norm": run.mem_bandwidth_mbs / base.mem_bandwidth_mbs
            if base.mem_bandwidth_mbs > 0
            else 0.0,
            "stalls_norm": run.stalls_per_kinst / base.stalls_per_kinst if base.stalls_per_kinst > 0 else 0.0,
        }
    return ev
