"""Parallel experiment engine with an on-disk result cache.

Every paper figure re-runs dozens of (workload x mechanism)
simulations; the runs are embarrassingly parallel and perfectly
deterministic, so the engine treats each one as a pure function of its
inputs:

* a declarative :class:`RunSpec` expands into a **deduplicated** list
  of :class:`PlannedRun` items (mechanism runs, alone-IPC runs and
  single-benchmark profiles share one plan and one store);
* each planned run hashes its inputs — mix, mechanism,
  :meth:`ScaleConfig.cache_key`, :class:`MachineParams`, engine schema
  version — into a content-addressed key;
* :class:`ExperimentSession` executes cache misses either serially or
  across a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``max_workers``), persists payloads in a :class:`ResultCache`, and
  emits per-run :class:`RunRecord` timing/progress entries.

Seeding is per-run (``mix.seed + core`` for traces, fixed seeds for
alone/profile runs) and no state is shared between runs, so parallel
results are bit-identical to serial ones; cached payloads round-trip
through JSON without losing a single bit of the float64 counters.

Failures degrade instead of aborting: a worker that raises, hangs past
``run_timeout``, or kills its process (``BrokenProcessPool``) costs
only its own run — completed results are already persisted, unfinished
runs are re-submitted to a respawned pool, and the failure is reported
per-run (:attr:`RunRecord.error`) rather than thrown away with the
whole sweep.  See ``docs/robustness.md``.

The **trace plane** (:mod:`repro.sim.tracestore`) rides underneath:
each session owns a :class:`~repro.sim.tracestore.TraceStore` that
materializes every deterministic benchmark trace once and replays it
as zero-copy slices.  The worker pool is *persistent* across batches;
misses are submitted in mix-affine order and each run carries a small
manifest naming the shared-memory segments holding its traces, so
workers attach by name instead of unpickling arrays (and keep their
attachments for later runs of the same mix).  The plane is a pure
transport optimisation — results are bit-identical with it on or off,
and it is excluded from cache keys like the simulation engine choice.

Environment knobs: ``REPRO_CACHE_DIR`` relocates the on-disk store
(default ``~/.cache/repro``), ``REPRO_WORKERS`` sets the default
worker count (clamped to the CPU count), ``REPRO_RUN_TIMEOUT`` sets
the default per-run timeout in seconds, ``REPRO_TRACE_CACHE`` selects
the trace-plane mode (``off``/``memory``/``disk``).  See
``docs/experiment_engine.md``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
import warnings
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.controller import CMMController, RunStats
from repro.core.epoch import EpochConfig
from repro.core.policies import POLICIES, make_policy
from repro.core.trace import (
    TRACE_SCHEMA_VERSION,
    EpochTrace,
    TraceSchemaError,
    traces_from_dicts,
    traces_to_dicts,
)
from repro.experiments.config import ScaleConfig, get_scale
from repro.metrics.speedup import harmonic_speedup, weighted_speedup, worst_case_speedup
from repro.platform.simulated import SimulatedPlatform
from repro.sim import tracestore
from repro.sim.engines import ENGINE_AUTO, ENGINE_BATCH, ENV_VAR, EngineSpec, get_engine
from repro.sim.machine import CORE_ADDRESS_STRIDE_LINES, Machine
from repro.workloads.classify import AloneProfile, profile_benchmark
from repro.workloads.mixes import CATEGORIES, WorkloadMix, make_mixes
from repro.workloads.speclike import BENCHMARKS, build_trace

__all__ = [
    "SCHEMA_VERSION",
    "ExperimentError",
    "PlannedRun",
    "ResultCache",
    "CacheStats",
    "RunRecord",
    "RunSpec",
    "ExperimentSession",
    "default_cache_dir",
    "default_workers",
    "default_run_timeout",
    "default_session",
    "set_default_session",
    "run",
]

#: Bump whenever simulator output for identical inputs changes; stale
#: cache entries then miss instead of replaying outdated results.
SCHEMA_VERSION = 1

KIND_MECHANISM = "mechanism"
KIND_ALONE = "alone"
KIND_PROFILE = "profile"
#: Extension point: ``bench`` holds a ``"module:function"`` path to a
#: top-level callable ``f(PlannedRun) -> dict`` resolved inside the
#: worker.  Used by the chaos suite to drive crashing/hanging workers
#: through the exact production pool path.
KIND_HOOK = "hook"


# --------------------------------------------------------------- defaults


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def _clamp_workers(n: int, source: str) -> int:
    """Clamp a worker count to the CPU count, warning when it was absurd.

    Oversubscribing the pool only adds context-switch overhead and
    memory pressure — it can never make the sweep faster.
    """
    cpus = os.cpu_count() or 1
    if n > cpus:
        warnings.warn(
            f"{source}={n} exceeds the {cpus} available CPUs; clamping to {cpus}",
            RuntimeWarning,
            stacklevel=3,
        )
        return cpus
    return n


def default_workers() -> int:
    """``$REPRO_WORKERS`` (clamped to the CPU count) or one worker per
    CPU (capped at 8)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            n = max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}") from None
        return _clamp_workers(n, "REPRO_WORKERS")
    return max(1, min(8, os.cpu_count() or 1))


def default_run_timeout() -> float | None:
    """``$REPRO_RUN_TIMEOUT`` in seconds, or ``None`` (no timeout)."""
    env = os.environ.get("REPRO_RUN_TIMEOUT")
    if not env:
        return None
    try:
        value = float(env)
    except ValueError:
        raise ValueError(f"REPRO_RUN_TIMEOUT must be a number of seconds, got {env!r}") from None
    if value <= 0:
        raise ValueError(f"REPRO_RUN_TIMEOUT must be positive, got {value}")
    return value


# ------------------------------------------------------------------ keys


def _hash_payload(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PlannedRun:
    """One deduplicatable unit of simulation work."""

    kind: str
    sc: ScaleConfig
    mix: WorkloadMix | None = None
    mechanism: str | None = None
    bench: str | None = None
    way_sweep: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        # An unknown mechanism is bad input, not a worker fault: fail
        # eagerly with the registry's KeyError instead of letting the
        # failure-handling machinery report it as a failed run.
        if self.kind == KIND_MECHANISM and self.mechanism not in POLICIES:
            raise KeyError(f"unknown policy {self.mechanism!r}; one of {sorted(POLICIES)}")

    @property
    def label(self) -> str:
        if self.kind == KIND_MECHANISM:
            return f"{self.mix.name}/{self.mechanism}"
        if self.kind == KIND_ALONE:
            return f"alone/{self.bench}"
        if self.kind == KIND_HOOK:
            return f"hook/{self.bench}"
        return f"profile/{self.bench}" + ("+ways" if self.way_sweep else "")

    @property
    def affinity_group(self) -> str:
        """Runs sharing this label consume the same materialized traces.

        The scheduler submits misses grouped by it (mix-affine order)
        so a persistent pool worker that has already attached a mix's
        shared-memory segments serves that mix's remaining mechanisms
        from its attachment cache.
        """
        if self.kind == KIND_MECHANISM:
            return f"mix:{self.mix.name}:{self.mix.seed}"
        return f"{self.kind}:{self.bench}"

    def key_payload(self) -> dict:
        """Everything the simulated outcome depends on.

        The simulation engine choice and the trace-plane mode are both
        differential-tested bit-identical (tests/sim/test_fast_engine.py,
        tests/experiments/test_trace_plane.py), so neither can change
        the outcome — excluding them keeps cached results valid across
        engine/plane choices and default changes.
        """
        machine = asdict(self.sc.params())
        machine.pop("sim_engine", None)
        payload = {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "scale": self.sc.cache_key(),
            "machine": machine,
        }
        if self.kind == KIND_MECHANISM:
            payload["mix"] = {
                "benchmarks": list(self.mix.benchmarks),
                "seed": self.mix.seed,
            }
            payload["mechanism"] = self.mechanism
        elif self.kind == KIND_ALONE:
            payload["bench"] = self.bench
        elif self.kind == KIND_PROFILE:
            payload["bench"] = self.bench
            payload["way_sweep"] = list(self.way_sweep) if self.way_sweep else None
        elif self.kind == KIND_HOOK:
            payload["hook"] = self.bench
        else:  # pragma: no cover - guarded by constructors
            raise ValueError(f"unknown run kind {self.kind!r}")
        return payload

    def key(self) -> str:
        return _hash_payload(self.key_payload())


# ----------------------------------------------------------- computation
#
# Top-level functions so planned runs pickle cleanly into pool workers.


def _compute_mechanism(run: PlannedRun) -> dict:
    from repro.experiments.runner import build_machine, drive_mechanism  # avoid import cycle

    sc = run.sc
    machine = build_machine(run.mix, sc, trace_store=tracestore.active_view())
    stats = drive_mechanism(machine, run.mechanism, sc)
    # "traces" rides along to the session, which persists it *beside*
    # the result (<key>.traces.json) — never inside the hashed payload,
    # so cache keys and stored payloads stay byte-identical.
    return {
        "n_cores": stats.n_cores,
        "cycles_per_second": stats.cycles_per_second,
        "wall_cycles": stats.wall_cycles,
        "totals": stats.totals.tolist(),
        "n_epochs": len(stats.epochs),
        "traces": traces_to_dicts(stats.traces),
    }


def _compute_alone(run: PlannedRun) -> dict:
    sc = run.sc
    params = sc.params()
    m = Machine(params, quantum=sc.quantum)
    view = tracestore.active_view()
    trace = None
    if view is not None:
        trace = view.trace_for(
            run.bench,
            llc_lines=params.llc.lines,
            base_line=m.core_base_line(0),
            seed=0,
            length=2 * sc.alone_accesses,
        )
    if trace is None:
        trace = build_trace(
            run.bench, llc_lines=params.llc.lines, base_line=m.core_base_line(0), seed=0
        )
    m.attach_trace(0, trace)
    m.run_accesses(sc.alone_accesses)  # warm-up lap
    snap = m.pmu.snapshot()
    m.run_accesses(sc.alone_accesses)
    sample = m.pmu.delta_since(snap)
    return {"ipc": sample.ipc(0)}


def _compute_profile(run: PlannedRun) -> dict:
    sc = run.sc
    prof = profile_benchmark(
        run.bench, sc.params(), sc.profile_accesses, way_sweep=run.way_sweep,
        trace_store=tracestore.active_view(),
    )
    return {
        "name": prof.name,
        "ipc_on": prof.ipc_on,
        "ipc_off": prof.ipc_off,
        "demand_bw_off_mbs": prof.demand_bw_off_mbs,
        "total_bw_on_mbs": prof.total_bw_on_mbs,
        "demand_bw_on_mbs": prof.demand_bw_on_mbs,
        "ipc_by_ways": {str(w): ipc for w, ipc in prof.ipc_by_ways.items()},
    }


def _compute_hook(run: PlannedRun) -> dict:
    import importlib

    module_name, _, func_name = run.bench.partition(":")
    fn = getattr(importlib.import_module(module_name), func_name)
    return fn(run)


_COMPUTE: dict[str, Callable[[PlannedRun], dict]] = {
    KIND_MECHANISM: _compute_mechanism,
    KIND_ALONE: _compute_alone,
    KIND_PROFILE: _compute_profile,
    KIND_HOOK: _compute_hook,
}


def _execute_planned(run: PlannedRun, traces=None) -> tuple[dict, float]:
    """Worker entry point: compute one payload, report wall seconds.

    ``traces`` is the run's trace source: the session's
    :class:`~repro.sim.tracestore.TraceStore` on the serial path, a
    shared-memory *manifest* dict (turned into a
    :class:`~repro.sim.tracestore.ManifestView` here, inside the
    worker) on the pool path, or ``None`` for plain live generation.
    """
    if isinstance(traces, dict):
        traces = tracestore.ManifestView(traces)
    t0 = time.perf_counter()
    with tracestore.use_view(traces):
        payload = _COMPUTE[run.kind](run)
    return payload, time.perf_counter() - t0


def _trace_requirements(run: PlannedRun) -> list[dict]:
    """The traces a planned run will consume, as ``TraceStore.publish``
    keyword sets.  Must mirror what the compute functions request."""
    from repro.experiments.runner import mechanism_trace_length

    sc = run.sc
    llc_lines = sc.params().llc.lines
    if run.kind == KIND_MECHANISM:
        length = mechanism_trace_length(sc)
        return [
            {
                "spec": bench,
                "llc_lines": llc_lines,
                "base_line": core * CORE_ADDRESS_STRIDE_LINES,
                "seed": run.mix.seed + core,
                "length": length,
            }
            for core, bench in enumerate(run.mix.benchmarks)
        ]
    if run.kind == KIND_ALONE:
        return [
            {
                "spec": run.bench,
                "llc_lines": llc_lines,
                "base_line": 0,
                "seed": 0,
                "length": 2 * sc.alone_accesses,
            }
        ]
    if run.kind == KIND_PROFILE:
        return [
            {
                "spec": run.bench,
                "llc_lines": llc_lines,
                "base_line": 0,
                "seed": 0,
                "length": 2 * sc.profile_accesses,
            }
        ]
    return []  # hooks consume no traces


def _rehydrate_stats(payload: dict, traces: list[EpochTrace] | None = None) -> RunStats:
    # Cached replays carry the accumulated PMU totals (all metrics) and
    # the structured decision traces, but not raw per-epoch samples.
    return RunStats(
        n_cores=payload["n_cores"],
        cycles_per_second=payload["cycles_per_second"],
        totals=np.asarray(payload["totals"], dtype=float),
        wall_cycles=payload["wall_cycles"],
        epochs=[],
        traces=traces or [],
    )


def _rehydrate_profile(payload: dict) -> AloneProfile:
    return AloneProfile(
        name=payload["name"],
        ipc_on=payload["ipc_on"],
        ipc_off=payload["ipc_off"],
        demand_bw_off_mbs=payload["demand_bw_off_mbs"],
        total_bw_on_mbs=payload["total_bw_on_mbs"],
        demand_bw_on_mbs=payload["demand_bw_on_mbs"],
        ipc_by_ways={int(w): ipc for w, ipc in payload["ipc_by_ways"].items()},
    )


# ------------------------------------------------------------------ cache


@dataclass(frozen=True)
class CacheStats:
    """Summary of what a :class:`ResultCache` holds on disk."""

    root: Path | None
    entries: int
    bytes: int
    by_kind: dict[str, int]
    corrupt: int = 0


class ResultCache:
    """Content-addressed result store: memory tier over an optional disk tier.

    Entries live at ``<root>/<key[:2]>/<key>.json``; ``root=None`` keeps
    the cache purely in-memory (one process).  Writes are atomic — a
    uniquely named temp file in the entry's directory followed by
    ``os.replace`` — so neither an interrupted sweep nor two concurrent
    sessions writing the same key can leave (or observe) a torn entry.

    An entry whose JSON does not parse is *quarantined*: renamed to
    ``<key>.corrupt`` next to where it lived (so it can be inspected)
    and counted in :attr:`corrupt` / :attr:`CacheStats.corrupt` instead
    of being silently re-missed forever.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None else None
        self._mem: dict[str, dict] = {}
        self._mem_traces: dict[str, list[dict]] = {}
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self._warned_corrupt = False

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _traces_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.traces.json"

    def _quarantine(self, path: Path) -> None:
        with contextlib.suppress(OSError):
            os.replace(path, path.with_suffix(".corrupt"))
        self.corrupt += 1
        if not self._warned_corrupt:
            self._warned_corrupt = True
            warnings.warn(
                f"quarantined corrupt cache entry {path.name} to *.corrupt "
                "(further corrupt entries this session are quarantined silently; "
                "see `repro cache stats`)",
                RuntimeWarning,
                stacklevel=4,
            )

    def _read_entry(self, path: Path) -> dict | None:
        """Parse one on-disk entry, quarantining it if the JSON is torn."""
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError:
            self._quarantine(path)
            return None
        except OSError:
            return None

    def get(self, key: str) -> dict | None:
        rec = self._mem.get(key)
        if rec is None and self.root is not None:
            path = self._path(key)
            if path.is_file():
                rec = self._read_entry(path)
                if rec is not None and rec.get("schema") != SCHEMA_VERSION:
                    rec = None
                if rec is not None:
                    self._mem[key] = rec
        if rec is None:
            self.misses += 1
            return None
        self.hits += 1
        return rec

    def put(self, key: str, record: dict) -> None:
        self._mem[key] = record
        if self.root is None:
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(json.dumps(record, sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def put_traces(self, key: str, traces: list[dict]) -> None:
        """Persist one run's decision traces *beside* its result entry.

        Traces live in their own ``<key>.traces.json`` (own schema
        version) so result payloads, cache keys, and every existing
        entry stay byte-identical whether tracing is on or off.
        """
        self._mem_traces[key] = traces
        if self.root is None:
            return
        path = self._traces_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"schema": TRACE_SCHEMA_VERSION, "traces": traces}
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(json.dumps(record, sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def get_traces(self, key: str) -> list[dict] | None:
        """The stored trace records for ``key``, or ``None``.

        ``None`` also covers records written under a different trace
        schema — callers should recompute rather than misread them.
        """
        recs = self._mem_traces.get(key)
        if recs is None and self.root is not None:
            path = self._traces_path(key)
            if path.is_file():
                try:
                    stored = json.loads(path.read_text())
                except (json.JSONDecodeError, OSError):
                    return None
                if stored.get("schema") != TRACE_SCHEMA_VERSION:
                    return None
                recs = stored.get("traces")
                if recs is not None:
                    self._mem_traces[key] = recs
        return recs

    def __contains__(self, key: str) -> bool:
        if key in self._mem:
            return True
        return self.root is not None and self._path(key).is_file()

    def _disk_entries(self) -> list[Path]:
        if self.root is None or not self.root.is_dir():
            return []
        # Trace sidecars are not result entries.
        return sorted(p for p in self.root.glob("*/*.json") if not p.name.endswith(".traces.json"))

    def _disk_traces(self) -> list[Path]:
        if self.root is None or not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.traces.json"))

    def _corrupt_entries(self) -> list[Path]:
        if self.root is None or not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.corrupt"))

    def stats(self) -> CacheStats:
        by_kind: dict[str, int] = {}
        total = 0
        n_entries = 0
        for path in self._disk_entries():
            size = path.stat().st_size
            rec = self._read_entry(path)
            if rec is None and not path.is_file():
                continue  # just quarantined — not an entry any more
            n_entries += 1
            total += size
            kind = rec.get("kind", "?") if rec is not None else "?"
            by_kind[kind] = by_kind.get(kind, 0) + 1
        if self.root is None:
            for rec in self._mem.values():
                by_kind[rec.get("kind", "?")] = by_kind.get(rec.get("kind", "?"), 0) + 1
            return CacheStats(None, len(self._mem), 0, by_kind)
        return CacheStats(self.root, n_entries, total, by_kind, len(self._corrupt_entries()))

    def clear(self) -> int:
        """Drop every entry (memory, disk, quarantine); returns entries removed.

        Trace sidecars are deleted along with their entries but are not
        counted — they are derived observability, not results.
        """
        removed = len(self._mem)
        self._mem.clear()
        self._mem_traces.clear()
        disk = self._disk_entries() + self._corrupt_entries()
        for path in disk + self._disk_traces():
            path.unlink(missing_ok=True)
        return max(removed, len(disk))


# ------------------------------------------------------------------- spec


@dataclass(frozen=True)
class RunSpec:
    """Declarative description of a sweep: mixes x mechanisms x scale.

    ``mixes`` (explicit workloads) beats ``categories`` (generated per
    the scale's ``workloads_per_category`` and seed).  ``seeds`` adds a
    seed axis: the categories' mixes are generated once per listed seed
    (default: the scale's seed only), giving multi-seed sweeps distinct
    content keys per seed while alone/profile runs — seed-independent —
    still deduplicate across the whole plan.  ``expand`` returns a
    deduplicated plan: shared baselines and alone runs appear once no
    matter how many mechanisms, mixes or seeds need them.
    """

    mechanisms: tuple[str, ...] = ("cmm-a",)
    categories: tuple[str, ...] = CATEGORIES
    workloads_per_category: int | None = None
    mixes: tuple[WorkloadMix, ...] | None = None
    seeds: tuple[int, ...] | None = None
    include_baseline: bool = True
    include_alone: bool = True

    def resolve_mixes(self, sc: ScaleConfig) -> list[WorkloadMix]:
        if self.mixes is not None:
            if self.seeds is not None:
                raise ValueError("seeds applies to generated mixes; drop it or drop mixes")
            return list(self.mixes)
        count = self.workloads_per_category or sc.workloads_per_category
        seeds = self.seeds if self.seeds is not None else (sc.seed,)
        out: list[WorkloadMix] = []
        for seed in seeds:
            for cat in self.categories:
                out.extend(make_mixes(cat, count, seed=seed))
        return out

    def expand(self, sc: ScaleConfig | None = None) -> list[PlannedRun]:
        sc = sc or get_scale()
        mixes = self.resolve_mixes(sc)
        plan: list[PlannedRun] = []
        if self.include_alone:
            benches = dict.fromkeys(b for mix in mixes for b in mix.benchmarks)
            plan += [PlannedRun(KIND_ALONE, sc, bench=b) for b in benches]
        mechs = tuple(dict.fromkeys(self.mechanisms))
        if self.include_baseline and "baseline" not in mechs:
            mechs = ("baseline",) + mechs
        for mix in mixes:
            plan += [PlannedRun(KIND_MECHANISM, sc, mix=mix, mechanism=m) for m in mechs]
        return plan


@dataclass(frozen=True)
class RunRecord:
    """Timing/progress record for one executed (or replayed) run.

    ``error`` is ``None`` for a successful run; otherwise it describes
    why the run failed (worker exception, timeout, broken pool).
    """

    key: str
    kind: str
    label: str
    scale: str
    seconds: float
    cached: bool
    error: str | None = None


class ExperimentError(RuntimeError):
    """One or more planned runs failed; carries the per-run errors."""

    def __init__(self, errors: dict[str, str]) -> None:
        self.errors = dict(errors)
        preview = "; ".join(list(self.errors.values())[:3])
        more = "" if len(self.errors) <= 3 else f" (+{len(self.errors) - 3} more)"
        super().__init__(f"{len(self.errors)} experiment run(s) failed: {preview}{more}")


# ---------------------------------------------------------------- session


class ExperimentSession:
    """Owns a result cache and a worker pool; the one way to run things.

    Parameters
    ----------
    scale:
        Default :class:`ScaleConfig` for calls that omit one
        (falls back to :func:`get_scale`).
    cache:
        An explicit :class:`ResultCache` (dependency injection point).
    cache_dir:
        Where to persist results when no ``cache`` is given; defaults
        to :func:`default_cache_dir`, ``None`` keeps results in memory.
    max_workers:
        Process-pool width for cache misses; ``1`` runs serially.
        Defaults to :func:`default_workers` (``$REPRO_WORKERS``);
        values above the CPU count are clamped with a warning.
    progress:
        Optional callback ``(record, done, total)`` fired once per run
        as a batch executes.
    run_timeout:
        Per-run wall-clock budget in seconds for pool execution; a run
        exceeding it is reported failed and its (possibly hung) worker
        abandoned.  ``None`` (the default, or ``$REPRO_RUN_TIMEOUT``)
        disables timeouts.  Not enforced on the serial path.
    run_retries:
        Extra attempts for a run whose worker raised (timeouts are not
        retried — a hang is assumed deterministic).
    pool_respawns:
        Broken/hung pools tolerated per batch before the remaining runs
        execute one-at-a-time in an isolation pool (which attributes
        crashes to the run that caused them).
    mp_context:
        Optional ``multiprocessing`` context for the pools.
    trace_cache:
        Trace-plane mode (``off``/``memory``/``disk``); defaults to
        ``$REPRO_TRACE_CACHE``.  ``off`` regenerates every trace live
        (the pre-plane behaviour); results are bit-identical either
        way.  The disk tier lives under ``<cache root>/tracestore``;
        an in-memory result cache implies an in-memory trace store.
    engine:
        Simulation-engine name for this session's runs, resolved
        through the :mod:`repro.sim.engines` registry (explicit
        argument beats ``$REPRO_SIM_ENGINE`` beats ``auto``).  ``auto``
        — the default — picks the batch engine, so serial mix-affine
        mechanism groups execute through one shared
        :class:`~repro.sim.batch.BatchKernel`; results are bit-identical
        to per-run execution, and the engine name never enters result
        cache keys.  Naming a non-batched engine (``fast``,
        ``reference``) disables group dispatch.
    """

    _UNSET = object()

    def __init__(
        self,
        *,
        scale: ScaleConfig | None = None,
        cache: ResultCache | None = None,
        cache_dir: str | Path | None = _UNSET,
        max_workers: int | None = None,
        progress: Callable[[RunRecord, int, int], None] | None = None,
        run_timeout: float | None = None,
        run_retries: int = 1,
        pool_respawns: int = 2,
        mp_context=None,
        trace_cache: str | None = None,
        engine: str | None = None,
    ) -> None:
        if cache is None:
            root = default_cache_dir() if cache_dir is self._UNSET else cache_dir
            cache = ResultCache(root)
        self.scale = scale
        self.cache = cache
        if engine is not None and engine != ENGINE_AUTO:
            get_engine(engine)  # typed EngineSelectionError on unknown names
        self.engine = engine
        if max_workers is None:
            self.max_workers = default_workers()
        else:
            if max_workers < 1:
                raise ValueError("max_workers must be >= 1")
            self.max_workers = _clamp_workers(max_workers, "max_workers")
        if run_retries < 0 or pool_respawns < 0:
            raise ValueError("run_retries and pool_respawns must be non-negative")
        self.run_timeout = run_timeout if run_timeout is not None else default_run_timeout()
        self.run_retries = run_retries
        self.pool_respawns = pool_respawns
        self.mp_context = mp_context
        self.progress = progress
        self.records: list[RunRecord] = []
        #: key -> error message for runs that failed this session; kept
        #: so later calls (e.g. per-mix evaluate after a sweep) report
        #: the failure instead of re-executing a known-bad run.
        self.failed: dict[str, str] = {}
        mode = tracestore.trace_cache_mode(trace_cache)
        if mode == "off":
            self.trace_store: tracestore.TraceStore | None = None
        else:
            trace_root = self.cache.root / "tracestore" if self.cache.root is not None else None
            self.trace_store = tracestore.TraceStore(trace_root, mode=mode)
        #: The persistent batch pool and the single-worker isolation
        #: pool, held in a plain dict so the exit finalizer can shut
        #: them down without keeping the session alive.
        self._pools: dict[str, ProcessPoolExecutor | None] = {"batch": None, "iso": None}
        self._pool_width = 0
        self._pools_finalizer = weakref.finalize(
            self, ExperimentSession._shutdown_pools, self._pools
        )

    # -- lifecycle ---------------------------------------------------

    @staticmethod
    def _shutdown_pools(pools: dict[str, ProcessPoolExecutor | None]) -> None:
        for name, pool in list(pools.items()):
            pools[name] = None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut down the worker pools and unlink every published
        shared-memory segment.  Idempotent; also runs automatically at
        interpreter exit (including ``KeyboardInterrupt``) via
        ``weakref.finalize``, so abandoned sessions never leak
        ``/dev/shm`` residue."""
        self._pools_finalizer()
        if self.trace_store is not None:
            self.trace_store.close()

    def __enter__(self) -> "ExperimentSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self, width: int) -> ProcessPoolExecutor:
        """The persistent batch pool, (re)spawned only when missing or
        too narrow for this batch — not per batch."""
        pool = self._pools["batch"]
        if pool is not None and self._pool_width < width:
            self._pools["batch"] = None
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=width, mp_context=self.mp_context)
            self._pools["batch"] = pool
            self._pool_width = width
        return pool

    def _discard_pool(self) -> None:
        pool, self._pools["batch"] = self._pools["batch"], None
        self._pool_width = 0
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _manifest_for(self, run: PlannedRun) -> dict | None:
        """Materialize + publish the run's traces; ``{key: item}`` or
        ``None`` when the plane is off / shared memory is unavailable."""
        if self.trace_store is None:
            return None
        manifest: dict[str, dict] = {}
        for req in _trace_requirements(run):
            item = self.trace_store.publish(**req)
            if item is not None:
                manifest[item["key"]] = item
        return manifest or None

    @staticmethod
    def _affinity_order(misses: list[tuple[str, PlannedRun]]) -> list[tuple[str, PlannedRun]]:
        """Misses regrouped so runs sharing traces are adjacent.

        Groups keep first-seen order (stable, deterministic), so a
        plan that is already grouped — the common case — is returned
        unchanged.
        """
        groups: dict[str, list[tuple[str, PlannedRun]]] = {}
        for key, r in misses:
            groups.setdefault(r.affinity_group, []).append((key, r))
        return [kr for grp in groups.values() for kr in grp]

    # -- plumbing ----------------------------------------------------

    def _resolve(self, sc: ScaleConfig | None) -> ScaleConfig:
        return sc or self.scale or get_scale()

    def _note(self, record: RunRecord, done: int, total: int) -> None:
        self.records.append(record)
        if self.progress is not None:
            self.progress(record, done, total)

    def execute(
        self,
        runs: Iterable[PlannedRun],
        *,
        strict: bool = True,
        resume=None,
    ) -> dict[str, dict]:
        """Run a plan; returns ``{key: payload}`` for every completed run.

        Duplicates collapse on their content key, cache hits replay
        from the store, and misses execute serially or across the
        process pool — results are identical either way.

        A run whose worker raises, hangs past ``run_timeout``, or dies
        with its pool costs only itself: completed results are already
        persisted, unfinished runs are re-submitted to a respawned
        pool, and the failure is recorded per-run
        (:attr:`RunRecord.error`, :attr:`failed`).  With ``strict``
        (the default) an :class:`ExperimentError` listing the failures
        is raised *after* everything runnable has run; ``strict=False``
        just omits the failed keys from the result.

        ``resume`` replays a killed sweep from its crash-consistent
        journal: pass a :class:`~repro.service.journal.SweepJournal`
        (or a path to one) and the journal's whole plan joins ``runs``
        — completed keys replay from the cache, pending keys execute,
        and every outcome is journaled (started/finished/failed, with
        batch-boundary fsyncs).  The journal is sealed once nothing is
        pending.  Replayed sweeps are bit-identical to uninterrupted
        ones (``tests/service/test_journal.py``).
        """
        journal = None
        if resume is not None:
            from repro.service.journal import SweepJournal
            from repro.service.protocol import run_from_wire

            journal = resume if isinstance(resume, SweepJournal) else SweepJournal.load(resume)
            runs = list(runs) + [run_from_wire(spec) for spec in journal.plan.values()]
        ordered: dict[str, PlannedRun] = {}
        for r in runs:
            ordered.setdefault(r.key(), r)
        total = len(ordered)
        out: dict[str, dict] = {}
        errors: dict[str, str] = {}
        misses: list[tuple[str, PlannedRun]] = []
        done = 0
        for key, r in ordered.items():
            if key in self.failed:
                done += 1
                errors[key] = self.failed[key]
                self._note(
                    RunRecord(key, r.kind, r.label, r.sc.name, 0.0, cached=False,
                              error=self.failed[key]),
                    done, total,
                )
                continue
            rec = self.cache.get(key)
            if rec is not None:
                out[key] = rec["payload"]
                done += 1
                self._note(RunRecord(key, r.kind, r.label, r.sc.name, 0.0, cached=True), done, total)
                if journal is not None and key in journal.plan \
                        and key not in journal.finished_keys():
                    # The crash may have landed the cache write but not
                    # the journal event; reconcile on replay.
                    journal.record_finished(key)
            else:
                misses.append((key, r))

        if journal is not None:
            # Write-ahead: the dispatch set is durable before compute.
            for key, _r in misses:
                if key in journal.plan:
                    journal.record_started(key)
            journal.flush()

        def finish(key: str, r: PlannedRun, payload: dict, secs: float) -> None:
            nonlocal done
            # Decision traces are persisted beside the entry, never in
            # it: the stored payload stays byte-identical to pre-trace
            # versions and the content key is untouched.
            traces = payload.pop("traces", None)
            if traces is not None:
                self.cache.put_traces(key, traces)
            self.cache.put(key, {
                "schema": SCHEMA_VERSION,
                "kind": r.kind,
                "label": r.label,
                "scale": r.sc.name,
                "inputs": r.key_payload(),
                "seconds": secs,
                "payload": payload,
            })
            out[key] = payload
            done += 1
            self._note(RunRecord(key, r.kind, r.label, r.sc.name, secs, cached=False), done, total)
            if journal is not None and key in journal.plan:
                journal.record_finished(key)

        def fail(key: str, r: PlannedRun, err: BaseException | str) -> None:
            nonlocal done
            msg = f"{r.label}: {err}" if not isinstance(err, str) else err
            errors[key] = msg
            self.failed[key] = msg
            done += 1
            self._note(
                RunRecord(key, r.kind, r.label, r.sc.name, 0.0, cached=False, error=msg),
                done, total,
            )
            if journal is not None and key in journal.plan:
                journal.record_failed(key, msg)

        if len(misses) > 1 and self.max_workers > 1:
            self._execute_parallel(misses, finish, fail)
        else:
            self._execute_serial(misses, finish, fail)
        if journal is not None:
            if not journal.pending_keys():
                journal.seal()
            journal.flush()
        if errors and strict:
            raise ExperimentError(errors)
        return out

    def _engine_spec(self) -> EngineSpec:
        """This session's resolved engine (explicit > env > auto=batch).

        Sessions resolve ``auto`` to the batch engine — unlike a bare
        :class:`~repro.sim.machine.Machine`, a session sees whole plans
        and can group mix-affine runs — so setting ``$REPRO_SIM_ENGINE``
        (or ``engine=``) to a scalar engine is the off switch.
        """
        name = self.engine or os.environ.get(ENV_VAR) or ENGINE_AUTO
        if name == ENGINE_AUTO:
            name = ENGINE_BATCH
        return get_engine(name)

    def _execute_batched(self, misses, finish):
        """Dispatch batchable mix-affine groups; return leftover misses.

        A group of >= 2 mechanism misses sharing an affinity group and
        scale executes through one shared batch kernel
        (:func:`repro.experiments.batch.compute_mechanism_group`);
        payloads are byte-identical to the per-run path.  Any failure
        returns the whole group to the scalar loop, which retains the
        retry semantics.
        """
        spec = self._engine_spec()
        if not spec.batched or self.trace_store is None:
            return misses
        from repro.experiments.batch import compute_mechanism_group
        from repro.sim.batch import note_degradation

        lockstep = "dynamic" in spec.capabilities
        groups: dict[tuple, list[tuple[str, PlannedRun]]] = {}
        for key, r in misses:
            g = (
                (r.affinity_group, r.sc.name)
                if r.kind == KIND_MECHANISM
                else ("#single", key)
            )
            groups.setdefault(g, []).append((key, r))
        remaining: list[tuple[str, PlannedRun]] = []
        for grp in groups.values():
            if len(grp) < 2:
                remaining.extend(grp)
                continue
            try:
                rows = compute_mechanism_group(
                    [r for _, r in grp], self.trace_store, lockstep=lockstep
                )
            except Exception:
                note_degradation()
                remaining.extend(grp)
                continue
            for (key, r), (payload, secs) in zip(grp, rows):
                finish(key, r, payload, secs)
        return remaining

    def _execute_serial(self, misses, finish, fail) -> None:
        for key, r in self._execute_batched(misses, finish):
            err: BaseException | None = None
            for _attempt in range(self.run_retries + 1):
                try:
                    payload, secs = _execute_planned(r, self.trace_store)
                except Exception as e:
                    err = e
                else:
                    finish(key, r, payload, secs)
                    err = None
                    break
            if err is not None:
                fail(key, r, err)

    def _execute_parallel(self, misses, finish, fail) -> None:
        """Pool execution with per-run timeout, retry, and pool respawn.

        The batch pool is *persistent*: it outlives this batch and is
        reused by the next one, so workers keep their attached
        shared-memory segments (and warm imports) across batches.  Runs
        are submitted in affinity order — runs over the same mix
        adjacent — so a worker picking up consecutive tasks mostly
        re-reads segments it already mapped.

        Completed runs are finished (and persisted) as their futures
        resolve.  When the pool breaks — a worker died — or a run hangs
        past its deadline, the pool is discarded and the unfinished
        runs are re-submitted to a fresh one; after ``pool_respawns``
        such incidents the stragglers fall back to a one-run-at-a-time
        isolation pool that pins each crash on the run that caused it.
        """
        pending: dict[str, PlannedRun] = dict(self._affinity_order(misses))
        attempts: dict[str, int] = dict.fromkeys(pending, 0)
        respawns = 0
        while pending:
            if respawns > self.pool_respawns:
                self._execute_isolated(pending, finish, fail)
                return
            workers = min(self.max_workers, len(pending))
            pool = self._ensure_pool(workers)
            futures: dict = {}
            now = time.monotonic()
            deadline = None if self.run_timeout is None else now + self.run_timeout
            broken = False
            try:
                for key, r in pending.items():
                    futures[pool.submit(_execute_planned, r, self._manifest_for(r))] = key
            except BrokenProcessPool:
                broken = True
            not_done = set(futures)
            while not_done and not broken:
                timeout = None if deadline is None else max(0.0, deadline - time.monotonic())
                finished, not_done = wait(not_done, timeout=timeout, return_when=FIRST_COMPLETED)
                for fut in finished:
                    key = futures[fut]
                    r = pending[key]
                    try:
                        payload, secs = fut.result()
                    except BrokenProcessPool:
                        broken = True  # key stays pending for the respawn
                    except Exception as e:
                        attempts[key] += 1
                        if attempts[key] > self.run_retries:
                            fail(key, r, e)
                            pending.pop(key)
                        # else: stays pending, re-submitted next round
                    else:
                        finish(key, r, payload, secs)
                        pending.pop(key)
                if not finished and deadline is not None and time.monotonic() >= deadline:
                    # Every still-running worker is past the per-run
                    # budget: report those runs failed and abandon the
                    # pool (a hung worker poisons its slot).
                    for fut in not_done:
                        if fut.cancel():
                            continue  # never started — stays pending
                        key = futures[fut]
                        r = pending.pop(key)
                        fail(key, r, f"{r.label}: run exceeded {self.run_timeout:.6g}s timeout")
                    broken = True
            if broken:
                self._discard_pool()
                respawns += 1
            # else: the healthy pool stays alive for the next batch.

    def _execute_isolated(self, pending: dict[str, "PlannedRun"], finish, fail) -> None:
        """Last-resort mode: one pool of one worker, one run at a time.

        Slow, but deterministic under crashing workers: a crash or hang
        is attributable to exactly the run that was executing, so every
        healthy run still completes.  The single-worker pool is owned
        by the session and reused — across runs *and* across batches —
        until it actually breaks (crash or hang); only then is it
        respawned, instead of paying a fresh worker per retried run.
        """

        def discard_iso(wait_: bool) -> None:
            pool, self._pools["iso"] = self._pools["iso"], None
            if pool is not None:
                pool.shutdown(wait=wait_, cancel_futures=True)

        def iso_pool() -> ProcessPoolExecutor:
            pool = self._pools["iso"]
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=1, mp_context=self.mp_context)
                self._pools["iso"] = pool
            return pool

        for key in list(pending):
            r = pending.pop(key)
            manifest = self._manifest_for(r)
            try:
                fut = iso_pool().submit(_execute_planned, r, manifest)
            except BrokenProcessPool:
                discard_iso(wait_=False)
                fut = iso_pool().submit(_execute_planned, r, manifest)
            try:
                payload, secs = fut.result(timeout=self.run_timeout)
            except FuturesTimeoutError:
                fail(key, r, f"run exceeded {self.run_timeout:.6g}s timeout")
                discard_iso(wait_=False)
            except BrokenProcessPool as e:
                fail(key, r, e)
                discard_iso(wait_=True)
            except Exception as e:
                fail(key, r, e)  # worker survived; keep its pool
            else:
                finish(key, r, payload, secs)

    # -- single runs -------------------------------------------------

    def run(
        self,
        mix: WorkloadMix,
        policy_or_name,
        sc: ScaleConfig | None = None,
        *,
        label: str | None = None,
        detector_cfg=None,
        sample_units: int | None = None,
    ):
        """Run one workload under a mechanism name or policy object.

        Named mechanisms with no overrides are cached; custom policy
        objects and per-call overrides (``detector_cfg``,
        ``sample_units``) always simulate fresh, since their knobs are
        not part of the content key.
        """
        from repro.experiments.runner import RunResult, build_machine

        sc = self._resolve(sc)
        if isinstance(policy_or_name, str) and detector_cfg is None and sample_units is None:
            planned = PlannedRun(KIND_MECHANISM, sc, mix=mix, mechanism=policy_or_name)
            payload = self.execute([planned])[planned.key()]
            traces = self._load_traces(planned.key())
            return RunResult(mix, label or policy_or_name, _rehydrate_stats(payload, traces))

        policy = make_policy(policy_or_name) if isinstance(policy_or_name, str) else policy_or_name
        machine = build_machine(mix, sc, trace_store=self.trace_store)
        platform = SimulatedPlatform(machine)
        epoch_cfg = EpochConfig(
            exec_units=sc.exec_units,
            sample_units=sample_units if sample_units is not None else sc.sample_units,
        )
        controller = CMMController(platform, policy, epoch_cfg=epoch_cfg, detector_cfg=detector_cfg)
        stats = controller.run(sc.n_epochs)
        return RunResult(mix, label or getattr(policy, "name", "custom"), stats)

    def _load_traces(self, key: str) -> list[EpochTrace] | None:
        """Parse the stored traces for ``key``; ``None`` when absent/stale."""
        recs = self.cache.get_traces(key)
        if recs is None:
            return None
        try:
            return traces_from_dicts(recs)
        except (TraceSchemaError, KeyError, TypeError):
            return None

    def traces(
        self, mix: WorkloadMix, mechanism: str, sc: ScaleConfig | None = None
    ) -> list[EpochTrace]:
        """Per-epoch decision traces for one (mix, mechanism) run.

        Runs through the cache like any other request.  Entries cached
        before tracing existed (or under an older trace schema) have no
        sidecar; the run is then recomputed once — deterministically
        bit-identical to the cached result — and its traces persisted.
        """
        sc = self._resolve(sc)
        planned = PlannedRun(KIND_MECHANISM, sc, mix=mix, mechanism=mechanism)
        key = planned.key()
        self.execute([planned])
        traces = self._load_traces(key)
        if traces is None:
            payload = _compute_mechanism(planned)
            self.cache.put_traces(key, payload["traces"])
            traces = traces_from_dicts(payload["traces"])
        return traces

    def alone_ipc(self, bench: str, sc: ScaleConfig | None = None) -> float:
        sc = self._resolve(sc)
        planned = PlannedRun(KIND_ALONE, sc, bench=bench)
        return self.execute([planned])[planned.key()]["ipc"]

    def alone_ipcs(self, mix: WorkloadMix, sc: ScaleConfig | None = None) -> np.ndarray:
        """Alone-run IPC per core of ``mix`` (one cached run per benchmark)."""
        sc = self._resolve(sc)
        plan = {b: PlannedRun(KIND_ALONE, sc, bench=b) for b in dict.fromkeys(mix.benchmarks)}
        payloads = self.execute(plan.values())
        return np.array([payloads[plan[b].key()]["ipc"] for b in mix.benchmarks])

    # -- profiles (Figs. 1-3) ---------------------------------------

    def profile(
        self,
        bench: str,
        sc: ScaleConfig | None = None,
        *,
        way_sweep: Sequence[int] | None = None,
    ) -> AloneProfile:
        return self.profile_all([bench], sc, way_sweep=way_sweep)[bench]

    def profile_all(
        self,
        benchmarks: Sequence[str] | None = None,
        sc: ScaleConfig | None = None,
        *,
        way_sweep: Sequence[int] | None = None,
    ) -> dict[str, AloneProfile]:
        """Cached single-core profiles for ``benchmarks`` (default: all)."""
        sc = self._resolve(sc)
        names = tuple(benchmarks) if benchmarks is not None else tuple(BENCHMARKS)
        sweep = tuple(way_sweep) if way_sweep is not None else None
        plan = {n: PlannedRun(KIND_PROFILE, sc, bench=n, way_sweep=sweep) for n in names}
        payloads = self.execute(plan.values())
        return {n: _rehydrate_profile(payloads[plan[n].key()]) for n in names}

    # -- evaluation --------------------------------------------------

    def evaluate(
        self,
        mix: WorkloadMix,
        mechanisms: tuple[str, ...],
        sc: ScaleConfig | None = None,
        *,
        alone_cache=None,
    ):
        """Baseline + mechanisms + alone runs -> a :class:`WorkloadEval`.

        ``alone_cache`` injects a legacy :class:`AloneCache` for the
        alone-IPC numbers; by default they come from this session's
        store like every other run kind.
        """
        sc = self._resolve(sc)
        mechs = tuple(m for m in dict.fromkeys(mechanisms) if m != "baseline")
        plan: list[PlannedRun] = []
        if alone_cache is None:
            plan += [PlannedRun(KIND_ALONE, sc, bench=b) for b in dict.fromkeys(mix.benchmarks)]
        base_run = PlannedRun(KIND_MECHANISM, sc, mix=mix, mechanism="baseline")
        mech_runs = {m: PlannedRun(KIND_MECHANISM, sc, mix=mix, mechanism=m) for m in mechs}
        plan.append(base_run)
        plan.extend(mech_runs.values())
        payloads = self.execute(plan)

        from repro.experiments.runner import RunResult

        if alone_cache is not None:
            alone = alone_cache.ipcs_for(mix, sc)
        else:
            keys = {b: PlannedRun(KIND_ALONE, sc, bench=b).key() for b in dict.fromkeys(mix.benchmarks)}
            alone = np.array([payloads[keys[b]]["ipc"] for b in mix.benchmarks])
        base = RunResult(mix, "baseline", _rehydrate_stats(payloads[base_run.key()]))
        runs = {
            m: RunResult(mix, m, _rehydrate_stats(payloads[pr.key()]))
            for m, pr in mech_runs.items()
        }
        return build_eval(mix, alone, base, runs)

    def sweep(
        self,
        mechanisms: tuple[str, ...],
        sc: ScaleConfig | None = None,
        *,
        categories: tuple[str, ...] = CATEGORIES,
        workloads_per_category: int | None = None,
        mixes: Sequence[WorkloadMix] | None = None,
    ) -> list:
        """Evaluate every mix x mechanism; misses run in parallel first.

        One bad workload no longer aborts the sweep: a mix whose runs
        failed is skipped with a warning (its per-run errors are in
        :attr:`records`/:attr:`failed`), and every other evaluation is
        still returned.
        """
        sc = self._resolve(sc)
        spec = RunSpec(
            mechanisms=tuple(mechanisms),
            categories=categories,
            workloads_per_category=workloads_per_category,
            mixes=tuple(mixes) if mixes is not None else None,
        )
        self.execute(spec.expand(sc), strict=False)  # fill the cache breadth-first
        evals = []
        for mix in spec.resolve_mixes(sc):
            try:
                evals.append(self.evaluate(mix, tuple(mechanisms), sc))
            except ExperimentError as e:
                warnings.warn(f"skipping workload {mix.name}: {e}", RuntimeWarning, stacklevel=2)
        return evals


def build_eval(mix: WorkloadMix, alone: np.ndarray, base, runs: dict):
    """Fold runs into the paper's HS/WS/worst/BW/stall metrics, plus the
    fairness columns (hm-IPC, fair slowdown / ANTT, unfairness) the
    multi-seed analysis summarizes alongside them."""
    from repro.analysis.stats import fair_slowdown, hm_ipc, unfairness
    from repro.experiments.runner import WorkloadEval

    base_hs = harmonic_speedup(base.ipc, alone)
    ev = WorkloadEval(mix=mix, baseline=base, runs=dict(runs), alone_ipc=alone)
    ev.metrics["baseline"] = {
        "hs": base_hs,
        "hs_norm": 1.0,
        "ws": 1.0,
        "worst": 1.0,
        "bw_mbs": base.mem_bandwidth_mbs,
        "bw_norm": 1.0,
        "stalls_norm": 1.0,
        "hm_ipc": hm_ipc(base.ipc),
        "fair_slowdown": fair_slowdown(alone, base.ipc),
        "unfairness": unfairness(alone, base.ipc),
    }
    for mech, run_ in runs.items():
        hs = harmonic_speedup(run_.ipc, alone)
        ev.metrics[mech] = {
            "hs": hs,
            "hs_norm": hs / base_hs if base_hs > 0 else 0.0,
            "ws": weighted_speedup(run_.ipc, base.ipc),
            "worst": worst_case_speedup(run_.ipc, base.ipc),
            "bw_mbs": run_.mem_bandwidth_mbs,
            "bw_norm": run_.mem_bandwidth_mbs / base.mem_bandwidth_mbs
            if base.mem_bandwidth_mbs > 0
            else 0.0,
            "stalls_norm": run_.stalls_per_kinst / base.stalls_per_kinst
            if base.stalls_per_kinst > 0
            else 0.0,
            "hm_ipc": hm_ipc(run_.ipc),
            "fair_slowdown": fair_slowdown(alone, run_.ipc),
            "unfairness": unfairness(alone, run_.ipc),
        }
    return ev


# ------------------------------------------------------- default session

_DEFAULT_SESSION: ExperimentSession | None = None


def default_session() -> ExperimentSession:
    """The process-wide session used by module-level helpers and shims."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = ExperimentSession()
    return _DEFAULT_SESSION


def set_default_session(session: ExperimentSession | None) -> None:
    """Install (or with ``None``, reset) the process-wide session."""
    global _DEFAULT_SESSION
    _DEFAULT_SESSION = session


def run(mix: WorkloadMix, policy_or_name, sc: ScaleConfig | None = None, **overrides):
    """Unified entry point replacing ``run_mechanism``/``run_policy_object``.

    ``policy_or_name`` is a mechanism name (cached through the default
    session) or a policy object (always simulated fresh); ``overrides``
    are forwarded to :meth:`ExperimentSession.run` (``label``,
    ``detector_cfg``, ``sample_units``).
    """
    return default_session().run(mix, policy_or_name, sc, **overrides)
