"""Evaluation harness: one driver per paper table/figure.

Scales (``REPRO_SCALE`` env var or explicit argument):

* ``tiny``  — CI-sized: 1/16-capacity machine, 2 workloads/category,
  one epoch; seconds per figure.  The default for pytest benchmarks.
* ``small`` — 4 workloads/category, 2 epochs; minutes for the full set.
* ``full``  — the paper's shape: 10 workloads/category, 3 epochs,
  1/8-capacity machine.

Execution goes through :mod:`repro.experiments.engine`: an
:class:`ExperimentSession` deduplicates runs, fans cache misses out
over a process pool (``REPRO_WORKERS``), and persists results in a
content-addressed on-disk store (``REPRO_CACHE_DIR``), so regenerating
a figure replays cached runs instead of re-simulating them.

Shapes (who wins, by what factor) are stable across scales; absolute
values are simulator units, not Xeon measurements (see EXPERIMENTS.md).
"""

from repro.experiments.batch import BatchRunSpec, BatchUnavailable, simulate_batch
from repro.experiments.config import ScaleConfig, get_scale, SCALES
from repro.experiments.engine import (
    ExperimentSession,
    PlannedRun,
    ResultCache,
    RunRecord,
    RunSpec,
    default_session,
    set_default_session,
)
from repro.experiments.runner import (
    AloneCache,
    RunResult,
    WorkloadEval,
    build_machine,
)

__all__ = [
    "ScaleConfig",
    "get_scale",
    "SCALES",
    "AloneCache",
    "BatchRunSpec",
    "BatchUnavailable",
    "ExperimentSession",
    "PlannedRun",
    "ResultCache",
    "RunRecord",
    "RunResult",
    "RunSpec",
    "WorkloadEval",
    "build_machine",
    "default_session",
    "set_default_session",
    "simulate_batch",
]
