"""Evaluation harness: one driver per paper table/figure.

Scales (``REPRO_SCALE`` env var or explicit argument):

* ``tiny``  — CI-sized: 1/16-capacity machine, 2 workloads/category,
  one epoch; seconds per figure.  The default for pytest benchmarks.
* ``small`` — 4 workloads/category, 2 epochs; minutes for the full set.
* ``full``  — the paper's shape: 10 workloads/category, 3 epochs,
  1/8-capacity machine.

Shapes (who wins, by what factor) are stable across scales; absolute
values are simulator units, not Xeon measurements (see EXPERIMENTS.md).
"""

from repro.experiments.config import ScaleConfig, get_scale, SCALES
from repro.experiments.runner import (
    AloneCache,
    RunResult,
    WorkloadEval,
    build_machine,
    evaluate_workload,
    run_mechanism,
)

__all__ = [
    "ScaleConfig",
    "get_scale",
    "SCALES",
    "AloneCache",
    "RunResult",
    "WorkloadEval",
    "build_machine",
    "evaluate_workload",
    "run_mechanism",
]
