"""Export figure results to JSON / CSV for external plotting."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path


def _flatten(row: dict) -> dict:
    """Flatten nested dict values (e.g. fig03's ipc_by_ways) into columns."""
    out = {}
    for k, v in row.items():
        if isinstance(v, dict):
            for kk, vv in v.items():
                out[f"{k}.{kk}"] = vv
        elif isinstance(v, (tuple, list)):
            out[k] = ";".join(str(x) for x in v)
        else:
            out[k] = v
    return out


def figure_to_json(figure: dict, *, indent: int = 2) -> str:
    """Serialise a figure dict (as produced by ``repro.experiments.figures``)."""

    def default(o):
        if isinstance(o, (tuple, set)):
            return list(o)
        if hasattr(o, "item"):  # numpy scalars
            return o.item()
        raise TypeError(f"not JSON serialisable: {type(o)}")

    return json.dumps(figure, indent=indent, default=default)


def rows_to_csv(rows: list[dict]) -> str:
    """Render a figure's ``rows`` as CSV text (nested dicts flattened)."""
    if not rows:
        return ""
    flat = [_flatten(r) for r in rows]
    fieldnames: list[str] = []
    for r in flat:
        for k in r:
            if k not in fieldnames:
                fieldnames.append(k)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fieldnames)
    writer.writeheader()
    writer.writerows(flat)
    return buf.getvalue()


def traces_to_rows(traces) -> list[dict]:
    """Flatten :class:`~repro.core.trace.EpochTrace` records into one
    row per (epoch, stage) with the headline decision columns."""
    rows = []
    for t in traces:
        for s in t.stages:
            rows.append({
                "epoch": t.epoch,
                "policy": t.policy,
                "stage": s.stage,
                "skipped": s.skipped,
                "reason": s.detail.get("reason", ""),
                "agg_set": s.detail.get("agg_set", ""),
                "n_candidates": len(s.detail.get("candidates", ())),
                "best_hm": s.detail.get("best_hm", ""),
                "reference_hm": s.detail.get("reference_hm", ""),
                "winner_throttled": (t.winner or {}).get("throttled", ""),
                "failure": t.failure or "",
                "degraded": t.degraded,
            })
    return rows


def traces_to_csv(traces) -> str:
    """CSV text for a run's traces (one row per epoch x stage)."""
    return rows_to_csv(traces_to_rows(traces))


def write_traces(traces, directory: str | Path, *, stem: str = "traces") -> tuple[Path, Path]:
    """Write ``<stem>.json`` (full records) and ``<stem>.csv`` (flattened)."""
    from repro.core.trace import traces_to_dicts

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    jpath = directory / f"{stem}.json"
    cpath = directory / f"{stem}.csv"
    jpath.write_text(json.dumps(traces_to_dicts(traces), indent=2))
    cpath.write_text(traces_to_csv(traces))
    return jpath, cpath


def write_figure(figure: dict, directory: str | Path, *, stem: str | None = None) -> tuple[Path, Path]:
    """Write ``<stem>.json`` and ``<stem>.csv`` under ``directory``.

    ``stem`` defaults to the figure's id.  Returns the two paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = stem or figure.get("figure", "figure")
    jpath = directory / f"{stem}.json"
    cpath = directory / f"{stem}.csv"
    jpath.write_text(figure_to_json(figure))
    cpath.write_text(rows_to_csv(figure.get("rows", [])))
    return jpath, cpath
