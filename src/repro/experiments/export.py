"""Export figure results to JSON / CSV for external plotting.

Row flattening and cell encoding are delegated to
:mod:`repro.analysis.tables`, which is **round-trip safe**: nested
dicts flatten recursively with escaped dotted keys, lists/tuples are
JSON-encoded (the old exporter ``";"``-joined them with no escaping),
and :func:`rows_from_csv` restores the typed rows a
:func:`rows_to_csv` call started from (tuples come back as lists — the
one documented lossy corner).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.analysis.tables import decode_cell, encode_cell, flatten_row, unflatten_row


def figure_to_json(figure: dict, *, indent: int = 2) -> str:
    """Serialise a figure dict (as produced by ``repro.experiments.figures``)."""

    def default(o):
        if isinstance(o, (tuple, set)):
            return list(o)
        if hasattr(o, "item"):  # numpy scalars
            return o.item()
        raise TypeError(f"not JSON serialisable: {type(o)}")

    return json.dumps(figure, indent=indent, default=default)


def rows_to_csv(rows: list[dict]) -> str:
    """Render a figure's ``rows`` as CSV text.

    Nested dicts flatten into escaped dotted columns and every cell is
    encoded invertibly; :func:`rows_from_csv` is the inverse.
    """
    if not rows:
        return ""
    flat = [flatten_row(r) for r in rows]
    fieldnames: list[str] = []
    for r in flat:
        for k in r:
            if k not in fieldnames:
                fieldnames.append(k)
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\r\n")
    writer.writerow(fieldnames)
    for r in flat:
        writer.writerow([encode_cell(r[k]) if k in r else "" for k in fieldnames])
    return buf.getvalue()


def rows_from_csv(text: str) -> list[dict]:
    """Invert :func:`rows_to_csv`: typed cells, nesting restored.

    Columns absent from a row (ragged figures) decode as ``None`` —
    indistinguishable from an explicit ``None``, like any CSV.
    """
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        return []
    return [
        unflatten_row({k: decode_cell(cell) for k, cell in zip(header, line)})
        for line in reader
    ]


def traces_to_rows(traces) -> list[dict]:
    """Flatten :class:`~repro.core.trace.EpochTrace` records into one
    row per (epoch, stage) with the headline decision columns."""
    rows = []
    for t in traces:
        for s in t.stages:
            rows.append({
                "epoch": t.epoch,
                "policy": t.policy,
                "stage": s.stage,
                "skipped": s.skipped,
                "reason": s.detail.get("reason", ""),
                "agg_set": s.detail.get("agg_set", ""),
                "n_candidates": len(s.detail.get("candidates", ())),
                "best_hm": s.detail.get("best_hm", ""),
                "reference_hm": s.detail.get("reference_hm", ""),
                "winner_throttled": (t.winner or {}).get("throttled", ""),
                "failure": t.failure or "",
                "degraded": t.degraded,
            })
    return rows


def traces_to_csv(traces) -> str:
    """CSV text for a run's traces (one row per epoch x stage)."""
    return rows_to_csv(traces_to_rows(traces))


def write_traces(traces, directory: str | Path, *, stem: str = "traces") -> tuple[Path, Path]:
    """Write ``<stem>.json`` (full records) and ``<stem>.csv`` (flattened)."""
    from repro.core.trace import traces_to_dicts

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    jpath = directory / f"{stem}.json"
    cpath = directory / f"{stem}.csv"
    jpath.write_text(json.dumps(traces_to_dicts(traces), indent=2))
    cpath.write_text(traces_to_csv(traces))
    return jpath, cpath


def write_figure(figure: dict, directory: str | Path, *, stem: str | None = None) -> tuple[Path, Path]:
    """Write ``<stem>.json`` and ``<stem>.csv`` under ``directory``.

    ``stem`` defaults to the figure's id.  Returns the two paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = stem or figure.get("figure", "figure")
    jpath = directory / f"{stem}.json"
    cpath = directory / f"{stem}.csv"
    jpath.write_text(figure_to_json(figure))
    cpath.write_text(rows_to_csv(figure.get("rows", [])))
    return jpath, cpath
