"""Abstract platform interface the CMM controller programs against."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.sim.pmu import PmuSample


class PlatformError(RuntimeError):
    """A platform control or measurement operation failed.

    Raised (alongside ``OSError`` for resctrl-style filesystem
    failures) when an MSR write, CAT programming call, or PMU sample
    collection does not complete.  These errors are *transient by
    contract*: callers may retry the same operation, and the CMM
    controller does exactly that (see ``docs/robustness.md``).
    """


class Platform(ABC):
    """Control surface: prefetch MSRs, CAT partitions, PMU sampling.

    ``run_interval`` advances the workload by one interval and returns
    the PMU deltas observed during it.  On the simulator an interval is
    measured in demand accesses per core; on real hardware it is wall
    time.  The controller never needs to know which.

    Every control write and ``run_interval`` may raise
    :class:`PlatformError` or ``OSError``; on real hardware MSR and
    resctrl operations fail transiently and PMU reads get dropped or
    corrupted under counter multiplexing.  Backends are expected to
    surface those failures rather than hide them — graceful degradation
    is the controller's job.
    """

    @property
    @abstractmethod
    def n_cores(self) -> int: ...

    @property
    @abstractmethod
    def llc_ways(self) -> int: ...

    @property
    @abstractmethod
    def cycles_per_second(self) -> float: ...

    # --- prefetch control (MSR 0x1A4 semantics: set bit = disabled) ---

    @abstractmethod
    def set_prefetch_mask(self, core: int, mask: int) -> None: ...

    @abstractmethod
    def prefetch_mask(self, core: int) -> int: ...

    # --- cache partitioning (Intel CAT semantics) ---

    @abstractmethod
    def set_clos_cbm(self, clos: int, cbm: int) -> None: ...

    @abstractmethod
    def assign_core_clos(self, core: int, clos: int) -> None: ...

    @abstractmethod
    def reset_partitions(self) -> None: ...

    # --- execution & measurement ---

    @abstractmethod
    def run_interval(self, units: int) -> PmuSample: ...

    # --- conveniences shared by all backends ---

    def set_all_prefetchers(self, mask: int) -> None:
        for c in range(self.n_cores):
            self.set_prefetch_mask(c, mask)

    def full_cbm(self) -> int:
        return (1 << self.llc_ways) - 1

    def partitions_are_reset(self) -> bool | None:
        """Whether the LLC is back to one full-mask partition.

        Backends that can observe their partition state override this;
        the default ``None`` means "unknown" (e.g. a write-only control
        surface).  Used by safe-state verification, never by policies.
        """
        return None
