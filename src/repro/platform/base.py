"""Abstract platform interface the CMM controller programs against."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.sim.pmu import PmuSample


class Platform(ABC):
    """Control surface: prefetch MSRs, CAT partitions, PMU sampling.

    ``run_interval`` advances the workload by one interval and returns
    the PMU deltas observed during it.  On the simulator an interval is
    measured in demand accesses per core; on real hardware it is wall
    time.  The controller never needs to know which.
    """

    @property
    @abstractmethod
    def n_cores(self) -> int: ...

    @property
    @abstractmethod
    def llc_ways(self) -> int: ...

    @property
    @abstractmethod
    def cycles_per_second(self) -> float: ...

    # --- prefetch control (MSR 0x1A4 semantics: set bit = disabled) ---

    @abstractmethod
    def set_prefetch_mask(self, core: int, mask: int) -> None: ...

    @abstractmethod
    def prefetch_mask(self, core: int) -> int: ...

    # --- cache partitioning (Intel CAT semantics) ---

    @abstractmethod
    def set_clos_cbm(self, clos: int, cbm: int) -> None: ...

    @abstractmethod
    def assign_core_clos(self, core: int, clos: int) -> None: ...

    @abstractmethod
    def reset_partitions(self) -> None: ...

    # --- execution & measurement ---

    @abstractmethod
    def run_interval(self, units: int) -> PmuSample: ...

    # --- conveniences shared by all backends ---

    def set_all_prefetchers(self, mask: int) -> None:
        for c in range(self.n_cores):
            self.set_prefetch_mask(c, mask)

    def full_cbm(self) -> int:
        return (1 << self.llc_ways) - 1
