"""Hardware-control backends.

The CMM controller is written against the abstract :class:`Platform`
interface.  Two backends exist:

* :class:`~repro.platform.simulated.SimulatedPlatform` — drives the
  simulator in :mod:`repro.sim` (the default everywhere in this repo);
* :class:`~repro.platform.linux.LinuxPlatform` — drives real hardware
  through the resctrl filesystem (Intel CAT) and ``/dev/cpu/*/msr``
  (prefetch MSR 0x1A4), the same interfaces the paper's kernel module
  programs.  It is exercised in tests against a fake filesystem since
  no Xeon is available here.

Any backend can further be wrapped in
:class:`~repro.platform.faults.FaultyPlatform` to inject the failure
modes of real hardware (failed writes, dropped/corrupt PMU samples)
from a seeded, serializable :class:`~repro.platform.faults.FaultPlan` —
see ``docs/robustness.md``.
"""

from repro.platform.base import Platform, PlatformError
from repro.platform.faults import FaultPlan, FaultyPlatform, scenario_plan, verify_safe_state
from repro.platform.simulated import SimulatedPlatform

__all__ = [
    "Platform",
    "PlatformError",
    "FaultPlan",
    "FaultyPlatform",
    "scenario_plan",
    "verify_safe_state",
    "SimulatedPlatform",
]
