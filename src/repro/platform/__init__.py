"""Hardware-control backends.

The CMM controller is written against the abstract :class:`Platform`
interface.  Two backends exist:

* :class:`~repro.platform.simulated.SimulatedPlatform` — drives the
  simulator in :mod:`repro.sim` (the default everywhere in this repo);
* :class:`~repro.platform.linux.LinuxPlatform` — drives real hardware
  through the resctrl filesystem (Intel CAT) and ``/dev/cpu/*/msr``
  (prefetch MSR 0x1A4), the same interfaces the paper's kernel module
  programs.  It is exercised in tests against a fake filesystem since
  no Xeon is available here.
"""

from repro.platform.base import Platform
from repro.platform.simulated import SimulatedPlatform

__all__ = ["Platform", "SimulatedPlatform"]
