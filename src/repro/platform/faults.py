"""Fault injection for :class:`Platform` backends.

On real hardware the CMM control surface is unreliable: MSR and
resctrl writes fail transiently, PMU reads get dropped, counters wrap,
and multiplexed events come back scaled by bogus factors.  This module
makes those failure modes *reproducible in CI* without hardware:

* :class:`FaultPlan` — a seeded, serializable description of which
  faults to inject at which rates;
* :class:`FaultyPlatform` — wraps any backend and injects the planned
  faults into its control writes and PMU samples, deterministically
  for a given plan and call sequence;
* :data:`SCENARIOS` / :func:`scenario_plan` — named chaos scenarios
  (``flaky-writes``, ``dropped-samples``, ...) used by the chaos test
  suite and the ``repro chaos`` CLI command.

The injected faults map one-to-one onto real failure modes — see the
failure-mode table in ``docs/real_hardware.md``.

``reset_partitions`` and the mask/partition *reads* are deliberately
never faulted: they are the controller's safety net (restoring the
paper's default all-prefetchers-on configuration), and fault-injecting
the last-resort path would only test the random number generator.
"""

from __future__ import annotations

import errno
import json
import random
from dataclasses import asdict, dataclass, fields

import numpy as np

from repro.platform.base import Platform, PlatformError
from repro.sim.msr import PF_ALL_ON
from repro.sim.pmu import N_EVENTS, PmuSample

__all__ = [
    "WRAP_DELTA",
    "FaultPlan",
    "FaultyPlatform",
    "NetworkFaultPlan",
    "FaultyTier",
    "SCENARIOS",
    "SERVICE_SCENARIOS",
    "scenario_plan",
    "service_scenario_plan",
    "verify_no_segment_leaks",
    "verify_safe_state",
]

#: Magnitude added/subtracted to a counter delta to model a 48-bit
#: PMC wrapping between two reads (perf counters are 48-bit on Intel).
WRAP_DELTA = float(2**48)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, serializable description of the faults to inject.

    Each rate is the per-call (or per-sample) probability in ``[0, 1]``
    of injecting that fault.  Two plans with the same fields produce
    the same fault sequence for the same sequence of platform calls.
    """

    seed: int = 0
    write_fail: float = 0.0        # PlatformError on a control write
    write_oserror: float = 0.0     # transient resctrl-style OSError (EBUSY)
    sample_drop: float = 0.0       # run_interval loses its PMU sample
    sample_nan: float = 0.0        # non-finite cells in the sample
    sample_wrap: float = 0.0       # 48-bit counter wrap between reads
    sample_multiplex: float = 0.0  # whole sample scaled by a bogus factor

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name == "seed":
                continue
            rate = getattr(self, f.name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{f.name} must be a probability in [0, 1], got {rate}")

    # -- serialization (chaos scenarios travel through CLI/CI as JSON) --

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls(**d)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        return cls.from_dict(json.loads(blob))


#: Named chaos scenarios: rate presets a seed turns into a FaultPlan.
SCENARIOS: dict[str, dict[str, float]] = {
    "flaky-writes": {"write_fail": 0.25, "write_oserror": 0.15},
    "dropped-samples": {"sample_drop": 0.30},
    "wrapped-counters": {"sample_wrap": 0.35},
    "noisy-pmu": {"sample_nan": 0.25, "sample_multiplex": 0.20},
    "meltdown": {
        "write_fail": 0.20,
        "write_oserror": 0.10,
        "sample_drop": 0.15,
        "sample_nan": 0.15,
        "sample_wrap": 0.15,
        "sample_multiplex": 0.10,
    },
}


def scenario_plan(name: str, seed: int = 0) -> FaultPlan:
    """The :class:`FaultPlan` for a named scenario."""
    try:
        rates = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown chaos scenario {name!r}; one of {sorted(SCENARIOS)}") from None
    return FaultPlan(seed=seed, **rates)


class FaultyPlatform(Platform):
    """Wraps any backend and injects the faults a :class:`FaultPlan` plans.

    Control-write faults are raised *before* the write reaches the
    inner backend (the write failed).  Sample faults are applied
    *after* the interval ran — on real hardware the workload advances
    whether or not the PMU read succeeds — and never mutate the inner
    backend's counters.  ``injected`` tallies every fault by kind.
    """

    def __init__(self, inner: Platform, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.injected: dict[str, int] = {}

    # ------------------------------------------------------- identity

    @property
    def n_cores(self) -> int:
        return self.inner.n_cores

    @property
    def llc_ways(self) -> int:
        return self.inner.llc_ways

    @property
    def cycles_per_second(self) -> float:
        return self.inner.cycles_per_second

    # ------------------------------------------------------ injection

    def _roll(self, rate: float) -> bool:
        # Always draw so the stream stays aligned across rate settings
        # of the *same* plan; zero-rate draws still consume one number.
        return self._rng.random() < rate

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def _maybe_fail_write(self, op: str) -> None:
        if self._roll(self.plan.write_fail):
            self._count("write_fail")
            raise PlatformError(f"injected fault: {op} write failed")
        if self._roll(self.plan.write_oserror):
            self._count("write_oserror")
            raise OSError(errno.EBUSY, f"injected fault: transient resctrl error during {op}")

    # ------------------------------------------------- control writes

    def set_prefetch_mask(self, core: int, mask: int) -> None:
        self._maybe_fail_write("set_prefetch_mask")
        self.inner.set_prefetch_mask(core, mask)

    def prefetch_mask(self, core: int) -> int:
        return self.inner.prefetch_mask(core)

    def set_clos_cbm(self, clos: int, cbm: int) -> None:
        self._maybe_fail_write("set_clos_cbm")
        self.inner.set_clos_cbm(clos, cbm)

    def assign_core_clos(self, core: int, clos: int) -> None:
        self._maybe_fail_write("assign_core_clos")
        self.inner.assign_core_clos(core, clos)

    def reset_partitions(self) -> None:
        self.inner.reset_partitions()

    def partitions_are_reset(self) -> bool | None:
        return self.inner.partitions_are_reset()

    # ---------------------------------------------------- measurement

    def run_interval(self, units: int) -> PmuSample:
        sample = self.inner.run_interval(units)
        if self._roll(self.plan.sample_drop):
            self._count("sample_drop")
            raise PlatformError("injected fault: PMU sample dropped")

        deltas = sample.deltas
        corrupted = None

        def writable() -> np.ndarray:
            nonlocal corrupted
            if corrupted is None:
                corrupted = np.array(deltas, dtype=float, copy=True)
            return corrupted

        if self._roll(self.plan.sample_nan):
            self._count("sample_nan")
            d = writable()
            for _ in range(self._rng.randint(1, 3)):
                d[self._rng.randrange(d.shape[0]), self._rng.randrange(N_EVENTS)] = np.nan
        if self._roll(self.plan.sample_wrap):
            self._count("sample_wrap")
            d = writable()
            cpu = self._rng.randrange(d.shape[0])
            event = self._rng.randrange(N_EVENTS)
            # A wrap shows up as a giant positive delta (unsigned read)
            # or a negative one (signed subtraction) — inject both.
            d[cpu, event] += WRAP_DELTA if self._rng.random() < 0.5 else -WRAP_DELTA
        if self._roll(self.plan.sample_multiplex):
            self._count("sample_multiplex")
            corrupted = writable() * self._rng.uniform(1.5, 4.0)

        if corrupted is None:
            return sample
        return PmuSample(corrupted, sample.wall_cycles)


# ------------------------------------------------- network/storage faults


@dataclass(frozen=True)
class NetworkFaultPlan:
    """Seeded description of remote-tier faults (network and storage).

    Mirrors :class:`FaultPlan` for the experiment service's remote
    cache tier: each rate is the per-operation probability of that
    fault, and two identical plans inject identically for the same
    call sequence.  ``flap_period`` models a *flapping* remote — every
    ``flap_period`` operations the tier toggles between reachable and
    refusing everything — which is what exercises the circuit
    breaker's half-open probe path.
    """

    seed: int = 0
    refuse: float = 0.0      # connection refused before the op
    error: float = 0.0       # server-side failure (HTTP 5xx analogue)
    latency: float = 0.0     # op slower than the hedge deadline
    latency_s: float = 0.05  # how slow a slow op is
    truncate: float = 0.0    # GET body cut short (torn JSON)
    drop_put: float = 0.0    # PUT acked but the blob never lands
    flap_period: int = 0     # 0 = no flapping

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name in ("seed", "latency_s", "flap_period"):
                continue
            rate = getattr(self, f.name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{f.name} must be a probability in [0, 1], got {rate}")
        if self.flap_period < 0:
            raise ValueError(f"flap_period must be non-negative, got {self.flap_period}")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be non-negative, got {self.latency_s}")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "NetworkFaultPlan":
        return cls(**d)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "NetworkFaultPlan":
        return cls.from_dict(json.loads(blob))


#: Named service chaos scenarios for the remote cache tier; gated in CI
#: via ``repro chaos --scenario <name>`` across seeds.
SERVICE_SCENARIOS: dict[str, dict[str, float | int]] = {
    "network-flaky": {"refuse": 0.25, "error": 0.15},
    "network-down": {"refuse": 1.0},
    "slow-remote": {"latency": 0.6, "latency_s": 0.05},
    "truncated-bodies": {"truncate": 0.5},
    "flapping-remote": {"flap_period": 4, "error": 0.1},
    "torn-storage": {"truncate": 0.35, "drop_put": 0.3},
}


def service_scenario_plan(name: str, seed: int = 0) -> NetworkFaultPlan:
    """The :class:`NetworkFaultPlan` for a named service scenario."""
    try:
        rates = SERVICE_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown service chaos scenario {name!r}; one of {sorted(SERVICE_SCENARIOS)}"
        ) from None
    return NetworkFaultPlan(seed=seed, **rates)


class FaultyTier:
    """Wraps a remote cache-tier backend and injects planned faults.

    Duck-typed to the :class:`~repro.service.cachetier.CacheTier`
    protocol so this module stays free of service imports.  Faults are
    raised as the plain ``OSError`` family the resilience wrapper
    already absorbs; ``injected`` tallies by kind like
    :class:`FaultyPlatform`.  The ``sleep`` hook lets tests replace the
    latency injection with a recording stub.
    """

    def __init__(self, inner, plan: NetworkFaultPlan, *, sleep=None) -> None:
        import time as _time

        self.inner = inner
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._sleep = sleep if sleep is not None else _time.sleep
        self._ops = 0
        self._flap_down = False
        self.injected: dict[str, int] = {}

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def _roll(self, rate: float) -> bool:
        # Always draw: the stream stays aligned across rate settings.
        return self._rng.random() < rate

    def _pre_op(self, op: str) -> None:
        self._ops += 1
        if self.plan.flap_period and self._ops % self.plan.flap_period == 0:
            self._flap_down = not self._flap_down
        if self._flap_down:
            self._count("flap_refused")
            raise ConnectionRefusedError(f"injected fault: remote flapping during {op}")
        if self._roll(self.plan.refuse):
            self._count("refused")
            raise ConnectionRefusedError(f"injected fault: connection refused during {op}")
        if self._roll(self.plan.error):
            self._count("server_error")
            raise OSError(f"injected fault: remote internal error during {op}")
        if self._roll(self.plan.latency):
            self._count("latency")
            self._sleep(self.plan.latency_s)

    def get(self, key: str):
        self._pre_op("get")
        blob = self.inner.get(key)
        if blob is not None and self._roll(self.plan.truncate):
            self._count("truncated")
            return blob[: max(1, len(blob) // 2)]
        return blob

    def put(self, key: str, blob) -> None:
        self._pre_op("put")
        if self._roll(self.plan.drop_put):
            self._count("dropped_put")
            return  # acked, never stored — torn storage
        self.inner.put(key, blob)


def verify_safe_state(platform: Platform) -> list[str]:
    """Problems keeping ``platform`` from the paper's default state.

    Safe state means every core's prefetchers are enabled
    (``PF_ALL_ON``) and the LLC partitions are reset.  Returns an empty
    list when the platform is verifiably safe; partition state that a
    backend cannot observe (``partitions_are_reset() is None``) is not
    counted against it.
    """
    problems: list[str] = []
    for core in range(platform.n_cores):
        try:
            mask = platform.prefetch_mask(core)
        except Exception as e:  # read path should not fault, but be safe
            problems.append(f"core {core}: prefetch mask unreadable ({e})")
            continue
        if mask != PF_ALL_ON:
            problems.append(f"core {core}: prefetch mask {mask:#x} != PF_ALL_ON")
    if platform.partitions_are_reset() is False:
        problems.append("LLC partitions not reset")
    return problems


def verify_no_segment_leaks() -> list[str]:
    """Problems with the host's shared-memory state, as a
    :func:`verify_safe_state`-style list.

    The trace plane (:mod:`repro.sim.tracestore`) publishes
    parent-owned ``/dev/shm`` segments; a session that exits — normally
    or through a crash — must leave none behind.  Each leaked segment
    is one problem string.  Used by the chaos suite after killing pool
    workers mid-run, and worth running after any experiment crash.
    """
    from repro.sim.tracestore import shm_residue

    return [f"leaked shared-memory segment: {name}" for name in shm_residue()]
