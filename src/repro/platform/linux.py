"""Real-hardware backend: resctrl + /dev/cpu/*/msr.

This is the code path that would run on the paper's Xeon E5-2620 v4.
It programs prefetchers through MSR 0x1A4 exactly like ``msr-tools``
and partitions through the resctrl filesystem.  PMU collection is
injected as a callable because perf-event configuration is machine
specific; :class:`NullPmuReader` documents the contract.

Everything takes injectable paths so the full protocol is unit-tested
against a fake ``/dev`` and ``/sys`` (no Xeon in this environment —
see DESIGN.md section 2).
"""

from __future__ import annotations

import os
import struct
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.platform.base import Platform
from repro.platform.resctrl import ResctrlFs
from repro.sim.msr import MSR_MISC_FEATURE_CONTROL
from repro.sim.pmu import N_EVENTS, PmuSample


class MsrDevice:
    """8-byte pread/pwrite access to ``/dev/cpu/<n>/msr`` files."""

    def __init__(self, dev_root: str | os.PathLike = "/dev/cpu") -> None:
        self.dev_root = Path(dev_root)

    def _path(self, cpu: int) -> Path:
        return self.dev_root / str(cpu) / "msr"

    def read(self, cpu: int, addr: int) -> int:
        with open(self._path(cpu), "rb") as f:
            data = os.pread(f.fileno(), 8, addr)
        return struct.unpack("<Q", data)[0]

    def write(self, cpu: int, addr: int, value: int) -> None:
        with open(self._path(cpu), "r+b") as f:
            os.pwrite(f.fileno(), struct.pack("<Q", value), addr)


class NullPmuReader:
    """PMU reader contract: ``read() -> (counts, cycles_elapsed)``.

    ``counts`` must be an ``(n_cores, N_EVENTS)`` float array indexed by
    :class:`repro.sim.pmu.Event`.  A real deployment wires this to
    perf_event_open file descriptors; this null implementation returns
    zeros so the control plane can be exercised without counters.
    """

    def __init__(self, n_cores: int) -> None:
        self.n_cores = n_cores

    def read(self) -> tuple[np.ndarray, float]:
        return np.zeros((self.n_cores, N_EVENTS)), 0.0


class LinuxPlatform(Platform):
    """CMM control surface over resctrl + MSR on a live machine."""

    GROUP_PREFIX = "cmm_clos"

    def __init__(
        self,
        n_cores: int,
        llc_ways: int,
        *,
        freq_ghz: float = 2.1,
        resctrl: ResctrlFs | None = None,
        msr: MsrDevice | None = None,
        pmu_reader: Callable[[], tuple[np.ndarray, float]] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._n_cores = n_cores
        self._llc_ways = llc_ways
        self.freq_ghz = freq_ghz
        self.resctrl = resctrl or ResctrlFs()
        self.msr = msr or MsrDevice()
        self.pmu_reader = pmu_reader or NullPmuReader(n_cores).read
        self._sleep = sleep
        self._core_clos = [0] * n_cores

    # ----------------------------------------------------- identity

    @property
    def n_cores(self) -> int:
        return self._n_cores

    @property
    def llc_ways(self) -> int:
        return self._llc_ways

    @property
    def cycles_per_second(self) -> float:
        return self.freq_ghz * 1e9

    # ----------------------------------------------- prefetch (MSR)

    def set_prefetch_mask(self, core: int, mask: int) -> None:
        if not 0 <= mask <= 0xF:
            raise ValueError(f"prefetch mask out of range: {mask:#x}")
        cur = self.msr.read(core, MSR_MISC_FEATURE_CONTROL)
        self.msr.write(core, MSR_MISC_FEATURE_CONTROL, (cur & ~0xF) | mask)

    def prefetch_mask(self, core: int) -> int:
        return self.msr.read(core, MSR_MISC_FEATURE_CONTROL) & 0xF

    # ------------------------------------------------- CAT (resctrl)

    def _group_name(self, clos: int) -> str | None:
        return None if clos == 0 else f"{self.GROUP_PREFIX}{clos}"

    def set_clos_cbm(self, clos: int, cbm: int) -> None:
        group = self._group_name(clos)
        if group is not None:
            self.resctrl.create_group(group)
        self.resctrl.write_l3_cbm(group, cbm)

    def assign_core_clos(self, core: int, clos: int) -> None:
        group = self._group_name(clos)
        if group is not None:
            self.resctrl.create_group(group)
        self._core_clos[core] = clos
        for c in set(self._core_clos):
            cpus = [i for i, cl in enumerate(self._core_clos) if cl == c]
            self.resctrl.assign_cpus(self._group_name(c), cpus)

    def reset_partitions(self) -> None:
        full = self.full_cbm()
        for group in self.resctrl.list_groups():
            if group.startswith(self.GROUP_PREFIX):
                self.resctrl.assign_cpus(group, [])
                self.resctrl.remove_group(group)
        self.resctrl.write_l3_cbm(None, full)
        self._core_clos = [0] * self._n_cores

    def partitions_are_reset(self) -> bool:
        no_groups = not any(
            g.startswith(self.GROUP_PREFIX) for g in self.resctrl.list_groups()
        )
        return no_groups and all(c == 0 for c in self._core_clos)

    # --------------------------------------------------- measurement

    def run_interval(self, units: int) -> PmuSample:
        """Sleep ``units`` milliseconds of wall time; return PMU deltas."""
        before, cyc0 = self.pmu_reader()
        self._sleep(units / 1000.0)
        after, cyc1 = self.pmu_reader()
        return PmuSample(after - before, cyc1 - cyc0)
