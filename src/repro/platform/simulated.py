"""Platform backend that drives the simulator."""

from __future__ import annotations

from repro.platform.base import Platform
from repro.sim.machine import Machine
from repro.sim.pmu import PmuSample


class SimulatedPlatform(Platform):
    """Adapts a :class:`repro.sim.machine.Machine` to :class:`Platform`.

    Interval units are demand accesses per active core.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    @property
    def n_cores(self) -> int:
        return self.machine.params.n_cores

    @property
    def llc_ways(self) -> int:
        return self.machine.params.llc.ways

    @property
    def cycles_per_second(self) -> float:
        return self.machine.params.cycles_per_second

    def set_prefetch_mask(self, core: int, mask: int) -> None:
        self.machine.prefetch_msr.set_mask(core, mask)

    def prefetch_mask(self, core: int) -> int:
        return self.machine.prefetch_msr.get_mask(core)

    def set_clos_cbm(self, clos: int, cbm: int) -> None:
        self.machine.cat.set_cbm(clos, cbm)

    def assign_core_clos(self, core: int, clos: int) -> None:
        self.machine.cat.assign_core(core, clos)

    def reset_partitions(self) -> None:
        self.machine.cat.reset()

    def partitions_are_reset(self) -> bool:
        cat = self.machine.cat
        full = (1 << cat.total_ways) - 1
        return all(c == 0 for c in cat._core_clos) and cat.get_cbm(0) == full

    def run_interval(self, units: int) -> PmuSample:
        snap = self.machine.pmu.snapshot()
        self.machine.run_accesses(units)
        return self.machine.pmu.delta_since(snap)

    def trace_fallbacks(self) -> int:
        """Zero-copy go-live fallbacks across the machine's traces."""
        return self.machine.trace_fallbacks()

    def batch_degradations(self) -> int:
        """Batch-engine degradations attributed to this machine's run."""
        return self.machine.batch_degradations()

    def native_fallbacks(self) -> int:
        """Native-kernel-tier fallbacks attributed to this machine's run."""
        return self.machine.native_fallbacks()
