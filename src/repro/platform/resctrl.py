"""Resctrl filesystem protocol (Intel CAT on Linux).

Implements the subset of the ``/sys/fs/resctrl`` interface the paper's
mechanisms need: allocation groups (one per CLOS), L3 capacity bit
masks via ``schemata``, and cpu association via ``cpus_list``.  The
root path is injectable so the protocol is fully testable without
hardware (see ``tests/platform/test_resctrl.py``).
"""

from __future__ import annotations

import os
from pathlib import Path


class ResctrlError(RuntimeError):
    pass


class ResctrlFs:
    """Reader/writer for one resctrl mount."""

    def __init__(self, root: str | os.PathLike = "/sys/fs/resctrl", *, cache_id: int = 0) -> None:
        self.root = Path(root)
        self.cache_id = cache_id

    def available(self) -> bool:
        return (self.root / "schemata").exists()

    # ------------------------------------------------------- groups

    def group_path(self, group: str | None) -> Path:
        """Path of a control group; ``None`` is the root/default group."""
        if group is None:
            return self.root
        if "/" in group or group in (".", ".."):
            raise ResctrlError(f"invalid group name {group!r}")
        return self.root / group

    def create_group(self, group: str) -> None:
        path = self.group_path(group)
        try:
            path.mkdir(exist_ok=True)
        except OSError as e:  # pragma: no cover - depends on kernel state
            raise ResctrlError(f"cannot create {path}: {e}") from e

    def remove_group(self, group: str) -> None:
        path = self.group_path(group)
        if path == self.root:
            raise ResctrlError("refusing to remove the resctrl root")
        if path.exists():
            # The kernel exposes these as virtual files and lets rmdir
            # succeed; on a plain filesystem (tests) remove them first.
            for name in ("schemata", "cpus_list", "cpus", "tasks", "mode"):
                f = path / name
                if f.exists():
                    f.unlink()
            path.rmdir()

    def list_groups(self) -> list[str]:
        if not self.root.exists():
            return []
        skip = {"info", "mon_groups", "mon_data"}
        return sorted(p.name for p in self.root.iterdir() if p.is_dir() and p.name not in skip)

    # ----------------------------------------------------- schemata

    def write_l3_cbm(self, group: str | None, cbm: int) -> None:
        if cbm <= 0:
            raise ResctrlError("CBM must be positive")
        path = self.group_path(group) / "schemata"
        path.write_text(f"L3:{self.cache_id}={cbm:x}\n")

    def read_l3_cbm(self, group: str | None) -> int:
        path = self.group_path(group) / "schemata"
        for raw in path.read_text().splitlines():
            line = raw.strip()
            if not line.startswith("L3"):
                continue
            _, _, rest = line.partition(":")
            for dom in rest.split(";"):
                dom_id, _, mask = dom.partition("=")
                if int(dom_id) == self.cache_id:
                    return int(mask, 16)
        raise ResctrlError(f"no L3 domain {self.cache_id} in {path}")

    # --------------------------------------------------------- cpus

    def assign_cpus(self, group: str | None, cpus: list[int]) -> None:
        path = self.group_path(group) / "cpus_list"
        path.write_text(format_cpu_list(cpus) + "\n")

    def read_cpus(self, group: str | None) -> list[int]:
        path = self.group_path(group) / "cpus_list"
        return parse_cpu_list(path.read_text())


def format_cpu_list(cpus: list[int]) -> str:
    """Render a cpu list in the kernel's range syntax (``0-2,5``)."""
    if not cpus:
        return ""
    cs = sorted(set(cpus))
    parts: list[str] = []
    start = prev = cs[0]
    for c in cs[1:]:
        if c == prev + 1:
            prev = c
            continue
        parts.append(f"{start}-{prev}" if prev > start else f"{start}")
        start = prev = c
    parts.append(f"{start}-{prev}" if prev > start else f"{start}")
    return ",".join(parts)


def parse_cpu_list(text: str) -> list[int]:
    """Parse the kernel's range syntax into a sorted cpu list."""
    out: set[int] = set()
    for part in text.strip().split(","):
        if not part:
            continue
        lo, _, hi = part.partition("-")
        if hi:
            out.update(range(int(lo), int(hi) + 1))
        else:
            out.add(int(lo))
    return sorted(out)
