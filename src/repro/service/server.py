"""The service front door: ``repro serve`` and :class:`ServiceClient`.

:class:`ExperimentService` wires the pieces together — an
:class:`~repro.experiments.engine.ExperimentSession` (optionally backed
by a :class:`~repro.service.cachetier.TieredResultCache` remote tier),
the :class:`~repro.service.scheduler.SingleFlightScheduler`, and the
:class:`~repro.service.journal.SweepJournal` directory — and exposes
them three ways:

* ``await service.serve(...)`` — the asyncio JSON-lines server on
  localhost TCP or a unix socket (what ``repro serve`` runs);
* ``service.start_background()`` — the same service on a background
  event-loop thread, for embedding in a process that is not itself
  async;
* :class:`ServiceClient` — one client class for both transports: the
  **in-process** form drives a background-started service directly
  (no sockets), the **socket** form speaks the wire protocol to a
  separately running daemon.

Startup is fail-soft where a daemon must be: an invalid
``REPRO_RUN_TIMEOUT`` produces one structured warning and the
no-timeout default instead of crashing ``repro serve``
(:func:`sanitized_run_timeout`); library construction of
:class:`ExperimentSession` keeps its strict parsing.  ``--resume``
replays every unsealed sweep journal before the listener opens, so a
``kill -9``'d service restarts into a state bit-identical to an
uninterrupted run (the CI smoke step pins this).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import socket
import threading
import time
import warnings
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.experiments.engine import (
    ExperimentSession,
    PlannedRun,
    default_run_timeout,
)
from repro.service.journal import SweepJournal
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    run_from_wire,
    run_to_wire,
)
from repro.service.scheduler import (
    OverloadedError,
    SchedulerConfig,
    SingleFlightScheduler,
)

__all__ = ["ExperimentService", "ServiceClient", "sanitized_run_timeout"]


def sanitized_run_timeout() -> tuple[float | None, str | None]:
    """``$REPRO_RUN_TIMEOUT`` parsed fail-soft, for service startup.

    Returns ``(timeout, warning)``: a daemon must not crash on a bad
    environment variable, so an unparsable value yields the no-timeout
    default plus one structured warning string (which ``repro serve``
    logs and :class:`ExperimentService` emits as a ``RuntimeWarning``).
    Library code keeps the strict :func:`default_run_timeout` behavior.
    """
    try:
        return default_run_timeout(), None
    except ValueError as e:
        return None, f"ignoring invalid REPRO_RUN_TIMEOUT ({e}); runs have no timeout"


class ExperimentService:
    """One scheduler + one session + one journal dir, served to clients."""

    def __init__(
        self,
        session: ExperimentSession | None = None,
        *,
        scheduler_config: SchedulerConfig | None = None,
        journal_dir: str | Path | None = None,
    ) -> None:
        self._owns_session = session is None
        if session is None:
            timeout, warning = sanitized_run_timeout()
            if warning is not None:
                warnings.warn(warning, RuntimeWarning, stacklevel=2)
                env = os.environ.pop("REPRO_RUN_TIMEOUT", None)
                try:
                    session = ExperimentSession()
                finally:
                    if env is not None:
                        os.environ["REPRO_RUN_TIMEOUT"] = env
            else:
                session = ExperimentSession(run_timeout=timeout)
        self.session = session
        if journal_dir is None and session.cache.root is not None:
            journal_dir = session.cache.root / "journal"
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.scheduler = SingleFlightScheduler(
            session, scheduler_config, journal_dir=self.journal_dir
        )
        self.started_at = time.time()
        self.resumed_sweeps = 0
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------ resume

    async def resume_incomplete(self) -> int:
        """Replay every unsealed journal; returns sweeps resumed.

        Pending keys re-execute through the normal scheduler path
        (completed keys replay from the cache, so a resumed sweep is
        bit-identical to an uninterrupted one); each replayed journal
        is then sealed.  A journal whose specs no longer parse is left
        unsealed and reported, never fatal.
        """
        if self.journal_dir is None:
            return 0
        resumed = 0
        for journal in SweepJournal.incomplete(self.journal_dir):
            try:
                runs = [run_from_wire(spec) for spec in journal.pending_specs()]
            except ProtocolError as e:
                warnings.warn(
                    f"cannot resume sweep {journal.sweep_id}: {e}",
                    RuntimeWarning, stacklevel=2,
                )
                journal.close()
                continue
            chunk = self.scheduler.config.max_client_pending
            outcomes: list[dict] = []
            for i in range(0, len(runs), chunk):
                outcomes.extend(
                    await self.scheduler.submit(
                        runs[i:i + chunk], client="__resume__", journal=False
                    )
                )
            for outcome in outcomes:
                if outcome.get("ok"):
                    journal.record_finished(outcome["key"])
                else:
                    journal.record_failed(outcome["key"], outcome["error"]["message"])
            journal.seal()
            journal.close()
            resumed += 1
        self.resumed_sweeps = resumed
        return resumed

    # ------------------------------------------------------------ status

    def status(self) -> dict:
        out = {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "uptime_s": time.time() - self.started_at,
            "resumed_sweeps": self.resumed_sweeps,
            "scheduler": self.scheduler.status(),
            "cache": {
                "hits": self.session.cache.hits,
                "misses": self.session.cache.misses,
                "corrupt": self.session.cache.corrupt,
            },
        }
        remote_status = getattr(self.session.cache, "remote_status", None)
        if callable(remote_status):
            out["remote_tier"] = remote_status()
        return out

    # ---------------------------------------------------------- dispatch

    async def dispatch(self, request: dict) -> dict:
        """Answer one protocol request; always a structured response.

        ``subscribe`` is not dispatched here: it switches a *connection*
        into streaming mode (:meth:`_stream_events`), which a
        single-response entry point cannot express.  In-process callers
        stream via ``scheduler.subscribe()`` /
        :meth:`ServiceClient.subscribe` instead.
        """
        op = request.get("op")
        req_id = request.get("id")
        if op == "ping":
            resp: dict = {"ok": True, "pong": time.time(), "protocol": PROTOCOL_VERSION}
        elif op == "status":
            resp = {"ok": True, "status": self.status()}
        elif op == "shutdown":
            resp = {"ok": True, "stopping": True}
        elif op == "submit":
            resp = await self._dispatch_submit(request)
        elif op in ("subscribe", "unsubscribe"):
            resp = error_response(
                "protocol", f"{op} requires a streaming connection (socket transport)"
            )
        else:
            resp = error_response("protocol", f"unknown op {op!r}")
        if req_id is not None:
            resp["id"] = req_id
        return resp

    async def _dispatch_submit(self, request: dict) -> dict:
        raw = request.get("runs")
        if not isinstance(raw, list) or not raw:
            return error_response("protocol", "submit needs a non-empty 'runs' list")
        client = request.get("client") or "anon"
        try:
            runs = [run_from_wire(w) for w in raw]
        except ProtocolError as e:
            return error_response("protocol", str(e))
        try:
            outcomes = await self.scheduler.submit(runs, client=str(client))
        except OverloadedError as e:
            return error_response(
                "overloaded", str(e), queued=e.queued, limit=e.limit
            )
        return {"ok": True, "results": outcomes}

    # ------------------------------------------------------------ server

    async def _stream_events(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, request: dict
    ) -> bool:
        """Streaming mode for one subscribed connection.

        Acks the ``subscribe``, then interleaves scheduler events (one
        JSON line each, ``"event"`` key set) with reads from the client.
        The only request honoured while subscribed is ``unsubscribe``,
        which acks and returns the connection to request/response mode;
        anything else gets a protocol error (submit from a second
        connection — events are global, not per-client).  Returns
        whether the connection should keep being served.
        """
        sub_id, queue = self.scheduler.subscribe()
        ack: dict = {"ok": True, "subscribed": True, "protocol": PROTOCOL_VERSION}
        if request.get("id") is not None:
            ack["id"] = request["id"]
        writer.write(encode_line(ack))
        await writer.drain()
        read_task: asyncio.Task | None = None
        event_task: asyncio.Task | None = None
        try:
            while True:
                if read_task is None:
                    read_task = asyncio.ensure_future(reader.readline())
                if event_task is None:
                    event_task = asyncio.ensure_future(queue.get())
                await asyncio.wait(
                    {read_task, event_task}, return_when=asyncio.FIRST_COMPLETED
                )
                if event_task.done():
                    event = event_task.result()
                    event_task = None
                    writer.write(encode_line({"ok": True, **event}))
                    await writer.drain()
                    if event.get("event") == "shutdown":
                        return False
                if read_task.done():
                    line = read_task.result()
                    read_task = None
                    if not line:
                        return False  # client went away
                    try:
                        req = decode_line(line)
                    except ProtocolError as e:
                        writer.write(encode_line(error_response("protocol", str(e))))
                        await writer.drain()
                        continue
                    if req.get("op") == "unsubscribe":
                        resp: dict = {"ok": True, "subscribed": False}
                        if req.get("id") is not None:
                            resp["id"] = req["id"]
                        writer.write(encode_line(resp))
                        await writer.drain()
                        return True
                    writer.write(encode_line(error_response(
                        "protocol",
                        "connection is subscribed; send {\"op\": \"unsubscribe\"} first",
                    )))
                    await writer.drain()
        finally:
            self.scheduler.unsubscribe(sub_id)
            for task in (read_task, event_task):
                if task is not None:
                    task.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await task

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = decode_line(line)
                except ProtocolError as e:
                    writer.write(encode_line(error_response("protocol", str(e))))
                    await writer.drain()
                    continue
                if request.get("op") == "subscribe":
                    if not await self._stream_events(reader, writer, request):
                        break
                    continue
                response = await self.dispatch(request)
                writer.write(encode_line(response))
                await writer.drain()
                if request.get("op") == "shutdown":
                    if self._stop_event is not None:
                        self._stop_event.set()
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # a vanished client is routine, not an error
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def serve(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: str | Path | None = None,
        resume: bool = False,
        ready: Callable[[tuple | str], None] | None = None,
    ) -> None:
        """Run the JSON-lines server until a ``shutdown`` op arrives.

        ``unix_path`` switches to a unix socket; otherwise a localhost
        TCP listener on ``port`` (0 picks a free one).  ``ready`` is
        called with the bound address once the listener — and any
        ``--resume`` replay — is up, so callers can synchronize.
        """
        self._stop_event = asyncio.Event()
        await self.scheduler.start()
        if resume:
            await self.resume_incomplete()
        if unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=str(unix_path)
            )
            bound: tuple | str = str(unix_path)
        else:
            server = await asyncio.start_server(self._handle_connection, host, port)
            bound = server.sockets[0].getsockname()[:2]
        try:
            if ready is not None:
                ready(bound)
            async with server:
                await self._stop_event.wait()
        finally:
            await self.scheduler.stop()
            if unix_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(str(unix_path))

    # ----------------------------------------------- in-process lifecycle

    def start_background(self, *, resume: bool = False) -> None:
        """Run the scheduler on a background event-loop thread.

        No socket is opened; an in-process :class:`ServiceClient`
        (``ServiceClient(service=...)``) drives :meth:`dispatch`
        directly.  Idempotent.
        """
        if self._loop is not None:
            return
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(loop)
            loop.call_soon(started.set)
            loop.run_forever()

        self._thread = threading.Thread(
            target=runner, name="repro-service", daemon=True
        )
        self._thread.start()
        started.wait()
        self._loop = loop
        self._call(self.scheduler.start())
        if resume:
            self._call(self.resume_incomplete())

    def _call(self, coro):
        """Run a coroutine on the background loop, synchronously."""
        if self._loop is None:
            raise RuntimeError("service not started; call start_background() first")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def close(self) -> None:
        """Stop the background loop (if any) and owned resources."""
        if self._loop is not None:
            with contextlib.suppress(Exception):
                self._call(self.scheduler.stop())
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=5)
            self._loop.close()
            self._loop = None
            self._thread = None
        remote = getattr(self.session.cache, "remote", None)
        if remote is not None and hasattr(remote, "close"):
            remote.close()
        if self._owns_session:
            self.session.close()

    def __enter__(self) -> "ExperimentService":
        self.start_background()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------- client


class ServiceClient:
    """One client for both transports.

    * ``ServiceClient(service=svc)`` — in-process: requests go straight
      to :meth:`ExperimentService.dispatch` on the service's background
      loop (``svc.start_background()`` is called if needed).
    * ``ServiceClient(host=..., port=...)`` / ``ServiceClient(path=...)``
      — socket: speaks the JSON-lines protocol to a running daemon.

    Every method returns the decoded response dict; :meth:`submit`
    returns the per-run outcome list and raises nothing on run
    failures — failures arrive as structured per-run errors, and an
    ``overloaded``/``protocol`` refusal is the returned response's
    ``error`` object.
    """

    def __init__(
        self,
        *,
        service: ExperimentService | None = None,
        host: str | None = None,
        port: int | None = None,
        path: str | Path | None = None,
        timeout_s: float | None = 120.0,
        client_name: str = "anon",
    ) -> None:
        if service is None and path is None and (host is None or port is None):
            raise ValueError("need service=, path=, or host= and port=")
        self._service = service
        self._addr = (host, port) if host is not None else None
        self._path = str(path) if path is not None else None
        self._timeout_s = timeout_s
        self.client_name = client_name
        self._sock: socket.socket | None = None
        self._file = None
        self._sub: tuple[int, asyncio.Queue] | None = None
        self._sub_socket = False
        if service is not None:
            service.start_background()

    # --------------------------------------------------------- transport

    def _connect(self):
        if self._sock is None:
            if self._path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self._timeout_s)
                sock.connect(self._path)
            else:
                sock = socket.create_connection(self._addr, timeout=self._timeout_s)
            self._sock = sock
            self._file = sock.makefile("rwb")
        return self._file

    def request(self, body: dict) -> dict:
        """Send one request, return its decoded response."""
        if self._service is not None:
            return self._service._call(self._service.dispatch(body))
        f = self._connect()
        f.write(encode_line(body))
        f.flush()
        line = f.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return decode_line(line)

    # --------------------------------------------------------------- ops

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def status(self) -> dict:
        return self.request({"op": "status"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def submit(
        self, runs: Iterable[PlannedRun] | Sequence[dict], *, client: str | None = None
    ) -> dict:
        """Submit a batch of runs (:class:`PlannedRun` or wire dicts)."""
        wire = [r if isinstance(r, dict) else run_to_wire(r) for r in runs]
        return self.request({
            "op": "submit",
            "client": client or self.client_name,
            "runs": wire,
        })

    # -------------------------------------------------------- subscriptions

    def subscribe(self) -> dict:
        """Start streaming per-run completion events to this client.

        Socket transport: the connection enters streaming mode — the
        only further requests it accepts are event reads
        (:meth:`next_event`) and :meth:`unsubscribe`; submit from a
        *second* client/connection (events are global).  In-process: a
        scheduler queue is attached directly.  Idempotent per client.
        """
        if self._sub is not None or self._sub_socket:
            return {"ok": True, "subscribed": True}
        if self._service is not None:
            svc = self._service

            async def _attach():
                return svc.scheduler.subscribe()

            self._sub = svc._call(_attach())
            return {"ok": True, "subscribed": True}
        resp = self.request({"op": "subscribe"})
        self._sub_socket = bool(resp.get("ok")) and resp.get("subscribed", False)
        return resp

    def next_event(self, *, timeout_s: float | None = None) -> dict:
        """Block for the next streamed event (``subscribe`` first).

        Raises ``TimeoutError`` when ``timeout_s`` elapses with no
        event; the subscription stays live.
        """
        if self._sub is not None:
            _sub_id, queue = self._sub
            fut = asyncio.run_coroutine_threadsafe(queue.get(), self._service._loop)
            try:
                return fut.result(timeout=timeout_s)
            except TimeoutError:
                fut.cancel()
                raise
        if not self._sub_socket:
            raise RuntimeError("not subscribed; call subscribe() first")
        f = self._file
        prior = self._sock.gettimeout()
        self._sock.settimeout(timeout_s if timeout_s is not None else self._timeout_s)
        try:
            line = f.readline()
        except socket.timeout:
            raise TimeoutError("no event within the timeout") from None
        finally:
            self._sock.settimeout(prior)
        if not line:
            raise ConnectionError("service closed the connection")
        return decode_line(line)

    def unsubscribe(self) -> dict:
        """Stop streaming; the connection returns to request/response mode.

        Socket transport may deliver a few already-queued event lines
        before the acknowledgement; they are drained here.
        """
        if self._sub is not None:
            (sub_id, _queue), self._sub = self._sub, None
            svc = self._service

            async def _detach():
                return svc.scheduler.unsubscribe(sub_id)

            svc._call(_detach())
            return {"ok": True, "subscribed": False}
        if not self._sub_socket:
            return {"ok": True, "subscribed": False}
        f = self._connect()
        f.write(encode_line({"op": "unsubscribe"}))
        f.flush()
        while True:
            line = f.readline()
            if not line:
                raise ConnectionError("service closed the connection")
            resp = decode_line(line)
            if "event" not in resp:  # in-flight events drain first
                self._sub_socket = False
                return resp

    def close(self) -> None:
        if self._sub is not None:
            with contextlib.suppress(Exception):
                self.unsubscribe()
        if self._file is not None:
            with contextlib.suppress(Exception):
                self._file.close()
            self._file = None
        if self._sock is not None:
            with contextlib.suppress(Exception):
                self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
