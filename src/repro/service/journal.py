"""Crash-consistent sweep journal: an append-only JSONL write-ahead log.

A sweep that dies — worker crash, OOM kill, ``kill -9`` on the whole
service — must be resumable without re-running completed keys and
without trusting anything the crash may have torn.  The journal makes
that possible with two write disciplines:

* the **plan segment** (first line: sweep id, schema, every planned key
  with its wire spec) is written to a temp file, fsynced, and
  ``os.replace``d into place — a journal either exists with its whole
  plan or not at all;
* **event lines** (``started`` / ``finished`` / ``failed`` / ``sealed``)
  are appended to the open file and fsynced on batch boundaries
  (every :attr:`SweepJournal.flush_every` events and at the end of each
  execute round), so a crash loses at most the tail of the current
  batch — never a record the caller was already told about.

Replay (:meth:`SweepJournal.load`) tolerates exactly the damage a crash
can cause: a torn final line (no newline, or truncated JSON) is
ignored.  Torn *interior* lines cannot happen under the append
discipline, so they raise :class:`JournalError` — that file was
corrupted by something other than a crash and should not be trusted.

Completed payloads live in the result cache, not the journal; a
``finished`` key replays from the cache and is bit-identical to an
uninterrupted run (differential-tested in
``tests/service/test_journal.py``).
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import uuid
from pathlib import Path
from typing import IO, Iterable

__all__ = ["JOURNAL_SCHEMA_VERSION", "JournalError", "SweepJournal"]

JOURNAL_SCHEMA_VERSION = 1

EVENT_PLAN = "plan"
EVENT_STARTED = "started"
EVENT_FINISHED = "finished"
EVENT_FAILED = "failed"
EVENT_SEALED = "sealed"


class JournalError(RuntimeError):
    """A journal file that cannot be trusted (not mere crash damage)."""


def _encode(obj: dict) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8") + b"\n"


class SweepJournal:
    """One sweep's write-ahead log at ``<root>/<sweep_id>.jsonl``.

    Create fresh with :meth:`create` (atomic plan segment), reopen an
    existing one with :meth:`load`.  :meth:`incomplete` lists the
    unsealed journals under a root — what ``repro serve --resume``
    picks up after a crash.
    """

    #: Events between forced fsyncs; the trailing partial batch is
    #: flushed by :meth:`flush` at execute boundaries and on close.
    flush_every = 8

    def __init__(
        self,
        path: Path,
        *,
        sweep_id: str,
        plan: dict[str, dict],
        events: list[dict] | None = None,
    ) -> None:
        self.path = Path(path)
        self.sweep_id = sweep_id
        #: key -> wire spec (see :func:`repro.service.protocol.run_to_wire`).
        self.plan = dict(plan)
        self._events: list[dict] = list(events or [])
        self._fh: IO[bytes] | None = None
        self._unsynced = 0

    # ------------------------------------------------------------ create

    @classmethod
    def create(
        cls,
        root: str | Path,
        planned: dict[str, dict],
        *,
        sweep_id: str | None = None,
    ) -> "SweepJournal":
        """Start a journal for ``planned`` (``{key: wire_spec}``).

        The plan line is written tmp+fsync+``os.replace`` so a crash
        during creation leaves no half-planned journal behind.
        """
        root = Path(root).expanduser()
        root.mkdir(parents=True, exist_ok=True)
        sweep_id = sweep_id or uuid.uuid4().hex[:16]
        path = root / f"{sweep_id}.jsonl"
        if path.exists():
            raise JournalError(f"journal {path} already exists")
        plan_line = _encode({
            "event": EVENT_PLAN,
            "schema": JOURNAL_SCHEMA_VERSION,
            "sweep": sweep_id,
            "runs": [{"key": k, "spec": spec} for k, spec in planned.items()],
        })
        fd, tmp = tempfile.mkstemp(dir=root, prefix=f".{sweep_id}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(plan_line)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        return cls(path, sweep_id=sweep_id, plan=dict(planned))

    # -------------------------------------------------------------- load

    @classmethod
    def load(cls, path: str | Path) -> "SweepJournal":
        """Reopen a journal, tolerating a crash-torn final line."""
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as e:
            raise JournalError(f"cannot read journal {path}: {e}") from None
        lines = raw.split(b"\n")
        # A well-formed file ends with a newline, leaving one empty
        # trailing chunk; anything else is a torn tail to discard.
        torn_tail = lines and lines[-1] != b""
        body = lines[:-1]
        records: list[dict] = []
        for i, line in enumerate(body):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(body) - 1 and not torn_tail:
                    # Crash between write() and the newline landing.
                    break
                raise JournalError(
                    f"journal {path} line {i + 1} is corrupt mid-file"
                ) from None
        if not records or records[0].get("event") != EVENT_PLAN:
            raise JournalError(f"journal {path} has no plan segment")
        head = records[0]
        if head.get("schema") != JOURNAL_SCHEMA_VERSION:
            raise JournalError(
                f"journal {path} written under schema {head.get('schema')!r}, "
                f"expected {JOURNAL_SCHEMA_VERSION}"
            )
        plan = {r["key"]: r["spec"] for r in head.get("runs", [])}
        return cls(path, sweep_id=head.get("sweep", path.stem), plan=plan,
                   events=records[1:])

    @classmethod
    def incomplete(cls, root: str | Path) -> list["SweepJournal"]:
        """Every unsealed journal under ``root``, oldest first.

        Journals that cannot be parsed at all are skipped (they never
        recorded a trustworthy plan); resumable ones are returned.
        """
        root = Path(root).expanduser()
        if not root.is_dir():
            return []
        out: list[SweepJournal] = []
        for path in sorted(root.glob("*.jsonl"), key=lambda p: p.stat().st_mtime):
            try:
                j = cls.load(path)
            except JournalError:
                continue
            if not j.sealed:
                out.append(j)
        return out

    # ------------------------------------------------------------ events

    def _append(self, record: dict) -> None:
        if self._fh is None:
            self._fh = open(self.path, "ab")
        self._fh.write(_encode(record))
        self._events.append(record)
        self._unsynced += 1
        if self._unsynced >= self.flush_every:
            self.flush()

    def record_started(self, key: str) -> None:
        self._append({"event": EVENT_STARTED, "key": key})

    def record_finished(self, key: str) -> None:
        self._append({"event": EVENT_FINISHED, "key": key})

    def record_failed(self, key: str, error: str) -> None:
        self._append({"event": EVENT_FAILED, "key": key, "error": error})

    def seal(self) -> None:
        """Mark the sweep complete; sealed journals are never resumed."""
        if not self.sealed:
            self._append({"event": EVENT_SEALED})
        self.flush()

    def flush(self) -> None:
        """Force buffered events to disk (the batch-boundary fsync)."""
        if self._fh is not None and self._unsynced:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self._unsynced = 0

    def close(self) -> None:
        self.flush()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- state

    @property
    def sealed(self) -> bool:
        return any(e.get("event") == EVENT_SEALED for e in self._events)

    def finished_keys(self) -> set[str]:
        return {e["key"] for e in self._events if e.get("event") == EVENT_FINISHED}

    def failed_keys(self) -> dict[str, str]:
        """Keys whose last recorded outcome was a failure."""
        out: dict[str, str] = {}
        for e in self._events:
            if e.get("event") == EVENT_FAILED:
                out[e["key"]] = e.get("error", "unknown failure")
            elif e.get("event") == EVENT_FINISHED:
                out.pop(e["key"], None)
        return out

    def pending_keys(self) -> list[str]:
        """Planned keys with no ``finished`` record, in plan order.

        ``started``-but-unfinished keys are pending too: the crash may
        have killed them mid-run, and re-running a deterministic run is
        always safe.
        """
        done = self.finished_keys()
        return [k for k in self.plan if k not in done]

    def pending_specs(self) -> Iterable[dict]:
        """The wire specs for :meth:`pending_keys`."""
        return [self.plan[k] for k in self.pending_keys()]
