"""Async single-flight scheduler: one execution per key, for everyone.

Many clients regenerating the same figures submit heavily overlapping
:class:`PlannedRun` batches.  The scheduler collapses that load:

* **Single-flight deduplication** — each cache key has at most one
  in-flight execution across *all* clients; late submitters attach to
  the existing future and share its result (or its structured error).
  Combined with the content-addressed cache this gives the global
  invariant the chaos gate pins: a key executes at most once, ever.
* **Admission control** — queues are bounded globally and per client.
  A submission that would overflow them is refused with a structured
  ``overloaded`` error *at the front door* (attaching to already
  in-flight keys is always free — it adds no queue growth).
* **Fairness** — the dispatcher drains queued runs round-robin across
  clients, so one client's 10 000-run sweep cannot starve another's
  two-run figure refresh.
* **Deadlines** — executions inherit the session's per-run timeout
  (``REPRO_RUN_TIMEOUT`` semantics); ``submit_timeout_s`` additionally
  bounds how long a *client* waits, converting a wedged execution into
  a structured ``deadline`` error instead of a hang.

* **Event streaming** — :meth:`subscribe` registers a bounded queue
  that receives one event per run *as it completes* (key, label,
  cached/error, batch progress), not just the per-batch response the
  submit op returns.  Queues are lossy under backpressure: a slow
  subscriber drops its oldest events rather than stalling dispatch.

Execution itself is delegated to a synchronous
:class:`~repro.experiments.engine.ExperimentSession` on a worker thread
(one dispatch batch at a time — the session's process pool provides the
parallelism), so every robustness property the engine already has
(retry, pool respawn, isolation, atomic cache writes) is inherited
rather than reimplemented.  When a :class:`SweepJournal` directory is
configured, every submitted batch is journaled planned → started →
finished/failed with batch-boundary fsyncs; ``repro serve --resume``
replays unsealed journals after a crash.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.experiments.engine import ExperimentSession, PlannedRun
from repro.service.journal import SweepJournal
from repro.service.protocol import run_to_wire

__all__ = ["OverloadedError", "SchedulerConfig", "SingleFlightScheduler"]


class OverloadedError(RuntimeError):
    """Admission refused: accepting the batch would overflow the queue."""

    def __init__(self, message: str, *, queued: int, limit: int) -> None:
        super().__init__(message)
        self.queued = queued
        self.limit = limit


@dataclass(frozen=True)
class SchedulerConfig:
    """Bounds for admission, batching, and client-side deadlines."""

    #: Total queued (not yet dispatched) runs across all clients.
    max_pending: int = 256
    #: Queued runs any single client may hold.
    max_client_pending: int = 64
    #: Runs handed to one ``ExperimentSession.execute`` dispatch.
    batch_max: int = 16
    #: Ceiling on how long a client waits for its batch; ``None`` waits
    #: for the execution (which has its own per-run timeout).
    submit_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_pending < 1 or self.max_client_pending < 1 or self.batch_max < 1:
            raise ValueError("scheduler bounds must be at least 1")
        if self.submit_timeout_s is not None and self.submit_timeout_s <= 0:
            raise ValueError("submit_timeout_s must be positive or None")


def _ok(key: str, payload: dict, *, cached: bool, deduped: bool = False) -> dict:
    return {"key": key, "ok": True, "payload": payload, "cached": cached, "deduped": deduped}


def _err(key: str, kind: str, message: str) -> dict:
    return {"key": key, "ok": False, "error": {"type": kind, "message": message}}


class SingleFlightScheduler:
    """The service's run queue; owns dispatch order, not execution.

    Lives on one asyncio event loop.  :meth:`start` spawns the
    dispatcher task; :meth:`submit` is the only producer.  All state
    (queues, in-flight map, counters) is loop-confined — no locks.
    """

    def __init__(
        self,
        session: ExperimentSession,
        config: SchedulerConfig | None = None,
        *,
        journal_dir: str | Path | None = None,
    ) -> None:
        self.session = session
        self.config = config or SchedulerConfig()
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        #: key -> future resolving to this run's outcome dict.
        self._inflight: dict[str, asyncio.Future] = {}
        #: client -> queued (key, run) pairs not yet dispatched.
        self._queues: dict[str, deque[tuple[str, PlannedRun]]] = {}
        self._wakeup = asyncio.Event()
        self._dispatcher: asyncio.Task | None = None
        self._closing = False
        #: sub_id -> bounded event queue (loop-confined, like the rest).
        self._subscribers: dict[int, asyncio.Queue] = {}
        self._next_sub_id = 0
        #: The dispatcher's loop, captured in :meth:`start` so the
        #: worker thread can marshal events back via call_soon_threadsafe.
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Journals with unresolved keys, checked for seal on resolve.
        self._open_journals: list[tuple[SweepJournal, set[str]]] = []
        self.counters: dict[str, int] = {
            "submitted": 0, "executed": 0, "cache_replays": 0,
            "deduped": 0, "overloaded": 0, "failed": 0, "deadline_expired": 0,
        }

    # ---------------------------------------------------------- lifecycle

    async def start(self) -> None:
        if self._dispatcher is None:
            self._closing = False
            self._loop = asyncio.get_running_loop()
            self._dispatcher = asyncio.ensure_future(self._dispatch_loop())

    async def stop(self) -> None:
        """Stop dispatching; pending futures resolve with ``shutdown`` errors."""
        self._closing = True
        self._wakeup.set()
        self._emit({"event": "shutdown"})
        self._subscribers.clear()
        if self._dispatcher is not None:
            task, self._dispatcher = self._dispatcher, None
            await task
        for q in self._queues.values():
            for key, _run in q:
                fut = self._inflight.get(key)
                if fut is not None and not fut.done():
                    fut.set_result(_err(key, "shutdown", "service shutting down"))
        self._queues.clear()
        for journal, _keys in self._open_journals:
            journal.close()
        self._open_journals.clear()

    # --------------------------------------------------------- subscribers

    def subscribe(self, *, max_queue: int = 256) -> tuple[int, asyncio.Queue]:
        """Register an event queue; returns ``(sub_id, queue)``.

        The queue receives one dict per completed run (see
        :meth:`_execute_batch`) and an ``{"event": "shutdown"}`` marker
        when the scheduler stops.  Bounded and lossy: when a subscriber
        lags ``max_queue`` events behind, its oldest event is dropped —
        dispatch never blocks on a slow consumer.
        """
        sub_id = self._next_sub_id
        self._next_sub_id += 1
        queue: asyncio.Queue = asyncio.Queue(maxsize=max_queue)
        self._subscribers[sub_id] = queue
        return sub_id, queue

    def unsubscribe(self, sub_id: int) -> bool:
        """Drop a subscriber; returns whether it was registered."""
        return self._subscribers.pop(sub_id, None) is not None

    def _emit(self, event: dict) -> None:
        """Fan one event to every subscriber queue (loop thread only)."""
        for queue in self._subscribers.values():
            if queue.full():
                try:
                    queue.get_nowait()  # lossy: drop the oldest
                except asyncio.QueueEmpty:  # pragma: no cover - full implies non-empty
                    pass
            queue.put_nowait(event)

    # ---------------------------------------------------------- admission

    def _queued_total(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def _admit(self, client: str, new_keys: Sequence[str]) -> None:
        total = self._queued_total()
        if total + len(new_keys) > self.config.max_pending:
            self.counters["overloaded"] += 1
            raise OverloadedError(
                f"run queue full ({total} queued, limit {self.config.max_pending}); retry later",
                queued=total, limit=self.config.max_pending,
            )
        mine = len(self._queues.get(client, ()))
        if mine + len(new_keys) > self.config.max_client_pending:
            self.counters["overloaded"] += 1
            raise OverloadedError(
                f"client {client!r} queue full ({mine} queued, "
                f"limit {self.config.max_client_pending}); retry later",
                queued=mine, limit=self.config.max_client_pending,
            )

    # ------------------------------------------------------------- submit

    async def submit(
        self, runs: Iterable[PlannedRun], *, client: str = "anon", journal: bool = True
    ) -> list[dict]:
        """Execute a batch; one outcome dict per *unique* key, in order.

        Keys already in flight attach to the existing execution
        (single-flight); new keys pass admission control and are queued
        fairly.  Raises :class:`OverloadedError` when admission fails —
        in that case *nothing* from this batch was queued.
        ``journal=False`` skips write-ahead logging for this batch (the
        resume path uses it: a replay is already journaled).
        """
        ordered: dict[str, PlannedRun] = {}
        for r in runs:
            ordered.setdefault(r.key(), r)
        self.counters["submitted"] += len(ordered)

        new: dict[str, PlannedRun] = {
            k: r for k, r in ordered.items() if k not in self._inflight
        }
        self.counters["deduped"] += len(ordered) - len(new)
        self._admit(client, list(new))

        if journal and self.journal_dir is not None and ordered:
            wal = SweepJournal.create(
                self.journal_dir, {k: run_to_wire(r) for k, r in ordered.items()}
            )
            self._open_journals.append((wal, set(ordered)))

        loop = asyncio.get_running_loop()
        for key, run in new.items():
            self._inflight[key] = loop.create_future()
            self._queues.setdefault(client, deque()).append((key, run))
        if new:
            self._wakeup.set()

        waits = {k: asyncio.shield(self._inflight[k]) for k in ordered}
        outcomes: list[dict] = []
        for key in ordered:
            deduped = key not in new
            try:
                if self.config.submit_timeout_s is not None:
                    outcome = await asyncio.wait_for(
                        waits[key], timeout=self.config.submit_timeout_s
                    )
                else:
                    outcome = await waits[key]
            except asyncio.TimeoutError:
                self.counters["deadline_expired"] += 1
                outcome = _err(
                    key, "deadline",
                    f"no result within {self.config.submit_timeout_s:.6g}s "
                    "(execution continues; resubmit to collect it)",
                )
            else:
                if deduped and outcome.get("ok"):
                    outcome = dict(outcome, deduped=True)
            outcomes.append(outcome)
        return outcomes

    # ----------------------------------------------------------- dispatch

    def _drain_fair(self) -> list[tuple[str, PlannedRun]]:
        """Up to ``batch_max`` queued runs, round-robin across clients."""
        batch: list[tuple[str, PlannedRun]] = []
        clients = deque(name for name, q in self._queues.items() if q)
        while clients and len(batch) < self.config.batch_max:
            name = clients.popleft()
            q = self._queues[name]
            key, run = q.popleft()
            batch.append((key, run))
            if q:
                clients.append(name)
        self._queues = {n: q for n, q in self._queues.items() if q}
        return batch

    async def _dispatch_loop(self) -> None:
        while not self._closing:
            if not any(self._queues.values()):
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            batch = self._drain_fair()
            if not batch:
                continue
            self._journal_started([k for k, _ in batch])
            try:
                results = await asyncio.to_thread(self._execute_batch, batch)
            except BaseException as e:  # the session should not raise, but never hang clients
                results = {k: _err(k, "internal", f"dispatch failed: {e}") for k, _ in batch}
            for key, outcome in results.items():
                fut = self._inflight.pop(key, None)
                if fut is not None and not fut.done():
                    fut.set_result(outcome)
                self._resolve_journals(key, outcome)

    def _execute_batch(self, batch: list[tuple[str, PlannedRun]]) -> dict[str, dict]:
        """Worker-thread body: one ``execute`` call for the whole batch.

        While the batch executes, the session's progress callback is
        wrapped to stream one ``run`` event per completion to the
        subscriber queues (marshalled onto the scheduler's loop).  Safe
        because the dispatcher serializes batches — exactly one
        ``_execute_batch`` runs at a time.
        """
        session = self.session
        first_record = len(session.records)
        loop, prior = self._loop, getattr(session, "progress", None)

        def progress(rec, done: int, total: int) -> None:
            if prior is not None:
                prior(rec, done, total)
            if loop is not None and not loop.is_closed() and self._subscribers:
                loop.call_soon_threadsafe(self._emit, {
                    "event": "run",
                    "key": rec.key,
                    "kind": rec.kind,
                    "label": rec.label,
                    "scale": rec.scale,
                    "seconds": rec.seconds,
                    "cached": rec.cached,
                    "error": rec.error,
                    "done": done,
                    "total": total,
                })

        session.progress = progress
        try:
            payloads = session.execute([r for _, r in batch], strict=False)
        finally:
            session.progress = prior
        cached = {
            rec.key: rec.cached for rec in session.records[first_record:]
        }
        out: dict[str, dict] = {}
        for key, run in batch:
            if key in payloads:
                was_cached = cached.get(key, False)
                self.counters["cache_replays" if was_cached else "executed"] += 1
                out[key] = _ok(key, payloads[key], cached=was_cached)
            else:
                self.counters["failed"] += 1
                msg = session.failed.get(key, "run failed with no recorded error")
                out[key] = _err(key, "run-failed", msg)
        return out

    # ----------------------------------------------------------- journals

    def _journal_started(self, keys: list[str]) -> None:
        # Started events flush with the finish batch; see _resolve_journals.
        for journal, pending in self._open_journals:
            for key in keys:
                if key in pending:
                    journal.record_started(key)

    def _resolve_journals(self, key: str, outcome: dict) -> None:
        still_open: list[tuple[SweepJournal, set[str]]] = []
        for journal, pending in self._open_journals:
            if key in pending:
                if outcome.get("ok"):
                    journal.record_finished(key)
                else:
                    journal.record_failed(key, outcome["error"]["message"])
                pending.discard(key)
                journal.flush()  # batch boundary: the outcome is durable
            if pending:
                still_open.append((journal, pending))
            else:
                journal.seal()
                journal.close()
        self._open_journals = still_open

    # ------------------------------------------------------------- status

    def status(self) -> dict:
        return {
            "queued": self._queued_total(),
            "inflight": len(self._inflight),
            "clients": sum(1 for q in self._queues.values() if q),
            "subscribers": len(self._subscribers),
            "open_journals": len(self._open_journals),
            **self.counters,
        }
