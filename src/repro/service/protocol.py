"""Wire format for the experiment service.

The service speaks **JSON lines**: every request and every response is
one JSON object on one ``\\n``-terminated line.  The same encoding is
used by the sweep journal, so a journaled plan can be replayed through
the exact code path a client submission takes.

Requests
--------
``{"op": "ping"}``
    Liveness probe; answered with ``{"ok": true, "pong": ...}``.
``{"op": "submit", "client": NAME, "runs": [RUN, ...]}``
    Execute a batch of runs; ``RUN`` objects come from
    :func:`run_to_wire`.  Answered with per-run results (or one
    structured ``overloaded`` error for the whole batch).
``{"op": "status"}``
    Service counters: queue depths, single-flight hits, degradations,
    remote-tier state, journal info.
``{"op": "shutdown"}``
    Acknowledge and stop the server.

Responses carry ``"ok"``; a failed operation is ``{"ok": false,
"error": {"type": ..., "message": ...}}`` — clients always receive a
result or a structured error, never a dropped connection mid-protocol.

Run objects serialize everything a :class:`PlannedRun` needs to be
reconstructed in another process: the full :class:`ScaleConfig` (not
just its name, so custom scales travel), the workload mix, and the
kind-specific fields.  :func:`run_from_wire` validates eagerly and
raises :class:`ProtocolError` on malformed input so bad requests are
rejected at the front door, not deep inside a worker.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any

from repro.experiments.config import ScaleConfig
from repro.experiments.engine import (
    KIND_ALONE,
    KIND_HOOK,
    KIND_MECHANISM,
    KIND_PROFILE,
    PlannedRun,
)
from repro.workloads.mixes import WorkloadMix

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_line",
    "encode_line",
    "error_response",
    "run_from_wire",
    "run_to_wire",
]

#: Bump when the wire format changes incompatibly; servers reject
#: mismatched submissions with a structured error instead of guessing.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A malformed wire message (bad JSON, missing/invalid fields)."""


def encode_line(obj: dict) -> bytes:
    """One JSON-lines frame: compact JSON plus the terminating newline."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes | str) -> dict:
    """Parse one frame; :class:`ProtocolError` on anything malformed."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as e:
        raise ProtocolError(f"malformed JSON frame: {e}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


def error_response(kind: str, message: str, **extra: Any) -> dict:
    """A structured ``{"ok": false, "error": ...}`` response body."""
    err = {"type": kind, "message": message}
    err.update(extra)
    return {"ok": False, "error": err}


# ----------------------------------------------------------- run objects


def run_to_wire(run: PlannedRun) -> dict:
    """Serialize a :class:`PlannedRun` for submission or journaling."""
    wire: dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "kind": run.kind,
        "scale": asdict(run.sc),
    }
    if run.mix is not None:
        wire["mix"] = {
            "name": run.mix.name,
            "category": run.mix.category,
            "benchmarks": list(run.mix.benchmarks),
            "seed": run.mix.seed,
        }
    if run.mechanism is not None:
        wire["mechanism"] = run.mechanism
    if run.bench is not None:
        wire["bench"] = run.bench
    if run.way_sweep is not None:
        wire["way_sweep"] = list(run.way_sweep)
    return wire


def _require(wire: dict, field: str, types: type | tuple) -> Any:
    try:
        value = wire[field]
    except KeyError:
        raise ProtocolError(f"run object missing {field!r}") from None
    if not isinstance(value, types):
        raise ProtocolError(f"run field {field!r} has invalid type {type(value).__name__}")
    return value


def run_from_wire(wire: dict) -> PlannedRun:
    """Reconstruct a :class:`PlannedRun`; :class:`ProtocolError` on bad input."""
    if not isinstance(wire, dict):
        raise ProtocolError(f"run object must be a dict, got {type(wire).__name__}")
    version = wire.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported run wire version {version!r}")
    kind = _require(wire, "kind", str)
    if kind not in (KIND_MECHANISM, KIND_ALONE, KIND_PROFILE, KIND_HOOK):
        raise ProtocolError(f"unknown run kind {kind!r}")
    try:
        sc = ScaleConfig(**_require(wire, "scale", dict))
    except TypeError as e:
        raise ProtocolError(f"invalid scale config: {e}") from None
    mix = None
    if "mix" in wire:
        m = _require(wire, "mix", dict)
        try:
            mix = WorkloadMix(
                name=m["name"],
                category=m["category"],
                benchmarks=tuple(m["benchmarks"]),
                seed=m["seed"],
            )
        except (KeyError, TypeError) as e:
            raise ProtocolError(f"invalid mix: {e}") from None
    way_sweep = wire.get("way_sweep")
    if kind == KIND_MECHANISM and mix is None:
        raise ProtocolError("mechanism runs require a mix")
    if kind in (KIND_ALONE, KIND_PROFILE, KIND_HOOK) and "bench" not in wire:
        raise ProtocolError(f"{kind} runs require a bench")
    try:
        return PlannedRun(
            kind=kind,
            sc=sc,
            mix=mix,
            mechanism=wire.get("mechanism"),
            bench=wire.get("bench"),
            way_sweep=tuple(way_sweep) if way_sweep is not None else None,
        )
    except KeyError as e:  # unknown mechanism — PlannedRun validates eagerly
        raise ProtocolError(str(e)) from None
