"""The experiment service: a resilient front door for the engine.

``repro.service`` promotes :class:`~repro.experiments.engine.ExperimentSession`
from a library into a long-running daemon (``repro serve``) that many
concurrent clients share.  Robustness is the organizing principle:

* :mod:`repro.service.scheduler` — asyncio **single-flight** scheduler:
  one execution per cache key across every connected client, bounded
  admission with per-client fairness, structured ``overloaded``
  responses instead of unbounded queues;
* :mod:`repro.service.journal` — crash-consistent **sweep journal**: an
  append-only JSONL write-ahead log of planned/started/finished runs so
  ``repro serve --resume`` (and ``ExperimentSession.execute(resume=)``)
  replays a killed sweep without re-running completed keys;
* :mod:`repro.service.cachetier` — a pluggable **remote cache tier**
  behind the on-disk layout (:class:`CacheTier` protocol, HTTP
  reference implementation) wrapped in retry-with-jittered-backoff, a
  half-open circuit breaker, hedged reads, and read-repair — remote
  failures degrade the service to local-only operation, counted and
  reported, never fatal;
* :mod:`repro.service.server` / :mod:`repro.service.protocol` — the
  localhost TCP / unix-socket JSON-lines front door and the in-process
  :class:`ServiceClient`.

See ``docs/robustness.md`` ("The experiment service") for the failure-
mode table and ``repro chaos`` for the seeded network-fault gate.
"""

from repro.service.cachetier import (
    CacheTier,
    CircuitBreaker,
    HTTPCacheTier,
    InMemoryCacheTier,
    RemoteTierConfig,
    ResilientTier,
    TieredResultCache,
)
from repro.service.journal import JournalError, SweepJournal
from repro.service.protocol import (
    ProtocolError,
    run_from_wire,
    run_to_wire,
)
from repro.service.scheduler import OverloadedError, SchedulerConfig, SingleFlightScheduler
from repro.service.server import ExperimentService, ServiceClient

__all__ = [
    "CacheTier",
    "CircuitBreaker",
    "ExperimentService",
    "HTTPCacheTier",
    "InMemoryCacheTier",
    "JournalError",
    "OverloadedError",
    "ProtocolError",
    "RemoteTierConfig",
    "ResilientTier",
    "SchedulerConfig",
    "ServiceClient",
    "SingleFlightScheduler",
    "SweepJournal",
    "TieredResultCache",
    "run_from_wire",
    "run_to_wire",
]
