"""Pluggable remote cache tier behind the on-disk result layout.

A fleet of hosts regenerating the same figures should share one warm
cache.  This module adds that tier *behind* the existing
content-addressed store without weakening any of its guarantees:

* :class:`CacheTier` — the byte-oriented protocol a backend implements
  (``get``/``put`` of one opaque blob per key);
* :class:`HTTPCacheTier` — the reference implementation: a plain HTTP
  object store mirroring the on-disk layout (``<base>/<key[:2]>/
  <key>.json``), stdlib-only;
* :class:`InMemoryCacheTier` — in-process backend for tests and chaos;
* :class:`ResilientTier` — wraps any backend in bounded
  **retry-with-seeded-full-jitter backoff**, a **half-open circuit
  breaker**, and **hedged reads**: a remote read slower than the hedge
  deadline is abandoned (the sweep recomputes locally) but its late
  result still read-repairs the local tier when it lands;
* :class:`TieredResultCache` — a drop-in
  :class:`~repro.experiments.engine.ResultCache` that consults the
  remote tier on local misses (validating and read-repairing hits into
  the local atomic-write layout) and write-through publishes local
  puts.

The failure contract mirrors PR 3's :class:`DegradedState`: **remote
failures are never fatal**.  Refused connections, truncated bodies,
timeouts, and flapping all degrade the cache to local-only operation;
every degradation is counted and surfaced through
:meth:`TieredResultCache.remote_status` / the service status op, never
raised into a sweep.  A remote blob that fails validation (torn JSON,
wrong schema) is treated as a miss and counted — it is *not*
quarantined locally, because the local tier never held it.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Protocol, runtime_checkable

from repro.experiments.engine import SCHEMA_VERSION, ResultCache

__all__ = [
    "CacheTier",
    "CacheTierError",
    "CircuitBreaker",
    "HTTPCacheTier",
    "InMemoryCacheTier",
    "RemoteTierConfig",
    "ResilientTier",
    "TieredResultCache",
]


class CacheTierError(RuntimeError):
    """A remote-tier operation failed (network, server, storage)."""


@runtime_checkable
class CacheTier(Protocol):
    """What a remote cache backend must provide.

    Implementations move one opaque blob per key and signal failure by
    raising (:class:`CacheTierError` or any :class:`OSError` family
    error); retries, breakers, and degradation accounting live in
    :class:`ResilientTier`, not in backends.
    """

    def get(self, key: str) -> bytes | None:
        """The blob for ``key``, or ``None`` when the tier misses."""
        ...  # pragma: no cover - protocol

    def put(self, key: str, blob: bytes) -> None:
        """Store ``blob`` under ``key`` (idempotent; last write wins)."""
        ...  # pragma: no cover - protocol


class InMemoryCacheTier:
    """Dict-backed tier: the reference for tests and chaos scenarios."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def get(self, key: str) -> bytes | None:
        with self._lock:
            return self._blobs.get(key)

    def put(self, key: str, blob: bytes) -> None:
        with self._lock:
            self._blobs[key] = bytes(blob)

    def __len__(self) -> int:
        return len(self._blobs)


class HTTPCacheTier:
    """HTTP object-store tier mirroring the on-disk layout.

    ``GET <base>/<key[:2]>/<key>.json`` fetches a blob (404 is a miss),
    ``PUT`` stores one.  Any other outcome — connection refused, 5xx,
    timeout — raises :class:`CacheTierError` for the resilience wrapper
    to count and absorb.  Stdlib-only (``urllib``), so the tier works
    against anything from ``python -m http.server`` + a PUT handler to
    an S3-style gateway.
    """

    def __init__(self, base_url: str, *, timeout_s: float = 5.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _url(self, key: str) -> str:
        return f"{self.base_url}/{key[:2]}/{key}.json"

    def get(self, key: str) -> bytes | None:
        req = urllib.request.Request(self._url(key), method="GET")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.read()
        except urllib.error.HTTPError as e:
            if e.code == 404:
                return None
            raise CacheTierError(f"remote GET {key[:12]}… failed: HTTP {e.code}") from None
        except (urllib.error.URLError, OSError, TimeoutError) as e:
            raise CacheTierError(f"remote GET {key[:12]}… failed: {e}") from None

    def put(self, key: str, blob: bytes) -> None:
        req = urllib.request.Request(
            self._url(key), data=blob, method="PUT",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s):
                pass
        except urllib.error.HTTPError as e:
            raise CacheTierError(f"remote PUT {key[:12]}… failed: HTTP {e.code}") from None
        except (urllib.error.URLError, OSError, TimeoutError) as e:
            raise CacheTierError(f"remote PUT {key[:12]}… failed: {e}") from None


# ------------------------------------------------------------ resilience


@dataclass(frozen=True)
class RemoteTierConfig:
    """Knobs for :class:`ResilientTier`."""

    #: Extra attempts per operation beyond the first.
    retries: int = 2
    #: Full-jitter backoff: each retry sleeps ``uniform(0, base * factor**n)``.
    backoff_base_s: float = 0.02
    backoff_factor: float = 2.0
    #: Seed for the jitter stream (deterministic in tests and chaos).
    jitter_seed: int = 0
    #: Consecutive failed operations before the breaker opens.
    breaker_threshold: int = 5
    #: Seconds the breaker stays open before admitting one probe.
    breaker_cooldown_s: float = 10.0
    #: Hedge deadline for reads: a remote read slower than this is
    #: abandoned (the caller proceeds local-only) but read-repairs on
    #: late arrival.  ``None`` waits indefinitely.
    hedge_timeout_s: float | None = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff_base_s < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.hedge_timeout_s is not None and self.hedge_timeout_s <= 0:
            raise ValueError("hedge_timeout_s must be positive or None")


class CircuitBreaker:
    """Half-open circuit breaker over an unreliable dependency.

    ``closed`` passes every call; ``breaker_threshold`` consecutive
    failures open it.  While ``open``, calls are short-circuited (no
    network touched) until ``cooldown_s`` elapses, after which exactly
    one probe is admitted (``half-open``): its success closes the
    breaker, its failure re-opens it for another cooldown.  Thread-safe;
    the clock is injectable so tests and chaos never wall-sleep.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 10.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self.state = self.CLOSED
        self.opens = 0
        self._failures = 0
        self._opened_at = 0.0
        self._probe_out = False

    def allow(self) -> bool:
        """Whether the next operation may touch the dependency."""
        with self._lock:
            if self.state == self.CLOSED:
                return True
            if self.state == self.OPEN:
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self.state = self.HALF_OPEN
                    self._probe_out = True
                    return True
                return False
            # half-open: one probe at a time
            if self._probe_out:
                return False
            self._probe_out = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self.state = self.CLOSED
            self._failures = 0
            self._probe_out = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probe_out = False
            if self.state == self.HALF_OPEN or self._failures >= self.threshold:
                if self.state != self.OPEN:
                    self.opens += 1
                self.state = self.OPEN
                self._opened_at = self._clock()


#: Failures a remote operation may raise that count as tier trouble.
_TIER_ERRORS = (CacheTierError, OSError, TimeoutError)


class ResilientTier:
    """Retry + jitter + circuit breaker + hedged reads over a backend.

    Every public method is total: it returns a value or ``None`` and
    **never raises** — each absorbed failure is tallied in
    :attr:`counters` and fed to the breaker.  ``sleep`` and ``clock``
    are injectable so chaos tests run without wall time.
    """

    def __init__(
        self,
        inner: CacheTier,
        config: RemoteTierConfig | None = None,
        *,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.inner = inner
        self.config = config or RemoteTierConfig()
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold, self.config.breaker_cooldown_s, clock=clock
        )
        self._sleep = sleep
        self._rng = random.Random(self.config.jitter_seed)
        self._hedge_pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {
            "gets": 0, "puts": 0, "hits": 0,
            "get_errors": 0, "put_errors": 0, "retries": 0,
            "short_circuited": 0, "hedge_abandoned": 0, "late_repairs": 0,
        }

    # ----------------------------------------------------------- helpers

    def _count(self, kind: str, n: int = 1) -> None:
        with self._lock:
            self.counters[kind] = self.counters.get(kind, 0) + n

    def _backoff(self, attempt: int) -> None:
        cfg = self.config
        if cfg.backoff_base_s > 0:
            ceiling = cfg.backoff_base_s * cfg.backoff_factor ** attempt
            with self._lock:
                delay = self._rng.uniform(0.0, ceiling)
            self._sleep(delay)

    def _with_retries(self, op: Callable[[], object]) -> object:
        """Run ``op`` with bounded jittered retries; raises the last error."""
        for attempt in range(self.config.retries + 1):
            try:
                return op()
            except _TIER_ERRORS:
                if attempt >= self.config.retries:
                    raise
                self._count("retries")
                self._backoff(attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    def _hedge(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._hedge_pool is None:
                self._hedge_pool = ThreadPoolExecutor(
                    max_workers=2, thread_name_prefix="repro-remote"
                )
            return self._hedge_pool

    # -------------------------------------------------------------- API

    def get(
        self, key: str, *, on_late_result: Callable[[bytes], None] | None = None
    ) -> bytes | None:
        """Hedged read: the blob, or ``None`` (miss *or* degraded).

        A read that outlives ``hedge_timeout_s`` is abandoned so the
        caller can proceed local-only; if the straggler eventually
        succeeds, ``on_late_result`` receives the blob (read-repair).
        """
        self._count("gets")
        if not self.breaker.allow():
            self._count("short_circuited")
            return None
        fut: Future = self._hedge().submit(self._with_retries, lambda: self.inner.get(key))
        try:
            blob = fut.result(timeout=self.config.hedge_timeout_s)
        except FuturesTimeoutError:
            self._count("hedge_abandoned")

            def _landed(f: Future) -> None:
                err = f.exception()
                if err is not None:
                    self._count("get_errors")
                    self.breaker.record_failure()
                    return
                self.breaker.record_success()
                late = f.result()
                if late is not None and on_late_result is not None:
                    self._count("late_repairs")
                    on_late_result(late)

            fut.add_done_callback(_landed)
            return None
        except _TIER_ERRORS:
            self._count("get_errors")
            self.breaker.record_failure()
            return None
        self.breaker.record_success()
        if blob is not None:
            self._count("hits")
        return blob

    def put(self, key: str, blob: bytes) -> bool:
        """Best-effort write-through; ``True`` when the blob landed."""
        self._count("puts")
        if not self.breaker.allow():
            self._count("short_circuited")
            return False
        try:
            self._with_retries(lambda: self.inner.put(key, blob))
        except _TIER_ERRORS:
            self._count("put_errors")
            self.breaker.record_failure()
            return False
        self.breaker.record_success()
        return True

    def status(self) -> dict:
        """Breaker state + counters, JSON-safe for the service status op."""
        with self._lock:
            counters = dict(self.counters)
        return {
            "breaker": self.breaker.state,
            "breaker_opens": self.breaker.opens,
            **counters,
        }

    def close(self) -> None:
        with self._lock:
            pool, self._hedge_pool = self._hedge_pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


# ------------------------------------------------------------ tiered cache


class TieredResultCache(ResultCache):
    """A :class:`ResultCache` with a remote tier behind the local one.

    Reads stay local-first (memory, then the atomic on-disk layout); a
    local miss consults the remote tier through :class:`ResilientTier`.
    A validated remote hit is **read-repaired** into the local tier via
    the same tmp+``os.replace`` path every local write takes, so
    concurrent readers never observe a torn repair.  Local puts
    write-through to the remote tier best-effort.

    Validation is strict: a remote blob must parse as JSON, carry the
    current engine schema, and contain a payload.  Anything else —
    truncated body, stale schema, wrong shape — counts as
    ``remote_invalid`` and behaves like a miss; the sweep recomputes
    locally and the bad blob never enters the local tier.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        remote: CacheTier | ResilientTier | None = None,
        remote_config: RemoteTierConfig | None = None,
    ) -> None:
        super().__init__(root)
        if remote is None or isinstance(remote, ResilientTier):
            self.remote: ResilientTier | None = remote
        else:
            self.remote = ResilientTier(remote, remote_config)
        self.remote_invalid = 0

    def _validate_blob(self, blob: bytes) -> dict | None:
        try:
            rec = json.loads(blob)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(rec, dict) or rec.get("schema") != SCHEMA_VERSION:
            return None
        if "payload" not in rec:
            return None
        return rec

    def _repair(self, key: str, rec: dict) -> None:
        # ResultCache.put is the atomic local write path (tmp+replace),
        # so a repair is indistinguishable from a local store.
        ResultCache.put(self, key, rec)

    def get(self, key: str) -> dict | None:
        rec = super().get(key)
        if rec is not None or self.remote is None:
            return rec

        def repair_late(blob: bytes) -> None:
            late = self._validate_blob(blob)
            if late is not None:
                self._repair(key, late)

        blob = self.remote.get(key, on_late_result=repair_late)
        if blob is None:
            return None
        rec = self._validate_blob(blob)
        if rec is None:
            self.remote_invalid += 1
            return None
        self._repair(key, rec)
        return rec

    def put(self, key: str, record: dict) -> None:
        super().put(key, record)
        if self.remote is not None:
            blob = json.dumps(record, sort_keys=True).encode("utf-8")
            self.remote.put(key, blob)

    def remote_status(self) -> dict | None:
        """Remote-tier health for ``repro cache stats`` / service status."""
        if self.remote is None:
            return None
        status = self.remote.status()
        status["remote_invalid"] = self.remote_invalid
        return status
