"""repro — reproduction of *Combining Prefetch Control and Cache
Partitioning to Improve Multicore Performance* (Sun, Shen, Veidenbaum,
IPDPS 2019).

Public API tour:

* ``repro.sim`` — the multicore simulator substrate (caches, the four
  Intel-style prefetchers, CAT way-partitioned LLC, DRAM bandwidth,
  PMU);
* ``repro.platform`` — the control surface (simulated backend, plus a
  resctrl/MSR backend for real hardware);
* ``repro.core`` — CMM itself: Table I metrics, the Fig. 5 detector,
  and the back-end policies (PT, Pref-CP, Pref-CP2, Dunn, CMM-a/b/c);
* ``repro.workloads`` — SPEC CPU2006-like synthetic benchmarks, the
  Rand Access micro-benchmark, and the paper's workload mixes;
* ``repro.metrics`` — HS / WS / ANTT / worst-case speedup;
* ``repro.experiments`` — one driver per paper table and figure.

Quickstart::

    from repro import quick_run
    result = quick_run("pref_agg", mechanism="cmm-a")
    print(result.metrics["cmm-a"]["hs_norm"])
"""

from repro.core import CMMController, make_policy, policy_names
from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochConfig
from repro.experiments.config import ScaleConfig, get_scale
from repro.experiments.runner import WorkloadEval, evaluate_workload, run_mechanism
from repro.platform.simulated import SimulatedPlatform
from repro.sim.machine import Machine
from repro.sim.params import MachineParams, default_params, scaled_params
from repro.workloads.mixes import WorkloadMix, all_mixes, make_mixes

__version__ = "1.0.0"

__all__ = [
    "CMMController",
    "EpochConfig",
    "Machine",
    "MachineParams",
    "ResourceConfig",
    "ScaleConfig",
    "SimulatedPlatform",
    "WorkloadEval",
    "WorkloadMix",
    "all_mixes",
    "default_params",
    "evaluate_workload",
    "get_scale",
    "make_mixes",
    "make_policy",
    "policy_names",
    "quick_run",
    "run_mechanism",
    "scaled_params",
    "__version__",
]


def quick_run(category: str = "pref_agg", *, mechanism: str = "cmm-a", scale: str | None = None) -> WorkloadEval:
    """Evaluate one workload of ``category`` under ``mechanism`` vs. baseline."""
    sc = get_scale(scale)
    mix = make_mixes(category, 1, seed=sc.seed)[0]
    return evaluate_workload(mix, (mechanism,), sc)
