"""repro — reproduction of *Combining Prefetch Control and Cache
Partitioning to Improve Multicore Performance* (Sun, Shen, Veidenbaum,
IPDPS 2019).

Public API tour:

* ``repro.sim`` — the multicore simulator substrate (caches, the four
  Intel-style prefetchers, CAT way-partitioned LLC, DRAM bandwidth,
  PMU);
* ``repro.platform`` — the control surface (simulated backend, plus a
  resctrl/MSR backend for real hardware);
* ``repro.core`` — CMM itself: Table I metrics, the Fig. 5 detector,
  and the back-end policies (PT, Pref-CP, Pref-CP2, Dunn, CMM-a/b/c);
* ``repro.workloads`` — SPEC CPU2006-like synthetic benchmarks, the
  Rand Access micro-benchmark, and the paper's workload mixes;
* ``repro.metrics`` — HS / WS / ANTT / worst-case speedup;
* ``repro.experiments`` — one driver per paper table and figure, built
  on the **experiment engine** (``repro.experiments.engine``): an
  :class:`ExperimentSession` expands a declarative :class:`RunSpec`
  into a deduplicated plan, executes cache misses across a process
  pool, and replays hits from a content-addressed on-disk store
  (``REPRO_CACHE_DIR`` / ``REPRO_WORKERS``; see
  ``docs/experiment_engine.md``);
* ``repro.analysis`` — the declarative analysis layer (see
  ``docs/analysis.md``): tidy tables with a round-trip-safe CSV codec,
  per-figure canonical CSV + Vega-Lite artifacts
  (:func:`build_artifacts` / ``repro figures``), and multi-seed
  sweeps with seeded-bootstrap CIs and paired significance tests
  (:func:`run_analysis` / ``repro analyze``).

Running things:

* :func:`run` — one (workload, mechanism-or-policy) simulation through
  the default session.
* :func:`simulate_batch` — many runs at once: specs sharing a workload
  mix are executed on one batch kernel (shared zero-copy trace, lane
  deduplication, lockstep grouped-LLC sweeps), bit-identical to running
  each on its own machine.
* :meth:`ExperimentSession.evaluate` / :meth:`ExperimentSession.sweep`
  — baseline-normalized metrics for one or many workloads.
* Sessions **own their caches** (dependency injection) and pick their
  simulation engine through the :mod:`repro.sim.engines` registry
  (``engine=`` argument, ``REPRO_SIM_ENGINE`` env var, or ``auto``).
* ``repro serve`` (:mod:`repro.service`) exposes a session to many
  concurrent clients: single-flight dedup per cache key, bounded
  queues, a crash-consistent sweep journal (``--resume``), and an
  optional fault-tolerant remote cache tier — see
  ``docs/robustness.md``.

The 1.x shims ``run_mechanism`` / ``run_policy_object`` /
``evaluate_workload`` / ``ALONE_CACHE`` were removed in 2.0 — see
CHANGELOG.md for the migration table.

Quickstart::

    from repro import ExperimentSession
    session = ExperimentSession(max_workers=4)
    ev = session.evaluate(make_mixes("pref_agg", 1)[0], ("cmm-a",))
    print(ev.metrics["cmm-a"]["hs_norm"])
"""

from repro.analysis import (
    FigureSpec,
    TableBuilder,
    TidyTable,
    bootstrap_ci,
    build_artifacts,
    figure_table,
    figure_vega,
    run_analysis,
    write_artifacts,
)
from repro.core import CMMController, make_policy, policy_names
from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochConfig
from repro.core.pipeline import DecisionPipeline, Stage, SweepScorer
from repro.core.trace import EpochTrace, StageTrace
from repro.experiments.config import ScaleConfig, get_scale
from repro.experiments.engine import (
    ExperimentError,
    ExperimentSession,
    ResultCache,
    RunSpec,
    default_session,
    run,
    set_default_session,
)
from repro.experiments.batch import BatchRunSpec, simulate_batch
from repro.experiments.runner import RunResult, WorkloadEval
from repro.platform.base import PlatformError
from repro.platform.faults import FaultPlan, FaultyPlatform
from repro.platform.simulated import SimulatedPlatform
from repro.service import ExperimentService, ServiceClient, TieredResultCache
from repro.sim.engines import (
    EngineSelectionError,
    EngineSpec,
    available_engines,
    register_engine,
    resolve_engine,
)
from repro.sim.machine import Machine
from repro.sim.params import MachineParams, default_params, scaled_params
from repro.workloads.mixes import WorkloadMix, all_mixes, make_mixes

__version__ = "2.2.0"

__all__ = [
    "BatchRunSpec",
    "FigureSpec",
    "TableBuilder",
    "TidyTable",
    "bootstrap_ci",
    "build_artifacts",
    "figure_table",
    "figure_vega",
    "run_analysis",
    "write_artifacts",
    "CMMController",
    "DecisionPipeline",
    "EngineSelectionError",
    "EngineSpec",
    "EpochConfig",
    "EpochTrace",
    "ExperimentError",
    "ExperimentService",
    "ExperimentSession",
    "FaultPlan",
    "FaultyPlatform",
    "Machine",
    "MachineParams",
    "PlatformError",
    "ResourceConfig",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "ScaleConfig",
    "ServiceClient",
    "SimulatedPlatform",
    "Stage",
    "StageTrace",
    "SweepScorer",
    "TieredResultCache",
    "WorkloadEval",
    "WorkloadMix",
    "all_mixes",
    "available_engines",
    "default_params",
    "default_session",
    "get_scale",
    "make_mixes",
    "make_policy",
    "policy_names",
    "quick_run",
    "register_engine",
    "resolve_engine",
    "run",
    "scaled_params",
    "set_default_session",
    "simulate_batch",
    "__version__",
]


def quick_run(category: str = "pref_agg", *, mechanism: str = "cmm-a", scale: str | None = None) -> WorkloadEval:
    """Evaluate one workload of ``category`` under ``mechanism`` vs. baseline."""
    sc = get_scale(scale)
    mix = make_mixes(category, 1, seed=sc.seed)[0]
    return default_session().evaluate(mix, (mechanism,), sc)
