"""Policy registry: the seven mechanisms of the paper's Fig. 13 plus baseline."""

from __future__ import annotations

from typing import Callable

from repro.core.coordinated import CMMPolicy
from repro.core.dunn import DunnPolicy
from repro.core.partitioning import PrefCPPolicy, PrefCP2Policy
from repro.core.policy_base import BaselinePolicy, Policy
from repro.core.ppm_baseline import PPMGroupThrottlingPolicy
from repro.core.throttling import PrefetchThrottlingPolicy

POLICIES: dict[str, Callable[[], Policy]] = {
    "baseline": BaselinePolicy,
    "pt": PrefetchThrottlingPolicy,
    "dunn": DunnPolicy,
    "pref-cp": PrefCPPolicy,
    "pref-cp2": PrefCP2Policy,
    "cmm-a": lambda: CMMPolicy("a"),
    "cmm-b": lambda: CMMPolicy("b"),
    "cmm-c": lambda: CMMPolicy("c"),
    # Related-work baseline (Panda et al. SPAC-style): PPM 2-group
    # throttling, kept out of MECHANISMS (not one of the paper's seven).
    "ppm-group": PPMGroupThrottlingPolicy,
}

#: The seven managed mechanisms compared in Fig. 13 (baseline excluded).
MECHANISMS = ("pt", "dunn", "pref-cp", "pref-cp2", "cmm-a", "cmm-b", "cmm-c")


def make_policy(name: str) -> Policy:
    try:
        factory = POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; one of {sorted(POLICIES)}") from None
    return factory()


def policy_names() -> list[str]:
    return list(POLICIES)
