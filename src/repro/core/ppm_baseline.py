"""PPM-group — the SPAC-style baseline the paper argues against.

Panda et al. (SPAC) classify cores by L2 prefetches-per-demand-miss
(Table I's M-6, L2 PPM) into two groups — *aggressive* and *meek* —
and throttle at group granularity.  The paper's Sec. III-A critique:
"Using this metric on the Intel L2 cache side cannot accurately
identify the Pref Agg cores", which motivates the Fig. 5 multi-stage
detector.

This policy implements the PPM two-group scheme faithfully so the
critique is testable on the substrate: cores with above-average PPM
form the aggressive group; the 2^2 group on/off settings are sampled
and scored by hm-IPC like PT.  On our workloads PPM systematically
misses `Rand Access`-like cores (their PPM is ~1: one adjacent-line
prefetch per demand miss) while flagging streamers (PPM >> 1), so it
forfeits exactly the throttling opportunities PT exploits — see
``benchmarks/bench_baseline_ppm.py``.
"""

from __future__ import annotations

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochContext, IntervalResult
from repro.core.metrics_defs import CoreSummary
from repro.core.policy_base import Policy


def ppm_groups(summaries: list[CoreSummary], *, ppm_floor: float = 0.05) -> tuple[list[int], list[int]]:
    """Split active cores into (aggressive, meek) by L2 PPM above mean."""
    active = [s for s in summaries if s.active]
    if not active:
        return [], []
    mean = sum(s.metrics.l2_ppm for s in active) / len(active)
    aggressive = [s.cpu for s in active if s.metrics.l2_ppm > mean and s.metrics.l2_ppm > ppm_floor]
    meek = [s.cpu for s in active if s.cpu not in aggressive]
    return sorted(aggressive), sorted(meek)


class PPMGroupThrottlingPolicy(Policy):
    """Two-group (aggressive/meek) prefetch throttling keyed on L2 PPM."""

    name = "ppm-group"

    def __init__(self, *, selection_margin: float = 0.03) -> None:
        self.selection_margin = selection_margin
        self.last_groups: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        base = ctx.baseline_config()
        r_on = ctx.sample(base)
        aggressive, meek = ppm_groups(r_on.summaries)
        self.last_groups = (tuple(aggressive), tuple(meek))
        if not aggressive:
            return base

        # Group-level settings: {on,on} measured; try the other three.
        candidates: list[tuple[int, ...]] = [tuple(aggressive)]
        if meek:
            candidates += [tuple(meek), tuple(sorted(aggressive + meek))]
        best: IntervalResult | None = None
        for off in candidates:
            if ctx.budget_left() <= 1:
                break
            result = ctx.sample(base.with_prefetch_off(off))
            if best is None or result.hm_ipc > best.hm_ipc:
                best = result
        if best is None:
            return base
        reference = max(r_on.hm_ipc, ctx.sample(base).hm_ipc if ctx.budget_left() > 0 else 0.0)
        if best.hm_ipc > (1.0 + self.selection_margin) * reference:
            return best.config
        return base
