"""PPM-group — the SPAC-style baseline the paper argues against.

Panda et al. (SPAC) classify cores by L2 prefetches-per-demand-miss
(Table I's M-6, L2 PPM) into two groups — *aggressive* and *meek* —
and throttle at group granularity.  The paper's Sec. III-A critique:
"Using this metric on the Intel L2 cache side cannot accurately
identify the Pref Agg cores", which motivates the Fig. 5 multi-stage
detector.

This policy implements the PPM two-group scheme faithfully so the
critique is testable on the substrate: cores with above-average PPM
form the aggressive group; the 2^2 group on/off settings are sampled
and scored by hm-IPC like PT.  On our workloads PPM systematically
misses `Rand Access`-like cores (their PPM is ~1: one adjacent-line
prefetch per demand miss) while flagging streamers (PPM >> 1), so it
forfeits exactly the throttling opportunities PT exploits — see
``benchmarks/bench_baseline_ppm.py``.

The plan composes the shared :class:`~repro.core.pipeline.SenseStage`
with two policy-specific stages (the PPM group split and its small
fixed-candidate sweep) — a worked example of extending the pipeline
with custom stages; see ``docs/architecture.md``.
"""

from __future__ import annotations

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochContext, IntervalResult
from repro.core.metrics_defs import CoreSummary
from repro.core.pipeline import (
    DecisionPipeline,
    PipelineState,
    SenseStage,
    Stage,
    SweepScorer,
)
from repro.core.policy_base import Policy

__all__ = ["PPMGroupThrottlingPolicy", "ppm_groups"]


def ppm_groups(summaries: list[CoreSummary], *, ppm_floor: float = 0.05) -> tuple[list[int], list[int]]:
    """Split active cores into (aggressive, meek) by L2 PPM above mean."""
    active = [s for s in summaries if s.active]
    if not active:
        return [], []
    mean = sum(s.metrics.l2_ppm for s in active) / len(active)
    aggressive = [s.cpu for s in active if s.metrics.l2_ppm > mean and s.metrics.l2_ppm > ppm_floor]
    meek = [s.cpu for s in active if s.cpu not in aggressive]
    return sorted(aggressive), sorted(meek)


class _PPMGroupStage(Stage):
    """Classify by L2 PPM into (aggressive, meek); baseline when none."""

    name = "classify:ppm"

    def run(self, state: PipelineState) -> dict:
        aggressive, meek = ppm_groups(state.r_on.summaries)
        state.scratch["ppm_groups"] = (tuple(aggressive), tuple(meek))
        detail = {"aggressive": aggressive, "meek": meek}
        if not aggressive:
            state.decision = state.base
            detail["reason"] = "no-aggressive-group"
        return detail


class _PPMSweepStage(Stage):
    """The 2^2 group on/off sweep ({on,on} measured by the sense stage)."""

    name = "decide:ppm-sweep"

    def __init__(self, scorer: SweepScorer) -> None:
        self.scorer = scorer

    def run(self, state: PipelineState) -> dict:
        ctx, base = state.ctx, state.base
        aggressive, meek = state.scratch["ppm_groups"]
        candidates: list[tuple[int, ...]] = [aggressive]
        if meek:
            candidates += [meek, tuple(sorted(aggressive + meek))]
        best: IntervalResult | None = None
        scored = []
        truncated = False
        for off in candidates:
            if ctx.budget_left() <= 1:
                truncated = True
                break
            result = ctx.sample(base.with_prefetch_off(off))
            scored.append({"off": list(off), "hm_ipc": result.hm_ipc, "source": "sweep"})
            if self.scorer.better(result, best):
                best = result
        detail = {"candidates": scored, "margin": self.scorer.selection_margin, "truncated": truncated}
        if best is None:
            state.decision = base
            detail["reason"] = "budget-exhausted"
            return detail
        reference = self.scorer.rereference(ctx, base, state.r_on.hm_ipc)
        adopted = self.scorer.accepts(best.hm_ipc, reference)
        state.decision = best.config if adopted else base
        detail.update(
            reference_hm=reference,
            best_hm=best.hm_ipc,
            reason="adopted" if adopted else "margin-not-met",
        )
        return detail


class PPMGroupThrottlingPolicy(Policy):
    """Two-group (aggressive/meek) prefetch throttling keyed on L2 PPM."""

    name = "ppm-group"

    def __init__(self, *, selection_margin: float = 0.03) -> None:
        self.selection_margin = selection_margin
        self.last_groups: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())

    def _pipeline(self) -> DecisionPipeline:
        return DecisionPipeline([
            SenseStage(),
            _PPMGroupStage(),
            _PPMSweepStage(SweepScorer(self.selection_margin)),
        ])

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        state = self._pipeline().run(ctx)
        self.last_groups = state.scratch.get("ppm_groups", ((), ()))
        return state.decision
