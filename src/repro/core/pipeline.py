"""The CMM decision pipeline: Sense → Classify → Decide → Actuate.

The paper's control loop (Fig. 4-6) has one fixed shape — sample the
machine, classify cores (the Fig. 5 Agg filter plus the Sec. III-B1
friendliness probe), decide the next allocation (a throttle sweep, a
partition layout, or Dunn clustering), and actuate it.  This module
makes that shape explicit: each step is a typed :class:`Stage`, a
policy is a :class:`DecisionPipeline` — a declarative stage
composition — and every hm-IPC sweep shares one :class:`SweepScorer`
that owns candidate comparison, ``selection_margin`` hysteresis, and
the post-sweep re-reference.

Stage contract
--------------
A stage receives the mutable :class:`PipelineState`, may draw sampling
intervals through ``state.ctx`` (the :class:`~repro.core.epoch.
EpochContext`, which validates every PMU sample), and returns a
JSON-safe detail dict that becomes its :class:`~repro.core.trace.
StageTrace`.  Setting ``state.decision`` ends the pipeline: later
stages are recorded as skipped.  A stage whose ``applies(state)`` is
false is skipped without running.

The pipeline is pure bookkeeping around the exact platform-call
sequence the pre-refactor policies made: decisions are bit-identical
(pinned by ``tests/chaos/test_differential.py``), and the structured
:class:`~repro.core.trace.EpochTrace` assembled by the controller is
observability only.

The pure decision math the stages share — partition sizing/layout,
throttle grouping and combination enumeration, Dunn way assignment —
lives here too; :mod:`~repro.core.partitioning`,
:mod:`~repro.core.throttling` and :mod:`~repro.core.dunn` re-export it
under their historical names.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from itertools import chain, combinations
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochContext, IntervalResult
from repro.core.kmeans import cluster_groups
from repro.core.metrics_defs import CoreSummary
from repro.core.policy_base import friendliness_split
from repro.core.trace import StageTrace, config_summary, json_safe_detail
from repro.platform.base import PlatformError
from repro.sim.cat import low_ways_mask
from repro.sim.msr import MASK_L1_OFF, MASK_L2_OFF

#: Failures the control loop absorbs instead of propagating: declared
#: platform faults, resctrl-style OS errors, and quarantined samples
#: (SampleRejected subclasses PlatformError).
RECOVERABLE = (PlatformError, OSError)

#: CLOS ids used by the partitioning layouts.
CLOS_NEUTRAL = 0
CLOS_AGG = 1
CLOS_UNFRIENDLY = 2

#: The paper's empirical sizing rule: 1.5 ways per partitioned core.
PARTITION_FACTOR = 1.5

#: Partition layouts (paper Sec. III-B2/B3): the whole Agg set pooled
#: low (Pref-CP, CMM-a), only the friendly subset partitioned (CMM-b),
#: or friendly and unfriendly in separate partitions (Pref-CP2, CMM-c).
LAYOUT_AGG = "agg"
LAYOUT_FRIENDLY = "friendly"
LAYOUT_SPLIT = "split"
LAYOUTS = (LAYOUT_AGG, LAYOUT_FRIENDLY, LAYOUT_SPLIT)


# ------------------------------------------------- pure decision math


def partition_ways(
    n_cores_in_partition: int,
    total_ways: int,
    *,
    min_ways: int = 1,
    factor: float = PARTITION_FACTOR,
) -> int:
    """The paper's sizing rule, clamped to [min_ways, total_ways - 1].

    ``factor`` defaults to the empirically-determined 1.5 ways per
    partitioned core; the ablation benchmarks sweep it.
    """
    if n_cores_in_partition < 1:
        raise ValueError("partition needs at least one core")
    if factor <= 0:
        raise ValueError("factor must be positive")
    want = math.ceil(factor * n_cores_in_partition)
    return max(min_ways, min(want, max(total_ways - 1, min_ways)))


def contiguous_mask(n_ways: int, shift: int, total_ways: int) -> int:
    """A contiguous CBM of ``n_ways`` starting at bit ``shift``."""
    if shift + n_ways > total_ways:
        raise ValueError(f"mask of {n_ways} ways at shift {shift} exceeds {total_ways}")
    return ((1 << n_ways) - 1) << shift


def partition_layout(
    layout: str,
    base: ResourceConfig,
    agg: tuple[int, ...],
    friendly: tuple[int, ...],
    unfriendly: tuple[int, ...],
    llc_ways: int,
    *,
    factor: float = PARTITION_FACTOR,
) -> ResourceConfig:
    """Build one of the paper's partition layouts over ``base``.

    ``LAYOUT_SPLIT`` places friendly ways at the bottom and unfriendly
    ways directly above; when the two partitions do not fit disjointly
    the unfriendly mask is clamped to the top of the cache and the
    overlap with the friendly partition is intentional (overlapping
    partitioning, as the paper uses).
    """
    cfg = base
    if layout == LAYOUT_AGG:
        if agg:
            ways = partition_ways(len(agg), llc_ways, factor=factor)
            cfg = cfg.with_partition(CLOS_AGG, low_ways_mask(ways, llc_ways), agg)
    elif layout == LAYOUT_FRIENDLY:
        if friendly:
            ways = partition_ways(len(friendly), llc_ways, factor=factor)
            cfg = cfg.with_partition(CLOS_AGG, low_ways_mask(ways, llc_ways), friendly)
    elif layout == LAYOUT_SPLIT:
        shift = 0
        if friendly:
            wf = partition_ways(len(friendly), llc_ways, factor=factor)
            cfg = cfg.with_partition(CLOS_AGG, contiguous_mask(wf, 0, llc_ways), friendly)
            shift = wf
        if unfriendly:
            wu = partition_ways(len(unfriendly), llc_ways, factor=factor)
            if shift + wu > llc_ways:
                # Not enough ways for two disjoint partitions: overlap at the top.
                shift = max(0, llc_ways - wu)
            cfg = cfg.with_partition(
                CLOS_UNFRIENDLY, contiguous_mask(wu, shift, llc_ways), unfriendly
            )
    else:
        raise ValueError(f"layout must be one of {LAYOUTS}, got {layout!r}")
    return cfg


def throttle_groups(
    agg_set: Sequence[int],
    summaries: list[CoreSummary],
    *,
    max_exhaustive: int = 3,
    n_groups: int = 3,
) -> list[list[int]]:
    """Group the Agg set for combination search.

    Small sets stay singleton groups (exhaustive search); larger sets
    are k-means-clustered by L2 PTR so cores exerting similar LLC
    pressure are throttled together.
    """
    agg = list(agg_set)
    if len(agg) <= max_exhaustive:
        return [[c] for c in agg]
    ptr = [summaries[c].metrics.l2_ptr for c in agg]
    groups = cluster_groups(ptr, n_groups)
    return [[agg[i] for i in idxs] for idxs in groups if idxs]


def off_combinations(groups: list[list[int]]) -> Iterable[tuple[int, ...]]:
    """All subsets of groups, yielded as flat core tuples (off cores).

    Includes the empty subset (all on) and the full subset (all off);
    callers typically skip those because intervals 1 and 2 already
    measured them.
    """
    idx = range(len(groups))
    for subset in chain.from_iterable(combinations(idx, r) for r in range(len(groups) + 1)):
        yield tuple(sorted(c for g in subset for c in groups[g]))


def dunn_way_assignment(
    cluster_stalls: list[float], total_ways: int, *, min_ways: int = 2
) -> list[int]:
    """Nested way counts for clusters ordered by ascending stalls.

    The most-stalled cluster always receives the full cache; lower
    clusters receive ways proportional to their cumulative share of
    total stalls, floored and made monotone.
    """
    k = len(cluster_stalls)
    if k == 0:
        return []
    if any(s < 0 for s in cluster_stalls):
        raise ValueError("stall counts must be non-negative")
    total = sum(cluster_stalls)
    if total <= 0:
        return [total_ways] * k
    ways = []
    cum = 0.0
    for s in cluster_stalls:
        cum += s
        ways.append(max(min_ways, int(round(total_ways * cum / total))))
    # Enforce monotonicity and pin the top cluster to the full cache.
    for i in range(1, k):
        ways[i] = max(ways[i], ways[i - 1])
    ways[-1] = total_ways
    return [min(w, total_ways) for w in ways]


def dunn_config(
    summaries: list[CoreSummary], base: ResourceConfig, llc_ways: int, *, k: int = 4, clos_base: int = 4
) -> ResourceConfig:
    """Build the Dunn partitioning from one interval's summaries."""
    active = [s.cpu for s in summaries if s.active]
    if not active:
        return base
    stalls = [summaries[c].stalls_l2_pending for c in active]
    groups = cluster_groups(np.asarray(stalls), min(k, len(active)))
    cluster_stall_means = [float(np.mean([stalls[i] for i in g])) for g in groups]
    ways = dunn_way_assignment(cluster_stall_means, llc_ways)
    cfg = base
    for j, g in enumerate(groups):
        cores = [active[i] for i in g]
        mask = low_ways_mask(ways[j], llc_ways)
        cfg = cfg.with_partition(clos_base + j, mask, cores)
    return cfg


# ----------------------------------------------------- pipeline state


@dataclass
class PipelineState:
    """Everything the stages of one profiling epoch share.

    ``scratch`` is a free-form dict for policy-specific stages (e.g.
    the PPM baseline's group split) that the built-in fields don't
    cover.  Once ``decision`` is set the pipeline stops running stages.
    """

    ctx: EpochContext
    base: ResourceConfig
    r_on: IntervalResult | None = None
    report: object | None = None             # frontend DetectionReport
    agg_set: tuple[int, ...] = ()
    r_off: IntervalResult | None = None
    friendly: tuple[int, ...] = ()
    unfriendly: tuple[int, ...] = ()
    partitioned: ResourceConfig | None = None
    decision: ResourceConfig | None = None
    scratch: dict = field(default_factory=dict)


class Stage(ABC):
    """One composable step of a decision pipeline."""

    name: str = "stage"

    def applies(self, state: PipelineState) -> bool:
        """Whether this stage should run given the state so far."""
        return True

    @abstractmethod
    def run(self, state: PipelineState) -> dict | None:
        """Execute the stage; returns the JSON-safe trace detail."""


class DecisionPipeline:
    """A declarative stage composition that plans one epoch.

    ``run`` threads a fresh :class:`PipelineState` through the stages,
    recording one :class:`~repro.core.trace.StageTrace` per stage on
    the context (skipped stages included, with the reason).  If no
    stage decides, the baseline configuration is the decision.
    """

    def __init__(self, stages: Sequence[Stage]) -> None:
        self.stages = tuple(stages)

    def run(self, ctx: EpochContext) -> PipelineState:
        state = PipelineState(ctx=ctx, base=ctx.baseline_config())
        for stage in self.stages:
            if state.decision is not None:
                ctx.record_stage(StageTrace(stage.name, {"reason": "decision-already-made"}, skipped=True))
                continue
            if not stage.applies(state):
                ctx.record_stage(StageTrace(stage.name, {"reason": "not-applicable"}, skipped=True))
                continue
            detail = stage.run(state)
            ctx.record_stage(StageTrace(stage.name, json_safe_detail(detail or {})))
        if state.decision is None:
            state.decision = state.base
        return state

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        return self.run(ctx).decision


# ----------------------------------------------------- sweep scoring


class SweepScorer:
    """Shared hm-IPC sweep arbitration.

    Owns the three things every throttle sweep (PT, PPM, CMM) repeats:
    scoring candidates by harmonic-mean IPC, the post-sweep
    *re-reference* (cache state drifts upward across the profiling
    epoch — working sets keep warming — so an early reference interval
    understates the unthrottled configuration and every later candidate
    would look like a win), and ``selection_margin`` hysteresis (short
    sampling intervals are noisy; without a margin the search chases
    sub-noise "wins" that trade a friendly core's large loss for a
    marginal aggregate gain).
    """

    def __init__(self, selection_margin: float = 0.03) -> None:
        self.selection_margin = selection_margin

    def better(self, candidate: IntervalResult, best: IntervalResult | None) -> bool:
        """Strictly-greater hm-IPC comparison (first result wins ties)."""
        return best is None or candidate.hm_ipc > best.hm_ipc

    def rereference(self, ctx: EpochContext, config: ResourceConfig, prior_hm: float) -> float:
        """Re-sample the unthrottled reference after the sweep.

        Returns the max of ``prior_hm`` and a fresh sample of
        ``config`` (when an interval of budget remains).
        """
        if ctx.budget_left() > 0:
            return max(prior_hm, ctx.sample(config).hm_ipc)
        return prior_hm

    def accepts(self, best_hm: float, reference_hm: float) -> bool:
        """Whether the best candidate beats the reference by the margin."""
        return best_hm > (1.0 + self.selection_margin) * reference_hm


# ------------------------------------------------------------- stages


class SenseStage(Stage):
    """Interval 1: the all-on detection interval (paper Fig. 4).

    Always samples under the baseline configuration — cores may have
    been throttled in the previous epoch, and detection statistics need
    prefetchers running.  Sampling goes through the context, so the
    PMU sample is validated/quarantined before any metric is computed.
    """

    name = "sense"

    def run(self, state: PipelineState) -> dict:
        state.r_on = state.ctx.sample(state.base)
        s = state.r_on
        return {
            "hm_ipc": s.hm_ipc,
            "fresh": s.fresh,
            "ipc": [c.ipc for c in s.summaries],
            "active": [c.cpu for c in s.summaries if c.active],
        }


class ClassifyStage(Stage):
    """The Fig. 5 Agg filter, plus the optional friendliness probe.

    With ``probe_friendliness`` and a non-empty Agg set, interval 2
    samples the Agg set with prefetchers off and splits it into
    (friendly, unfriendly) by prefetch speedup — the probe doubles as
    the all-off throttle candidate (``state.r_off``).

    ``empty_decision="baseline"`` ends the epoch with the baseline
    config when nothing aggressive is found (PT / Pref-CP plans);
    ``empty_decision=None`` leaves the decision to a later stage
    (CMM's Dunn fallback, option d).
    """

    name = "classify"

    def __init__(
        self,
        *,
        probe_friendliness: bool = False,
        friendly_threshold: float = 0.50,
        empty_decision: str | None = "baseline",
    ) -> None:
        self.probe_friendliness = probe_friendliness
        self.friendly_threshold = friendly_threshold
        self.empty_decision = empty_decision

    def run(self, state: PipelineState) -> dict:
        ctx = state.ctx
        report = ctx.detect(state.r_on.summaries)
        state.report = report
        state.agg_set = report.agg_set
        detail: dict = {
            "agg_set": list(report.agg_set),
            "pga_mean": report.pga_mean,
            "candidates_pga": list(report.candidates_pga),
            "candidates_pmr": list(report.candidates_pmr),
            "candidates_ptr": list(report.candidates_ptr),
        }
        if not report.agg_set:
            if self.empty_decision == "baseline":
                state.decision = state.base
                detail["reason"] = "empty-agg-set"
            return detail
        if self.probe_friendliness:
            state.r_off = ctx.sample(state.base.with_prefetch_off(report.agg_set))
            state.friendly, state.unfriendly = friendliness_split(
                state.r_on.summaries,
                state.r_off.summaries,
                report.agg_set,
                speedup_threshold=self.friendly_threshold,
            )
            detail["friendly"] = list(state.friendly)
            detail["unfriendly"] = list(state.unfriendly)
        return detail


class PartitionStage(Stage):
    """Decide: partition-way allocation (paper Sec. III-B2).

    Builds one of the :data:`LAYOUTS` over the Agg set.  With
    ``decide="always"`` the layout is the epoch's decision (Pref-CP /
    Pref-CP2); with ``decide="no_unfriendly"`` it decides only when no
    unfriendly cores exist ("If no such cores are found, only CP") and
    otherwise stays in ``state.partitioned`` for the coordinated
    throttle sweep to build on.
    """

    name = "decide:partition"

    def __init__(
        self,
        layout: str,
        *,
        factor: float = PARTITION_FACTOR,
        decide: str = "always",
    ) -> None:
        if layout not in LAYOUTS:
            raise ValueError(f"layout must be one of {LAYOUTS}, got {layout!r}")
        if decide not in ("always", "no_unfriendly"):
            raise ValueError(f"decide must be 'always' or 'no_unfriendly', got {decide!r}")
        self.layout = layout
        self.factor = factor
        self.decide = decide

    def applies(self, state: PipelineState) -> bool:
        return bool(state.agg_set)

    def run(self, state: PipelineState) -> dict:
        cfg = partition_layout(
            self.layout,
            state.base,
            state.agg_set,
            state.friendly,
            state.unfriendly,
            state.ctx.llc_ways,
            factor=self.factor,
        )
        state.partitioned = cfg
        decided = self.decide == "always" or not state.unfriendly
        if decided:
            state.decision = cfg
        detail = {
            "layout": self.layout,
            "factor": self.factor,
            "partitions": {str(clos): cbm for clos, cbm in cfg.clos_cbm},
            "decided": decided,
        }
        if decided and self.decide == "no_unfriendly":
            detail["reason"] = "no-unfriendly-cores"
        return detail


class ThrottleSweepStage(Stage):
    """Decide: the PT exhaustive/k-means throttle sweep (Sec. III-B1).

    Uses the classify probe as the all-off candidate and initial best,
    tries every remaining on/off combination at group granularity
    (keeping one interval for the re-reference), optionally probes
    partial disables of the winning off-set (``fine_grained``), then
    lets the :class:`SweepScorer` arbitrate against the re-referenced
    all-on baseline.
    """

    name = "decide:throttle-sweep"

    def __init__(
        self,
        *,
        max_exhaustive: int = 3,
        n_groups: int = 3,
        fine_grained: bool = False,
        scorer: SweepScorer | None = None,
    ) -> None:
        self.max_exhaustive = max_exhaustive
        self.n_groups = n_groups
        self.fine_grained = fine_grained
        self.scorer = scorer or SweepScorer()

    def applies(self, state: PipelineState) -> bool:
        return bool(state.agg_set) and state.r_off is not None

    def run(self, state: PipelineState) -> dict:
        ctx, base, agg = state.ctx, state.base, state.agg_set
        groups = throttle_groups(
            agg, state.r_on.summaries, max_exhaustive=self.max_exhaustive, n_groups=self.n_groups
        )
        best: IntervalResult = state.r_off
        best_off: tuple[int, ...] = tuple(agg)
        candidates = [{"off": list(agg), "hm_ipc": state.r_off.hm_ipc, "source": "probe"}]
        seen = {(), tuple(agg)}
        truncated = False
        for off_cores in off_combinations(groups):
            if off_cores in seen:
                continue
            seen.add(off_cores)
            if ctx.budget_left() <= 1:  # keep one interval for the re-reference
                truncated = True
                break
            result = ctx.sample(base.with_prefetch_off(off_cores))
            candidates.append({"off": list(off_cores), "hm_ipc": result.hm_ipc, "source": "sweep"})
            if self.scorer.better(result, best):
                best = result
                best_off = off_cores
        if self.fine_grained and best_off:
            # Probe partial disables of the winning off-set.
            for mask in (MASK_L2_OFF, MASK_L1_OFF):
                if ctx.budget_left() <= 1:
                    break
                cand = base
                for c in best_off:
                    cand = cand.with_prefetch_mask(c, mask)
                result = ctx.sample(cand)
                candidates.append(
                    {"off": list(best_off), "mask": mask, "hm_ipc": result.hm_ipc, "source": "fine"}
                )
                if self.scorer.better(result, best):
                    best = result
        reference = self.scorer.rereference(ctx, base, state.r_on.hm_ipc)
        adopted = self.scorer.accepts(best.hm_ipc, reference)
        state.decision = best.config if adopted else base
        return {
            "groups": [list(g) for g in groups],
            "candidates": candidates,
            "reference_hm": reference,
            "margin": self.scorer.selection_margin,
            "truncated": truncated,
            "best_hm": best.hm_ipc,
            "reason": "adopted" if adopted else "margin-not-met",
        }


class CoordinatedThrottleStage(Stage):
    """Decide: CMM's throttle sweep over the unfriendly cores (Fig. 6).

    Combinations are sampled *with the partitions already applied* so
    the hm-IPC scores reflect the coordinated configuration; the empty
    combination (partitioned, nothing throttled) doubles as the
    reference, re-sampled after the sweep by the shared scorer.
    """

    name = "decide:coordinated-throttle"

    def __init__(
        self,
        *,
        max_exhaustive: int = 3,
        n_groups: int = 3,
        scorer: SweepScorer | None = None,
    ) -> None:
        self.max_exhaustive = max_exhaustive
        self.n_groups = n_groups
        self.scorer = scorer or SweepScorer()

    def applies(self, state: PipelineState) -> bool:
        return bool(state.unfriendly) and state.partitioned is not None

    def run(self, state: PipelineState) -> dict:
        ctx = state.ctx
        partitioned = state.partitioned
        groups = throttle_groups(
            state.unfriendly,
            state.r_on.summaries,
            max_exhaustive=self.max_exhaustive,
            n_groups=self.n_groups,
        )
        reference: IntervalResult | None = None  # partitioned, nothing throttled
        best: IntervalResult | None = None
        best_off: tuple[int, ...] = ()
        candidates = []
        truncated = False
        for off_cores in off_combinations(groups):
            if ctx.budget_left() <= 1:  # keep one interval for the re-reference
                truncated = True
                break
            result = ctx.sample(partitioned.with_prefetch_off(off_cores))
            candidates.append({
                "off": list(off_cores),
                "hm_ipc": result.hm_ipc,
                "source": "reference" if not off_cores else "sweep",
            })
            if not off_cores:
                reference = result
            if self.scorer.better(result, best):
                best = result
                best_off = off_cores
        detail = {
            "groups": [list(g) for g in groups],
            "candidates": candidates,
            "margin": self.scorer.selection_margin,
            "truncated": truncated,
        }
        if best is None:
            state.decision = partitioned
            detail["reason"] = "budget-exhausted"
            return detail
        ref_hm = self.scorer.rereference(
            ctx, partitioned, reference.hm_ipc if reference is not None else 0.0
        )
        adopted = self.scorer.accepts(best.hm_ipc, ref_hm)
        state.decision = best.config if adopted else partitioned
        detail.update(
            reference_hm=ref_hm,
            best_hm=best.hm_ipc,
            best_off=list(best_off),
            reason="adopted" if adopted else "margin-not-met",
        )
        return detail


class DunnStage(Stage):
    """Decide: Selfa et al.'s stall-clustering partitioner (PACT'17).

    With ``only_when_agg_empty`` the stage is CMM's option (d): it runs
    only when the classify stage found nothing aggressive to manage.
    """

    name = "decide:dunn"

    def __init__(self, *, k: int = 4, only_when_agg_empty: bool = False) -> None:
        self.k = k
        self.only_when_agg_empty = only_when_agg_empty

    def applies(self, state: PipelineState) -> bool:
        return not (self.only_when_agg_empty and state.agg_set)

    def run(self, state: PipelineState) -> dict:
        cfg = dunn_config(state.r_on.summaries, state.base, state.ctx.llc_ways, k=self.k)
        state.decision = cfg
        return {
            "k": self.k,
            "partitions": {str(clos): cbm for clos, cbm in cfg.clos_cbm},
            "reason": "dunn-clustering" if state.agg_set == () else "dunn",
        }


class ActuateStage(Stage):
    """Actuate: apply the chosen config through the injected applier.

    The controller constructs one with its retry-with-backoff wrapper;
    recoverable failures are absorbed into the stage trace (the next
    epoch re-plans against whatever partial allocation stuck).
    """

    name = "actuate"

    def __init__(self, applier: Callable[[ResourceConfig], None]) -> None:
        self._applier = applier

    def apply(self, config: ResourceConfig) -> StageTrace:
        detail: dict = {"config": config_summary(config), "applied": True}
        try:
            self._applier(config)
        except RECOVERABLE as e:
            detail["applied"] = False
            detail["error"] = str(e)
        return StageTrace(self.name, detail)

    def run(self, state: PipelineState) -> dict:
        trace = self.apply(state.decision if state.decision is not None else state.base)
        return trace.detail
