"""Execution-epoch / profiling-epoch scheduling (paper Fig. 4).

Execution is a sequence of long *execution epochs*, each followed by a
*profiling epoch* made of short *sampling intervals*.  The paper uses
5 G-cycle epochs with 100 M-cycle intervals (a 50:1 ratio); on the
simulator both are measured in demand accesses per core, keeping the
same ratio by default.

The :class:`EpochContext` is handed to a policy during its profiling
epoch: ``sample(config)`` applies a candidate resource configuration,
runs one sampling interval, and returns the measured summaries — the
only way a policy may observe the system, mirroring the constraints of
the real kernel module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.allocation import ResourceConfig
from repro.core.frontend import AggDetector, DetectionReport, SampleValidator
from repro.core.metrics_defs import CoreSummary, hm_ipc, summarize_sample
from repro.core.trace import StageTrace
from repro.platform.base import Platform
from repro.sim.pmu import PmuSample


@dataclass(frozen=True)
class EpochConfig:
    """Interval lengths in platform units (accesses/core on the simulator)."""

    exec_units: int = 50_000
    sample_units: int = 1_000
    max_sampling_intervals: int = 12  # cap on a policy's profiling epoch
    warmup_units: int = 2_048  # baseline-config warm-up before the first epoch

    def __post_init__(self) -> None:
        if self.exec_units < 1 or self.sample_units < 1:
            raise ValueError("interval lengths must be positive")
        if self.max_sampling_intervals < 2:
            raise ValueError("need at least two sampling intervals (all-on + agg-off)")
        if self.warmup_units < 0:
            raise ValueError("warmup_units must be non-negative")


@dataclass
class IntervalResult:
    """One sampling interval: the config tried and what was measured.

    ``fresh`` is ``False`` when the interval's own PMU sample failed
    validation and the last-good sample is standing in for it.
    """

    config: ResourceConfig
    sample: PmuSample
    summaries: list[CoreSummary]
    hm_ipc: float
    fresh: bool = True


class EpochContext:
    """A policy's window onto one profiling epoch.

    ``validator`` (optional) gates every sample through front-end
    validation/quarantine; ``applier`` (optional) replaces the plain
    ``config.apply(platform)`` — the controller injects its
    retry-with-backoff wrapper here so policies transparently inherit
    resilient control writes.
    """

    def __init__(
        self,
        platform: Platform,
        detector: AggDetector,
        epoch_cfg: EpochConfig,
        *,
        validator: SampleValidator | None = None,
        applier: Callable[[ResourceConfig], None] | None = None,
    ) -> None:
        self.platform = platform
        self.detector = detector
        self.epoch_cfg = epoch_cfg
        self.validator = validator
        self._applier = applier
        self.intervals: list[IntervalResult] = []
        self.stage_traces: list[StageTrace] = []

    @property
    def n_cores(self) -> int:
        return self.platform.n_cores

    @property
    def llc_ways(self) -> int:
        return self.platform.llc_ways

    def budget_left(self) -> int:
        return self.epoch_cfg.max_sampling_intervals - len(self.intervals)

    def baseline_config(self) -> ResourceConfig:
        return ResourceConfig.all_on(self.n_cores, self.llc_ways)

    def apply(self, config: ResourceConfig) -> None:
        """Apply ``config`` through the injected applier (if any)."""
        if self._applier is not None:
            self._applier(config)
        else:
            config.apply(self.platform)

    def sample(self, config: ResourceConfig) -> IntervalResult:
        """Apply ``config``, run one sampling interval, record the result."""
        if self.budget_left() <= 0:
            raise RuntimeError(
                f"profiling epoch exceeded its {self.epoch_cfg.max_sampling_intervals}-interval budget"
            )
        self.apply(config)
        sample = self.platform.run_interval(self.epoch_cfg.sample_units)
        fresh = True
        if self.validator is not None:
            sample, fresh = self.validator.admit(sample)
        summaries = summarize_sample(sample, self.platform.cycles_per_second)
        result = IntervalResult(config, sample, summaries, hm_ipc(summaries), fresh=fresh)
        self.intervals.append(result)
        return result

    def detect(self, summaries: list[CoreSummary]) -> DetectionReport:
        return self.detector.detect(summaries)

    def record_stage(self, trace: StageTrace) -> None:
        """Append one pipeline stage's trace record (observability only)."""
        self.stage_traces.append(trace)
