"""CMM — Coordinated Multi-resource Management (the paper's contribution).

Front-end (detection) and back-end (allocation) are decoupled, as in
the paper (Sec. III): the front-end identifies prefetch-aggressive
cores from Table I metrics; the back-end allocates two resources —
prefetchers (via throttling) and LLC ways (via CAT partitions) —
periodically, using short sampling intervals scored by the harmonic
mean of per-core IPC.
"""

from repro.core.allocation import ResourceConfig
from repro.core.controller import (
    CMMController,
    DegradedState,
    EpochRecord,
    ResilienceConfig,
    RunStats,
)
from repro.core.epoch import EpochConfig, EpochContext, IntervalResult
from repro.core.frontend import (
    AggDetector,
    DetectorConfig,
    SampleRejected,
    SampleValidationConfig,
    SampleValidator,
)
from repro.core.metrics_defs import TableIMetrics, CoreSummary, summarize_sample
from repro.core.pipeline import (
    ActuateStage,
    ClassifyStage,
    CoordinatedThrottleStage,
    DecisionPipeline,
    DunnStage,
    PartitionStage,
    PipelineState,
    SenseStage,
    Stage,
    SweepScorer,
    ThrottleSweepStage,
)
from repro.core.policies import POLICIES, make_policy, policy_names
from repro.core.trace import TRACE_SCHEMA_VERSION, EpochTrace, StageTrace, TraceSchemaError

__all__ = [
    "ResourceConfig",
    "CMMController",
    "DegradedState",
    "EpochRecord",
    "ResilienceConfig",
    "RunStats",
    "EpochConfig",
    "EpochContext",
    "IntervalResult",
    "AggDetector",
    "DetectorConfig",
    "SampleRejected",
    "SampleValidationConfig",
    "SampleValidator",
    "TableIMetrics",
    "CoreSummary",
    "summarize_sample",
    "POLICIES",
    "make_policy",
    "policy_names",
    "ActuateStage",
    "ClassifyStage",
    "CoordinatedThrottleStage",
    "DecisionPipeline",
    "DunnStage",
    "PartitionStage",
    "PipelineState",
    "SenseStage",
    "Stage",
    "SweepScorer",
    "ThrottleSweepStage",
    "TRACE_SCHEMA_VERSION",
    "EpochTrace",
    "StageTrace",
    "TraceSchemaError",
]
