"""Resource configurations: the unit of back-end decision making.

A :class:`ResourceConfig` captures one complete allocation — per-core
prefetch disable masks (MSR 0x1A4 semantics) plus CAT partitions
(CLOS capacity bit masks and core associations) — and knows how to
apply itself to any :class:`~repro.platform.base.Platform`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.platform.base import Platform
from repro.sim.msr import PF_ALL_OFF, PF_ALL_ON


@dataclass(frozen=True)
class ResourceConfig:
    prefetch_masks: tuple[int, ...]        # per core; bit set = prefetcher disabled
    clos_cbm: tuple[tuple[int, int], ...]  # (clos, cbm) pairs, sorted by clos
    core_clos: tuple[int, ...]             # per core CLOS association

    def __post_init__(self) -> None:
        if len(self.prefetch_masks) != len(self.core_clos):
            raise ValueError("prefetch_masks and core_clos must cover the same cores")
        for m in self.prefetch_masks:
            if not 0 <= m <= 0xF:
                raise ValueError(f"prefetch mask out of range: {m:#x}")
        defined = {c for c, _ in self.clos_cbm}
        if len(defined) != len(self.clos_cbm):
            raise ValueError("duplicate CLOS in clos_cbm")
        for cl in self.core_clos:
            if cl not in defined:
                raise ValueError(f"core assigned to undefined CLOS {cl}")

    @classmethod
    def all_on(cls, n_cores: int, llc_ways: int) -> "ResourceConfig":
        """Baseline: every prefetcher on, one full-mask partition."""
        full = (1 << llc_ways) - 1
        return cls(
            prefetch_masks=(PF_ALL_ON,) * n_cores,
            clos_cbm=((0, full),),
            core_clos=(0,) * n_cores,
        )

    # ------------------------------------------------- derivations

    def with_prefetch_off(self, cores: tuple[int, ...] | list[int]) -> "ResourceConfig":
        masks = list(self.prefetch_masks)
        for c in cores:
            masks[c] = PF_ALL_OFF
        return replace(self, prefetch_masks=tuple(masks))

    def with_prefetch_on(self, cores: tuple[int, ...] | list[int]) -> "ResourceConfig":
        masks = list(self.prefetch_masks)
        for c in cores:
            masks[c] = PF_ALL_ON
        return replace(self, prefetch_masks=tuple(masks))

    def with_prefetch_mask(self, core: int, mask: int) -> "ResourceConfig":
        """Set one core's raw 0x1A4 disable mask (fine-grained control)."""
        masks = list(self.prefetch_masks)
        masks[core] = mask
        return replace(self, prefetch_masks=tuple(masks))

    def with_partition(self, clos: int, cbm: int, cores: tuple[int, ...] | list[int]) -> "ResourceConfig":
        """Define/overwrite one CLOS and move ``cores`` into it."""
        table = dict(self.clos_cbm)
        table[clos] = cbm
        assoc = list(self.core_clos)
        for c in cores:
            assoc[c] = clos
        return replace(
            self,
            clos_cbm=tuple(sorted(table.items())),
            core_clos=tuple(assoc),
        )

    def throttled_cores(self) -> tuple[int, ...]:
        return tuple(i for i, m in enumerate(self.prefetch_masks) if m == PF_ALL_OFF)

    def cbm_of_core(self, core: int) -> int:
        table = dict(self.clos_cbm)
        return table[self.core_clos[core]]

    # ------------------------------------------------------ apply

    def apply(self, platform: Platform) -> None:
        for clos, cbm in self.clos_cbm:
            platform.set_clos_cbm(clos, cbm)
        for core, clos in enumerate(self.core_clos):
            platform.assign_core_clos(core, clos)
        for core, mask in enumerate(self.prefetch_masks):
            platform.set_prefetch_mask(core, mask)
