"""PT — prefetch throttling (paper Sec. III-B1).

The policy treats each core's four prefetchers as one on/off entity.
Profiling epoch structure:

* interval 1: **always all-on** (some cores may have been throttled in
  the previous epoch; statistics need prefetchers running) — also the
  detection interval;
* interval 2: Agg-set prefetchers **off** — doubles as the
  friendliness probe and as the all-off candidate;
* then one interval per remaining on/off combination of the Agg set.
  With more Agg cores than ``max_exhaustive``, the cores are first
  clustered into at most ``n_groups`` groups by their L2 PTR (M-3)
  using 1-D k-means, and combinations are tried at group granularity
  (2^3 = 8 settings instead of 2^N).

The combination with the highest harmonic-mean IPC (the paper's proxy
for ANTT / harmonic speedup) wins and is applied for the next
execution epoch.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterable, Sequence

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochContext, IntervalResult
from repro.core.kmeans import cluster_groups
from repro.core.metrics_defs import CoreSummary
from repro.core.policy_base import Policy
from repro.sim.msr import MASK_L1_OFF, MASK_L2_OFF


def throttle_groups(
    agg_set: Sequence[int],
    summaries: list[CoreSummary],
    *,
    max_exhaustive: int = 3,
    n_groups: int = 3,
) -> list[list[int]]:
    """Group the Agg set for combination search.

    Small sets stay singleton groups (exhaustive search); larger sets
    are k-means-clustered by L2 PTR so cores exerting similar LLC
    pressure are throttled together.
    """
    agg = list(agg_set)
    if len(agg) <= max_exhaustive:
        return [[c] for c in agg]
    ptr = [summaries[c].metrics.l2_ptr for c in agg]
    groups = cluster_groups(ptr, n_groups)
    return [[agg[i] for i in idxs] for idxs in groups if idxs]


def off_combinations(groups: list[list[int]]) -> Iterable[tuple[int, ...]]:
    """All subsets of groups, yielded as flat core tuples (off cores).

    Includes the empty subset (all on) and the full subset (all off);
    callers typically skip those because intervals 1 and 2 already
    measured them.
    """
    idx = range(len(groups))
    for subset in chain.from_iterable(combinations(idx, r) for r in range(len(groups) + 1)):
        yield tuple(sorted(c for g in subset for c in groups[g]))


class PrefetchThrottlingPolicy(Policy):
    """The paper's PT mechanism."""

    name = "pt"

    def __init__(
        self,
        *,
        max_exhaustive: int = 3,
        n_groups: int = 3,
        friendly_threshold: float = 0.50,
        selection_margin: float = 0.03,
        fine_grained: bool = False,
    ) -> None:
        self.max_exhaustive = max_exhaustive
        self.n_groups = n_groups
        self.friendly_threshold = friendly_threshold
        # Intel exposes the four prefetchers individually (MSR 0x1A4);
        # the paper treats them as one on/off entity but notes the
        # framework supports finer exploration.  With ``fine_grained``
        # the winning off-set is additionally probed with only the L2
        # prefetchers disabled and only the L1 prefetchers disabled.
        self.fine_grained = fine_grained
        # A throttled combination must beat the all-on interval's hm-IPC
        # by this relative margin to be adopted: sampling intervals are
        # short, and without hysteresis the search chases sub-noise
        # "wins" that trade a friendly core's large loss for a marginal
        # aggregate gain.
        self.selection_margin = selection_margin
        self.last_agg_set: tuple[int, ...] = ()

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        base = ctx.baseline_config()
        r_on = ctx.sample(base)  # interval 1: all prefetchers on
        report = ctx.detect(r_on.summaries)
        agg = report.agg_set
        self.last_agg_set = agg
        if not agg:
            return base  # nothing to throttle this epoch

        all_off_cfg = base.with_prefetch_off(agg)
        r_off = ctx.sample(all_off_cfg)  # interval 2: Agg prefetchers off

        groups = throttle_groups(
            agg, r_on.summaries, max_exhaustive=self.max_exhaustive, n_groups=self.n_groups
        )

        best: IntervalResult = r_off
        best_off: tuple[int, ...] = tuple(agg)
        seen = {(), tuple(agg)}
        for off_cores in off_combinations(groups):
            if off_cores in seen:
                continue
            seen.add(off_cores)
            if ctx.budget_left() <= 1:  # keep one interval for the re-reference
                break
            result = ctx.sample(base.with_prefetch_off(off_cores))
            if result.hm_ipc > best.hm_ipc:
                best = result
                best_off = off_cores
        if self.fine_grained and best_off:
            # Probe partial disables of the winning off-set.
            for mask in (MASK_L2_OFF, MASK_L1_OFF):
                if ctx.budget_left() <= 1:
                    break
                cand = base
                for c in best_off:
                    cand = cand.with_prefetch_mask(c, mask)
                result = ctx.sample(cand)
                if result.hm_ipc > best.hm_ipc:
                    best = result
        # Re-sample the all-on reference *after* the sweep: cache state
        # drifts upward across the profiling epoch (working sets keep
        # warming), so the early interval-1 score understates the
        # baseline and every later candidate would look like a win.
        reference = max(r_on.hm_ipc, ctx.sample(base).hm_ipc if ctx.budget_left() > 0 else 0.0)
        if best.hm_ipc > (1.0 + self.selection_margin) * reference:
            return best.config
        return base  # nothing convincingly beat leaving prefetchers on
