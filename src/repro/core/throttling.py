"""PT — prefetch throttling (paper Sec. III-B1).

The policy treats each core's four prefetchers as one on/off entity.
Profiling epoch structure:

* interval 1: **always all-on** (some cores may have been throttled in
  the previous epoch; statistics need prefetchers running) — also the
  detection interval;
* interval 2: Agg-set prefetchers **off** — doubles as the
  friendliness probe and as the all-off candidate;
* then one interval per remaining on/off combination of the Agg set.
  With more Agg cores than ``max_exhaustive``, the cores are first
  clustered into at most ``n_groups`` groups by their L2 PTR (M-3)
  using 1-D k-means, and combinations are tried at group granularity
  (2^3 = 8 settings instead of 2^N).

The combination with the highest harmonic-mean IPC (the paper's proxy
for ANTT / harmonic speedup) wins and is applied for the next
execution epoch.

The plan is a :class:`~repro.core.pipeline.DecisionPipeline`
composition — Sense, Classify (with the friendliness probe doubling as
the all-off candidate), and the exhaustive/k-means throttle sweep.
"""

from __future__ import annotations

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochContext
from repro.core.pipeline import (
    ClassifyStage,
    DecisionPipeline,
    SenseStage,
    SweepScorer,
    ThrottleSweepStage,
    off_combinations,
    throttle_groups,
)
from repro.core.policy_base import Policy

__all__ = ["PrefetchThrottlingPolicy", "off_combinations", "throttle_groups"]


class PrefetchThrottlingPolicy(Policy):
    """The paper's PT mechanism."""

    name = "pt"

    def __init__(
        self,
        *,
        max_exhaustive: int = 3,
        n_groups: int = 3,
        friendly_threshold: float = 0.50,
        selection_margin: float = 0.03,
        fine_grained: bool = False,
    ) -> None:
        self.max_exhaustive = max_exhaustive
        self.n_groups = n_groups
        self.friendly_threshold = friendly_threshold
        # Intel exposes the four prefetchers individually (MSR 0x1A4);
        # the paper treats them as one on/off entity but notes the
        # framework supports finer exploration.  With ``fine_grained``
        # the winning off-set is additionally probed with only the L2
        # prefetchers disabled and only the L1 prefetchers disabled.
        self.fine_grained = fine_grained
        # A throttled combination must beat the all-on interval's hm-IPC
        # by this relative margin to be adopted: see SweepScorer.
        self.selection_margin = selection_margin
        self.last_agg_set: tuple[int, ...] = ()

    def _pipeline(self) -> DecisionPipeline:
        return DecisionPipeline([
            SenseStage(),
            ClassifyStage(
                probe_friendliness=True,
                friendly_threshold=self.friendly_threshold,
                empty_decision="baseline",  # nothing to throttle this epoch
            ),
            ThrottleSweepStage(
                max_exhaustive=self.max_exhaustive,
                n_groups=self.n_groups,
                fine_grained=self.fine_grained,
                scorer=SweepScorer(self.selection_margin),
            ),
        ])

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        state = self._pipeline().run(ctx)
        self.last_agg_set = state.agg_set
        return state.decision
