"""Structured epoch tracing: why each epoch landed on its config.

Every decision-pipeline stage (see :mod:`repro.core.pipeline`) emits a
:class:`StageTrace` — inputs summarized, candidates scored, rejection
reasons — and the controller folds them, together with the actuation
and execution outcomes, into one :class:`EpochTrace` per epoch on
:attr:`~repro.core.controller.RunStats.traces`.

Traces are *observability*, never *behavior*: producing them changes
no platform call, no sample, and no decision (pinned by
``tests/chaos/test_differential.py``), and they are excluded from
experiment cache keys.  The experiment engine persists them beside
cached results (``<key>.traces.json``), schema-versioned so a reader
never silently misinterprets records written by a different layout —
bump :data:`TRACE_SCHEMA_VERSION` whenever the serialized shape
changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

#: Bump whenever the serialized trace layout changes; readers refuse
#: records from a different schema instead of misreading them.
TRACE_SCHEMA_VERSION = 1


class TraceSchemaError(ValueError):
    """A serialized trace was written under an incompatible schema."""


def config_summary(config) -> dict:
    """JSON-safe summary of a :class:`~repro.core.allocation.ResourceConfig`."""
    return {
        "prefetch_masks": list(config.prefetch_masks),
        "throttled": list(config.throttled_cores()),
        "clos_cbm": {str(clos): cbm for clos, cbm in config.clos_cbm},
        "core_clos": list(config.core_clos),
    }


@dataclass
class StageTrace:
    """One pipeline stage's structured account of what it did.

    ``detail`` is a JSON-serializable dict whose keys are stage
    specific (``agg_set`` for classify, ``candidates`` for the sweep
    stages, ``error`` for a failed actuation, ...).  ``skipped`` marks
    stages that never ran because an earlier stage already decided.
    """

    stage: str
    detail: dict = field(default_factory=dict)
    skipped: bool = False

    def to_dict(self) -> dict:
        return {"stage": self.stage, "detail": self.detail, "skipped": self.skipped}

    @classmethod
    def from_dict(cls, d: dict) -> "StageTrace":
        return cls(stage=d["stage"], detail=dict(d["detail"]), skipped=bool(d["skipped"]))


@dataclass
class EpochTrace:
    """The full decision record of one controller epoch.

    ``winner`` is the :func:`config_summary` of the applied config;
    ``degraded`` marks post-fallback epochs that ran uncontrolled.
    """

    epoch: int
    policy: str
    stages: list[StageTrace] = field(default_factory=list)
    winner: dict | None = None
    sampling_intervals: int = 0
    failure: str | None = None
    degraded: bool = False
    schema: int = TRACE_SCHEMA_VERSION

    # ------------------------------------------------- conveniences

    def stage(self, name: str) -> StageTrace | None:
        """The first stage trace named ``name`` (``None`` if absent)."""
        for s in self.stages:
            if s.stage == name:
                return s
        return None

    @property
    def agg_set(self) -> tuple[int, ...]:
        """The classify stage's Agg set (empty when no classify ran)."""
        s = self.stage("classify")
        return tuple(s.detail.get("agg_set", ())) if s is not None else ()

    @property
    def candidates(self) -> list[dict]:
        """Every scored candidate across the epoch's decide stages."""
        out: list[dict] = []
        for s in self.stages:
            out.extend(s.detail.get("candidates", ()))
        return out

    @property
    def decision_reason(self) -> str | None:
        """The last decide-stage reason (adopted / margin-not-met / ...)."""
        reason = None
        for s in self.stages:
            reason = s.detail.get("reason", reason)
        return reason

    # ------------------------------------------------- serialization

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "epoch": self.epoch,
            "policy": self.policy,
            "stages": [s.to_dict() for s in self.stages],
            "winner": self.winner,
            "sampling_intervals": self.sampling_intervals,
            "failure": self.failure,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "EpochTrace":
        schema = d.get("schema")
        if schema != TRACE_SCHEMA_VERSION:
            raise TraceSchemaError(
                f"trace schema {schema!r} is not the supported {TRACE_SCHEMA_VERSION}"
            )
        return cls(
            epoch=d["epoch"],
            policy=d["policy"],
            stages=[StageTrace.from_dict(s) for s in d["stages"]],
            winner=d["winner"],
            sampling_intervals=d["sampling_intervals"],
            failure=d["failure"],
            degraded=d["degraded"],
            schema=schema,
        )


def traces_to_dicts(traces: Iterable[EpochTrace]) -> list[dict]:
    return [t.to_dict() for t in traces]


def traces_from_dicts(records: Iterable[dict]) -> list[EpochTrace]:
    return [EpochTrace.from_dict(d) for d in records]


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars / tuples into plain JSON types."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (tuple, list)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return value


def json_safe_detail(detail: dict) -> dict:
    """Normalize a stage detail dict so ``json.dumps`` round-trips it."""
    return {str(k): _json_safe(v) for k, v in detail.items()}
