"""Dunn — the clustering CP baseline of Selfa et al. (PACT'17).

The paper compares its CP plans against "the best known algorithm,
Dunn": cores are k-means-clustered on their STALLS_L2_PENDING counts;
each cluster is assigned a number of LLC ways that grows with its
stall count (more stalled -> more ways); the resulting partitions
partially overlap — "in fact they are nested".

We implement the nested-mask variant: clusters sorted by ascending
stalls get masks over the lowest W_1 <= W_2 <= ... <= W_k ways, with
W_k = all ways and W_j proportional to the cluster's share of total
stalls (cumulative), floored at ``min_ways``.  Dunn ignores
prefetching entirely — which is precisely the weakness the paper's
Pref-CP plans exploit.

The clustering/way-assignment math lives in
:mod:`repro.core.pipeline` (shared with CMM's option-d fallback) and
is re-exported here under its historical names; the policy itself is a
two-stage :class:`~repro.core.pipeline.DecisionPipeline`.
"""

from __future__ import annotations

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochContext
from repro.core.pipeline import (
    DecisionPipeline,
    DunnStage,
    SenseStage,
    dunn_config,
    dunn_way_assignment,
)
from repro.core.policy_base import Policy

__all__ = ["DunnPolicy", "dunn_config", "dunn_way_assignment"]


class DunnPolicy(Policy):
    """Selfa et al.'s fairness clustering, as the paper's CP baseline."""

    name = "dunn"

    def __init__(self, *, k: int = 4) -> None:
        self.k = k

    def _pipeline(self) -> DecisionPipeline:
        return DecisionPipeline([SenseStage(), DunnStage(k=self.k)])

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        return self._pipeline().run(ctx).decision
