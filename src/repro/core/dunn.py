"""Dunn — the clustering CP baseline of Selfa et al. (PACT'17).

The paper compares its CP plans against "the best known algorithm,
Dunn": cores are k-means-clustered on their STALLS_L2_PENDING counts;
each cluster is assigned a number of LLC ways that grows with its
stall count (more stalled -> more ways); the resulting partitions
partially overlap — "in fact they are nested".

We implement the nested-mask variant: clusters sorted by ascending
stalls get masks over the lowest W_1 <= W_2 <= ... <= W_k ways, with
W_k = all ways and W_j proportional to the cluster's share of total
stalls (cumulative), floored at ``min_ways``.  Dunn ignores
prefetching entirely — which is precisely the weakness the paper's
Pref-CP plans exploit.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochContext
from repro.core.kmeans import cluster_groups
from repro.core.metrics_defs import CoreSummary
from repro.core.policy_base import Policy
from repro.sim.cat import low_ways_mask


def dunn_way_assignment(
    cluster_stalls: list[float], total_ways: int, *, min_ways: int = 2
) -> list[int]:
    """Nested way counts for clusters ordered by ascending stalls.

    The most-stalled cluster always receives the full cache; lower
    clusters receive ways proportional to their cumulative share of
    total stalls, floored and made monotone.
    """
    k = len(cluster_stalls)
    if k == 0:
        return []
    if any(s < 0 for s in cluster_stalls):
        raise ValueError("stall counts must be non-negative")
    total = sum(cluster_stalls)
    if total <= 0:
        return [total_ways] * k
    ways = []
    cum = 0.0
    for s in cluster_stalls:
        cum += s
        ways.append(max(min_ways, int(round(total_ways * cum / total))))
    # Enforce monotonicity and pin the top cluster to the full cache.
    for i in range(1, k):
        ways[i] = max(ways[i], ways[i - 1])
    ways[-1] = total_ways
    return [min(w, total_ways) for w in ways]


def dunn_config(
    summaries: list[CoreSummary], base: ResourceConfig, llc_ways: int, *, k: int = 4, clos_base: int = 4
) -> ResourceConfig:
    """Build the Dunn partitioning from one interval's summaries."""
    active = [s.cpu for s in summaries if s.active]
    if not active:
        return base
    stalls = [summaries[c].stalls_l2_pending for c in active]
    groups = cluster_groups(np.asarray(stalls), min(k, len(active)))
    cluster_stall_means = [float(np.mean([stalls[i] for i in g])) for g in groups]
    ways = dunn_way_assignment(cluster_stall_means, llc_ways)
    cfg = base
    for j, g in enumerate(groups):
        cores = [active[i] for i in g]
        mask = low_ways_mask(ways[j], llc_ways)
        cfg = cfg.with_partition(clos_base + j, mask, cores)
    return cfg


class DunnPolicy(Policy):
    """Selfa et al.'s fairness clustering, as the paper's CP baseline."""

    name = "dunn"

    def __init__(self, *, k: int = 4) -> None:
        self.k = k

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        base = ctx.baseline_config()
        r_on = ctx.sample(base)
        return dunn_config(r_on.summaries, base, ctx.llc_ways, k=self.k)
