"""The CMM controller: drives epochs against a platform.

Mirrors the paper's kernel module: for each epoch it opens a profiling
window (the policy draws sampling intervals through an
:class:`~repro.core.epoch.EpochContext`), applies the policy's chosen
:class:`~repro.core.allocation.ResourceConfig`, and runs one execution
epoch.  All PMU activity — profiling and execution alike — is
accumulated into :class:`RunStats`, matching how the paper measures
whole 2.5-minute runs including controller overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochConfig, EpochContext
from repro.core.frontend import AggDetector, DetectorConfig
from repro.core.policy_base import Policy
from repro.platform.base import Platform
from repro.sim.pmu import Event, PmuSample


@dataclass
class EpochRecord:
    """What one epoch decided and measured."""

    chosen: ResourceConfig
    sampling_intervals: int
    exec_sample: PmuSample


@dataclass
class RunStats:
    """Accumulated outcome of a controller run."""

    n_cores: int
    cycles_per_second: float
    totals: np.ndarray = field(default=None)  # (n_cores, N_EVENTS)
    wall_cycles: float = 0.0
    epochs: list[EpochRecord] = field(default_factory=list)

    def add(self, sample: PmuSample) -> None:
        if self.totals is None:
            self.totals = sample.deltas.copy()
        else:
            self.totals = self.totals + sample.deltas
        self.wall_cycles += sample.wall_cycles

    def ipc(self, cpu: int) -> float:
        cyc = self.totals[cpu, Event.CYCLES]
        return float(self.totals[cpu, Event.INSTRUCTIONS] / cyc) if cyc > 0 else 0.0

    def ipc_all(self) -> np.ndarray:
        return np.array([self.ipc(c) for c in range(self.n_cores)])

    def total(self, event: Event) -> float:
        return float(self.totals[:, event].sum())

    def per_cpu(self, event: Event) -> np.ndarray:
        return self.totals[:, event].copy()

    @property
    def wall_seconds(self) -> float:
        return self.wall_cycles / self.cycles_per_second

    def mem_bandwidth_mbs(self) -> float:
        """Aggregate demand+prefetch memory bandwidth over the run."""
        secs = self.wall_seconds
        if secs <= 0:
            return 0.0
        total = self.total(Event.MEM_DEMAND_BYTES) + self.total(Event.MEM_PREF_BYTES)
        return total / secs / 1e6


class CMMController:
    """Front-end + back-end glue, one policy per controller."""

    def __init__(
        self,
        platform: Platform,
        policy: Policy,
        *,
        epoch_cfg: EpochConfig | None = None,
        detector_cfg: DetectorConfig | None = None,
    ) -> None:
        self.platform = platform
        self.policy = policy
        self.epoch_cfg = epoch_cfg or EpochConfig()
        self.detector = AggDetector(detector_cfg)

    def run_epoch(self, stats: RunStats) -> EpochRecord:
        ctx = EpochContext(self.platform, self.detector, self.epoch_cfg)
        chosen = self.policy.plan(ctx)
        for interval in ctx.intervals:
            stats.add(interval.sample)
        chosen.apply(self.platform)
        exec_sample = self.platform.run_interval(self.epoch_cfg.exec_units)
        stats.add(exec_sample)
        record = EpochRecord(chosen, len(ctx.intervals), exec_sample)
        stats.epochs.append(record)
        return record

    def run(self, n_epochs: int) -> RunStats:
        if n_epochs < 1:
            raise ValueError("need at least one epoch")
        stats = RunStats(self.platform.n_cores, self.platform.cycles_per_second)
        if self.epoch_cfg.warmup_units > 0:
            # Warm caches under the baseline configuration so the first
            # detection interval doesn't mistake cold-start misses for
            # steady-state prefetch aggressiveness.
            ResourceConfig.all_on(self.platform.n_cores, self.platform.llc_ways).apply(self.platform)
            stats.add(self.platform.run_interval(self.epoch_cfg.warmup_units))
        for _ in range(n_epochs):
            self.run_epoch(stats)
        return stats
