"""The CMM controller: drives epochs against a platform.

Mirrors the paper's kernel module: for each epoch it opens a profiling
window (the policy draws sampling intervals through an
:class:`~repro.core.epoch.EpochContext`), applies the policy's chosen
:class:`~repro.core.allocation.ResourceConfig`, and runs one execution
epoch.  All PMU activity — profiling and execution alike — is
accumulated into :class:`RunStats`, matching how the paper measures
whole 2.5-minute runs including controller overhead.

The loop is hardened for real hardware, where the platform contract is
unreliable (see :class:`~repro.platform.base.PlatformError`):

* control writes retry with bounded exponential backoff;
* PMU samples pass through front-end validation/quarantine
  (:class:`~repro.core.frontend.SampleValidator`) — Table I metrics are
  only ever computed from validated samples, with the last-good sample
  standing in up to a staleness limit;
* after ``failure_threshold`` *consecutive* failed epochs the
  controller restores the paper's default configuration (all
  prefetchers on, partitions reset), records a structured
  :class:`DegradedState` on the stats, and keeps the workload running
  uncontrolled instead of raising.

With a fault-free platform none of this machinery changes a single
platform call or counter: results are bit-identical to the plain loop
(differential-tested in ``tests/chaos/test_differential.py``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochConfig, EpochContext
from repro.core.frontend import (
    AggDetector,
    DetectorConfig,
    SampleValidationConfig,
    SampleValidator,
)
from repro.core.pipeline import RECOVERABLE, ActuateStage
from repro.core.policy_base import Policy
from repro.core.trace import EpochTrace, config_summary
from repro.platform.base import Platform
from repro.sim import profiling
from repro.sim.msr import PF_ALL_ON
from repro.sim.pmu import Event, PmuSample

__all__ = [
    "RECOVERABLE",
    "ResilienceConfig",
    "DegradedState",
    "EpochRecord",
    "RunStats",
    "CMMController",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the controller's graceful-degradation machinery."""

    #: Retries (beyond the first attempt) for one control-write batch.
    max_write_retries: int = 3
    #: First backoff sleep; doubles per retry (0 disables sleeping).
    backoff_base_s: float = 0.001
    backoff_factor: float = 2.0
    #: K — consecutive failed epochs before the safe-state fallback.
    failure_threshold: int = 3
    #: Intervals the last-good PMU sample may stand in for rejected ones.
    staleness_limit: int = 3
    #: Per-operation attempts while restoring the safe state.
    safe_state_attempts: int = 16
    #: Seeded full-jitter backoff (AWS style): each retry sleeps
    #: ``uniform(0, base * factor**(attempt-1))`` instead of the
    #: deterministic ceiling, so N workers hitting EBUSY together
    #: spread their retries instead of colliding in lockstep.  Off by
    #: default — the deterministic schedule is part of the pinned
    #: bit-identity baseline (tests/chaos/test_differential.py).
    backoff_jitter: bool = False
    #: Seed for the jitter stream (one RNG per controller, so runs
    #: stay reproducible under a fixed seed).
    backoff_jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_write_retries < 0:
            raise ValueError("max_write_retries must be non-negative")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.safe_state_attempts < 1:
            raise ValueError("safe_state_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")


@dataclass(frozen=True)
class DegradedState:
    """Structured report of the safe-state fallback having fired."""

    reason: str                  # the failure that tripped the threshold
    epoch_index: int             # epoch during which degradation happened
    consecutive_failures: int    # the streak length that tripped it
    safe_state_applied: bool     # all-prefetchers-on + reset_partitions stuck
    failures: tuple[str, ...]    # the failure log up to that point


@dataclass
class EpochRecord:
    """What one epoch decided and measured.

    ``exec_sample`` is ``None`` when the execution interval's sample
    was lost; ``failure`` carries the first failure of the epoch (a
    fully-clean epoch has ``failure is None``).
    """

    chosen: ResourceConfig
    sampling_intervals: int
    exec_sample: PmuSample | None
    failure: str | None = None


@dataclass
class RunStats:
    """Accumulated outcome of a controller run."""

    n_cores: int
    cycles_per_second: float
    totals: np.ndarray = field(default=None)  # (n_cores, N_EVENTS)
    wall_cycles: float = 0.0
    epochs: list[EpochRecord] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)
    degraded: DegradedState | None = None
    #: Structured per-epoch decision records (see repro.core.trace);
    #: empty when the controller runs with ``trace=False``.
    traces: list[EpochTrace] = field(default_factory=list)
    #: Zero-copy go-live fallbacks the run's traces took (see
    #: ``MaterializedTrace.chunk``); 0 for live-generated traces and
    #: for cache-rehydrated stats.  Batch sweeps assert this stays 0.
    trace_fallbacks: int = 0
    #: Batch-engine degradations attributed to this run (lockstep
    #: fork-to-scalar / unbatchable group; see repro.sim.batch).  0 on
    #: scalar machines and for cache-rehydrated stats; results are
    #: bit-identical either way — this only records that the fast path
    #: was lost.
    batch_degradations: int = 0
    #: Native-kernel-tier fallbacks attributed to this run (compiled
    #: tier requested but unavailable; see repro.sim.nativekernels).
    #: Results are bit-identical either way, like batch_degradations.
    native_fallbacks: int = 0
    #: Per-phase kernel timing for this run, ``{phase: {"seconds",
    #: "calls"}}``; populated only when $REPRO_KERNEL_PROFILE is on
    #: (see repro.sim.profiling), empty otherwise.
    kernel_profile: dict = field(default_factory=dict)

    def add(self, sample: PmuSample) -> None:
        if self.totals is None:
            self.totals = sample.deltas.copy()
        else:
            self.totals = self.totals + sample.deltas
        self.wall_cycles += sample.wall_cycles

    def ipc(self, cpu: int) -> float:
        cyc = self.totals[cpu, Event.CYCLES]
        return float(self.totals[cpu, Event.INSTRUCTIONS] / cyc) if cyc > 0 else 0.0

    def ipc_all(self) -> np.ndarray:
        return np.array([self.ipc(c) for c in range(self.n_cores)])

    def total(self, event: Event) -> float:
        return float(self.totals[:, event].sum())

    def per_cpu(self, event: Event) -> np.ndarray:
        return self.totals[:, event].copy()

    @property
    def wall_seconds(self) -> float:
        return self.wall_cycles / self.cycles_per_second

    def mem_bandwidth_mbs(self) -> float:
        """Aggregate demand+prefetch memory bandwidth over the run."""
        secs = self.wall_seconds
        if secs <= 0:
            return 0.0
        total = self.total(Event.MEM_DEMAND_BYTES) + self.total(Event.MEM_PREF_BYTES)
        return total / secs / 1e6


class CMMController:
    """Front-end + back-end glue, one policy per controller."""

    def __init__(
        self,
        platform: Platform,
        policy: Policy,
        *,
        epoch_cfg: EpochConfig | None = None,
        detector_cfg: DetectorConfig | None = None,
        resilience_cfg: ResilienceConfig | None = None,
        sleep: Callable[[float], None] = time.sleep,
        trace: bool = True,
    ) -> None:
        self.platform = platform
        self.policy = policy
        self.epoch_cfg = epoch_cfg or EpochConfig()
        self.detector = AggDetector(detector_cfg)
        self.resilience = resilience_cfg or ResilienceConfig()
        self._sleep = sleep
        # Tracing is observability only — on by default, and bit-identical
        # either way (pinned by tests/chaos/test_differential.py).
        self.trace = trace
        self._validator: SampleValidator | None = None
        self._last_chosen: ResourceConfig | None = None
        self._consecutive_failures = 0
        self._jitter_rng = (
            random.Random(self.resilience.backoff_jitter_seed)
            if self.resilience.backoff_jitter
            else None
        )

    # ----------------------------------------------------- resilience

    def _backoff(self, attempt: int) -> None:
        cfg = self.resilience
        if cfg.backoff_base_s > 0:
            delay = cfg.backoff_base_s * cfg.backoff_factor ** (attempt - 1)
            if self._jitter_rng is not None:
                delay = self._jitter_rng.uniform(0.0, delay)
            self._sleep(delay)

    def _apply_config(self, config: ResourceConfig) -> None:
        """Apply a config with bounded retry-with-backoff.

        Control writes are idempotent, so a retry simply replays the
        whole batch.  Raises the last error once retries are exhausted.
        """
        attempt = 0
        while True:
            try:
                config.apply(self.platform)
                return
            except RECOVERABLE:
                attempt += 1
                if attempt > self.resilience.max_write_retries:
                    raise
                self._backoff(attempt)

    def _admit(self, sample: PmuSample) -> PmuSample:
        if self._validator is None:
            return sample
        admitted, _fresh = self._validator.admit(sample)
        return admitted

    def _baseline(self) -> ResourceConfig:
        return ResourceConfig.all_on(self.platform.n_cores, self.platform.llc_ways)

    def _enter_safe_state(self, stats: RunStats, reason: str, epoch_index: int) -> None:
        """Restore the paper's default configuration, best effort.

        Each operation retries independently (``safe_state_attempts``
        per core / per reset) so one persistently failing write cannot
        block the others from being restored.
        """
        cfg = self.resilience
        applied = True
        for core in range(self.platform.n_cores):
            for attempt in range(cfg.safe_state_attempts):
                try:
                    self.platform.set_prefetch_mask(core, PF_ALL_ON)
                    break
                except RECOVERABLE:
                    if attempt + 1 < cfg.safe_state_attempts:
                        self._backoff(min(attempt + 1, 4))
            else:
                applied = False
        for attempt in range(cfg.safe_state_attempts):
            try:
                self.platform.reset_partitions()
                break
            except RECOVERABLE:
                if attempt + 1 < cfg.safe_state_attempts:
                    self._backoff(min(attempt + 1, 4))
        else:
            applied = False
        stats.degraded = DegradedState(
            reason=reason,
            epoch_index=epoch_index,
            consecutive_failures=self._consecutive_failures,
            safe_state_applied=applied,
            failures=tuple(stats.failures),
        )

    def _record_outcome(self, stats: RunStats, record: EpochRecord, epoch_index: int) -> None:
        stats.epochs.append(record)
        if record.failure is None:
            self._consecutive_failures = 0
            return
        self._consecutive_failures += 1
        stats.failures.append(f"epoch {epoch_index}: {record.failure}")
        if stats.degraded is None and self._consecutive_failures >= self.resilience.failure_threshold:
            self._enter_safe_state(stats, record.failure, epoch_index)

    # ----------------------------------------------------- epoch loop

    def run_epoch(self, stats: RunStats) -> EpochRecord:
        epoch_index = len(stats.epochs)
        if stats.degraded is not None:
            return self._run_degraded_epoch(stats, epoch_index)

        ctx = EpochContext(
            self.platform,
            self.detector,
            self.epoch_cfg,
            validator=self._validator,
            applier=self._apply_config,
        )
        failure: str | None = None
        try:
            chosen = self.policy.plan(ctx)
        except RECOVERABLE as e:
            failure = f"profiling failed: {e}"
            chosen = self._last_chosen or self._baseline()
        for interval in ctx.intervals:
            stats.add(interval.sample)

        actuation = ActuateStage(self._apply_config).apply(chosen)
        if actuation.detail["applied"]:
            self._last_chosen = chosen
        else:
            # The platform keeps whatever (possibly partial) allocation
            # the failed batch left behind; the next epoch re-plans.
            failure = failure or f"apply failed: {actuation.detail['error']}"

        exec_sample: PmuSample | None = None
        try:
            exec_sample = self._admit(self.platform.run_interval(self.epoch_cfg.exec_units))
            stats.add(exec_sample)
        except RECOVERABLE as e:
            failure = failure or f"execution interval failed: {e}"

        record = EpochRecord(chosen, len(ctx.intervals), exec_sample, failure=failure)
        self._record_outcome(stats, record, epoch_index)
        if self.trace:
            stats.traces.append(
                EpochTrace(
                    epoch=epoch_index,
                    policy=self.policy.name,
                    stages=list(ctx.stage_traces) + [actuation],
                    winner=config_summary(chosen),
                    sampling_intervals=len(ctx.intervals),
                    failure=failure,
                )
            )
        return record

    def _run_degraded_epoch(self, stats: RunStats, epoch_index: int) -> EpochRecord:
        """Post-fallback epochs: run the workload in safe state, no control."""
        failure: str | None = None
        exec_sample: PmuSample | None = None
        try:
            exec_sample = self._admit(self.platform.run_interval(self.epoch_cfg.exec_units))
            stats.add(exec_sample)
        except RECOVERABLE as e:
            failure = f"degraded execution interval failed: {e}"
            stats.failures.append(f"epoch {epoch_index}: {failure}")
        record = EpochRecord(self._baseline(), 0, exec_sample, failure=failure)
        stats.epochs.append(record)
        if self.trace:
            stats.traces.append(
                EpochTrace(
                    epoch=epoch_index,
                    policy=self.policy.name,
                    winner=config_summary(record.chosen),
                    sampling_intervals=0,
                    failure=failure,
                    degraded=True,
                )
            )
        return record

    def run(self, n_epochs: int) -> RunStats:
        if n_epochs < 1:
            raise ValueError("need at least one epoch")
        if profiling.ON:
            prof_start = profiling.snapshot()
            wall_start = profiling.clock()
        stats = RunStats(self.platform.n_cores, self.platform.cycles_per_second)
        self._validator = SampleValidator(
            SampleValidationConfig(staleness_limit=self.resilience.staleness_limit)
        )
        self._last_chosen = None
        self._consecutive_failures = 0
        if self.epoch_cfg.warmup_units > 0:
            # Warm caches under the baseline configuration so the first
            # detection interval doesn't mistake cold-start misses for
            # steady-state prefetch aggressiveness.
            try:
                self._apply_config(self._baseline())
                stats.add(self._admit(self.platform.run_interval(self.epoch_cfg.warmup_units)))
            except RECOVERABLE as e:
                stats.failures.append(f"warmup: {e}")
        for _ in range(n_epochs):
            self.run_epoch(stats)
        fallbacks = getattr(self.platform, "trace_fallbacks", None)
        if callable(fallbacks):
            stats.trace_fallbacks = int(fallbacks())
        degradations = getattr(self.platform, "batch_degradations", None)
        if callable(degradations):
            stats.batch_degradations = int(degradations())
        native = getattr(self.platform, "native_fallbacks", None)
        if callable(native):
            stats.native_fallbacks = int(native())
        if profiling.ON:
            profile = profiling.delta_since(prof_start)
            kernel_s = sum(d["seconds"] for d in profile.values())
            # Run wall time not spent in any simulation kernel: the
            # controller's own decision/bookkeeping overhead.
            profile["controller"] = {
                "seconds": max(0.0, profiling.clock() - wall_start - kernel_s),
                "calls": n_epochs,
            }
            stats.kernel_profile = profile
        return stats
