"""CMM front-end: prefetch-aggressive core detection (paper Fig. 5).

Three-stage filter over per-core Table I metrics:

1. **PGA above average** (M-4) — cores whose access patterns make the
   L2 prefetchers generate requests at an above-average rate are
   *potentially* aggressive;
2. **L2 PMR** (M-5) above a threshold ("say 70 %") — cores whose
   prefetches mostly *hit* L2 have high prefetch locality and are
   filtered out;
3. **L2 PTR** (M-3) — the absolute bandwidth pressure the core's
   prefetches put on the LLC; cores below the pressure floor are
   filtered out.

The paper also discusses using LLC PT (M-7) and notes it identifies
essentially the same set on their hardware.  On our substrate the two
are *not* always redundant: an LLC-resident pointer chase triggers
adjacent-line prefetches whose buddies hit the LLC, giving it a
non-trivial PTR but a near-zero LLC PT.  The optional fourth filter
(enabled by default) applies the LLC PT floor for exactly that case;
set ``llc_pt_min`` to 0 to reproduce the strict three-stage pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics_defs import CoreSummary
from repro.platform.base import PlatformError
from repro.sim.pmu import PmuSample


@dataclass(frozen=True)
class DetectorConfig:
    pga_floor: float = 0.05          # ignore cores that barely prefetch at all
    pga_strong: float = 0.80         # absolute PGA that passes stage 1 even
    #                                  below the mean (a core generating ~1
    #                                  prefetch per demand is aggressive no
    #                                  matter how extreme its neighbours are)
    pmr_threshold: float = 0.70      # paper's "say 70%"
    ptr_min: float = 2.0e7           # L2 prefetch misses / second floor
    llc_pt_min: float = 1.2e9        # bytes/second of prefetch reaching memory

    def __post_init__(self) -> None:
        if not 0.0 <= self.pmr_threshold <= 1.0:
            raise ValueError("pmr_threshold must be in [0, 1]")
        if self.ptr_min < 0 or self.llc_pt_min < 0 or self.pga_floor < 0:
            raise ValueError("floors must be non-negative")


@dataclass(frozen=True)
class DetectionReport:
    """The Agg set plus the intermediate stages, for inspection."""

    agg_set: tuple[int, ...]
    pga_mean: float
    candidates_pga: tuple[int, ...]
    candidates_pmr: tuple[int, ...]
    candidates_ptr: tuple[int, ...]


class AggDetector:
    """The Fig. 5 detection pipeline."""

    def __init__(self, config: DetectorConfig | None = None) -> None:
        self.config = config or DetectorConfig()

    def detect(self, summaries: list[CoreSummary]) -> DetectionReport:
        cfg = self.config
        active = [s for s in summaries if s.active]
        if not active:
            return DetectionReport((), 0.0, (), (), ())

        pga_mean = sum(s.metrics.pga for s in active) / len(active)
        stage1 = [
            s for s in active
            if (s.metrics.pga > pga_mean or s.metrics.pga >= cfg.pga_strong)
            and s.metrics.pga > cfg.pga_floor
        ]
        stage2 = [s for s in stage1 if s.metrics.l2_pmr >= cfg.pmr_threshold]
        stage3 = [s for s in stage2 if s.metrics.l2_ptr >= cfg.ptr_min]
        final = [s for s in stage3 if s.metrics.llc_pt >= cfg.llc_pt_min]

        return DetectionReport(
            agg_set=tuple(sorted(s.cpu for s in final)),
            pga_mean=pga_mean,
            candidates_pga=tuple(sorted(s.cpu for s in stage1)),
            candidates_pmr=tuple(sorted(s.cpu for s in stage2)),
            candidates_ptr=tuple(sorted(s.cpu for s in stage3)),
        )


# ----------------------------------------------- PMU sample validation
#
# On real hardware the samples feeding the detector are not trustworthy:
# counters wrap (48-bit PMCs), multiplexing drops or corrupts reads, and
# a garbage interval fed into the Table I pipeline silently mis-steers
# the back-end.  The validator quarantines implausible samples before
# any metric is computed, standing in the last known-good sample for up
# to ``staleness_limit`` consecutive intervals.


class SampleRejected(PlatformError):
    """A PMU sample failed validation and no usable stand-in exists."""


@dataclass(frozen=True)
class SampleValidationConfig:
    #: Consecutive intervals the last-good sample may stand in for a
    #: rejected one before the interval is reported failed outright.
    staleness_limit: int = 3
    #: Any per-event delta at/above this is a wrapped counter: one
    #: 100 ms interval at 2.1 GHz moves < 2e10 of any event, so 2**44
    #: (~1.8e13) leaves three orders of magnitude of headroom.
    wrap_threshold: float = float(2**44)

    def __post_init__(self) -> None:
        if self.staleness_limit < 0:
            raise ValueError("staleness_limit must be non-negative")
        if self.wrap_threshold <= 0:
            raise ValueError("wrap_threshold must be positive")


class SampleValidator:
    """Per-sample validation/quarantine gate in front of Table I.

    ``admit`` returns ``(sample, fresh)``: the sample to compute
    metrics from and whether it is the interval's own measurement
    (``fresh=False`` means the last-good sample is standing in).
    Rejected samples are never returned and never become last-good, so
    Table I metrics are only ever computed from validated samples.
    """

    def __init__(self, config: SampleValidationConfig | None = None) -> None:
        self.config = config or SampleValidationConfig()
        self.last_good: PmuSample | None = None
        self.rejected = 0
        self.stale_reuses = 0
        self._stale_streak = 0

    def check(self, sample: PmuSample) -> str | None:
        """Why ``sample`` is implausible, or ``None`` if it validates."""
        if not np.isfinite(sample.wall_cycles) or sample.wall_cycles < 0:
            return f"implausible wall_cycles {sample.wall_cycles!r}"
        d = sample.deltas
        if not np.all(np.isfinite(d)):
            return "non-finite counter delta"
        if np.any(d < 0):
            return "negative counter delta (counter wrap)"
        if np.any(d >= self.config.wrap_threshold):
            return "implausibly large counter delta (counter wrap)"
        return None

    def admit(self, sample: PmuSample) -> tuple[PmuSample, bool]:
        reason = self.check(sample)
        if reason is None:
            self.last_good = sample
            self._stale_streak = 0
            return sample, True
        self.rejected += 1
        if self.last_good is not None and self._stale_streak < self.config.staleness_limit:
            self._stale_streak += 1
            self.stale_reuses += 1
            return self.last_good, False
        raise SampleRejected(f"PMU sample rejected ({reason}); no usable last-good sample")
