"""Table I — the metrics CMM's front-end derives from PMU events.

======  ====================  =============================================
 No.    Metric                Definition
======  ====================  =============================================
 M-1    L2-LLC traffic        L2_pref_miss + L2_dm_miss
 M-2    L2 pref miss frac     L2_pref_miss / M-1
 M-3    L2 PTR                L2_pref_miss per second (pressure on LLC)
 M-4    PGA                   L2_pref_req / L2_dm_req
 M-5    L2 PMR                L2_pref_miss / L2_pref_req
 M-6    L2 PPM                L2_pref_req / L2_dm_miss
 M-7    LLC PT                memory traffic - L3_load_miss x 64 (approx.
                              prefetch bytes from LLC to memory, per sec)
======  ====================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.pmu import Event, PmuSample

LINE_BYTES = 64


def _ratio(num: float, den: float) -> float:
    return num / den if den > 0 else 0.0


@dataclass(frozen=True)
class TableIMetrics:
    """M-1 .. M-7 for one core over one interval."""

    l2_llc_traffic: float       # M-1, requests
    l2_pref_miss_frac: float    # M-2
    l2_ptr: float               # M-3, requests / second
    pga: float                  # M-4
    l2_pmr: float               # M-5
    l2_ppm: float               # M-6
    llc_pt: float               # M-7, bytes / second


@dataclass(frozen=True)
class CoreSummary:
    """Everything a policy needs to know about one core's interval."""

    cpu: int
    active: bool
    ipc: float
    instructions: float
    cycles: float
    stalls_l2_pending: float
    mem_bytes_per_sec: float    # demand + prefetch
    metrics: TableIMetrics


def compute_metrics(sample: PmuSample, cpu: int, cycles_per_second: float) -> TableIMetrics:
    """Evaluate Table I for one core of an interval sample.

    Rates (M-3, M-7) are computed over the *core's own* cycles: the
    pressure a core exerts per unit of its own run time.  (On real
    hardware per-core cycles and wall time coincide; on the simulator's
    equal-work quanta they differ, and per-core cycles are the faithful
    notion.)
    """
    pref_miss = sample.get(cpu, Event.L2_PREF_MISS)
    dm_miss = sample.get(cpu, Event.L2_DM_MISS)
    pref_req = sample.get(cpu, Event.L2_PREF_REQ)
    dm_req = sample.get(cpu, Event.L2_DM_REQ)
    l3_load_miss = sample.get(cpu, Event.L3_LOAD_MISS)
    mem_bytes = sample.get(cpu, Event.MEM_DEMAND_BYTES) + sample.get(cpu, Event.MEM_PREF_BYTES)
    seconds = sample.get(cpu, Event.CYCLES) / cycles_per_second if cycles_per_second > 0 else 0.0

    traffic = pref_miss + dm_miss
    return TableIMetrics(
        l2_llc_traffic=traffic,
        l2_pref_miss_frac=_ratio(pref_miss, traffic),
        l2_ptr=_ratio(pref_miss, seconds),
        pga=_ratio(pref_req, dm_req),
        l2_pmr=_ratio(pref_miss, pref_req),
        l2_ppm=_ratio(pref_req, dm_miss),
        llc_pt=_ratio(max(mem_bytes - l3_load_miss * LINE_BYTES, 0.0), seconds),
    )


def summarize_sample(sample: PmuSample, cycles_per_second: float) -> list[CoreSummary]:
    """Per-core interval summaries (a core with zero instructions is idle)."""
    out = []
    for cpu in range(sample.n_cpus):
        inst = sample.get(cpu, Event.INSTRUCTIONS)
        cyc = sample.get(cpu, Event.CYCLES)
        seconds = cyc / cycles_per_second if cycles_per_second > 0 else 0.0
        mem_bytes = sample.get(cpu, Event.MEM_DEMAND_BYTES) + sample.get(cpu, Event.MEM_PREF_BYTES)
        out.append(
            CoreSummary(
                cpu=cpu,
                active=inst > 0,
                ipc=_ratio(inst, cyc),
                instructions=inst,
                cycles=cyc,
                stalls_l2_pending=sample.get(cpu, Event.STALLS_L2_PENDING),
                mem_bytes_per_sec=_ratio(mem_bytes, seconds),
                metrics=compute_metrics(sample, cpu, cycles_per_second),
            )
        )
    return out


def hm_ipc(summaries: list[CoreSummary]) -> float:
    """Harmonic mean of active cores' IPC — the paper's proxy score for
    a sampling interval (stands in for ANTT, which needs alone-IPCs)."""
    vals = [s.ipc for s in summaries if s.active]
    if not vals:
        return 0.0
    if min(vals) <= 0:
        return 0.0
    return len(vals) / sum(1.0 / v for v in vals)
