"""Back-end policy interface and the baseline (no-control) policy."""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochContext
from repro.core.metrics_defs import CoreSummary


class Policy(ABC):
    """One back-end mechanism: plans the next execution epoch's allocation.

    ``plan`` runs during a profiling epoch; it may draw sampling
    intervals through the context (up to the interval budget) and must
    return the :class:`ResourceConfig` to apply for the next execution
    epoch.
    """

    name: str = "policy"

    @abstractmethod
    def plan(self, ctx: EpochContext) -> ResourceConfig: ...


class BaselinePolicy(Policy):
    """The paper's baseline: all prefetchers on, no partitioning, and
    no profiling overhead at all."""

    name = "baseline"

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        return ctx.baseline_config()


def friendliness_split(
    on: list[CoreSummary],
    off: list[CoreSummary],
    agg_set: tuple[int, ...],
    *,
    speedup_threshold: float = 0.50,
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Split the Agg set into (friendly, unfriendly) cores.

    Per paper Sec. III-B1: compare each Agg core's IPC in the all-on
    interval against the interval with its prefetchers off; a speedup
    from prefetching above the threshold ("say 50%") marks the core
    prefetch friendly.
    """
    friendly: list[int] = []
    unfriendly: list[int] = []
    for c in agg_set:
        ipc_on = on[c].ipc
        ipc_off = off[c].ipc
        if ipc_off > 0:
            speedup = ipc_on / ipc_off - 1.0
        elif ipc_on > 0:
            # IPC collapsed to zero with prefetchers off: effectively
            # infinite prefetch speedup — the core *needs* prefetching.
            speedup = math.inf
        else:
            speedup = 0.0  # idle either way; nothing to protect
        (friendly if speedup > speedup_threshold else unfriendly).append(c)
    return tuple(friendly), tuple(unfriendly)
