"""CP — prefetch-aware cache partitioning (paper Sec. III-B2).

Two plans, both leaving every prefetcher enabled:

* **Pref-CP** — the whole Agg set shares one small partition (the low
  ways); neutral cores keep the full mask (overlapping partitioning, as
  the paper uses).
* **Pref-CP2** — the Agg set is split into prefetch-friendly and
  prefetch-unfriendly subsets, each in its own *separate* small
  partition; neutral cores keep the full mask.

Partition sizing follows the paper's empirical rule: 1.5x the number
of cores in the partition, in ways ("a partition size of 1.5 times the
size of the Agg set works well"), clamped to the CAT constraints.
"""

from __future__ import annotations

import math

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochContext
from repro.core.policy_base import Policy, friendliness_split
from repro.sim.cat import low_ways_mask

#: CLOS ids used by the partitioning policies.
CLOS_NEUTRAL = 0
CLOS_AGG = 1
CLOS_UNFRIENDLY = 2

PARTITION_FACTOR = 1.5


def partition_ways(
    n_cores_in_partition: int,
    total_ways: int,
    *,
    min_ways: int = 1,
    factor: float = PARTITION_FACTOR,
) -> int:
    """The paper's sizing rule, clamped to [min_ways, total_ways - 1].

    ``factor`` defaults to the empirically-determined 1.5 ways per
    partitioned core; the ablation benchmarks sweep it.
    """
    if n_cores_in_partition < 1:
        raise ValueError("partition needs at least one core")
    if factor <= 0:
        raise ValueError("factor must be positive")
    want = math.ceil(factor * n_cores_in_partition)
    return max(min_ways, min(want, max(total_ways - 1, min_ways)))


def contiguous_mask(n_ways: int, shift: int, total_ways: int) -> int:
    """A contiguous CBM of ``n_ways`` starting at bit ``shift``."""
    if shift + n_ways > total_ways:
        raise ValueError(f"mask of {n_ways} ways at shift {shift} exceeds {total_ways}")
    return ((1 << n_ways) - 1) << shift


class PrefCPPolicy(Policy):
    """Pref-CP: Agg set into one small partition; prefetchers untouched."""

    name = "pref-cp"

    def __init__(self, *, partition_factor: float = PARTITION_FACTOR) -> None:
        self.partition_factor = partition_factor
        self.last_agg_set: tuple[int, ...] = ()

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        base = ctx.baseline_config()
        r_on = ctx.sample(base)
        agg = ctx.detect(r_on.summaries).agg_set
        self.last_agg_set = agg
        if not agg:
            return base
        ways = partition_ways(len(agg), ctx.llc_ways, factor=self.partition_factor)
        return base.with_partition(CLOS_AGG, low_ways_mask(ways, ctx.llc_ways), agg)


class PrefCP2Policy(Policy):
    """Pref-CP2: separate small partitions for friendly and unfriendly."""

    name = "pref-cp2"

    def __init__(self, *, friendly_threshold: float = 0.50) -> None:
        self.friendly_threshold = friendly_threshold
        self.last_agg_set: tuple[int, ...] = ()
        self.last_split: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        base = ctx.baseline_config()
        r_on = ctx.sample(base)
        agg = ctx.detect(r_on.summaries).agg_set
        self.last_agg_set = agg
        if not agg:
            return base
        r_off = ctx.sample(base.with_prefetch_off(agg))
        friendly, unfriendly = friendliness_split(
            r_on.summaries, r_off.summaries, agg, speedup_threshold=self.friendly_threshold
        )
        self.last_split = (friendly, unfriendly)

        cfg = base
        shift = 0
        if friendly:
            wf = partition_ways(len(friendly), ctx.llc_ways)
            cfg = cfg.with_partition(CLOS_AGG, contiguous_mask(wf, 0, ctx.llc_ways), friendly)
            shift = wf
        if unfriendly:
            wu = partition_ways(len(unfriendly), ctx.llc_ways)
            if shift + wu > ctx.llc_ways:
                # Not enough ways for two disjoint partitions: overlap at the top.
                shift = max(0, ctx.llc_ways - wu)
            cfg = cfg.with_partition(
                CLOS_UNFRIENDLY, contiguous_mask(wu, shift, ctx.llc_ways), unfriendly
            )
        return cfg
