"""CP — prefetch-aware cache partitioning (paper Sec. III-B2).

Two plans, both leaving every prefetcher enabled:

* **Pref-CP** — the whole Agg set shares one small partition (the low
  ways); neutral cores keep the full mask (overlapping partitioning, as
  the paper uses).
* **Pref-CP2** — the Agg set is split into prefetch-friendly and
  prefetch-unfriendly subsets, each in its own *separate* small
  partition; neutral cores keep the full mask.

Partition sizing follows the paper's empirical rule: 1.5x the number
of cores in the partition, in ways ("a partition size of 1.5 times the
size of the Agg set works well"), clamped to the CAT constraints.

Both plans are :class:`~repro.core.pipeline.DecisionPipeline`
compositions over the shared :class:`~repro.core.pipeline.
PartitionStage`; the sizing/layout math itself lives in
:mod:`repro.core.pipeline` and is re-exported here under its
historical names.
"""

from __future__ import annotations

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochContext
from repro.core.pipeline import (
    CLOS_AGG,
    CLOS_NEUTRAL,
    CLOS_UNFRIENDLY,
    LAYOUT_AGG,
    LAYOUT_SPLIT,
    PARTITION_FACTOR,
    ClassifyStage,
    DecisionPipeline,
    PartitionStage,
    SenseStage,
    contiguous_mask,
    partition_layout,
    partition_ways,
)
from repro.core.policy_base import Policy

__all__ = [
    "CLOS_AGG",
    "CLOS_NEUTRAL",
    "CLOS_UNFRIENDLY",
    "PARTITION_FACTOR",
    "PrefCPPolicy",
    "PrefCP2Policy",
    "contiguous_mask",
    "partition_layout",
    "partition_ways",
]


class PrefCPPolicy(Policy):
    """Pref-CP: Agg set into one small partition; prefetchers untouched."""

    name = "pref-cp"

    def __init__(self, *, partition_factor: float = PARTITION_FACTOR) -> None:
        self.partition_factor = partition_factor
        self.last_agg_set: tuple[int, ...] = ()

    def _pipeline(self) -> DecisionPipeline:
        return DecisionPipeline([
            SenseStage(),
            ClassifyStage(empty_decision="baseline"),
            PartitionStage(LAYOUT_AGG, factor=self.partition_factor, decide="always"),
        ])

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        state = self._pipeline().run(ctx)
        self.last_agg_set = state.agg_set
        return state.decision


class PrefCP2Policy(Policy):
    """Pref-CP2: separate small partitions for friendly and unfriendly."""

    name = "pref-cp2"

    def __init__(self, *, friendly_threshold: float = 0.50) -> None:
        self.friendly_threshold = friendly_threshold
        self.last_agg_set: tuple[int, ...] = ()
        self.last_split: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())

    def _pipeline(self) -> DecisionPipeline:
        return DecisionPipeline([
            SenseStage(),
            ClassifyStage(
                probe_friendliness=True,
                friendly_threshold=self.friendly_threshold,
                empty_decision="baseline",
            ),
            PartitionStage(LAYOUT_SPLIT, decide="always"),
        ])

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        state = self._pipeline().run(ctx)
        self.last_agg_set = state.agg_set
        if state.agg_set:
            self.last_split = (state.friendly, state.unfriendly)
        return state.decision
