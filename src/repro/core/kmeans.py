"""1-D k-means (Lloyd's algorithm, deterministic quantile init).

Used in two places, both from the paper:

* group-level prefetch throttling clusters Agg-set cores by their
  L2 PTR (M-3) so large Agg sets search only 2^k group settings
  (Sec. III-B1, citing Hartigan & Wong);
* the Dunn baseline (Selfa et al.) clusters cores by their
  STALLS_L2_PENDING counts.
"""

from __future__ import annotations

import numpy as np


def kmeans1d(values, k: int, *, max_iter: int = 100) -> tuple[np.ndarray, np.ndarray]:
    """Cluster 1-D ``values`` into at most ``k`` groups.

    Returns ``(labels, centers)`` with centers sorted ascending and
    labels referring to the sorted centers.  ``k`` is reduced to the
    number of distinct values when necessary, so the result always has
    non-empty clusters.  Deterministic: initial centers are quantiles.
    """
    x = np.asarray(values, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("values must be a non-empty 1-D array")
    if k < 1:
        raise ValueError("k must be >= 1")

    distinct = np.unique(x)
    k = min(k, distinct.size)
    if k == distinct.size:
        # Trivial: each distinct value is its own cluster.
        centers = distinct
        labels = np.searchsorted(centers, x)
        return labels, centers

    centers = np.quantile(x, np.linspace(0.0, 1.0, k))
    centers = np.unique(centers)
    while centers.size < k:
        # Degenerate quantiles: nudge in extra centers deterministically.
        centers = np.unique(np.concatenate([centers, centers[-1:] + np.arange(1, k - centers.size + 1)]))
    for _ in range(max_iter):
        labels = np.argmin(np.abs(x[:, None] - centers[None, :]), axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = x[labels == j]
            if members.size:
                new_centers[j] = members.mean()
        new_centers.sort()
        if np.allclose(new_centers, centers):
            centers = new_centers
            break
        centers = new_centers

    labels = np.argmin(np.abs(x[:, None] - centers[None, :]), axis=1)
    # Drop empty clusters (can happen after the final re-assignment).
    used = np.unique(labels)
    if used.size < centers.size:
        centers = centers[used]
        remap = {int(old): new for new, old in enumerate(used)}
        labels = np.array([remap[int(l)] for l in labels])
    return labels, centers


def cluster_groups(values, k: int) -> list[list[int]]:
    """Cluster indices of ``values`` into at most ``k`` groups, ordered
    by ascending cluster center.  Convenience wrapper for policies."""
    labels, centers = kmeans1d(values, k)
    return [[i for i, l in enumerate(labels) if l == j] for j in range(len(centers))]
