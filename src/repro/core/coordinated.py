"""CMM-a/b/c — coordinated throttling + partitioning (Sec. III-B3, Fig. 6).

All three variants first partition, then apply *group-level prefetch
throttling only to the prefetch-unfriendly Agg cores* (friendly cores
always keep their prefetchers — the whole point of coordinating the two
resources is not having to sacrifice useful prefetching):

* **CMM-a** — the entire Agg set goes into one small partition;
* **CMM-b** — only the prefetch-*friendly* cores go into the small
  partition; unfriendly + neutral share the whole cache;
* **CMM-c** — friendly cores in one small partition, unfriendly cores
  in a second, separate small partition;
* **(d)** — when the Agg set is empty there is nothing to throttle:
  CMM falls back to the Dunn clustering partitioner.

Throttle combinations are sampled *with the partitions already
applied* so the hm-IPC scores reflect the coordinated configuration.
"""

from __future__ import annotations

from repro.core.allocation import ResourceConfig
from repro.core.dunn import dunn_config
from repro.core.epoch import EpochContext, IntervalResult
from repro.core.partitioning import CLOS_AGG, CLOS_UNFRIENDLY, contiguous_mask, partition_ways
from repro.core.policy_base import Policy, friendliness_split
from repro.core.throttling import off_combinations, throttle_groups
from repro.sim.cat import low_ways_mask

VARIANTS = ("a", "b", "c")


class CMMPolicy(Policy):
    """One of the coordinated variants of Fig. 6."""

    def __init__(
        self,
        variant: str = "a",
        *,
        friendly_threshold: float = 0.50,
        max_exhaustive: int = 3,
        n_groups: int = 3,
        dunn_k: int = 4,
        selection_margin: float = 0.03,
        partition_factor: float | None = None,
    ) -> None:
        if variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
        self.variant = variant
        self.name = f"cmm-{variant}"
        self.friendly_threshold = friendly_threshold
        self.max_exhaustive = max_exhaustive
        self.n_groups = n_groups
        self.dunn_k = dunn_k
        # Same hysteresis as PT: a throttled combination must beat the
        # partitioned-but-unthrottled interval by this relative margin.
        self.selection_margin = selection_margin
        from repro.core.partitioning import PARTITION_FACTOR
        self.partition_factor = PARTITION_FACTOR if partition_factor is None else partition_factor
        self.last_agg_set: tuple[int, ...] = ()
        self.last_split: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())

    # ------------------------------------------------------ partitions

    def _partitioned(
        self,
        base: ResourceConfig,
        friendly: tuple[int, ...],
        unfriendly: tuple[int, ...],
        llc_ways: int,
    ) -> ResourceConfig:
        cfg = base
        agg = tuple(sorted(friendly + unfriendly))
        if self.variant == "a":
            ways = partition_ways(len(agg), llc_ways, factor=self.partition_factor)
            cfg = cfg.with_partition(CLOS_AGG, low_ways_mask(ways, llc_ways), agg)
        elif self.variant == "b":
            if friendly:
                ways = partition_ways(len(friendly), llc_ways, factor=self.partition_factor)
                cfg = cfg.with_partition(CLOS_AGG, low_ways_mask(ways, llc_ways), friendly)
        else:  # "c"
            shift = 0
            if friendly:
                wf = partition_ways(len(friendly), llc_ways, factor=self.partition_factor)
                cfg = cfg.with_partition(CLOS_AGG, contiguous_mask(wf, 0, llc_ways), friendly)
                shift = wf
            if unfriendly:
                wu = partition_ways(len(unfriendly), llc_ways, factor=self.partition_factor)
                if shift + wu > llc_ways:
                    shift = max(0, llc_ways - wu)
                cfg = cfg.with_partition(
                    CLOS_UNFRIENDLY, contiguous_mask(wu, shift, llc_ways), unfriendly
                )
        return cfg

    # ------------------------------------------------------------ plan

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        base = ctx.baseline_config()
        r_on = ctx.sample(base)  # interval 1: all on (detection)
        agg = ctx.detect(r_on.summaries).agg_set
        self.last_agg_set = agg
        if not agg:
            # Option (d): nothing aggressive to manage; use Dunn.
            return dunn_config(r_on.summaries, base, ctx.llc_ways, k=self.dunn_k)

        r_off = ctx.sample(base.with_prefetch_off(agg))  # interval 2: friendliness probe
        friendly, unfriendly = friendliness_split(
            r_on.summaries, r_off.summaries, agg, speedup_threshold=self.friendly_threshold
        )
        self.last_split = (friendly, unfriendly)

        partitioned = self._partitioned(base, friendly, unfriendly, ctx.llc_ways)
        if not unfriendly:
            # Only CP applies ("If no such cores are found, only CP").
            return partitioned

        groups = throttle_groups(
            unfriendly, r_on.summaries, max_exhaustive=self.max_exhaustive, n_groups=self.n_groups
        )
        reference: IntervalResult | None = None  # partitioned, nothing throttled
        best: IntervalResult | None = None
        for off_cores in off_combinations(groups):
            if ctx.budget_left() <= 1:  # keep one interval for the re-reference
                break
            result = ctx.sample(partitioned.with_prefetch_off(off_cores))
            if not off_cores:
                reference = result
            if best is None or result.hm_ipc > best.hm_ipc:
                best = result
        if best is None:
            return partitioned
        # Re-sample the unthrottled reference after the sweep (cache
        # state drifts upward across the profiling epoch; see PT).
        ref_hm = reference.hm_ipc if reference is not None else 0.0
        if ctx.budget_left() > 0:
            ref_hm = max(ref_hm, ctx.sample(partitioned).hm_ipc)
        if best.hm_ipc <= (1.0 + self.selection_margin) * ref_hm:
            return partitioned
        return best.config
