"""CMM-a/b/c — coordinated throttling + partitioning (Sec. III-B3, Fig. 6).

All three variants first partition, then apply *group-level prefetch
throttling only to the prefetch-unfriendly Agg cores* (friendly cores
always keep their prefetchers — the whole point of coordinating the two
resources is not having to sacrifice useful prefetching):

* **CMM-a** — the entire Agg set goes into one small partition;
* **CMM-b** — only the prefetch-*friendly* cores go into the small
  partition; unfriendly + neutral share the whole cache;
* **CMM-c** — friendly cores in one small partition, unfriendly cores
  in a second, separate small partition;
* **(d)** — when the Agg set is empty there is nothing to throttle:
  CMM falls back to the Dunn clustering partitioner.

Throttle combinations are sampled *with the partitions already
applied* so the hm-IPC scores reflect the coordinated configuration.

The plan is a :class:`~repro.core.pipeline.DecisionPipeline`: Sense →
Classify (with friendliness probe) → Dunn fallback (option d) →
Partition (variant layout; decides alone when no unfriendly cores
exist) → coordinated throttle sweep.
"""

from __future__ import annotations

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochContext
from repro.core.pipeline import (
    LAYOUT_AGG,
    LAYOUT_FRIENDLY,
    LAYOUT_SPLIT,
    PARTITION_FACTOR,
    ClassifyStage,
    CoordinatedThrottleStage,
    DecisionPipeline,
    DunnStage,
    PartitionStage,
    SenseStage,
    SweepScorer,
    partition_layout,
)
from repro.core.policy_base import Policy

VARIANTS = ("a", "b", "c")

#: CMM variant letter → partition layout of Fig. 6.
VARIANT_LAYOUTS = {"a": LAYOUT_AGG, "b": LAYOUT_FRIENDLY, "c": LAYOUT_SPLIT}


class CMMPolicy(Policy):
    """One of the coordinated variants of Fig. 6."""

    def __init__(
        self,
        variant: str = "a",
        *,
        friendly_threshold: float = 0.50,
        max_exhaustive: int = 3,
        n_groups: int = 3,
        dunn_k: int = 4,
        selection_margin: float = 0.03,
        partition_factor: float | None = None,
    ) -> None:
        if variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
        self.variant = variant
        self.name = f"cmm-{variant}"
        self.friendly_threshold = friendly_threshold
        self.max_exhaustive = max_exhaustive
        self.n_groups = n_groups
        self.dunn_k = dunn_k
        # Same hysteresis as PT: a throttled combination must beat the
        # partitioned-but-unthrottled interval by this relative margin.
        self.selection_margin = selection_margin
        self.partition_factor = PARTITION_FACTOR if partition_factor is None else partition_factor
        self.last_agg_set: tuple[int, ...] = ()
        self.last_split: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())

    # ------------------------------------------------------ partitions

    def _partitioned(
        self,
        base: ResourceConfig,
        friendly: tuple[int, ...],
        unfriendly: tuple[int, ...],
        llc_ways: int,
    ) -> ResourceConfig:
        """The variant's partition layout (kept for tests/benchmarks)."""
        return partition_layout(
            VARIANT_LAYOUTS[self.variant],
            base,
            tuple(sorted(friendly + unfriendly)),
            friendly,
            unfriendly,
            llc_ways,
            factor=self.partition_factor,
        )

    # ------------------------------------------------------------ plan

    def _pipeline(self) -> DecisionPipeline:
        return DecisionPipeline([
            SenseStage(),
            ClassifyStage(
                probe_friendliness=True,
                friendly_threshold=self.friendly_threshold,
                empty_decision=None,  # option (d) decides instead
            ),
            DunnStage(k=self.dunn_k, only_when_agg_empty=True),
            PartitionStage(
                VARIANT_LAYOUTS[self.variant],
                factor=self.partition_factor,
                decide="no_unfriendly",  # "If no such cores are found, only CP"
            ),
            CoordinatedThrottleStage(
                max_exhaustive=self.max_exhaustive,
                n_groups=self.n_groups,
                scorer=SweepScorer(self.selection_margin),
            ),
        ])

    def plan(self, ctx: EpochContext) -> ResourceConfig:
        state = self._pipeline().run(ctx)
        self.last_agg_set = state.agg_set
        if state.agg_set:
            self.last_split = (state.friendly, state.unfriendly)
        return state.decision
