"""Synthetic SPEC CPU2006-like benchmark definitions.

Each benchmark is a weighted mixture of access streams with regions
expressed as *fractions of LLC capacity* so its classification is
preserved when the machine is scaled (DESIGN.md section 5).  The three
class flags per benchmark are the *intended* classifications under the
paper's criteria (Sec. IV-B):

* ``pref_aggressive`` — demand BW above threshold AND BW increase from
  prefetching > 50 % (Fig. 1);
* ``pref_friendly``  — IPC speedup from prefetching > 30 % (Fig. 2);
* ``llc_sensitive``  — needs >= 8 of 20 ways for 80 % of its best IPC
  (Fig. 3).

``Rand Access`` is the paper's own micro-benchmark: strongly prefetch
aggressive, random access over a large region, ~25 % slower *with*
prefetching when run alone (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import zlib

import numpy as np

from repro.sim.trace import (
    PointerChaseStream,
    RandomStream,
    SequentialStream,
    Stream,
    StridedStream,
    TraceGenerator,
)

# Streams of one core are placed this many lines apart so they never
# overlap (core regions themselves are 2**34 lines apart).
STREAM_SPACING_LINES = 1 << 28


@dataclass(frozen=True)
class StreamSpec:
    """One component stream of a benchmark."""

    kind: str              # "seq" | "strided" | "random" | "chase"
    region: float          # fraction of LLC lines
    weight: float = 1.0
    stride: int = 1        # seq/strided only
    repeats: int = 8       # accesses per line (seq/chase spatial locality)

    def __post_init__(self) -> None:
        if self.kind not in ("seq", "strided", "random", "chase"):
            raise ValueError(f"unknown stream kind {self.kind!r}")
        if self.region <= 0:
            raise ValueError("region must be positive")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass(frozen=True)
class BenchmarkSpec:
    """A benchmark: stream mixture + compute intensity + intended classes."""

    name: str
    streams: tuple[StreamSpec, ...]
    inst_per_mem: float
    mlp: float
    pref_aggressive: bool
    pref_friendly: bool
    llc_sensitive: bool

    def __post_init__(self) -> None:
        if not self.streams:
            raise ValueError("benchmark needs at least one stream")
        if self.pref_friendly and not self.pref_aggressive:
            # Paper footnote: "a 'prefetch friendly' application is also
            # prefetch aggressive unless otherwise specified".
            raise ValueError(f"{self.name}: friendly implies aggressive")


def _seq(region: float, weight: float = 1.0, repeats: int = 8) -> StreamSpec:
    return StreamSpec("seq", region, weight, stride=1, repeats=repeats)


def _strided(region: float, weight: float = 1.0, stride: int = 16) -> StreamSpec:
    return StreamSpec("strided", region, weight, stride=stride, repeats=1)


def _random(region: float, weight: float = 1.0) -> StreamSpec:
    return StreamSpec("random", region, weight)


def _chase(region: float, weight: float = 1.0, repeats: int = 3) -> StreamSpec:
    return StreamSpec("chase", region, weight, repeats=repeats)


# --------------------------------------------------------------------
# The benchmark registry.  Groups mirror the paper's classes:
#  * prefetch friendly (and aggressive): large streaming footprints;
#  * prefetch unfriendly but aggressive: Rand Access, 471.omnetpp;
#  * LLC sensitive, not aggressive: pointer-heavy working sets near LLC size;
#  * neither: small working sets or compute bound.
# --------------------------------------------------------------------

_SPECS: tuple[BenchmarkSpec, ...] = (
    # ---- prefetch friendly + aggressive (Figs. 1-2 top group) ----
    BenchmarkSpec("410.bwaves", (_seq(4.0),), inst_per_mem=5.0, mlp=8.0,
                  pref_aggressive=True, pref_friendly=True, llc_sensitive=False),
    BenchmarkSpec("462.libquantum", (_seq(3.0, repeats=6),), inst_per_mem=4.0, mlp=10.0,
                  pref_aggressive=True, pref_friendly=True, llc_sensitive=False),
    BenchmarkSpec("459.GemsFDTD", (_seq(5.0), _seq(2.0, 0.5)), inst_per_mem=6.0, mlp=8.0,
                  pref_aggressive=True, pref_friendly=True, llc_sensitive=False),
    BenchmarkSpec("437.leslie3d", (_seq(4.0), _seq(1.5, 0.4)), inst_per_mem=6.0, mlp=7.0,
                  pref_aggressive=True, pref_friendly=True, llc_sensitive=False),
    BenchmarkSpec("470.lbm", (_seq(6.0, repeats=6),), inst_per_mem=5.0, mlp=9.0,
                  pref_aggressive=True, pref_friendly=True, llc_sensitive=False),
    BenchmarkSpec("481.wrf", (_seq(2.5), _chase(0.02, 0.3)), inst_per_mem=8.0, mlp=6.0,
                  pref_aggressive=True, pref_friendly=True, llc_sensitive=False),
    BenchmarkSpec("433.milc", (_seq(3.5, repeats=6), _random(2.0, 0.12)), inst_per_mem=6.0, mlp=6.0,
                  pref_aggressive=True, pref_friendly=True, llc_sensitive=False),
    BenchmarkSpec("434.zeusmp", (_seq(3.0), StreamSpec("seq", 1.0, 0.25, stride=2, repeats=4)), inst_per_mem=7.0, mlp=7.0,
                  pref_aggressive=True, pref_friendly=True, llc_sensitive=False),

    # ---- prefetch aggressive but unfriendly ----
    BenchmarkSpec("rand_access", (_random(8.0),), inst_per_mem=1.5, mlp=4.0,
                  pref_aggressive=True, pref_friendly=False, llc_sensitive=False),
    BenchmarkSpec("471.omnetpp", (_chase(0.45, 1.0, repeats=3), _random(2.0, 1.3)),
                  inst_per_mem=2.0, mlp=3.2,
                  pref_aggressive=True, pref_friendly=False, llc_sensitive=True),

    # ---- LLC sensitive, not prefetch aggressive ----
    BenchmarkSpec("429.mcf", (_chase(0.55, 1.0, repeats=2),), inst_per_mem=4.0, mlp=1.5,
                  pref_aggressive=False, pref_friendly=False, llc_sensitive=True),
    BenchmarkSpec("450.soplex", (_chase(0.5, 1.0, repeats=3), _seq(0.05, 0.2)),
                  inst_per_mem=4.0, mlp=1.6,
                  pref_aggressive=False, pref_friendly=False, llc_sensitive=True),
    BenchmarkSpec("483.xalancbmk", (_chase(0.45, 1.0, repeats=3),), inst_per_mem=5.0, mlp=1.5,
                  pref_aggressive=False, pref_friendly=False, llc_sensitive=True),
    BenchmarkSpec("473.astar", (_chase(0.42, 1.0, repeats=3),), inst_per_mem=4.0, mlp=1.4,
                  pref_aggressive=False, pref_friendly=False, llc_sensitive=True),

    # ---- neither: small or compute-bound working sets ----
    BenchmarkSpec("444.namd", (_seq(0.006, repeats=8), _chase(0.003, 0.3, repeats=4)),
                  inst_per_mem=12.0, mlp=3.0,
                  pref_aggressive=False, pref_friendly=False, llc_sensitive=False),
    BenchmarkSpec("453.povray", (_chase(0.004, 1.0, repeats=6),), inst_per_mem=14.0, mlp=2.0,
                  pref_aggressive=False, pref_friendly=False, llc_sensitive=False),
    BenchmarkSpec("416.gamess", (_seq(0.005, repeats=8),), inst_per_mem=13.0, mlp=3.0,
                  pref_aggressive=False, pref_friendly=False, llc_sensitive=False),
    BenchmarkSpec("465.tonto", (_seq(0.008, repeats=8), _chase(0.002, 0.2, repeats=4)),
                  inst_per_mem=11.0, mlp=3.0,
                  pref_aggressive=False, pref_friendly=False, llc_sensitive=False),
    BenchmarkSpec("458.sjeng", (_chase(0.01, 1.0, repeats=4),), inst_per_mem=10.0, mlp=2.0,
                  pref_aggressive=False, pref_friendly=False, llc_sensitive=False),
    BenchmarkSpec("400.perlbench", (_chase(0.008, 1.0, repeats=5), _seq(0.004, 0.3)),
                  inst_per_mem=10.0, mlp=2.5,
                  pref_aggressive=False, pref_friendly=False, llc_sensitive=False),
    BenchmarkSpec("445.gobmk", (_chase(0.012, 1.0, repeats=4),), inst_per_mem=9.0, mlp=2.0,
                  pref_aggressive=False, pref_friendly=False, llc_sensitive=False),
    BenchmarkSpec("456.hmmer", (_seq(0.02, repeats=8),), inst_per_mem=9.0, mlp=4.0,
                  pref_aggressive=False, pref_friendly=False, llc_sensitive=False),
)

BENCHMARKS: dict[str, BenchmarkSpec] = {s.name: s for s in _SPECS}


def benchmark(name: str) -> BenchmarkSpec:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; see benchmark_names()") from None


def benchmark_names(
    *, aggressive: bool | None = None, friendly: bool | None = None, llc_sensitive: bool | None = None
) -> list[str]:
    """Registry query by intended classification flags."""
    out = []
    for s in _SPECS:
        if aggressive is not None and s.pref_aggressive != aggressive:
            continue
        if friendly is not None and s.pref_friendly != friendly:
            continue
        if llc_sensitive is not None and s.llc_sensitive != llc_sensitive:
            continue
        out.append(s.name)
    return out


def build_trace(spec: BenchmarkSpec | str, *, llc_lines: int, base_line: int, seed: int = 0) -> TraceGenerator:
    """Instantiate a benchmark's trace generator on a concrete machine.

    ``llc_lines`` anchors the relative region sizes; ``base_line`` is
    the core's private region; ``seed`` makes the instance unique
    (mixes may contain the same benchmark several times).
    """
    if isinstance(spec, str):
        spec = benchmark(spec)
    rng = np.random.default_rng((seed, zlib.crc32(spec.name.encode())))
    streams: list[Stream] = []
    weights: list[float] = []
    for i, ss in enumerate(spec.streams):
        region = max(4, int(round(ss.region * llc_lines)))
        base = base_line + i * STREAM_SPACING_LINES
        ctx = (zlib.crc32(spec.name.encode()) & 0xFFFF) * 16 + i
        if ss.kind == "seq":
            streams.append(SequentialStream(ctx, base, region, stride=ss.stride, repeats=ss.repeats))
        elif ss.kind == "strided":
            streams.append(StridedStream(ctx, base, region, stride=ss.stride))
        elif ss.kind == "random":
            streams.append(RandomStream(ctx, base, region, rng))
        else:  # chase
            streams.append(PointerChaseStream(ctx, base, region, rng, repeats=ss.repeats))
        weights.append(ss.weight)
    return TraceGenerator(
        streams,
        weights,
        inst_per_mem=spec.inst_per_mem,
        mlp=spec.mlp,
        seed=int(rng.integers(0, 2**31)),
    )
