"""Synthetic SPEC CPU2006-like workloads and the paper's workload mixes.

SPEC binaries are not available offline, so each benchmark is a
parameterised stochastic access-pattern model (see DESIGN.md section 2)
whose *classification* — prefetch aggressive / prefetch friendly /
LLC sensitive, per the criteria of the paper's Figs. 1-3 — matches the
real benchmark it is named after.  Tests verify the measured
classifications against the intended ones.
"""

from repro.workloads.speclike import (
    BENCHMARKS,
    BenchmarkSpec,
    StreamSpec,
    benchmark,
    benchmark_names,
    build_trace,
)
from repro.workloads.mixes import WorkloadMix, make_mixes, all_mixes, CATEGORIES

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "StreamSpec",
    "benchmark",
    "benchmark_names",
    "build_trace",
    "WorkloadMix",
    "make_mixes",
    "all_mixes",
    "CATEGORIES",
]
