"""Measured benchmark classification — the criteria of Figs. 1-3.

The paper classifies benchmarks from single-core measurements
(Sec. IV-B):

1. *prefetch aggressive* — demand bandwidth above 1500 MB/s AND
   bandwidth increase from prefetching above 50 % (Fig. 1);
2. *prefetch friendly* — IPC speedup from prefetching above 30 %
   (Fig. 2);
3. *LLC sensitive* — needs at least 8 ways to reach 80 % of its best
   performance (Fig. 3).

This module measures those quantities on the simulator by running a
benchmark alone (prefetchers on/off, way sweeps via CAT) and applies
the same thresholds.  Tests verify the measured classes match each
registry entry's intended flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.cat import low_ways_mask
from repro.sim.machine import Machine
from repro.sim.params import MachineParams
from repro.sim.pmu import Event
from repro.workloads.speclike import BenchmarkSpec, benchmark, build_trace

#: Paper thresholds.
BW_DEMAND_MIN_MBS = 1500.0
BW_INCREASE_MIN = 0.50
IPC_SPEEDUP_MIN = 0.30
LLC_SENSITIVE_MIN_WAYS = 8
LLC_SENSITIVE_PERF_FRAC = 0.80

DEFAULT_WAY_SWEEP = (1, 2, 4, 6, 8, 12, 16, 20)


@dataclass
class AloneProfile:
    """Single-core measurements of one benchmark."""

    name: str
    ipc_on: float
    ipc_off: float
    demand_bw_off_mbs: float   # demand bandwidth, prefetchers off
    total_bw_on_mbs: float     # demand+prefetch bandwidth, prefetchers on
    demand_bw_on_mbs: float
    ipc_by_ways: dict[int, float] = field(default_factory=dict)

    @property
    def prefetch_speedup(self) -> float:
        return self.ipc_on / self.ipc_off - 1.0 if self.ipc_off > 0 else 0.0

    @property
    def bw_increase(self) -> float:
        base = self.demand_bw_off_mbs
        return (self.total_bw_on_mbs - base) / base if base > 0 else 0.0

    def min_ways_for_frac(self, frac: float = LLC_SENSITIVE_PERF_FRAC) -> int:
        """Fewest swept ways reaching ``frac`` of the best swept IPC."""
        if not self.ipc_by_ways:
            raise ValueError("no way sweep recorded")
        best = max(self.ipc_by_ways.values())
        for w in sorted(self.ipc_by_ways):
            if self.ipc_by_ways[w] >= frac * best:
                return w
        return max(self.ipc_by_ways)


@dataclass(frozen=True)
class MeasuredClass:
    pref_aggressive: bool
    pref_friendly: bool
    llc_sensitive: bool


def run_alone(
    spec: BenchmarkSpec | str,
    params: MachineParams,
    n_accesses: int,
    *,
    seed: int = 0,
    prefetch_mask: int = 0x0,
    ways: int | None = None,
    quantum: int = 1024,
    warmup: int = 0,
    trace_store=None,
) -> tuple[Machine, tuple]:
    """Run a benchmark alone on core 0.

    ``warmup`` accesses are executed before the PMU snapshot so caches
    reach steady state; the returned snapshot marks the measured
    window's start.  Returns ``(machine, snapshot)``.

    ``trace_store`` serves the trace from the materialized plane
    (:mod:`repro.sim.tracestore`) — a profile way-sweep re-runs the
    *same* trace a dozen times, which the store generates exactly once.
    """
    if isinstance(spec, str):
        spec = benchmark(spec)
    m = Machine(params, quantum=quantum)
    trace = None
    if trace_store is not None:
        trace = trace_store.trace_for(
            spec,
            llc_lines=params.llc.lines,
            base_line=m.core_base_line(0),
            seed=seed,
            length=warmup + n_accesses,
        )
    if trace is None:
        trace = build_trace(
            spec, llc_lines=params.llc.lines, base_line=m.core_base_line(0), seed=seed
        )
    m.attach_trace(0, trace)
    m.prefetch_msr.set_mask(0, prefetch_mask)
    if ways is not None:
        m.cat.set_cbm(1, low_ways_mask(ways, params.llc.ways))
        m.cat.assign_core(0, 1)
    if warmup > 0:
        m.run_accesses(warmup)
    snap = m.pmu.snapshot()
    m.run_accesses(n_accesses)
    return m, snap


def _ipc_and_bw(m: Machine, snap) -> tuple[float, float, float]:
    sample = m.pmu.delta_since(snap)
    cyc = sample.get(0, Event.CYCLES)
    if cyc <= 0:
        return 0.0, 0.0, 0.0
    ipc = sample.get(0, Event.INSTRUCTIONS) / cyc
    secs = cyc / m.params.cycles_per_second
    demand_mbs = sample.get(0, Event.MEM_DEMAND_BYTES) / secs / 1e6
    pref_mbs = sample.get(0, Event.MEM_PREF_BYTES) / secs / 1e6
    return ipc, demand_mbs, demand_mbs + pref_mbs


def profile_benchmark(
    spec: BenchmarkSpec | str,
    params: MachineParams,
    n_accesses: int,
    *,
    seed: int = 0,
    warmup: int | None = None,
    way_sweep: tuple[int, ...] | None = None,
    trace_store=None,
) -> AloneProfile:
    """Measure everything Figs. 1-3 need for one benchmark.

    ``warmup`` defaults to ``n_accesses`` (one full measured-window
    length) so pointer-chase working sets are resident before timing.
    """
    if isinstance(spec, str):
        spec = benchmark(spec)
    if warmup is None:
        warmup = n_accesses
    m_on, s_on = run_alone(
        spec, params, n_accesses, seed=seed, prefetch_mask=0x0, warmup=warmup,
        trace_store=trace_store,
    )
    ipc_on, demand_on, total_on = _ipc_and_bw(m_on, s_on)
    m_off, s_off = run_alone(
        spec, params, n_accesses, seed=seed, prefetch_mask=0xF, warmup=warmup,
        trace_store=trace_store,
    )
    ipc_off, demand_off, _ = _ipc_and_bw(m_off, s_off)

    ipc_by_ways: dict[int, float] = {}
    if way_sweep:
        for w in way_sweep:
            if w > params.llc.ways:
                continue
            m_w, s_w = run_alone(
                spec, params, n_accesses, seed=seed, ways=w, warmup=warmup,
                trace_store=trace_store,
            )
            ipc_by_ways[w], _, _ = _ipc_and_bw(m_w, s_w)

    return AloneProfile(
        name=spec.name,
        ipc_on=ipc_on,
        ipc_off=ipc_off,
        demand_bw_off_mbs=demand_off,
        total_bw_on_mbs=total_on,
        demand_bw_on_mbs=demand_on,
        ipc_by_ways=ipc_by_ways,
    )


def classify(profile: AloneProfile) -> MeasuredClass:
    """Apply the paper's thresholds to a measured profile."""
    aggressive = (
        profile.demand_bw_off_mbs > BW_DEMAND_MIN_MBS and profile.bw_increase > BW_INCREASE_MIN
    )
    friendly = aggressive and profile.prefetch_speedup > IPC_SPEEDUP_MIN
    sensitive = False
    if profile.ipc_by_ways:
        sensitive = profile.min_ways_for_frac() >= LLC_SENSITIVE_MIN_WAYS
    return MeasuredClass(aggressive, friendly, sensitive)
