"""Workload mixes — the paper's four categories (Sec. IV-B).

Each N-core workload contains N benchmarks (the evaluation uses 8).
Categories and their composition:

* ``pref_fri``    — 4 prefetch-friendly + 4 non-aggressive,
* ``pref_agg``    — 2 friendly + 2 unfriendly + 4 non-aggressive,
* ``pref_unfri``  — 4 unfriendly + 4 non-aggressive,
* ``pref_no_agg`` — 8 non-aggressive.

The four non-aggressive picks always include at least two
LLC-sensitive benchmarks, as the paper specifies.  Ten workloads per
category, drawn with a seeded RNG, so the whole evaluation is
deterministic.  The unfriendly pool is small ({Rand Access,
471.omnetpp}, mirroring the paper's observation that no SPEC benchmark
is strongly prefetch-unfriendly), so unfriendly slots may repeat a
benchmark; repeated instances get distinct seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.speclike import benchmark_names

CATEGORIES = ("pref_fri", "pref_agg", "pref_unfri", "pref_no_agg")

#: (n_friendly, n_unfriendly, n_non_aggressive) per category.
_COMPOSITION: dict[str, tuple[int, int, int]] = {
    "pref_fri": (4, 0, 4),
    "pref_agg": (2, 2, 4),
    "pref_unfri": (0, 4, 4),
    "pref_no_agg": (0, 0, 8),
}

MIN_LLC_SENSITIVE = 2


@dataclass(frozen=True)
class WorkloadMix:
    """One multiprogrammed workload: a benchmark per core."""

    name: str
    category: str
    benchmarks: tuple[str, ...]
    seed: int

    @property
    def n_cores(self) -> int:
        return len(self.benchmarks)


def _pick(rng: np.random.Generator, pool: list[str], k: int, *, replace: bool) -> list[str]:
    if k == 0:
        return []
    if not pool:
        raise ValueError("empty benchmark pool")
    replace = replace or k > len(pool)
    return [str(b) for b in rng.choice(pool, size=k, replace=replace)]


def make_mixes(category: str, count: int = 10, *, n_cores: int = 8, seed: int = 2019) -> list[WorkloadMix]:
    """Generate ``count`` workloads of one category."""
    if category not in _COMPOSITION:
        raise ValueError(f"unknown category {category!r}; one of {CATEGORIES}")
    n_fri, n_unf, n_na = _COMPOSITION[category]
    if n_fri + n_unf + n_na != n_cores:
        # Re-balance the non-aggressive slots for other core counts.
        n_na = n_cores - n_fri - n_unf
        if n_na < 0:
            raise ValueError(f"category {category} needs at least {n_fri + n_unf} cores")

    friendly = benchmark_names(friendly=True)
    unfriendly = benchmark_names(aggressive=True, friendly=False)
    na_sensitive = benchmark_names(aggressive=False, llc_sensitive=True)
    na_insensitive = benchmark_names(aggressive=False, llc_sensitive=False)

    rng = np.random.default_rng((seed, CATEGORIES.index(category)))
    mixes = []
    for i in range(count):
        picks: list[str] = []
        picks += _pick(rng, friendly, n_fri, replace=False)
        picks += _pick(rng, unfriendly, n_unf, replace=True)
        if n_na > 0:
            n_sens = min(MIN_LLC_SENSITIVE, n_na)
            picks += _pick(rng, na_sensitive, n_sens, replace=False)
            rest_pool = na_sensitive + na_insensitive
            rest = [b for b in rest_pool if b not in picks]
            picks += _pick(rng, rest or rest_pool, n_na - n_sens, replace=False)
        order = rng.permutation(len(picks))
        benchmarks = tuple(picks[j] for j in order)
        mixes.append(WorkloadMix(f"{category}-{i:02d}", category, benchmarks, seed=int(rng.integers(0, 2**31))))
    return mixes


def all_mixes(per_category: int = 10, *, n_cores: int = 8, seed: int = 2019) -> list[WorkloadMix]:
    """All categories in the paper's presentation order (Sec. V)."""
    out: list[WorkloadMix] = []
    for cat in CATEGORIES:
        out.extend(make_mixes(cat, per_category, n_cores=n_cores, seed=seed))
    return out
