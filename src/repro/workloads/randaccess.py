"""The paper's ``Rand Access`` micro-benchmark (Sec. IV-B).

"Strongly prefetch aggressive and conducts random access in a large
memory region.  Its performance slowdown with prefetching over
no-prefetching is 25 % when running alone because its access pattern is
irregular."

The registry entry lives in :mod:`repro.workloads.speclike` under the
name ``rand_access``; this module re-exports it and documents the
mechanism: every access misses L2, so the adjacent-line prefetcher
fetches a useless buddy line per miss, roughly doubling the core's
memory traffic — the extra fill-bandwidth queuing is the slowdown.
"""

from __future__ import annotations

from repro.workloads.speclike import BenchmarkSpec, benchmark

NAME = "rand_access"


def spec() -> BenchmarkSpec:
    return benchmark(NAME)
