"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``benchmarks``            list the workload registry with class flags
``classify <name>``       profile one benchmark (Figs. 1-3 criteria)
``mixes [--category C]``  show the generated workload mixes
``run [...]``             evaluate mechanisms on workloads of a category
``figure <id>``           regenerate one paper figure/table
``figures [ids...]``      emit canonical CSV + Vega-Lite artifacts per figure
``analyze [...]``         multi-seed sweep with bootstrap CIs and paired tests
``trace [...]``           render per-epoch decision timelines for one run
``chaos [...]``           run seeded fault-injection scenarios (CI gate)
``serve [...]``           run the experiment service (JSON-lines, localhost)
``cache stats|clear``     inspect or wipe the on-disk result cache

``run`` and ``figure`` go through the experiment engine: results are
cached on disk (``REPRO_CACHE_DIR``) and cache misses fan out over
``--workers`` processes (``REPRO_WORKERS``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.experiments.config import SCALES, get_scale
from repro.experiments.report import render_table, render_trace_timeline
from repro.workloads.mixes import CATEGORIES, make_mixes
from repro.workloads.speclike import BENCHMARKS, benchmark

FIGURES = (
    "table1", "fig01", "fig02", "fig03", "fig05",
    "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
)


def _add_scale(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", choices=sorted(SCALES), default=None,
                   help="experiment scale (default: $REPRO_SCALE or tiny)")


def _workers(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return n


_workers.__name__ = "int"  # argparse: "invalid int value", not "_workers"


def _engine_name(value: str) -> str:
    from repro.sim.engines import ENGINE_AUTO, EngineSelectionError, get_engine

    if value != ENGINE_AUTO:
        try:
            get_engine(value)
        except EngineSelectionError as e:
            raise argparse.ArgumentTypeError(str(e)) from None
    return value


_engine_name.__name__ = "engine"


def _add_engine(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=_workers, default=None,
                   help="parallel simulation processes (default: $REPRO_WORKERS or CPUs)")
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="keep results in memory only for this invocation")
    p.add_argument("--engine", type=_engine_name, default=None,
                   help="simulation engine from the repro.sim.engines registry "
                        "(default: $REPRO_SIM_ENGINE or auto; results are "
                        "bit-identical across engines)")


def _make_session(args):
    from repro.experiments.engine import ExperimentSession, default_cache_dir, set_default_session

    engine = getattr(args, "engine", None)
    if engine is not None:
        # Pool workers resolve their engine from the environment; the
        # session object itself prefers the explicit argument.
        import os

        from repro.sim.engines import ENV_VAR

        os.environ[ENV_VAR] = engine
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    session = ExperimentSession(
        cache_dir=cache_dir,
        max_workers=args.workers,
        engine=engine,
        progress=lambda rec, done, total: print(
            f"[{done}/{total}] {'cached' if rec.cached else f'{rec.seconds:5.1f}s'}  {rec.label}",
            file=sys.stderr,
        ),
    )
    # Module-level helpers (figure drivers, shims) follow the same session.
    set_default_session(session)
    return session


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CMM reproduction: prefetch control + cache partitioning",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("benchmarks", help="list the benchmark registry")

    p = sub.add_parser("classify", help="profile and classify one benchmark")
    p.add_argument("name", help="benchmark name (see `repro benchmarks`)")
    _add_scale(p)

    p = sub.add_parser("mixes", help="show generated workload mixes")
    p.add_argument("--category", choices=CATEGORIES, default=None)
    _add_scale(p)

    p = sub.add_parser("run", help="evaluate mechanisms on one category")
    p.add_argument("--category", choices=CATEGORIES, default="pref_agg")
    p.add_argument("--mechanism", action="append", default=None,
                   help="repeatable; default: cmm-a")
    p.add_argument("--workloads", type=int, default=None,
                   help="number of mixes (default: scale's setting)")
    _add_scale(p)
    _add_engine(p)

    p = sub.add_parser("figure", help="regenerate one paper figure/table")
    p.add_argument("id", choices=FIGURES)
    _add_scale(p)
    _add_engine(p)

    p = sub.add_parser("figures", help="emit canonical figure artifacts "
                                       "(tidy CSV + Vega-Lite JSON per figure)")
    p.add_argument("ids", nargs="*", metavar="id",
                   help="figure ids (default: every registered figure)")
    p.add_argument("--out", default="artifacts/figures",
                   help="output directory (default: artifacts/figures)")
    p.add_argument("--check", default=None, metavar="GOLDEN_DIR",
                   help="diff the produced artifacts against a committed golden set; "
                        "non-zero exit on any difference")
    p.add_argument("--png", action="store_true",
                   help="also render PNGs (needs the optional vl-convert-python package)")
    _add_scale(p)
    _add_engine(p)

    p = sub.add_parser("analyze", help="multi-seed analysis: bootstrap CIs and "
                                       "paired significance tests per mechanism")
    p.add_argument("--seeds", type=int, default=3,
                   help="number of seeds, starting at the scale's default (default: 3)")
    p.add_argument("--mechanism", action="append", default=None,
                   help="repeatable; default: all seven paper mechanisms")
    p.add_argument("--vs", default="pt",
                   help="reference mechanism for the paired tests (default: pt)")
    p.add_argument("--out", default="artifacts/analysis",
                   help="output directory (default: artifacts/analysis)")
    p.add_argument("--resamples", type=int, default=2000,
                   help="bootstrap/permutation resamples (default: 2000)")
    p.add_argument("--confidence", type=float, default=0.95,
                   help="CI confidence level (default: 0.95)")
    _add_scale(p)
    _add_engine(p)

    p = sub.add_parser("trace", help="render per-epoch decision timelines for one run")
    p.add_argument("--mechanism", default="cmm-a")
    p.add_argument("--category", choices=CATEGORIES, default="pref_agg")
    p.add_argument("--mix", type=int, default=0,
                   help="mix index within the category (see `repro mixes`)")
    p.add_argument("--epoch", type=int, default=None, help="show only this epoch")
    p.add_argument("--json", action="store_true", help="emit the raw JSON trace records")
    _add_scale(p)
    _add_engine(p)

    p = sub.add_parser("chaos", help="run seeded fault-injection scenarios against the "
                                     "controller or the experiment service")
    p.add_argument("--scenario", default="all",
                   help="controller scenario (repro.platform.faults.SCENARIOS), service "
                        "scenario (SERVICE_SCENARIOS), 'all', or 'all-service'")
    p.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    p.add_argument("--mechanism", default="cmm-a")
    p.add_argument("--epochs", type=int, default=6)
    p.add_argument("--category", choices=CATEGORIES, default="pref_agg")
    p.add_argument("--clients", type=int, default=8,
                   help="concurrent clients for service scenarios")
    _add_scale(p)

    p = sub.add_parser("serve", help="run the experiment service front door")
    p.add_argument("--host", default="127.0.0.1", help="TCP bind host (localhost only)")
    p.add_argument("--port", type=int, default=0, help="TCP port (0 picks a free one)")
    p.add_argument("--unix", default=None, metavar="PATH",
                   help="serve on a unix socket instead of TCP")
    p.add_argument("--resume", action="store_true",
                   help="replay unsealed sweep journals before accepting clients")
    p.add_argument("--remote", default=None, metavar="URL",
                   help="HTTP remote cache tier base URL (degrades to local-only on failure)")
    p.add_argument("--journal-dir", default=None,
                   help="sweep journal directory (default: <cache-dir>/journal)")
    _add_engine(p)

    p = sub.add_parser("cache", help="inspect or clear the on-disk result cache")
    p.add_argument("action", choices=("stats", "clear"))
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)")

    return parser


def cmd_benchmarks(_args) -> int:
    rows = []
    for name, s in BENCHMARKS.items():
        rows.append([
            name,
            "yes" if s.pref_aggressive else "",
            "yes" if s.pref_friendly else "",
            "yes" if s.llc_sensitive else "",
            f"{s.inst_per_mem:.1f}",
            f"{s.mlp:.1f}",
        ])
    print(render_table(
        ["benchmark", "aggressive", "friendly", "llc-sensitive", "inst/mem", "mlp"],
        rows, title=f"{len(rows)} benchmarks"))
    return 0


def cmd_classify(args) -> int:
    from repro.workloads.classify import DEFAULT_WAY_SWEEP, classify, profile_benchmark

    try:
        spec = benchmark(args.name)
    except KeyError as e:
        print(e, file=sys.stderr)
        return 2
    sc = get_scale(args.scale)
    prof = profile_benchmark(spec, sc.params(), sc.profile_accesses, way_sweep=DEFAULT_WAY_SWEEP)
    c = classify(prof)
    print(f"benchmark           : {spec.name}")
    print(f"IPC (prefetch on)   : {prof.ipc_on:.3f}")
    print(f"IPC (prefetch off)  : {prof.ipc_off:.3f}")
    print(f"prefetch speedup    : {prof.prefetch_speedup:+.1%}")
    print(f"demand BW (off)     : {prof.demand_bw_off_mbs:.0f} MB/s")
    print(f"BW increase         : {prof.bw_increase:+.1%}")
    print(f"min ways for 80%    : {prof.min_ways_for_frac(0.8)}")
    print(f"classes             : aggressive={c.pref_aggressive} "
          f"friendly={c.pref_friendly} llc_sensitive={c.llc_sensitive}")
    ok = (c.pref_aggressive, c.pref_friendly, c.llc_sensitive) == (
        spec.pref_aggressive, spec.pref_friendly, spec.llc_sensitive)
    print(f"matches registry    : {ok}")
    return 0


def cmd_mixes(args) -> int:
    sc = get_scale(args.scale)
    cats = [args.category] if args.category else list(CATEGORIES)
    rows = []
    for cat in cats:
        for mix in make_mixes(cat, sc.workloads_per_category, seed=sc.seed):
            rows.append([mix.name, ", ".join(mix.benchmarks)])
    print(render_table(["workload", "benchmarks"], rows))
    return 0


def cmd_run(args) -> int:
    sc = get_scale(args.scale)
    session = _make_session(args)
    mechanisms = tuple(args.mechanism or ["cmm-a"])
    count = args.workloads or sc.workloads_per_category
    mixes = make_mixes(args.category, count, seed=sc.seed)
    rows = []
    for ev in session.sweep(mechanisms, sc, mixes=mixes):
        for mech in mechanisms:
            m = ev.metrics[mech]
            rows.append([ev.mix.name, mech, m["hs_norm"], m["ws"], m["worst"], m["bw_norm"]])
    print(render_table(
        ["workload", "mechanism", "HS norm", "WS", "worst-case", "BW norm"], rows,
        title=f"{args.category} @ {sc.name}"))
    return 0


def cmd_figure(args) -> int:
    from repro.analysis.artifacts import get_figure_spec

    sc = get_scale(args.scale)
    _make_session(args)
    d = get_figure_spec(args.id).build(sc)
    if "category_means" in d:
        mechs = list(next(iter(d["category_means"].values())))
        rows = [[cat] + [d["category_means"][cat][m] for m in mechs] for cat in d["category_means"]]
        print(render_table(["category"] + mechs, rows,
                           title=f"{d['figure']} ({d.get('metric', '')}) @ {sc.name}"))
    else:
        rows = d["rows"]
        if rows:
            headers = [k for k in rows[0] if not isinstance(rows[0][k], dict)]
            print(render_table(headers, [[r[h] for h in headers] for r in rows],
                               title=f"{d['figure']} @ {sc.name}"))
    return 0


def cmd_figures(args) -> int:
    from repro.analysis import build_artifacts, check_artifacts, write_artifacts
    from repro.analysis.render import RenderUnavailable

    sc = get_scale(args.scale)
    session = _make_session(args)
    try:
        built = build_artifacts(args.ids or None, sc, session=session)
    except KeyError as e:
        print(e.args[0] if e.args else e, file=sys.stderr)
        return 2
    try:
        paths = write_artifacts(built, args.out, scale=sc.name, seed=sc.seed, png=args.png)
    except RenderUnavailable as e:
        print(e, file=sys.stderr)
        return 2
    print(f"wrote {len(paths)} artifacts for {len(built)} figure(s) to {args.out}")
    if args.check:
        problems = check_artifacts(args.out, args.check)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            return 1
        print(f"artifacts match goldens in {args.check}")
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import run_analysis, write_analysis
    from repro.experiments.figures import ALL_MECHS

    sc = get_scale(args.scale)
    session = _make_session(args)
    mechanisms = tuple(args.mechanism or ALL_MECHS)
    if args.vs not in mechanisms:
        print(f"--vs {args.vs!r} must be one of the analyzed mechanisms "
              f"({', '.join(mechanisms)})", file=sys.stderr)
        return 2
    try:
        result = run_analysis(
            mechanisms, sc, n_seeds=args.seeds, vs=args.vs,
            confidence=args.confidence, n_resamples=args.resamples, session=session,
        )
    except ValueError as e:
        print(e, file=sys.stderr)
        return 2
    paths = write_analysis(result, args.out)
    headline = result.summary.filter(metric="hs_norm")
    rows = [
        [r["category"], r["mechanism"], r["n"], r["mean"], r["ci_lo"], r["ci_hi"],
         "" if r["p_perm"] is None else r["p_perm"]]
        for r in headline
    ]
    print(render_table(
        ["category", "mechanism", "n", "mean", "ci lo", "ci hi", f"p vs {args.vs}"],
        rows, title=f"hs_norm over seeds {list(result.seeds)} @ {sc.name}"))
    print(f"wrote {len(paths)} artifacts to {args.out}")
    return 0


def cmd_trace(args) -> int:
    import json

    from repro.core.trace import traces_to_dicts

    sc = get_scale(args.scale)
    session = _make_session(args)
    mixes = make_mixes(args.category, sc.workloads_per_category, seed=sc.seed)
    if not 0 <= args.mix < len(mixes):
        print(f"--mix must be in [0, {len(mixes) - 1}] for {args.category} @ {sc.name}",
              file=sys.stderr)
        return 2
    mix = mixes[args.mix]
    traces = session.traces(mix, args.mechanism, sc)
    if args.epoch is not None:
        traces = [t for t in traces if t.epoch == args.epoch]
        if not traces:
            print(f"no epoch {args.epoch} in this {sc.n_epochs}-epoch run", file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps(traces_to_dicts(traces), indent=2))
    else:
        print(render_trace_timeline(
            traces, title=f"{mix.name} / {args.mechanism} @ {sc.name}"))
        from repro.sim import profiling

        if profiling.ON and profiling.snapshot():
            print()
            print("kernel profile (this process):")
            for line in profiling.summary_lines():
                print(f"  {line}")
    return 0


def cmd_chaos(args) -> int:
    from repro.experiments.chaos import run_chaos_scenario, run_service_chaos_scenario
    from repro.platform.faults import SCENARIOS, SERVICE_SCENARIOS

    ctrl: list[str] = []
    svc: list[str] = []
    if args.scenario == "all":
        ctrl = sorted(SCENARIOS)
    elif args.scenario == "all-service":
        svc = sorted(SERVICE_SCENARIOS)
    elif args.scenario in SCENARIOS:
        ctrl = [args.scenario]
    elif args.scenario in SERVICE_SCENARIOS:
        svc = [args.scenario]
    else:
        print(f"unknown scenario {args.scenario!r}; choose from "
              f"{', '.join(sorted(SCENARIOS))}, "
              f"{', '.join(sorted(SERVICE_SCENARIOS))}, 'all', or 'all-service'",
              file=sys.stderr)
        return 2
    sc = get_scale(args.scale)
    failed = 0
    for name in ctrl:
        report = run_chaos_scenario(
            name, args.seed, mechanism=args.mechanism,
            n_epochs=args.epochs, category=args.category, sc=sc,
        )
        print(report.summary())
        if not report.ok:
            failed += 1
    for name in svc:
        sreport = run_service_chaos_scenario(name, args.seed, clients=args.clients, sc=sc)
        print(sreport.summary())
        if not sreport.ok:
            failed += 1
    total = len(ctrl) + len(svc)
    print(f"{total - failed}/{total} scenarios ok")
    return 1 if failed else 0


def cmd_serve(args) -> int:
    import asyncio
    import os

    from repro.experiments.engine import ExperimentSession, default_cache_dir
    from repro.service import ExperimentService, HTTPCacheTier, TieredResultCache
    from repro.service.server import sanitized_run_timeout

    engine = args.engine
    if engine is not None:
        from repro.sim.engines import ENV_VAR

        os.environ[ENV_VAR] = engine
    # A daemon must not crash on a bad environment variable: parse the
    # run timeout fail-soft, warn once, and mask the variable so the
    # session's own strict parse cannot re-raise.
    _timeout, warning = sanitized_run_timeout()
    masked = None
    if warning is not None:
        print(f"warning: {warning}", file=sys.stderr)
        masked = os.environ.pop("REPRO_RUN_TIMEOUT", None)
    try:
        cache_root = None if args.no_cache else (args.cache_dir or default_cache_dir())
        remote = HTTPCacheTier(args.remote) if args.remote else None
        cache = TieredResultCache(cache_root, remote=remote)
        session = ExperimentSession(cache=cache, max_workers=args.workers, engine=engine)
    finally:
        if masked is not None:
            os.environ["REPRO_RUN_TIMEOUT"] = masked
    service = ExperimentService(session=session, journal_dir=args.journal_dir)

    def ready(bound) -> None:
        if service.resumed_sweeps:
            print(f"resumed {service.resumed_sweeps} interrupted sweep(s)", file=sys.stderr)
        print(f"repro service listening on {bound}", flush=True)

    try:
        asyncio.run(service.serve(
            host=args.host, port=args.port, unix_path=args.unix,
            resume=args.resume, ready=ready,
        ))
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
        session.close()
    return 0


def cmd_cache(args) -> int:
    from repro.experiments.engine import ResultCache, default_cache_dir
    from repro.sim.tracestore import TraceStore

    root = Path(args.cache_dir or default_cache_dir())
    cache = ResultCache(root)
    store = TraceStore(root / "tracestore", mode="disk")
    if args.action == "clear":
        removed = cache.clear()
        traces_removed = store.clear()
        print(f"removed {removed} cached results from {cache.root}")
        print(f"removed {traces_removed} materialized traces from {store.root}")
        return 0
    s = cache.stats()
    t = store.stats()
    print(f"cache root : {s.root}")
    print(f"entries    : {s.entries}")
    print(f"size       : {s.bytes / 1e6:.2f} MB")
    print(f"corrupt    : {s.corrupt}")
    for kind in sorted(s.by_kind):
        print(f"  {kind:<10}: {s.by_kind[kind]}")
    print(f"trace store: {t.root}")
    print(f"  traces   : {t.entries}")
    print(f"  size     : {t.bytes / 1e6:.2f} MB")
    print(f"  fallbacks: {t.fallbacks}")
    from repro.sim.batch import degradation_count

    print("batch engine:")
    print(f"  degradations: {degradation_count()}")
    from repro.sim import nativekernels

    status = nativekernels.tier_status()
    print("native kernels:")
    print(f"  numba    : {status['numba'] or 'not installed'}")
    print(f"  mode     : {status['mode']}")
    print(f"  enabled  : {status['enabled']}")
    print(f"  fallbacks: {status['fallbacks']}")
    if status["disabled_reason"]:
        print(f"  disabled : {status['disabled_reason']}")
    return 0


COMMANDS = {
    "benchmarks": cmd_benchmarks,
    "classify": cmd_classify,
    "mixes": cmd_mixes,
    "run": cmd_run,
    "figure": cmd_figure,
    "figures": cmd_figures,
    "analyze": cmd_analyze,
    "trace": cmd_trace,
    "chaos": cmd_chaos,
    "serve": cmd_serve,
    "cache": cmd_cache,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
