"""DRAM bandwidth / queuing model.

Memory latency grows with utilisation: an M/M/1-flavoured queue factor
``1 + gain * rho / (1 - rho)`` (capped) multiplies the unloaded DRAM
latency.  Two utilisations matter:

* the **socket** utilisation — total bytes moved by all cores against
  the 68.3 GB/s socket maximum; this is where *inter-core* bandwidth
  interference (including prefetch traffic) comes from, and
* the **per-core** utilisation — a core's own bytes against the
  sustainable per-core fill bandwidth (finite fill buffers); this is
  why a prefetch-useless core (the paper's ``Rand Access``) slows
  *itself* down by ~25 % when its prefetchers double its traffic.

The effective factor for a core is computed from the larger of the two
utilisations.
"""

from __future__ import annotations

import numpy as np

from repro.sim.params import MachineParams

RHO_CLIP = 0.97  # keep the queue factor finite near saturation


class DramModel:
    """Queue-factor computation + cumulative traffic accounting."""

    def __init__(self, params: MachineParams) -> None:
        self.params = params
        self.total_demand_bytes = 0.0
        self.total_pref_bytes = 0.0

    def queue_factor(self, rho: float | np.ndarray) -> float | np.ndarray:
        """Latency multiplier at utilisation ``rho`` (clipped, capped)."""
        p = self.params
        r = np.clip(rho, 0.0, RHO_CLIP)
        qf = 1.0 + p.queue_gain * r / (1.0 - r)
        return np.minimum(qf, p.max_queue_factor)

    def effective_factor(self, core_bytes: np.ndarray, cycles: np.ndarray, machine_cycles: float) -> np.ndarray:
        """Per-core latency factor given this quantum's traffic.

        ``core_bytes``: bytes each core moved to/from DRAM;
        ``cycles``: each core's (current estimate of) cycles in the
        quantum; ``machine_cycles``: the machine-time span.
        """
        p = self.params
        total = float(core_bytes.sum())
        rho_socket = total / (p.mem_bytes_per_cycle * max(machine_cycles, 1e-9))
        with np.errstate(divide="ignore", invalid="ignore"):
            rho_core = core_bytes / (p.core_bytes_per_cycle * np.maximum(cycles, 1e-9))
        rho_eff = np.maximum(rho_core, rho_socket)
        return np.asarray(self.queue_factor(rho_eff), dtype=np.float64)

    def account(self, demand_bytes: float, pref_bytes: float) -> None:
        self.total_demand_bytes += demand_bytes
        self.total_pref_bytes += pref_bytes

    @property
    def total_bytes(self) -> float:
        return self.total_demand_bytes + self.total_pref_bytes
