"""Per-phase kernel profiling counters (opt-in, zero-cost when off).

The simulator's hot paths are split into a handful of *phases* —
trace serve, core advance, LLC serve, stream merge, timing solve —
and each phase's leaf kernel is wrapped in a monotonic-clock timer
guarded by :data:`ON`.  When profiling is off (the default) the guard
is a single module-attribute check per kernel call; when on, every
phase accumulates ``(seconds, calls)`` into process-wide counters that
:func:`snapshot`/:func:`delta_since` expose for reporting.

Enable with ``$REPRO_KERNEL_PROFILE=1`` (read at import) or
:func:`enable` at runtime.  Consumers:

* ``CMMController.run`` stores the per-run delta in
  ``RunStats.kernel_profile`` (plus a ``controller`` phase — run wall
  time not spent in any simulation kernel).
* ``repro trace`` prints a profile footer after the decision timeline.
* ``benchmarks/emit_bench_json.py --engine`` embeds a profiled sweep's
  phase split in ``BENCH_engine.json``.

Timers live at the *leaf* kernels only (``run_core_chunk``,
``GroupedLLC.serve``, ...) so nested call paths never double-count a
phase; ``trace_serve`` is the one deliberate sub-phase, measured inside
the core advance it is part of.
"""

from __future__ import annotations

import os
import time

__all__ = [
    "ON",
    "PHASES",
    "add",
    "clock",
    "delta_since",
    "disable",
    "enable",
    "reset",
    "snapshot",
    "summary_lines",
]

ENV_VAR = "REPRO_KERNEL_PROFILE"

#: Phase names in reporting order.  ``trace_serve`` is a sub-phase of
#: ``core_advance``; ``controller`` only appears in per-run deltas
#: (computed by the controller as wall minus kernel time).
PHASES = (
    "trace_serve",
    "core_advance",
    "llc_serve",
    "merge",
    "timing",
    "controller",
)


def _env_on() -> bool:
    v = os.environ.get(ENV_VAR, "").strip().lower()
    return v not in ("", "0", "off", "false", "no")


#: The global profiling switch; leaf kernels check this attribute.
ON = _env_on()

clock = time.perf_counter

_seconds: dict[str, float] = {}
_calls: dict[str, int] = {}


def enable() -> None:
    """Turn phase timing on process-wide."""
    global ON
    ON = True


def disable() -> None:
    """Turn phase timing off (counters keep their accumulated values)."""
    global ON
    ON = False


def reset() -> None:
    """Zero all accumulated counters."""
    _seconds.clear()
    _calls.clear()


def add(phase: str, dt: float, calls: int = 1) -> None:
    """Accumulate ``dt`` seconds (and ``calls`` invocations) into ``phase``."""
    _seconds[phase] = _seconds.get(phase, 0.0) + dt
    _calls[phase] = _calls.get(phase, 0) + calls


def snapshot() -> dict[str, tuple[float, int]]:
    """Current counters as ``{phase: (seconds, calls)}``."""
    return {p: (_seconds[p], _calls.get(p, 0)) for p in _seconds}


def delta_since(prev: dict[str, tuple[float, int]]) -> dict[str, dict]:
    """Counters accumulated since ``prev`` (a :func:`snapshot` result).

    Returns ``{phase: {"seconds": s, "calls": c}}`` with zero-delta
    phases omitted — JSON-friendly for ``RunStats.kernel_profile``.
    """
    out: dict[str, dict] = {}
    for phase, (sec, n) in snapshot().items():
        p0, c0 = prev.get(phase, (0.0, 0))
        dsec = sec - p0
        dn = n - c0
        if dn or dsec:
            out[phase] = {"seconds": dsec, "calls": dn}
    return out


def summary_lines(profile: dict[str, dict] | None = None) -> list[str]:
    """Human-readable per-phase lines for CLI/bench footers."""
    if profile is None:
        profile = {p: {"seconds": s, "calls": c} for p, (s, c) in snapshot().items()}
    total = sum(d.get("seconds", 0.0) for d in profile.values()) or 1.0
    lines = []
    for phase in PHASES:
        d = profile.get(phase)
        if not d:
            continue
        sec = d.get("seconds", 0.0)
        lines.append(
            f"{phase:>12s}: {sec:9.4f}s  {100.0 * sec / total:5.1f}%"
            f"  ({int(d.get('calls', 0))} calls)"
        )
    for phase in sorted(set(profile) - set(PHASES)):
        d = profile[phase]
        lines.append(
            f"{phase:>12s}: {d.get('seconds', 0.0):9.4f}s  "
            f"({int(d.get('calls', 0))} calls)"
        )
    return lines
