"""Set-associative LRU caches.

Two flavours:

* :class:`Cache` — private levels (L1D, L2).  Each set is an
  ``OrderedDict`` in LRU order, making hit scans, LRU updates and
  evictions C-speed dict operations (this is the simulator's hottest
  loop; no exceptions are raised on the miss path).
* :class:`PartitionedCache` — the shared LLC.  Way identity matters
  because Intel CAT restricts *allocation* (victim selection) to the
  ways in the requesting core's CLOS bit mask while *lookups* hit in
  any way.  Each set keeps per-way tag/LRU-stamp lists plus a
  tag->way dict for O(1) lookup.

Both track prefetched-but-not-yet-used lines so prefetch accuracy can
be accounted (the paper notes real PMUs cannot expose this — the
simulator can, and we use it only for evaluation, never inside the
CMM front-end, to stay faithful to the software constraints).

The model is loads-only and non-inclusive (each level independent);
writebacks are not modelled.  See DESIGN.md section 5.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.sim.params import CacheGeometry


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    pref_fills: int = 0
    pref_used: int = 0
    pref_evicted_unused: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched fills that were demand-used."""
        done = self.pref_used + self.pref_evicted_unused
        return self.pref_used / done if done else 0.0


class Cache:
    """Private set-associative LRU cache (allocate-on-miss)."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.n_sets = geometry.sets
        self.ways = geometry.ways
        self._set_mask = self.n_sets - 1
        # Each set: line -> None, ordered least-recently-used first.
        self._sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(self.n_sets)]
        self._pref_unused: set[int] = set()
        self.stats = CacheStats()

    def access(self, line: int, is_prefetch: bool = False) -> bool:
        """Look up ``line``; fill on miss.  Returns True on hit."""
        s = self._sets[line & self._set_mask]
        st = self.stats
        st.accesses += 1
        if line in s:
            st.hits += 1
            s.move_to_end(line)
            if not is_prefetch and line in self._pref_unused:
                self._pref_unused.discard(line)
                st.pref_used += 1
            return True
        # Miss: insert MRU, evict LRU if full.
        if len(s) >= self.ways:
            victim, _ = s.popitem(last=False)
            if victim in self._pref_unused:
                self._pref_unused.discard(victim)
                st.pref_evicted_unused += 1
        s[line] = None
        if is_prefetch:
            st.pref_fills += 1
            self._pref_unused.add(line)
        return False

    def probe(self, line: int) -> bool:
        """Presence test without touching LRU state or stats."""
        return line in self._sets[line & self._set_mask]

    def touch_used(self, line: int) -> bool:
        """Read ``line`` on behalf of an upper-level prefetcher.

        Refreshes LRU and consumes the prefetched-unused bit (the data
        *is* being moved toward the demand stream) but counts neither
        an access nor a hit — this is an internal transfer, not a
        request.  Returns True if the line was present.
        """
        s = self._sets[line & self._set_mask]
        if line not in s:
            return False
        s.move_to_end(line)
        if line in self._pref_unused:
            self._pref_unused.discard(line)
            self.stats.pref_used += 1
        return True

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def flush(self) -> None:
        self._sets = [OrderedDict() for _ in range(self.n_sets)]
        self._pref_unused.clear()


class PartitionedCache:
    """Shared LLC with CAT-style way-mask allocation.

    ``access`` takes ``allowed_ways`` — a tuple of way indices derived
    from the requesting core's CLOS capacity bit mask.  A hit may occur
    in any way; a fill victimises only the allowed ways (LRU among
    them), exactly as CAT behaves on real hardware.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.n_sets = geometry.sets
        self.ways = geometry.ways
        self._set_mask = self.n_sets - 1
        # Per set: way-indexed tags/stamps plus tag -> way index.
        self._tags: list[list[int]] = [[-1] * self.ways for _ in range(self.n_sets)]
        self._stamps: list[list[int]] = [[0] * self.ways for _ in range(self.n_sets)]
        self._index: list[dict[int, int]] = [dict() for _ in range(self.n_sets)]
        self._clock = 0
        self._pref_unused: set[int] = set()
        # Per-way occupancy: how many sets hold a line in way w.  Ways
        # only ever fill (evictions replace in place), so counters are
        # bumped on empty-slot fills and reset on flush, keeping
        # occupancy queries O(|ways|) instead of O(sets x ways).
        self._way_occ: list[int] = [0] * self.ways
        self.stats = CacheStats()

    def access(self, line: int, allowed_ways: tuple[int, ...], is_prefetch: bool = False) -> bool:
        """Look up ``line``; on miss, fill into the LRU allowed way."""
        si = line & self._set_mask
        idx = self._index[si]
        stamps = self._stamps[si]
        self._clock += 1
        st = self.stats
        st.accesses += 1
        w = idx.get(line)
        if w is not None:
            st.hits += 1
            stamps[w] = self._clock
            if not is_prefetch and line in self._pref_unused:
                self._pref_unused.discard(line)
                st.pref_used += 1
            return True
        # Miss: LRU victim among the allowed ways.
        if not allowed_ways:
            raise ValueError("allowed_ways must contain at least one way")
        tags = self._tags[si]
        if len(allowed_ways) == self.ways:
            vstamp = min(stamps)
            vw = stamps.index(vstamp)
        else:
            sub = [stamps[w2] for w2 in allowed_ways]
            vw = allowed_ways[sub.index(min(sub))]
        victim = tags[vw]
        if victim != -1:
            del idx[victim]
            if victim in self._pref_unused:
                self._pref_unused.discard(victim)
                st.pref_evicted_unused += 1
        else:
            self._way_occ[vw] += 1
        tags[vw] = line
        stamps[vw] = self._clock
        idx[line] = vw
        if is_prefetch:
            st.pref_fills += 1
            self._pref_unused.add(line)
        return False

    def probe(self, line: int) -> bool:
        return line in self._index[line & self._set_mask]

    def occupancy(self) -> int:
        return sum(self._way_occ)

    def occupancy_in_ways(self, ways: tuple[int, ...]) -> int:
        occ = self._way_occ
        return sum(occ[w] for w in ways)

    def resident_way(self, line: int) -> int | None:
        """Way index holding ``line`` or None (test helper)."""
        return self._index[line & self._set_mask].get(line)

    def flush(self) -> None:
        self._tags = [[-1] * self.ways for _ in range(self.n_sets)]
        self._stamps = [[0] * self.ways for _ in range(self.n_sets)]
        self._index = [dict() for _ in range(self.n_sets)]
        self._pref_unused.clear()
        self._way_occ = [0] * self.ways
        self._clock = 0


def ways_from_mask(mask: int, total_ways: int) -> tuple[int, ...]:
    """Expand a CAT capacity bit mask into a tuple of way indices."""
    if mask <= 0:
        raise ValueError("capacity mask must be positive")
    if mask >= (1 << total_ways):
        raise ValueError(f"mask 0x{mask:x} exceeds {total_ways} ways")
    return tuple(w for w in range(total_ways) if mask >> w & 1)
