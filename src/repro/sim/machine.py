"""The multicore machine: cores, caches, prefetchers, LLC, DRAM, PMU.

Execution is quantum-interleaved (DESIGN.md section 5): each active
core generates and filters a chunk of demand accesses through its
private L1/L2 (triggering its prefetchers), the resulting LLC requests
of all cores are merged round-robin and served by the shared
way-partitioned LLC, misses become DRAM traffic, and the quantum's
timing is solved as one fixed point.  PMU counters and the MSR / CAT
control surfaces behave like the real hardware interfaces the paper's
kernel module uses.
"""

from __future__ import annotations

from repro.sim import fastengine, nativekernels, profiling
from repro.sim.cat import CatController
from repro.sim.cache import Cache, PartitionedCache
from repro.sim.core_model import QuantumCounts, solve_quantum
from repro.sim.engines import ENGINE_FAST, ENGINE_NATIVE, resolve_engine
from repro.sim.fastcache import FastCache, FastPartitionedCache
from repro.sim.memory import DramModel
from repro.sim.msr import MsrFile, PrefetchMsr, enables_from_mask
from repro.sim.params import MachineParams
from repro.sim.pmu import Event, Pmu
from repro.sim.prefetcher import PrefetcherBank
from repro.sim.trace import IdleTrace, TraceGenerator

DEFAULT_QUANTUM = 1024

# Address-space stride between cores: each core's traces live in a
# private region so no sharing occurs (multiprogrammed workloads).
CORE_ADDRESS_STRIDE_LINES = 1 << 34


class _CoreState:
    __slots__ = ("l1", "l2", "tabs", "bank", "trace", "active")

    def __init__(self, params: MachineParams, fast: bool, native: bool = False) -> None:
        # ``tabs`` only exists for the native tier (array prefetcher
        # tables); the bank stays a PrefetcherBank either way — it is
        # the MSR-facing enable surface, and the native kernel reads
        # just its en_* flags.
        self.tabs = None
        if native:
            self.l1 = nativekernels.NativeCache(params.l1)
            self.l2 = nativekernels.NativeCache(params.l2)
            self.tabs = nativekernels.NativeTables(params)
        elif fast:
            self.l1: Cache | FastCache = FastCache(params.l1)
            self.l2: Cache | FastCache = FastCache(params.l2)
        else:
            self.l1 = Cache(params.l1)
            self.l2 = Cache(params.l2)
        self.bank = PrefetcherBank(
            stride_table=params.stride_table_entries,
            stride_degree=params.stride_degree,
            stride_confidence=params.stride_confidence,
            streamer_pages=params.streamer_table_pages,
            streamer_degree=params.streamer_degree,
        )
        self.trace: TraceGenerator | IdleTrace = IdleTrace()
        self.active = False


class Machine:
    """An N-core machine with shared LLC and DRAM."""

    def __init__(
        self,
        params: MachineParams | None = None,
        *,
        quantum: int = DEFAULT_QUANTUM,
        engine: str | None = None,
    ) -> None:
        self.params = params or MachineParams()
        self.quantum = int(quantum)
        if self.quantum < 1:
            raise ValueError("quantum must be positive")
        # Explicit argument beats params.sim_engine beats $REPRO_SIM_ENGINE.
        # The registry resolves the name to a full EngineSpec; the spec's
        # kernel decides which scalar hot path this machine runs (a
        # batch-capable engine degrades to its scalar kernel here — the
        # multi-run path lives in repro.sim.batch / repro.simulate_batch).
        spec = resolve_engine(engine if engine is not None else self.params.sim_engine)
        self.engine_spec = spec
        self.engine = spec.name
        # The native kernel tier degrades bit-identically to the scalar
        # fast kernel when unavailable (numba missing, self-check or a
        # prior kernel failed, $REPRO_NATIVE_KERNELS=off); the
        # degradation is counted like batch_degradations.
        self._native = spec.kernel == ENGINE_NATIVE and nativekernels.kernels_enabled()
        self._native_fallbacks = 0
        if spec.kernel == ENGINE_NATIVE and not self._native:
            self._native_fallbacks = 1
            nativekernels.note_native_fallback()
        self._fast = spec.kernel == ENGINE_FAST or (
            spec.kernel == ENGINE_NATIVE and not self._native
        )
        n = self.params.n_cores
        self.cores = [_CoreState(self.params, self._fast, self._native) for _ in range(n)]
        self.llc: PartitionedCache | FastPartitionedCache
        if self._native:
            self.llc = nativekernels.NativeLLC(self.params.llc)
        elif self._fast:
            self.llc = FastPartitionedCache(self.params.llc)
        else:
            self.llc = PartitionedCache(self.params.llc)
        self.cat = CatController(self.params.llc.ways, n)
        self.msr = MsrFile(n)
        self.prefetch_msr = PrefetchMsr(self.msr)
        self.pmu = Pmu(n)
        self.dram = DramModel(self.params)
        # Last MSR 0x1A4 mask pushed into each core's prefetcher bank;
        # -1 forces the first _sync_prefetchers to decode and push.
        self._pf_mask_seen = [-1] * n
        # Batch-engine degradations attributed to this machine's run
        # (lockstep fork-to-scalar / unbatchable group); set by the
        # experiment layer when it falls back, surfaced via RunStats.
        self._batch_degradations = 0

    # ---------------------------------------------------------- setup

    def attach_trace(self, core: int, trace: TraceGenerator) -> None:
        """Bind a workload trace to a core and mark it active."""
        cs = self.cores[core]
        cs.trace = trace
        cs.active = True

    def set_idle(self, core: int) -> None:
        cs = self.cores[core]
        cs.trace = IdleTrace()
        cs.active = False

    def active_cores(self) -> list[int]:
        return [i for i, c in enumerate(self.cores) if c.active]

    def core_base_line(self, core: int) -> int:
        """Base line address of a core's private region."""
        return core * CORE_ADDRESS_STRIDE_LINES

    # ----------------------------------------------------------- run

    def _sync_prefetchers(self) -> None:
        """Push MSR 0x1A4 state into each core's prefetcher bank.

        The mask is latched per core so an unchanged MSR costs one int
        compare per quantum instead of a decode + four attribute writes
        (the bank is only ever reconfigured through ``prefetch_msr``,
        which this method mirrors).
        """
        seen = self._pf_mask_seen
        for cpu, cs in enumerate(self.cores):
            mask = self.prefetch_msr.get_mask(cpu)
            if mask == seen[cpu]:
                continue
            seen[cpu] = mask
            en = enables_from_mask(mask)
            cs.bank.set_enables(
                stride=en["stride"],
                next_line=en["next_line"],
                streamer=en["streamer"],
                adjacent=en["adjacent"],
            )

    def run_accesses(self, n_per_core: int) -> None:
        """Advance the machine by ``n_per_core`` demand accesses per active core."""
        remaining = int(n_per_core)
        while remaining > 0:
            q = min(self.quantum, remaining)
            self._run_quantum(q)
            remaining -= q

    def _run_quantum(self, q: int) -> None:
        """One quantum = core phase -> LLC phase -> timing phase.

        Each phase is an overridable method so engine variants (the
        batch kernel's lane-backed machine in :mod:`repro.sim.batch`)
        can substitute one phase while inheriting the rest unchanged —
        bit-identity follows from feeding the untouched downstream
        phases the exact same inputs.
        """
        self._sync_prefetchers()
        n = self.params.n_cores
        counts = [QuantumCounts() for _ in range(n)]
        ipm = [0.0] * n
        mlp = [1.0] * n
        active = [False] * n
        # Request lists: (line, is_prefetch) tuples for the reference
        # engine, sign-encoded ints (``line`` / ``~line``) for fast.
        llc_reqs: list[list] = [[] for _ in range(n)]
        self._core_phase(q, counts, ipm, mlp, active, llc_reqs)
        self._llc_phase(counts, llc_reqs)
        self._timing_phase(counts, ipm, mlp, active)

    def _core_phase(self, q, counts, ipm, mlp, active, llc_reqs) -> None:
        """Filter each active core's chunk through its private hierarchy."""
        pmu_counts = self.pmu.counts
        fast = self._fast
        native = self._native
        for cpu in range(self.params.n_cores):
            cs = self.cores[cpu]
            if not cs.active:
                continue
            active[cpu] = True
            ipm[cpu] = cs.trace.inst_per_mem
            mlp[cpu] = cs.trace.mlp
            if native:
                nativekernels.run_core_chunk_native(
                    cpu, cs, q, counts[cpu], llc_reqs[cpu], pmu_counts
                )
            elif fast:
                fastengine.run_core_chunk(cpu, cs, q, counts[cpu], llc_reqs[cpu], pmu_counts)
            else:
                self._run_core_chunk_reference(cpu, cs, q, counts[cpu], llc_reqs[cpu], pmu_counts)

    def _llc_phase(self, counts, llc_reqs) -> None:
        """Merge all cores' LLC requests round-robin and serve them."""
        if self._native:
            nativekernels.run_llc_phase_native(self, counts, llc_reqs, self.pmu.counts)
        elif self._fast:
            fastengine.run_llc_phase(self, counts, llc_reqs, self.pmu.counts)
        else:
            self._run_llc_phase_reference(counts, llc_reqs, self.pmu.counts)

    def _timing_phase(self, counts, ipm, mlp, active) -> None:
        """Solve the quantum's fixed-point timing and account PMU/DRAM."""
        t0 = profiling.clock() if profiling.ON else 0.0
        pmu_counts = self.pmu.counts
        timing = solve_quantum(self.params, self.dram, counts, ipm, mlp, active)
        demand_b = 0.0
        pref_b = 0.0
        for cpu in range(self.params.n_cores):
            if not active[cpu]:
                continue
            c = counts[cpu]
            pmu_counts[cpu, Event.INSTRUCTIONS] += c.n_access * (1.0 + ipm[cpu])
            pmu_counts[cpu, Event.CYCLES] += timing.cycles[cpu]
            pmu_counts[cpu, Event.STALLS_L2_PENDING] += timing.stalls_l2_pending[cpu]
            pmu_counts[cpu, Event.MEM_DEMAND_BYTES] += c.demand_bytes
            pmu_counts[cpu, Event.MEM_PREF_BYTES] += c.pref_bytes
            demand_b += c.demand_bytes
            pref_b += c.pref_bytes
        self.dram.account(demand_b, pref_b)
        self.pmu.wall_cycles += timing.machine_cycles
        if profiling.ON:
            profiling.add("timing", profiling.clock() - t0)

    def trace_fallbacks(self) -> int:
        """Total zero-copy go-live fallbacks across attached traces.

        Non-zero only when a :class:`~repro.sim.tracestore.MaterializedTrace`
        had to leave the zero-copy path (see ``MaterializedTrace.chunk``);
        plain generator traces report 0.
        """
        return sum(int(getattr(cs.trace, "fallbacks", 0)) for cs in self.cores)

    def batch_degradations(self) -> int:
        """Batch-engine degradations attributed to this machine's run.

        Non-zero only when a lockstep group or batched sweep this run
        belonged to had to fall back to per-run scalar execution (the
        results are bit-identical either way; the counter exists so the
        degradation is observable, mirroring ``trace_fallbacks``).
        """
        return self._batch_degradations

    def native_fallbacks(self) -> int:
        """Native-kernel-tier fallbacks attributed to this machine.

        Non-zero when the ``native`` engine was requested but the
        compiled tier was unavailable (numba missing, self-check
        failure, ``$REPRO_NATIVE_KERNELS=off``) and the machine degraded
        to the scalar fast kernel — bit-identical either way; the
        counter exists so the degradation is observable, mirroring
        ``batch_degradations``.  Process-wide counts (including runtime
        kernel failures) live in
        :func:`repro.sim.nativekernels.native_fallback_count`.
        """
        return self._native_fallbacks

    def _run_core_chunk_reference(
        self,
        cpu: int,
        cs: _CoreState,
        q: int,
        qc: QuantumCounts,
        llc_req: list[tuple[int, bool]],
        pmu_counts,
    ) -> None:
        """Filter one core's chunk through L1/L2 with prefetch triggering.

        The ``reference`` engine's kernel — semantic source of truth for
        :func:`repro.sim.fastengine.run_core_chunk`.
        """
        ctxs, lines = cs.trace.chunk(q)
        n = len(lines)
        if n == 0:
            return
        l1 = cs.l1
        l2 = cs.l2
        bank = cs.bank
        l1_access = l1.access
        l1_probe = l1.probe
        l2_access = l2.access
        l2_probe = l2.probe
        l2_touch = l2.touch_used
        l1_cand = bank.l1_candidates
        l2_cand = bank.l2_candidates
        any_l1 = bank.any_l1_enabled
        any_l2 = bank.any_l2_enabled
        append = llc_req.append
        lines_list = lines.tolist()
        ctx_list = ctxs.tolist()

        n_l1_miss = 0
        n_l1_pref = 0
        n_l2_hit_d = 0
        n_l2_dm_miss = 0
        n_l2_pref = 0
        n_l2_pref_miss = 0

        for i in range(n):
            line = lines_list[i]
            hit1 = l1_access(line, False)
            if any_l1:
                for p in l1_cand(ctx_list[i], line, hit1):
                    n_l1_pref += 1
                    # DCU (L1) prefetchers fetch from L2 only; a request
                    # missing L2 is dropped — they never go off-chip.
                    # The L2 read consumes the line's prefetched-unused
                    # bit: the data is flowing toward the demand stream.
                    if not l1_probe(p) and l2_touch(p):
                        l1_access(p, True)
            if hit1:
                continue
            n_l1_miss += 1
            hit2 = l2_access(line, False)
            if hit2:
                n_l2_hit_d += 1
            else:
                n_l2_dm_miss += 1
                append((line, False))
            if any_l2:
                for p in l2_cand(line, hit2):
                    n_l2_pref += 1
                    if not l2_probe(p):
                        l2_access(p, True)
                        n_l2_pref_miss += 1
                        append((p, True))

        qc.n_access = n
        qc.n_l2_hit_d = n_l2_hit_d
        pmu_counts[cpu, Event.L1_DM_REQ] += n
        pmu_counts[cpu, Event.L1_DM_MISS] += n_l1_miss
        pmu_counts[cpu, Event.L1_PREF_REQ] += n_l1_pref
        pmu_counts[cpu, Event.L2_DM_REQ] += n_l1_miss
        pmu_counts[cpu, Event.L2_DM_MISS] += n_l2_dm_miss
        pmu_counts[cpu, Event.L2_PREF_REQ] += n_l2_pref
        pmu_counts[cpu, Event.L2_PREF_MISS] += n_l2_pref_miss

    def _run_llc_phase_reference(
        self,
        counts: list[QuantumCounts],
        llc_reqs: list[list[tuple[int, bool]]],
        pmu_counts,
    ) -> None:
        """Serve all cores' LLC requests, merged round-robin.

        The ``reference`` engine's kernel — semantic source of truth for
        :func:`repro.sim.fastengine.run_llc_phase`.
        """
        llc_access = self.llc.access
        line_bytes = float(self.params.line_bytes)
        allowed = [self.cat.allowed_ways(cpu) for cpu in range(len(llc_reqs))]
        busy = [cpu for cpu, reqs in enumerate(llc_reqs) if reqs]
        if not busy:
            return
        max_len = max(len(llc_reqs[cpu]) for cpu in busy)
        for i in range(max_len):
            for cpu in busy:
                reqs = llc_reqs[cpu]
                if i >= len(reqs):
                    continue
                line, is_pref = reqs[i]
                hit = llc_access(line, allowed[cpu], is_pref)
                qc = counts[cpu]
                if is_pref:
                    if not hit:
                        qc.pref_bytes += line_bytes
                else:
                    if hit:
                        qc.n_llc_hit_d += 1
                    else:
                        qc.n_mem_d += 1
                        qc.demand_bytes += line_bytes
                        pmu_counts[cpu, Event.L3_LOAD_MISS] += 1
