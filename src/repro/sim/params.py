"""Machine geometry and timing parameters.

Defaults model the Intel Xeon E5-2620 v4 (Broadwell-EP) used in the
paper's evaluation: 8 physical cores at 2.1 GHz, 32 KB L1D + 256 KB L2
per core, a shared 20 MB 20-way LLC, and DDR4-2400 memory with a
68.3 GB/s maximum bandwidth.

``MachineParams.scaled()`` returns a geometry shrunk by ``factor`` in
every cache capacity (same associativities, same latencies).  Workload
working sets are expressed relative to cache capacities (see
``repro.workloads``), so benchmark *classifications* — prefetch
aggressive / friendly / LLC sensitive — are preserved under scaling
while simulated access counts drop by the same factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(
                f"size {self.size_bytes} not divisible by ways*line "
                f"({self.ways}*{self.line_bytes})"
            )
        if self.sets & (self.sets - 1):
            raise ValueError(f"number of sets must be a power of two, got {self.sets}")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class MachineParams:
    """Full machine description: geometry, latencies, bandwidth.

    Latencies are in core cycles; bandwidth in bytes per core cycle.
    """

    n_cores: int = 8
    freq_ghz: float = 2.1
    line_bytes: int = 64

    l1: CacheGeometry = field(default_factory=lambda: CacheGeometry(32 * 1024, 8))
    l2: CacheGeometry = field(default_factory=lambda: CacheGeometry(256 * 1024, 8))
    llc: CacheGeometry = field(default_factory=lambda: CacheGeometry(20 * 1024 * 1024, 20))

    lat_l1: int = 4
    lat_l2: int = 12
    lat_llc: int = 42
    lat_mem: int = 180  # unloaded DRAM round trip

    # 68.3 GB/s at 2.1 GHz ~= 32.5 bytes per core cycle for the socket.
    mem_bytes_per_cycle: float = 32.5
    # Sustainable fill bandwidth of one core (finite fill buffers).
    core_bytes_per_cycle: float = 4.0
    # Queuing model: latency multiplier grows as rho/(1-rho); cap keeps
    # the fixed point stable when demand exceeds capacity.
    queue_gain: float = 1.4
    max_queue_factor: float = 8.0

    # Memory-level parallelism: how many outstanding demand misses a
    # core overlaps, i.e. the divisor applied to summed miss latency.
    mlp: float = 4.0
    # Execution CPI for non-memory work (superscalar core).
    cpi_exec: float = 0.45

    # Prefetcher knobs (per core).
    streamer_degree: int = 4
    streamer_table_pages: int = 16
    stride_table_entries: int = 16
    stride_degree: int = 2
    stride_confidence: int = 2

    # Simulation-engine choice: "auto" or any name registered in the
    # repro.sim.engines registry (auto defers to $REPRO_SIM_ENGINE,
    # default fast).  The engines are differential-tested
    # bit-identical, so this knob never changes a result — only how
    # fast it is computed.
    sim_engine: str = "auto"

    def __post_init__(self) -> None:
        from repro.sim.engines import ENGINE_AUTO, get_engine

        if self.n_cores < 1:
            raise ValueError("need at least one core")
        for g in (self.l1, self.l2, self.llc):
            if g.line_bytes != self.line_bytes:
                raise ValueError("all cache levels must share the machine line size")
        if self.sim_engine != ENGINE_AUTO:
            get_engine(self.sim_engine)  # raises EngineSelectionError if unknown

    @property
    def cycles_per_second(self) -> float:
        return self.freq_ghz * 1e9

    def scaled(self, factor: int = 8) -> "MachineParams":
        """Shrink the LLC by ``factor``; private caches shrink by at
        most 4x so prefetch lead distances still fit inside them
        (same associativities and latencies)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")

        def shrink(g: CacheGeometry, f: int) -> CacheGeometry:
            size = g.size_bytes // f
            if size < g.ways * g.line_bytes:
                raise ValueError("scale factor too large for geometry")
            return CacheGeometry(size, g.ways, g.line_bytes)

        private_f = min(factor, 4)
        return replace(
            self,
            l1=shrink(self.l1, private_f),
            l2=shrink(self.l2, private_f),
            llc=shrink(self.llc, factor),
        )


def default_params() -> MachineParams:
    """The paper's E5-2620 v4 configuration."""
    return MachineParams()


def scaled_params(factor: int = 8, n_cores: int = 8) -> MachineParams:
    """A 1/``factor`` capacity machine for fast experiments."""
    return replace(MachineParams().scaled(factor), n_cores=n_cores)
