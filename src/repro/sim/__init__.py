"""Cycle-approximate multicore cache/prefetch/bandwidth simulator.

This subpackage is the hardware substrate substituted for the Intel Xeon
E5-2620 v4 used by the paper (see DESIGN.md section 2).  It models:

* per-core L1D and L2 set-associative LRU caches,
* the four Intel-style hardware prefetchers per core (L1 IP-stride,
  L1 next-line, L2 streamer, L2 adjacent-line) with MSR-style on/off,
* a shared last-level cache with CAT-style way-mask partitioning,
* a finite-bandwidth DRAM model with utilisation-dependent queuing,
* a per-core in-order timing model with memory-level parallelism, and
* a PMU counter fabric exposing the events the paper's Table I uses.
"""

from repro.sim.params import MachineParams, CacheGeometry
from repro.sim.cache import Cache, PartitionedCache
from repro.sim.engines import (
    ENGINE_BATCH,
    ENGINE_FAST,
    ENGINE_NATIVE,
    ENGINE_REFERENCE,
    ENGINES,
    EngineSelectionError,
    EngineSpec,
    available_engines,
    get_engine,
    register_engine,
    resolve_engine,
)
from repro.sim.fastcache import FastCache, FastPartitionedCache
from repro.sim.machine import Machine
from repro.sim.msr import MsrFile, PrefetchMsr, PF_ALL_ON, PF_ALL_OFF
from repro.sim.cat import CatController
from repro.sim.pmu import Pmu, Event, PmuSample

__all__ = [
    "MachineParams",
    "CacheGeometry",
    "Cache",
    "PartitionedCache",
    "FastCache",
    "FastPartitionedCache",
    "ENGINE_BATCH",
    "ENGINE_FAST",
    "ENGINE_NATIVE",
    "ENGINE_REFERENCE",
    "ENGINES",
    "EngineSelectionError",
    "EngineSpec",
    "available_engines",
    "get_engine",
    "register_engine",
    "resolve_engine",
    "Machine",
    "MsrFile",
    "PrefetchMsr",
    "PF_ALL_ON",
    "PF_ALL_OFF",
    "CatController",
    "Pmu",
    "Event",
    "PmuSample",
]
