"""Functional models of the four Intel per-core hardware prefetchers.

Per the paper (Sec. II): the L1 data cache has an IP (stride) and a
next-line prefetcher; the private L2 has a streamer and an
adjacent-line prefetcher.  All are demand-triggered — prefetch requests
never re-trigger a prefetcher.  Each can be enabled/disabled
independently, mirroring MSR 0x1A4 (see ``repro.sim.msr``).

The models follow Intel's documented trigger conditions:

* **DCU IP (stride)** — per-load-PC stride detection with a small
  confidence counter; prefetches ``degree`` lines down the stride once
  confident.
* **DCU next-line** — on an L1 demand miss for line X, prefetch X+1.
* **L2 streamer** — monitors demand requests arriving at L2 per 4 KB
  page; once two accesses in the same direction are seen, prefetches
  ``degree`` lines ahead (never crossing the page boundary).
* **L2 adjacent-line** — on an L2 demand miss, prefetch the 128 B buddy
  line (line ^ 1).  Fires regardless of pattern, which is what makes
  random-access workloads prefetch *aggressive but useless*.
"""

from __future__ import annotations

LINES_PER_PAGE = 64  # 4 KB page / 64 B line


class L1IPStridePrefetcher:
    """Per-PC (ctx) stride detector with confidence."""

    def __init__(self, table_entries: int = 16, degree: int = 2, confidence: int = 2) -> None:
        self.table_entries = table_entries
        self.degree = degree
        self.conf_threshold = confidence
        # ctx -> [last_line, stride, confidence]
        self._table: dict[int, list[int]] = {}

    def on_demand(self, ctx: int, line: int) -> list[int]:
        table = self._table
        e = table.get(ctx)
        if e is None:
            if len(table) >= self.table_entries:
                table.pop(next(iter(table)))
            table[ctx] = [line, 0, 0]
            return []
        delta = line - e[0]
        e[0] = line
        if delta == e[1] and delta != 0:
            if e[2] < 3:
                e[2] += 1
        else:
            if e[2] > 0:
                e[2] -= 1
            if e[2] == 0:
                e[1] = delta
        if e[2] >= self.conf_threshold and e[1] != 0:
            stride = e[1]
            return [line + stride * k for k in range(1, self.degree + 1)]
        return []


class L1NextLinePrefetcher:
    """On an L1 demand miss for X, prefetch X+1."""

    def on_demand_miss(self, line: int) -> list[int]:
        return [line + 1]


class L2StreamerPrefetcher:
    """Per-4KB-page direction detector; prefetches ahead of the stream.

    Each tracked page remembers the furthest offset already prefetched
    (``pref_ptr``) so an established stream issues each line exactly
    once — matching how the hardware streamer advances a prefetch
    pointer rather than re-requesting its whole window.
    """

    def __init__(self, table_pages: int = 16, degree: int = 4) -> None:
        self.table_pages = table_pages
        self.degree = degree
        # page -> [last_offset, direction, run_length, pref_ptr]
        self._table: dict[int, list[int]] = {}

    def on_demand(self, line: int) -> list[int]:
        page = line >> 6
        off = line & (LINES_PER_PAGE - 1)
        table = self._table
        e = table.get(page)
        if e is None:
            if len(table) >= self.table_pages:
                table.pop(next(iter(table)))
            table[page] = [off, 0, 0, -1]
            return []
        delta = off - e[0]
        direction = 1 if delta > 0 else (-1 if delta < 0 else 0)
        if direction != 0 and direction == e[1]:
            e[2] += 1
        else:
            e[1] = direction
            e[2] = 1 if direction else 0
            e[3] = -1  # direction change invalidates the prefetch pointer
        e[0] = off
        if e[2] >= 2 and e[1] != 0:
            base = page << 6
            out = []
            if e[1] > 0:
                start = off + 1 if e[3] < off + 1 else e[3] + 1
                stop = min(off + self.degree, LINES_PER_PAGE - 1)
                for noff in range(start, stop + 1):
                    out.append(base + noff)
                if stop >= start:
                    e[3] = stop
            else:
                # Descending stream: pref_ptr tracks the lowest offset fetched.
                start = off - 1 if (e[3] == -1 or e[3] > off - 1) else e[3] - 1
                stop = max(off - self.degree, 0)
                for noff in range(start, stop - 1, -1):
                    out.append(base + noff)
                if start >= stop:
                    e[3] = stop
            return out
        return []


class L2AdjacentLinePrefetcher:
    """On an L2 demand miss, fetch the buddy of the 128 B pair."""

    def on_demand_miss(self, line: int) -> list[int]:
        return [line ^ 1]


class PrefetcherBank:
    """The four prefetchers of one core plus their enable state.

    Enable state is pushed in from the emulated MSR (bit set = disabled,
    matching Intel's MSR 0x1A4 layout handled in ``repro.sim.msr``).
    """

    def __init__(
        self,
        *,
        stride_table: int = 16,
        stride_degree: int = 2,
        stride_confidence: int = 2,
        streamer_pages: int = 16,
        streamer_degree: int = 4,
    ) -> None:
        self.ip_stride = L1IPStridePrefetcher(stride_table, stride_degree, stride_confidence)
        self.next_line = L1NextLinePrefetcher()
        self.streamer = L2StreamerPrefetcher(streamer_pages, streamer_degree)
        self.adjacent = L2AdjacentLinePrefetcher()
        self.en_stride = True
        self.en_next_line = True
        self.en_streamer = True
        self.en_adjacent = True

    def set_enables(self, stride: bool, next_line: bool, streamer: bool, adjacent: bool) -> None:
        self.en_stride = stride
        self.en_next_line = next_line
        self.en_streamer = streamer
        self.en_adjacent = adjacent

    @property
    def any_l1_enabled(self) -> bool:
        return self.en_stride or self.en_next_line

    @property
    def any_l2_enabled(self) -> bool:
        return self.en_streamer or self.en_adjacent

    def l1_candidates(self, ctx: int, line: int, l1_hit: bool) -> list[int]:
        """Prefetch lines proposed by the L1 prefetchers for one demand access."""
        out: list[int] = []
        if self.en_stride:
            out.extend(self.ip_stride.on_demand(ctx, line))
        if self.en_next_line and not l1_hit:
            out.extend(self.next_line.on_demand_miss(line))
        return out

    def l2_candidates(self, line: int, l2_hit: bool) -> list[int]:
        """Prefetch lines proposed by the L2 prefetchers for one demand request at L2."""
        out: list[int] = []
        if self.en_streamer:
            out.extend(self.streamer.on_demand(line))
        if self.en_adjacent and not l2_hit:
            out.extend(self.adjacent.on_demand_miss(line))
        return out
