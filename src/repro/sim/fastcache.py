"""Array-backed caches for the ``fast`` simulation engine.

Same semantics as :mod:`repro.sim.cache` (the ``reference`` engine),
re-laid-out for throughput and batch access:

* :class:`FastCache` — private L1/L2.  One insertion-ordered dict per
  set maps ``line -> prefetched-unused bit``, so hit scans, LRU
  refreshes, evictions *and* prefetch-bit bookkeeping are single
  C-speed dict operations (the reference keeps the prefetch bits in a
  side set, costing an extra membership probe on every hit).
* :class:`FastPartitionedCache` — the shared LLC.  Per set: one dict
  mapping ``line -> way`` in LRU→MRU recency order plus a bitmask of
  still-empty ways; prefetch bits live in a flat ``sets x ways`` byte
  buffer.  CAT victim selection is a lowest-bit trick on
  ``free & allowed`` while free allowed ways exist, a pop of the
  oldest entry for the full mask, and a short recency-order scan
  otherwise — replacing the reference's O(ways) min-stamp scan per
  fill.

Both rely on CPython dicts preserving insertion order: an LRU refresh
is pop + reinsert, an eviction pops ``next(iter(set_dict))``.  That
order is exactly the LRU-stamp order of the reference implementation
(stamps strictly increase, so the min stamp among a set of ways is the
way seen earliest in recency order; empty ways carry stamp 0 in the
reference and are victimised lowest index first, matching the free
bitmask's lowest-bit pick), which is what makes the two engines
bit-identical — asserted by ``tests/property`` and the machine-level
differential suite.  Plain dicts beat ``collections.OrderedDict`` here
by ~30% end-to-end: ``get``/``pop`` dominate and are twice as fast on
the builtin.

A note on "array-backed": the canonical hot-path state is C dicts, not
NumPy buffers, because CPython scalar indexing into ndarrays is slower
than dict/list operations and every LRU update is inherently
sequential.  Flat NumPy views of the tag / recency / prefetch-bit
state are materialised on demand (:meth:`FastCache.tags_array` etc.)
for batch inspection, and the batch entry points
(:meth:`FastCache.access_many`) amortise per-call overhead across a
whole address array.  See docs/simulation_model.md ("The fast
kernel").

The compiled tier (:mod:`repro.sim.nativekernels`, the ``native``
engine) replaces the dict layout wholesale with flat
tag/stamp/pref-bit arrays the numba kernels index directly —
``NativeCache``/``NativeLLC`` reproduce :meth:`tags_array` /
:meth:`pref_array` / ``recency_array`` in this module's canonical
LRU→MRU order, so everything downstream that inspects cache state
(``cache_tensors``, lane snapshots, the differential suites) is
layout-blind.  When that tier is unavailable these dict paths are the
fallback, bit-identical by the same stamp-order argument as above.
"""

from __future__ import annotations

import numpy as np

from repro.sim.cache import CacheStats
from repro.sim.params import CacheGeometry

__all__ = ["FastCache", "FastPartitionedCache"]


class FastCache:
    """Private set-associative LRU cache (allocate-on-miss), fast layout.

    Drop-in behavioural replacement for :class:`repro.sim.cache.Cache`:
    identical hit/miss streams, LRU decisions and :class:`CacheStats`
    for any access sequence.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.n_sets = geometry.sets
        self.ways = geometry.ways
        self._set_mask = self.n_sets - 1
        # Each set: line -> prefetched-unused bit, LRU order first.
        self._sets: list[dict[int, int]] = [{} for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def access(self, line: int, is_prefetch: bool = False) -> bool:
        """Look up ``line``; fill on miss.  Returns True on hit."""
        s = self._sets[line & self._set_mask]
        st = self.stats
        st.accesses += 1
        v = s.pop(line, None)
        if v is not None:
            st.hits += 1
            if v and not is_prefetch:
                st.pref_used += 1
                v = 0
            s[line] = v  # reinsert -> MRU
            return True
        if len(s) >= self.ways:
            vbit = s.pop(next(iter(s)))
            if vbit:
                st.pref_evicted_unused += 1
        if is_prefetch:
            st.pref_fills += 1
            s[line] = 1
        else:
            s[line] = 0
        return False

    def access_many(self, lines, is_prefetch: bool = False) -> np.ndarray:
        """Batch :meth:`access` over an address array; returns hit flags.

        Semantically identical to calling :meth:`access` per element in
        order — one call amortises attribute lookups and stat updates
        over the whole array.
        """
        lines_l = np.asarray(lines, dtype=np.int64).tolist()
        sets = self._sets
        mask = self._set_mask
        ways = self.ways
        st = self.stats
        pf = bool(is_prefetch)
        hits = 0
        fills = 0
        used = 0
        evicted = 0
        out = np.zeros(len(lines_l), dtype=bool)
        for i, line in enumerate(lines_l):
            s = sets[line & mask]
            v = s.pop(line, None)
            if v is not None:
                hits += 1
                if v and not pf:
                    used += 1
                    v = 0
                s[line] = v
                out[i] = True
                continue
            if len(s) >= ways:
                vbit = s.pop(next(iter(s)))
                if vbit:
                    evicted += 1
            if pf:
                fills += 1
                s[line] = 1
            else:
                s[line] = 0
        st.accesses += len(lines_l)
        st.hits += hits
        st.pref_fills += fills
        st.pref_used += used
        st.pref_evicted_unused += evicted
        return out

    def probe(self, line: int) -> bool:
        """Presence test without touching LRU state or stats."""
        return line in self._sets[line & self._set_mask]

    def touch_used(self, line: int) -> bool:
        """Upper-level prefetcher read: refresh LRU, consume pref bit.

        Counts neither an access nor a hit (internal transfer); see
        :meth:`repro.sim.cache.Cache.touch_used`.
        """
        s = self._sets[line & self._set_mask]
        v = s.pop(line, None)
        if v is None:
            return False
        if v:
            v = 0
            self.stats.pref_used += 1
        s[line] = v
        return True

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def flush(self) -> None:
        self._sets = [{} for _ in range(self.n_sets)]

    def state_equal(self, other: "FastCache") -> bool:
        """Order-sensitive content equality with another cache.

        CPython ``dict ==`` ignores insertion order, but insertion order
        *is* this cache's LRU order, so two caches are behaviourally
        interchangeable only when every set matches in content (lines
        and prefetched-unused bits) **and** recency order.  Used by the
        batch engine's lane merging (:mod:`repro.sim.batch`).
        """
        for a, b in zip(self._sets, other._sets):
            if a != b or list(a) != list(b):
                return False
        return True

    # -- array views (inspection / differential tests) ----------------

    def tags_array(self) -> np.ndarray:
        """Resident lines as a ``[sets, ways]`` int64 array.

        Within a set, ways are reported in LRU→MRU order; empty slots
        are -1.
        """
        out = np.full((self.n_sets, self.ways), -1, dtype=np.int64)
        for si, s in enumerate(self._sets):
            for w, line in enumerate(s):
                out[si, w] = line
        return out

    def pref_array(self) -> np.ndarray:
        """Prefetched-unused bits, same ``[sets, ways]`` layout as tags."""
        out = np.zeros((self.n_sets, self.ways), dtype=np.uint8)
        for si, s in enumerate(self._sets):
            for w, bit in enumerate(s.values()):
                out[si, w] = bit
        return out


class FastPartitionedCache:
    """Shared LLC with CAT way-mask allocation, fast layout.

    Behavioural replacement for
    :class:`repro.sim.cache.PartitionedCache`: hits may land in any
    way, fills victimise the LRU way among ``allowed_ways``, and every
    counter matches bit for bit.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.n_sets = geometry.sets
        self.ways = geometry.ways
        self._set_mask = self.n_sets - 1
        self._full_bits = (1 << self.ways) - 1
        # Each set: line -> way, in LRU -> MRU recency order.  Insertion
        # order tracks the reference's strictly-increasing LRU stamps,
        # so "first entry whose way is allowed" is exactly the
        # min-stamp-among-allowed victim of the reference.
        self._sets: list[dict[int, int]] = [{} for _ in range(self.n_sets)]
        # Per-set bitmask of still-empty ways.  Reference empty ways
        # carry stamp 0 (< any filled stamp, ties broken lowest index),
        # so the victim is the lowest allowed free way whenever one
        # exists — a two-instruction bit trick here.
        self._free: list[int] = [self._full_bits] * self.n_sets
        # Flat [set * ways + way] prefetched-unused bits.
        self._pref = bytearray(self.n_sets * self.ways)
        self._way_occ: list[int] = [0] * self.ways
        self._abits_memo: dict[tuple[int, ...], int] = {}
        self.stats = CacheStats()

    def _allowed_bits(self, allowed_ways: tuple[int, ...]) -> int:
        memo = self._abits_memo
        b = memo.get(allowed_ways)
        if b is None:
            b = 0
            for w in allowed_ways:
                b |= 1 << w
            memo[allowed_ways] = b
        return b

    def access(self, line: int, allowed_ways: tuple[int, ...], is_prefetch: bool = False) -> bool:
        """Look up ``line``; on miss, fill into the LRU allowed way."""
        si = line & self._set_mask
        s = self._sets[si]
        st = self.stats
        st.accesses += 1
        W = self.ways
        w = s.pop(line, None)
        if w is not None:
            st.hits += 1
            s[line] = w  # reinsert -> MRU
            if not is_prefetch:
                slot = si * W + w
                if self._pref[slot]:
                    self._pref[slot] = 0
                    st.pref_used += 1
            return True
        if not allowed_ways:
            raise ValueError("allowed_ways must contain at least one way")
        abits = self._allowed_bits(tuple(allowed_ways))
        fm = self._free[si] & abits
        if fm:
            vw = (fm & -fm).bit_length() - 1  # lowest allowed free way
            self._free[si] ^= 1 << vw
            self._way_occ[vw] += 1
        else:
            if abits == self._full_bits:
                vw = s.pop(next(iter(s)))
            else:
                for victim, vw in s.items():
                    if abits >> vw & 1:
                        break
                del s[victim]
            slot = si * W + vw
            if self._pref[slot]:
                self._pref[slot] = 0
                st.pref_evicted_unused += 1
        s[line] = vw
        if is_prefetch:
            st.pref_fills += 1
            self._pref[si * W + vw] = 1
        return False

    def access_many(self, lines, allowed_ways: tuple[int, ...], is_prefetch: bool = False) -> np.ndarray:
        """Batch :meth:`access` with one allowed-way mask; returns hit flags."""
        access = self.access
        aw = tuple(allowed_ways)
        pf = bool(is_prefetch)
        lines_l = np.asarray(lines, dtype=np.int64).tolist()
        out = np.zeros(len(lines_l), dtype=bool)
        for i, line in enumerate(lines_l):
            out[i] = access(line, aw, pf)
        return out

    def probe(self, line: int) -> bool:
        return line in self._sets[line & self._set_mask]

    def occupancy(self) -> int:
        return sum(self._way_occ)

    def occupancy_in_ways(self, ways: tuple[int, ...]) -> int:
        occ = self._way_occ
        return sum(occ[w] for w in ways)

    def resident_way(self, line: int) -> int | None:
        """Way index holding ``line`` or None (test helper)."""
        return self._sets[line & self._set_mask].get(line)

    def flush(self) -> None:
        self._sets = [{} for _ in range(self.n_sets)]
        self._free = [self._full_bits] * self.n_sets
        self._pref = bytearray(self.n_sets * self.ways)
        self._way_occ = [0] * self.ways

    # -- array views (inspection / differential tests) ----------------

    def tags_array(self) -> np.ndarray:
        """Resident lines as a ``[sets, ways]`` int64 array (way-indexed).

        Empty ways report -1.
        """
        out = np.full((self.n_sets, self.ways), -1, dtype=np.int64)
        for si, s in enumerate(self._sets):
            for line, w in s.items():
                out[si, w] = line
        return out

    def pref_array(self) -> np.ndarray:
        """Prefetched-unused bits as a ``[sets, ways]`` uint8 array."""
        return np.frombuffer(bytes(self._pref), dtype=np.uint8).reshape(
            self.n_sets, self.ways
        )

    def recency_array(self) -> np.ndarray:
        """Way indices per set in LRU→MRU order, ``[sets, ways]`` int64.

        Empty ways lead (lowest index first), mirroring the reference's
        stamp-0 initial state; filled ways follow in recency order.
        """
        out = np.empty((self.n_sets, self.ways), dtype=np.int64)
        for si, s in enumerate(self._sets):
            row = [w for w in range(self.ways) if self._free[si] >> w & 1]
            row.extend(s.values())
            out[si] = row
        return out
