"""Intel Cache Allocation Technology (CAT) emulation.

CAT exposes a number of *classes of service* (CLOS); each CLOS has a
*capacity bit mask* (CBM) selecting which LLC ways the class may
allocate into.  Masks must be contiguous runs of set bits and contain a
minimum number of bits (both real hardware restrictions).  Cores are
associated with a CLOS; masks may overlap arbitrarily, which is what
the paper relies on for its *overlapping / nested* partitions.
"""

from __future__ import annotations

from repro.sim.cache import ways_from_mask


def is_contiguous_mask(mask: int) -> bool:
    """True if ``mask``'s set bits form one contiguous run."""
    if mask <= 0:
        return False
    shifted = mask >> (mask & -mask).bit_length() - 1
    return (shifted & (shifted + 1)) == 0


def full_mask(ways: int) -> int:
    return (1 << ways) - 1


def low_ways_mask(n: int, total_ways: int) -> int:
    """Mask of the ``n`` lowest ways (clamped to the geometry)."""
    n = max(1, min(n, total_ways))
    return (1 << n) - 1


class CatController:
    """CLOS table + core association, with resctrl-equivalent checks."""

    def __init__(self, total_ways: int, n_cores: int, *, n_clos: int = 16, min_cbm_bits: int = 1) -> None:
        if total_ways < 1 or n_clos < 1:
            raise ValueError("total_ways and n_clos must be positive")
        if min_cbm_bits < 1 or min_cbm_bits > total_ways:
            raise ValueError("min_cbm_bits out of range")
        self.total_ways = total_ways
        self.n_cores = n_cores
        self.n_clos = n_clos
        self.min_cbm_bits = min_cbm_bits
        self._cbm = [full_mask(total_ways)] * n_clos
        self._core_clos = [0] * n_cores
        self._ways_cache: dict[int, tuple[int, ...]] = {}
        #: Monotonic change counter: bumped whenever the effective
        #: core -> allowed-ways mapping may have changed.  Lets callers
        #: (the batch engine's lockstep machines) cache derived allow
        #: tensors and invalidate them cheaply.
        self.generation = 0

    def set_cbm(self, clos: int, mask: int) -> None:
        self._check_clos(clos)
        if not is_contiguous_mask(mask):
            raise ValueError(f"CBM 0x{mask:x} is not a contiguous run of bits")
        if mask.bit_count() < self.min_cbm_bits:
            raise ValueError(f"CBM 0x{mask:x} has fewer than {self.min_cbm_bits} bits")
        if mask >= (1 << self.total_ways):
            raise ValueError(f"CBM 0x{mask:x} exceeds {self.total_ways} ways")
        self._cbm[clos] = mask
        self._ways_cache.pop(clos, None)
        self.generation += 1

    def get_cbm(self, clos: int) -> int:
        self._check_clos(clos)
        return self._cbm[clos]

    def assign_core(self, core: int, clos: int) -> None:
        self._check_clos(clos)
        if not 0 <= core < self.n_cores:
            raise IndexError(f"core {core} out of range")
        self._core_clos[core] = clos
        self.generation += 1

    def core_clos(self, core: int) -> int:
        return self._core_clos[core]

    def allowed_ways(self, core: int) -> tuple[int, ...]:
        """Way indices core may allocate into (cached per CLOS)."""
        clos = self._core_clos[core]
        ways = self._ways_cache.get(clos)
        if ways is None:
            ways = ways_from_mask(self._cbm[clos], self.total_ways)
            self._ways_cache[clos] = ways
        return ways

    def reset(self) -> None:
        """All cores back to CLOS 0 with the full mask (resctrl default)."""
        self._cbm = [full_mask(self.total_ways)] * self.n_clos
        self._core_clos = [0] * self.n_cores
        self._ways_cache.clear()
        self.generation += 1

    def schemata(self) -> dict[int, int]:
        """CLOS -> CBM for every CLOS in use (resctrl-style dump)."""
        used = set(self._core_clos)
        return {c: self._cbm[c] for c in sorted(used)}

    def _check_clos(self, clos: int) -> None:
        if not 0 <= clos < self.n_clos:
            raise IndexError(f"clos {clos} out of range [0, {self.n_clos})")
