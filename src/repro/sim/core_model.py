"""Per-core timing model and the per-quantum fixed-point solver.

The core is a simple in-order engine with memory-level parallelism:

``cycles = exec + l2_hit_stalls + l2_miss_stalls``

* ``exec``            = instructions x cpi_exec,
* ``l2_hit_stalls``   = demand L2 hits x lat_l2 / mlp,
* ``l2_miss_stalls``  = (demand LLC hits x lat_llc
                        + demand memory accesses x lat_mem x qf) / mlp,

with per-core ``mlp`` supplied by the workload (streaming code overlaps
many misses, a pointer chase overlaps none),

where ``qf`` is the DRAM queue factor of ``repro.sim.memory``.  The
``l2_miss_stalls`` term is exactly what the STALLS_L2_PENDING PMU event
counts (cycles stalled with an L2 miss outstanding) — the event Selfa
et al.'s Dunn policy clusters on and the paper's Fig. 15 reports.

Because queue factor and cycle counts are mutually dependent
(more queuing -> longer quantum -> lower utilisation), the solver
iterates the pair to a damped fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.memory import RHO_CLIP, DramModel
from repro.sim.params import MachineParams


def _scalar_sum(vals: list) -> float:
    """Python-float replica of NumPy's pairwise summation for n <= 128.

    NumPy sums < 8 elements sequentially and 8..128 elements with an
    8-accumulator unrolled loop collapsed as ``((r0+r1)+(r2+r3)) +
    ((r4+r5)+(r6+r7))`` plus a sequential remainder; this reproduces
    that tree so scalar means match ``ndarray.mean`` bit for bit.
    Verified against this interpreter's NumPy at import (see
    ``_SCALAR_SUM_EXACT``); larger inputs must use NumPy directly.
    """
    n = len(vals)
    if n < 8:
        s = 0.0
        for v in vals:
            s += v
        return s
    r0, r1, r2, r3, r4, r5, r6, r7 = vals[:8]
    i = 8
    last = n - (n % 8)
    while i < last:
        r0 += vals[i]
        r1 += vals[i + 1]
        r2 += vals[i + 2]
        r3 += vals[i + 3]
        r4 += vals[i + 4]
        r5 += vals[i + 5]
        r6 += vals[i + 6]
        r7 += vals[i + 7]
        i += 8
    res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
    while i < n:
        res += vals[i]
        i += 1
    return res


def _check_scalar_sum() -> bool:
    rng = np.random.default_rng(20190527)
    for n in (1, 2, 3, 7, 8, 9, 16, 17, 31, 64, 100, 128):
        for _ in range(8):
            v = rng.uniform(1e-9, 1e9, n)
            if _scalar_sum(v.tolist()) != float(v.sum()):
                return False
    return True


# If this NumPy build's reduction order ever differs from the replica
# (e.g. a SIMD dispatch change), fall back to NumPy means so results
# stay anchored to the array formulation.
_SCALAR_SUM_EXACT = _check_scalar_sum()


@dataclass
class QuantumCounts:
    """Functional outcome of one quantum for one core (demand side)."""

    n_access: int = 0          # demand accesses issued
    n_l2_hit_d: int = 0        # demand accesses that hit L2 (after L1 miss)
    n_llc_hit_d: int = 0       # demand accesses that hit the LLC
    n_mem_d: int = 0           # demand accesses served by DRAM
    demand_bytes: float = 0.0  # bytes moved by demand DRAM fills
    pref_bytes: float = 0.0    # bytes moved by prefetch DRAM fills

    @property
    def total_bytes(self) -> float:
        return self.demand_bytes + self.pref_bytes


@dataclass
class QuantumTiming:
    """Solved timing for one quantum across the machine."""

    cycles: np.ndarray          # per core
    stalls_l2_pending: np.ndarray
    queue_factor: np.ndarray    # per core effective factor
    machine_cycles: float

    def __post_init__(self) -> None:
        self.cycles = np.asarray(self.cycles, dtype=np.float64)


def solve_quantum(
    params: MachineParams,
    dram: DramModel,
    counts: list[QuantumCounts],
    inst_per_mem: list[float],
    mlp: list[float],
    active: list[bool],
    *,
    iterations: int = 6,
) -> QuantumTiming:
    """Fixed-point solve of per-core cycles and DRAM queue factors."""
    n = len(counts)
    if not (len(inst_per_mem) == len(mlp) == len(active) == n):
        raise ValueError("counts, inst_per_mem, mlp and active must align")

    # Scalar hot path.  The solver runs once per quantum, and for small
    # core counts NumPy's per-call overhead on length-n arrays dwarfs
    # the arithmetic, so the elementwise work is done in Python floats
    # — the identical IEEE-754 operations in the identical order, so
    # results are bit-equal to the original array formulation.  The one
    # *reduction* (the active-cycles mean) stays in NumPy because its
    # pairwise summation order is not reproducible with a scalar loop.
    lat_l2 = float(params.lat_l2)
    lat_llc = float(params.lat_llc)
    lat_mem = float(params.lat_mem)
    cpi = params.cpi_exec
    mem_bpc = params.mem_bytes_per_cycle

    exec_cycles = [0.0] * n
    l2_stall = [0.0] * n
    llc_stall = [0.0] * n
    mem_lat = [0.0] * n  # mem_d * lat_mem; scaled by qf then / par each iter
    pars = [1.0] * n
    core_bytes = [0.0] * n
    for i, c in enumerate(counts):
        m = mlp[i]
        par = m if m > 1.0 else 1.0
        pars[i] = par
        exec_cycles[i] = c.n_access * (1.0 + inst_per_mem[i]) * cpi
        l2_stall[i] = c.n_l2_hit_d * lat_l2 / par
        llc_stall[i] = c.n_llc_hit_d * lat_llc / par
        mem_lat[i] = c.n_mem_d * lat_mem
        core_bytes[i] = c.total_bytes

    act_idx = [i for i in range(n) if active[i]]
    n_act = len(act_idx)
    scalar_mean = _SCALAR_SUM_EXACT and n_act <= 128
    # Socket utilisation numerator is loop-invariant: hoist the sum.
    if _SCALAR_SUM_EXACT and n <= 128:
        total_bytes = _scalar_sum(core_bytes)
    else:
        total_bytes = float(np.asarray(core_bytes, dtype=np.float64).sum())

    # Queue-factor constants — same formula as DramModel.queue_factor /
    # effective_factor, inlined op-for-op (cycles are already >= 1.0 so
    # the 1e-9 guard of the array path cannot trigger).
    core_bpc = params.core_bytes_per_cycle
    gain = params.queue_gain
    cap = params.max_queue_factor

    qf = [1.0] * n
    mem_stall = [0.0] * n
    cycles = [1.0] * n
    machine_cycles = 1.0
    for it in range(iterations + 1):
        for i in range(n):
            ms = mem_lat[i] * qf[i] / pars[i]
            cy = exec_cycles[i] + l2_stall[i] + llc_stall[i] + ms
            mem_stall[i] = ms
            cycles[i] = cy if cy > 1.0 else 1.0
        if n_act:
            if scalar_mean:
                machine_cycles = _scalar_sum([cycles[i] for i in act_idx]) / n_act
            else:
                machine_cycles = float(
                    np.asarray([cycles[i] for i in act_idx], dtype=np.float64).mean()
                )
        if it == iterations:
            break
        mc = machine_cycles if machine_cycles > 1e-9 else 1e-9
        rho_socket = total_bytes / (mem_bpc * mc)
        for i in range(n):
            cy = cycles[i]
            rho = core_bytes[i] / (core_bpc * (cy if cy > 1e-9 else 1e-9))
            if rho < rho_socket:
                rho = rho_socket
            if rho < 0.0:
                rho = 0.0
            elif rho > RHO_CLIP:
                rho = RHO_CLIP
            f = 1.0 + gain * rho / (1.0 - rho)
            if f > cap:
                f = cap
            qf[i] = 0.5 * qf[i] + 0.5 * f

    stalls = [llc_stall[i] + mem_stall[i] for i in range(n)]  # L2-miss-pending cycles
    return QuantumTiming(
        cycles=np.asarray(cycles, dtype=np.float64),
        stalls_l2_pending=np.asarray(stalls, dtype=np.float64),
        queue_factor=np.asarray(qf, dtype=np.float64),
        machine_cycles=machine_cycles,
    )
