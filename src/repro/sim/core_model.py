"""Per-core timing model and the per-quantum fixed-point solver.

The core is a simple in-order engine with memory-level parallelism:

``cycles = exec + l2_hit_stalls + l2_miss_stalls``

* ``exec``            = instructions x cpi_exec,
* ``l2_hit_stalls``   = demand L2 hits x lat_l2 / mlp,
* ``l2_miss_stalls``  = (demand LLC hits x lat_llc
                        + demand memory accesses x lat_mem x qf) / mlp,

with per-core ``mlp`` supplied by the workload (streaming code overlaps
many misses, a pointer chase overlaps none),

where ``qf`` is the DRAM queue factor of ``repro.sim.memory``.  The
``l2_miss_stalls`` term is exactly what the STALLS_L2_PENDING PMU event
counts (cycles stalled with an L2 miss outstanding) — the event Selfa
et al.'s Dunn policy clusters on and the paper's Fig. 15 reports.

Because queue factor and cycle counts are mutually dependent
(more queuing -> longer quantum -> lower utilisation), the solver
iterates the pair to a damped fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.memory import DramModel
from repro.sim.params import MachineParams


@dataclass
class QuantumCounts:
    """Functional outcome of one quantum for one core (demand side)."""

    n_access: int = 0          # demand accesses issued
    n_l2_hit_d: int = 0        # demand accesses that hit L2 (after L1 miss)
    n_llc_hit_d: int = 0       # demand accesses that hit the LLC
    n_mem_d: int = 0           # demand accesses served by DRAM
    demand_bytes: float = 0.0  # bytes moved by demand DRAM fills
    pref_bytes: float = 0.0    # bytes moved by prefetch DRAM fills

    @property
    def total_bytes(self) -> float:
        return self.demand_bytes + self.pref_bytes


@dataclass
class QuantumTiming:
    """Solved timing for one quantum across the machine."""

    cycles: np.ndarray          # per core
    stalls_l2_pending: np.ndarray
    queue_factor: np.ndarray    # per core effective factor
    machine_cycles: float

    def __post_init__(self) -> None:
        self.cycles = np.asarray(self.cycles, dtype=np.float64)


def solve_quantum(
    params: MachineParams,
    dram: DramModel,
    counts: list[QuantumCounts],
    inst_per_mem: list[float],
    mlp: list[float],
    active: list[bool],
    *,
    iterations: int = 6,
) -> QuantumTiming:
    """Fixed-point solve of per-core cycles and DRAM queue factors."""
    n = len(counts)
    if not (len(inst_per_mem) == len(mlp) == len(active) == n):
        raise ValueError("counts, inst_per_mem, mlp and active must align")

    n_access = np.array([c.n_access for c in counts], dtype=np.float64)
    l2_hits = np.array([c.n_l2_hit_d for c in counts], dtype=np.float64)
    llc_hits = np.array([c.n_llc_hit_d for c in counts], dtype=np.float64)
    mem_d = np.array([c.n_mem_d for c in counts], dtype=np.float64)
    core_bytes = np.array([c.total_bytes for c in counts], dtype=np.float64)
    ipm = np.array(inst_per_mem, dtype=np.float64)
    par = np.maximum(np.array(mlp, dtype=np.float64), 1.0)
    act = np.array(active, dtype=bool)

    instructions = n_access * (1.0 + ipm)
    exec_cycles = instructions * params.cpi_exec
    l2_stall = l2_hits * params.lat_l2 / par
    llc_stall = llc_hits * params.lat_llc / par

    qf = np.ones(n, dtype=np.float64)
    cycles = np.maximum(exec_cycles + l2_stall + llc_stall + mem_d * params.lat_mem / par, 1.0)
    for _ in range(iterations):
        mem_stall = mem_d * params.lat_mem * qf / par
        cycles = np.maximum(exec_cycles + l2_stall + llc_stall + mem_stall, 1.0)
        machine_cycles = float(cycles[act].mean()) if act.any() else 1.0
        qf_new = dram.effective_factor(core_bytes, cycles, machine_cycles)
        qf = 0.5 * qf + 0.5 * qf_new  # damped update for stability

    mem_stall = mem_d * params.lat_mem * qf / par
    cycles = np.maximum(exec_cycles + l2_stall + llc_stall + mem_stall, 1.0)
    machine_cycles = float(cycles[act].mean()) if act.any() else 1.0
    stalls = llc_stall + mem_stall  # cycles with an L2 miss pending
    return QuantumTiming(cycles=cycles, stalls_l2_pending=stalls, queue_factor=qf, machine_cycles=machine_cycles)
