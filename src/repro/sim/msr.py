"""Emulated model-specific registers, in particular MSR 0x1A4.

Intel exposes per-core prefetcher control through
``MSR_MISC_FEATURE_CONTROL`` (0x1A4).  A **set** bit disables the
corresponding prefetcher:

======  =======================================
bit 0   L2 hardware prefetcher (streamer)
bit 1   L2 adjacent cache line prefetcher
bit 2   DCU prefetcher (L1 next-line)
bit 3   DCU IP prefetcher (L1 stride)
======  =======================================

The CMM back-end treats the four prefetchers of a core as a single
entity toggled on/off (paper Sec. III-B1), i.e. it writes ``PF_ALL_ON``
(0x0) or ``PF_ALL_OFF`` (0xF); the finer-grained bits are still modelled
so the framework supports per-prefetcher exploration.
"""

from __future__ import annotations

MSR_MISC_FEATURE_CONTROL = 0x1A4

BIT_L2_STREAMER = 0
BIT_L2_ADJACENT = 1
BIT_DCU_NEXT_LINE = 2
BIT_DCU_IP_STRIDE = 3

PF_ALL_ON = 0x0
PF_ALL_OFF = 0xF
#: Only the two L2 prefetchers (streamer + adjacent) disabled.
MASK_L2_OFF = (1 << BIT_L2_STREAMER) | (1 << BIT_L2_ADJACENT)
#: Only the two L1 (DCU) prefetchers disabled.
MASK_L1_OFF = (1 << BIT_DCU_NEXT_LINE) | (1 << BIT_DCU_IP_STRIDE)


def mask_from_enables(*, stride: bool, next_line: bool, streamer: bool, adjacent: bool) -> int:
    """Build the 0x1A4 disable mask from per-prefetcher enables."""
    mask = 0
    if not streamer:
        mask |= 1 << BIT_L2_STREAMER
    if not adjacent:
        mask |= 1 << BIT_L2_ADJACENT
    if not next_line:
        mask |= 1 << BIT_DCU_NEXT_LINE
    if not stride:
        mask |= 1 << BIT_DCU_IP_STRIDE
    return mask


def enables_from_mask(mask: int) -> dict[str, bool]:
    """Decode a 0x1A4 disable mask into per-prefetcher enables."""
    if mask < 0 or mask > 0xF:
        raise ValueError(f"prefetch mask must be in [0, 0xF], got {mask:#x}")
    return {
        "streamer": not (mask >> BIT_L2_STREAMER & 1),
        "adjacent": not (mask >> BIT_L2_ADJACENT & 1),
        "next_line": not (mask >> BIT_DCU_NEXT_LINE & 1),
        "stride": not (mask >> BIT_DCU_IP_STRIDE & 1),
    }


class MsrFile:
    """Per-cpu MSR storage with the interface shape of /dev/cpu/N/msr."""

    def __init__(self, n_cpus: int) -> None:
        if n_cpus < 1:
            raise ValueError("need at least one cpu")
        self.n_cpus = n_cpus
        self._regs: list[dict[int, int]] = [dict() for _ in range(n_cpus)]

    def read(self, cpu: int, addr: int) -> int:
        self._check_cpu(cpu)
        return self._regs[cpu].get(addr, 0)

    def write(self, cpu: int, addr: int, value: int) -> None:
        self._check_cpu(cpu)
        if value < 0:
            raise ValueError("MSR values are unsigned")
        self._regs[cpu][addr] = value

    def _check_cpu(self, cpu: int) -> None:
        if not 0 <= cpu < self.n_cpus:
            raise IndexError(f"cpu {cpu} out of range [0, {self.n_cpus})")


class PrefetchMsr:
    """Typed view over MSR 0x1A4 in an :class:`MsrFile`."""

    def __init__(self, msr: MsrFile) -> None:
        self._msr = msr

    def set_mask(self, cpu: int, mask: int) -> None:
        if mask < 0 or mask > 0xF:
            raise ValueError(f"prefetch mask must be in [0, 0xF], got {mask:#x}")
        self._msr.write(cpu, MSR_MISC_FEATURE_CONTROL, mask)

    def get_mask(self, cpu: int) -> int:
        return self._msr.read(cpu, MSR_MISC_FEATURE_CONTROL) & 0xF

    def set_all_on(self, cpu: int) -> None:
        self.set_mask(cpu, PF_ALL_ON)

    def set_all_off(self, cpu: int) -> None:
        self.set_mask(cpu, PF_ALL_OFF)

    def enables(self, cpu: int) -> dict[str, bool]:
        return enables_from_mask(self.get_mask(cpu))
