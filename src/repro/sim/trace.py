"""Stochastic memory-access trace generators.

A benchmark is modelled as a weighted mixture of *streams*, each an
address-sequence process over a private region of memory.  The stream
kinds cover the behaviours the paper's SPEC CPU2006 benchmarks exhibit:

* ``SequentialStream`` — unit- or small-stride walks over a large array
  (triggers the L2 streamer; prefetch friendly when the region exceeds
  the caches),
* ``StridedStream`` — constant large strides (caught by the L1
  IP-stride prefetcher but not by the streamer once the stride exceeds
  its window),
* ``RandomStream`` — uniform random lines in a region (prefetch
  unfriendly; the adjacent-line prefetcher still fires on its misses,
  which is what makes ``Rand Access`` prefetch *aggressive* yet useless),
* ``PointerChaseStream`` — a fixed pseudo-random cyclic tour of a
  region: temporally reusable (cacheable if the region fits) but
  spatially unpredictable.

Traces are produced in vectorised *bursts*; a ``TraceGenerator`` mixes
bursts from its streams according to weights.  Everything is
deterministic given the seed.

Each trace record is a ``(ctx, line)`` pair: ``ctx`` stands in for the
program counter of the triggering load (used by the IP-stride
prefetcher) and ``line`` is a global cache-line number.

**Chunk-alignment invariance.**  ``TraceGenerator.chunk`` draws one
RNG pick per started burst (``ceil(n / burst_len)`` picks) and every
stream advances in pure element-space, so the emitted ``(ctx, line)``
stream depends only on the *cumulative* number of accesses requested —
not on how that total was partitioned into chunks — **provided every
chunk size is a multiple of** ``burst_len``.  A non-multiple request
starts a partial burst whose remainder is discarded, which changes the
RNG/stream positions relative to any other partition.  All practical
request sizes (simulator quanta, sampling/exec intervals) are
multiples of the default ``burst_len`` of 32; the materialized trace
plane (:mod:`repro.sim.tracestore`) relies on this invariant to replay
a once-generated trace bit-identically under any aligned chunking, and
falls back to a live generator on the first unaligned request.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np


class Stream(ABC):
    """One address-sequence process.  ``ctx`` identifies the load PC."""

    #: True when ``burst(a + b)`` equals ``burst(a)`` then ``burst(b)``
    #: (pure element-space arithmetic, no RNG draw) — lets the mixer
    #: fuse consecutive bursts of the same stream into one call.
    deterministic_burst = True

    def __init__(self, ctx: int, base_line: int, region_lines: int) -> None:
        if region_lines < 1:
            raise ValueError("region must contain at least one line")
        self.ctx = int(ctx)
        self.base_line = int(base_line)
        self.region_lines = int(region_lines)

    @abstractmethod
    def burst(self, n: int) -> np.ndarray:
        """Return the next ``n`` line addresses (int64 array)."""

    def footprint_lines(self) -> int:
        return self.region_lines


class SequentialStream(Stream):
    """Cyclic walk with a constant (small) stride, in lines.

    ``repeats`` models spatial locality within a cache line: a
    unit-stride walk over 8-byte elements touches each 64 B line eight
    times, so the default emits every line ``repeats`` times in a row.
    """

    def __init__(
        self, ctx: int, base_line: int, region_lines: int, stride: int = 1, repeats: int = 8
    ) -> None:
        super().__init__(ctx, base_line, region_lines)
        if stride == 0:
            raise ValueError("stride must be nonzero")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.stride = int(stride)
        self.repeats = int(repeats)
        self._pos = 0  # measured in element steps (line step / repeats)

    def burst(self, n: int) -> np.ndarray:
        r = self.repeats
        steps = np.arange(self._pos, self._pos + n, dtype=np.int64) // r
        idx = (steps * self.stride) % self.region_lines
        self._pos += n
        # Keep the element counter bounded (one lap = region * repeats).
        self._pos %= self.region_lines * r
        return self.base_line + idx


class StridedStream(SequentialStream):
    """Large-stride walk: touches each line once (defeats the streamer)."""

    def __init__(self, ctx: int, base_line: int, region_lines: int, stride: int = 16) -> None:
        super().__init__(ctx, base_line, region_lines, stride, repeats=1)


class RandomStream(Stream):
    """Uniform random lines over the region (no temporal structure)."""

    deterministic_burst = False  # each burst draws from the RNG

    def __init__(self, ctx: int, base_line: int, region_lines: int, rng: np.random.Generator) -> None:
        super().__init__(ctx, base_line, region_lines)
        self._rng = rng

    def burst(self, n: int) -> np.ndarray:
        return self.base_line + self._rng.integers(0, self.region_lines, n, dtype=np.int64)


class PointerChaseStream(Stream):
    """A fixed random cyclic tour: follows one permutation cycle.

    The visit order is precomputed by shuffling the region once, so a
    burst is just a gather from that order — the sequential dependence
    of a pointer chase is preserved in the *order*, while generation
    stays vectorised.  ``repeats`` models several field accesses to the
    same 64 B node before following the next pointer.
    """

    def __init__(
        self, ctx: int, base_line: int, region_lines: int, rng: np.random.Generator, repeats: int = 2
    ) -> None:
        super().__init__(ctx, base_line, region_lines)
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self._order = rng.permutation(region_lines).astype(np.int64)
        self.repeats = int(repeats)
        self._pos = 0  # element-space position

    def burst(self, n: int) -> np.ndarray:
        r = self.repeats
        steps = (np.arange(self._pos, self._pos + n, dtype=np.int64) // r) % self.region_lines
        self._pos = (self._pos + n) % (self.region_lines * r)
        return self.base_line + self._order[steps]


class TraceGenerator:
    """Weighted burst-mixture of streams for one core.

    ``inst_per_mem`` is the number of non-memory instructions retired
    per memory access (the benchmark's compute intensity) and ``mlp``
    the benchmark's achievable memory-level parallelism (a streaming
    code overlaps many misses; a pointer chase overlaps none); the
    timing model consumes both.
    """

    def __init__(
        self,
        streams: Sequence[Stream],
        weights: Sequence[float],
        *,
        inst_per_mem: float = 3.0,
        mlp: float = 4.0,
        burst_len: int = 32,
        seed: int = 0,
    ) -> None:
        if len(streams) != len(weights) or not streams:
            raise ValueError("streams and weights must be equal-length and non-empty")
        w = np.asarray(weights, dtype=np.float64)
        if (w < 0).any() or w.sum() <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        if mlp < 1.0:
            raise ValueError("mlp must be >= 1")
        self.streams = list(streams)
        self._cum = np.cumsum(w / w.sum())
        self.inst_per_mem = float(inst_per_mem)
        self.mlp = float(mlp)
        self.burst_len = int(burst_len)
        self._rng = np.random.default_rng(seed)

    def footprint_lines(self) -> int:
        return sum(s.footprint_lines() for s in self.streams)

    def chunk(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Next ``n`` accesses: ``(ctx, lines)`` int64 arrays."""
        ctx = np.empty(n, dtype=np.int64)
        lines = np.empty(n, dtype=np.int64)
        filled = 0
        # Draw all stream picks for the chunk up front.
        n_bursts = -(-n // self.burst_len)
        picks = np.minimum(
            np.searchsorted(self._cum, self._rng.random(n_bursts), side="right"),
            len(self.streams) - 1,
        ).tolist()
        bl = self.burst_len
        b = 0
        while b < n_bursts:
            si = picks[b]
            s = self.streams[si]
            b2 = b + 1
            # Fuse consecutive picks of the same deterministic stream
            # into one vectorised burst (identical output, fewer calls).
            if s.deterministic_burst:
                while b2 < n_bursts and picks[b2] == si:
                    b2 += 1
            take = min((b2 - b) * bl, n - filled)
            lines[filled : filled + take] = s.burst(take)
            ctx[filled : filled + take] = s.ctx
            filled += take
            b = b2
        return ctx, lines


class PhasedTrace:
    """Alternates between trace generators every ``phase_len`` accesses.

    Models program *phase* behaviour: the paper notes the Agg set can
    change between phases ("In some program phases, the Agg set may
    not be empty"), which is why CMM re-detects every epoch.  The
    compute-intensity/MLP properties follow the current phase.
    """

    def __init__(self, generators: Sequence["TraceGenerator"], phase_len: int) -> None:
        if not generators:
            raise ValueError("need at least one generator")
        if phase_len < 1:
            raise ValueError("phase_len must be positive")
        self.generators = list(generators)
        self.phase_len = int(phase_len)
        self._phase = 0
        self._left = self.phase_len

    @property
    def current_phase(self) -> int:
        return self._phase

    @property
    def inst_per_mem(self) -> float:
        return self.generators[self._phase].inst_per_mem

    @property
    def mlp(self) -> float:
        return self.generators[self._phase].mlp

    def footprint_lines(self) -> int:
        return max(g.footprint_lines() for g in self.generators)

    def chunk(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        ctx = np.empty(n, dtype=np.int64)
        lines = np.empty(n, dtype=np.int64)
        filled = 0
        while filled < n:
            take = min(n - filled, self._left)
            c, l = self.generators[self._phase].chunk(take)
            ctx[filled : filled + take] = c
            lines[filled : filled + take] = l
            filled += take
            self._left -= take
            if self._left == 0:
                self._phase = (self._phase + 1) % len(self.generators)
                self._left = self.phase_len
        return ctx, lines


class IdleTrace:
    """Trace of a halted core: never produces accesses."""

    inst_per_mem = 0.0
    mlp = 1.0

    def footprint_lines(self) -> int:
        return 0

    def chunk(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        z = np.empty(0, dtype=np.int64)
        return z, z
