"""Compiled kernel tier: Numba-JIT fused serve/advance loops.

The batch engine (PRs 6-7) moved the run axis into NumPy, but its inner
loops still execute at interpreter speed: ``GroupedLLC.serve`` walks
``stream.rounds`` allocating ~10 temporaries per round, and the scalar
fast engine walks dict-LRU sets per access.  This module provides the
same semantics as *single fused loops* in the Numba nopython subset:

* :data:`K_SERVE_LLC` — kernel (a): one pass over a whole quantum's
  merged request stream, operating directly on the flat
  ``(runs*sets*ways)`` tags/stamps/pref arrays.  Hit scan, lowest-
  allowed-free-way fill, min-stamp CAT victim, prefetch-bit rules and
  the H/OP/OV stat reductions all happen in-kernel with no per-round
  temporaries.  Shared by ``GroupedLLC.serve`` (any R) and the native
  scalar machine's LLC phase (R=1).
* :data:`K_CORE_CHUNK` — kernel (b)/(c): one core-quantum of the
  reference L1/L2 + prefetcher pipeline (IP-stride, next-line,
  streamer, adjacent) over array-backed LRU caches and linear-scan
  FIFO prefetcher tables.  Drives both ``GroupedCore`` lane advances
  and the native scalar ``Machine``'s core phase.

**Layout equivalence.**  Dict insertion order in
:class:`~repro.sim.fastcache.FastCache` is LRU order; here each way
carries a strictly-increasing touch stamp, so "first dict entry" ==
"min stamp" and behaviour is bit-identical (the private caches never
expose way indices, so physical way placement is free).  The LLC layout
is exactly :class:`~repro.sim.batch.GroupedLLC`'s flat SoA arrays.

**Selection and fallback.**  The tier activates only when
:func:`kernels_enabled` is true: ``$REPRO_NATIVE_KERNELS`` is not
``off``, :mod:`numba` imports (or the mode is ``force``, which runs the
kernels interpreted — a test hook), and a one-shot self-check — which
also JIT-compiles both kernels off-clock (``cache=True`` persists the
compilation across processes) — passes against the pure-Python kernel
source.  Import failure, JIT failure, and runtime kernel errors all
degrade *bit-identically* to the pure-NumPy/dict paths, counted by
:func:`note_native_fallback` (mirroring
``repro.sim.batch.note_degradation``) and surfaced via
``RunStats.native_fallbacks`` / ``repro cache stats``.

See docs/simulation_model.md ("The compiled kernel tier").
"""

from __future__ import annotations

import os

import numpy as np

from repro.sim import fastengine, profiling
from repro.sim.cache import CacheStats
from repro.sim.params import CacheGeometry, MachineParams
from repro.sim.pmu import Event

__all__ = [
    "ENV_VAR",
    "NUMBA_VERSION",
    "NativeCache",
    "NativeLLC",
    "NativeLaneState",
    "NativeTables",
    "clone_lane_state",
    "disable_runtime",
    "fresh_lane_state",
    "images_equal",
    "kernels_enabled",
    "native_fallback_count",
    "native_mode",
    "note_native_fallback",
    "numba_available",
    "run_core_chunk_native",
    "run_llc_phase_native",
    "serve_llc_arrays",
    "stride_rows",
    "tier_status",
]

ENV_VAR = "REPRO_NATIVE_KERNELS"

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    NUMBA_VERSION: str | None = _numba.__version__
except Exception:  # pragma: no cover - the common path in minimal installs
    _numba = None
    NUMBA_VERSION = None

_BIG = 9223372036854775807  # int64 max; sentinel for min-scans


def _maybe_jit(fn):
    """``numba.njit(cache=True)`` when importable, identity otherwise.

    Decoration is lazy — compilation errors surface at first call and
    are caught by the self-check before any simulation state exists.
    """
    if _numba is None:
        return fn
    try:
        return _numba.njit(cache=True)(fn)
    except Exception:  # pragma: no cover - njit() itself rarely fails
        return fn


# ------------------------------------------------------------------
# Process-wide fallback accounting (idiom: batch.note_degradation)
# ------------------------------------------------------------------

_PROCESS_FALLBACKS = 0
_RUNTIME_DISABLED = False
_DISABLED_REASON: str | None = None
_SELFCHECK: bool | None = None


def note_native_fallback(n: int = 1) -> None:
    """Record ``n`` native-tier fallbacks (degrade to pure-NumPy/dict)."""
    global _PROCESS_FALLBACKS
    _PROCESS_FALLBACKS += int(n)


def native_fallback_count() -> int:
    """Process-wide native-kernel fallbacks recorded so far."""
    return _PROCESS_FALLBACKS


def disable_runtime(reason: str) -> None:
    """Sticky-disable the tier after a runtime kernel failure.

    New state construction and serves re-check :func:`kernels_enabled`,
    so everything built after this point uses the pure paths.
    """
    global _RUNTIME_DISABLED, _DISABLED_REASON
    _RUNTIME_DISABLED = True
    _DISABLED_REASON = reason


def native_mode() -> str:
    """``$REPRO_NATIVE_KERNELS`` normalized to off/auto/force."""
    mode = os.environ.get(ENV_VAR, "auto").strip().lower()
    return mode if mode in ("off", "auto", "force") else "auto"


def numba_available() -> bool:
    return _numba is not None


def kernels_enabled() -> bool:
    """Should new simulation state use the compiled tier right now?

    Selection order: runtime sticky-disable beats ``off`` beats
    ``force`` (interpreted kernels, a test hook) beats numba
    availability; an enabled tier must additionally pass the one-shot
    self-check (which doubles as off-clock JIT warm-up).
    """
    if _RUNTIME_DISABLED:
        return False
    mode = native_mode()
    if mode == "off":
        return False
    if mode != "force" and _numba is None:
        return False
    return _selfcheck_ok()


def tier_status() -> dict:
    """Introspection block for benches and ``repro cache stats``."""
    return {
        "numba": NUMBA_VERSION,
        "mode": native_mode(),
        "enabled": kernels_enabled(),
        "fallbacks": native_fallback_count(),
        "disabled_reason": _DISABLED_REASON,
    }


def _reset_for_tests() -> None:
    """Clear cached tier decisions (forced-fallback tests only)."""
    global _SELFCHECK, _RUNTIME_DISABLED, _DISABLED_REASON
    _SELFCHECK = None
    _RUNTIME_DISABLED = False
    _DISABLED_REASON = None


# ------------------------------------------------------------------
# Kernel (a): whole-quantum grouped LLC serve
# ------------------------------------------------------------------


def _serve_llc(
    tags,
    stamps,
    pref,
    S,
    W,
    run_idx,
    allow,
    C,
    line,
    si,
    ispf,
    blk,
    cpu_col,
    seq0,
    stats_out,
    hits_d,
    mem_d,
    pref_m,
):
    """Serve ``n`` merged requests against every run in ``run_idx``.

    ``tags``/``stamps`` are flat int64 ``(n_runs*S*W)`` views,
    ``pref``/``ispf``/``allow`` uint8; ``allow`` is the flattened
    ``(n_runs, C, W)`` CAT matrix indexed by absolute run id.  ``blk``
    is each request's stat-block column (``cpu``, or
    ``segment*C + cpu`` for multi-quantum streams); ``cpu_col`` its CAT
    row.  Request ``i`` stamps ``seq0 + i`` — the scalar serve's
    absolute stream position.  Per-rep outputs: ``stats_out[rp] =
    [hits, pref_fills, pref_used, pref_evicted_unused, free_fills]``
    and dense ``(R, n_blocks)`` demand-hit/demand-fill/prefetch-fill
    block counters.
    """
    n = line.shape[0]
    for rp in range(run_idx.shape[0]):
        r = run_idx[rp]
        base = r * S * W
        abase = r * C * W
        h = 0
        f = 0
        u = 0
        ev = 0
        fd = 0
        for i in range(n):
            ln = line[i]
            row = base + si[i] * W
            hw = -1
            for w in range(W):
                if tags[row + w] == ln:
                    hw = w
                    break
            if hw >= 0:
                slot = row + hw
                h += 1
                stamps[slot] = seq0 + i
                if ispf[i]:
                    continue  # prefetch hit: bit untouched
                if pref[slot]:
                    u += 1
                    pref[slot] = 0
                hits_d[rp, blk[i]] += 1
                continue
            arow = abase + cpu_col[i] * W
            vw = -1
            for w in range(W):
                if allow[arow + w] and tags[row + w] == -1:
                    vw = w  # lowest allowed free way
                    break
            if vw >= 0:
                fd += 1
            else:
                best = _BIG
                for w in range(W):
                    if allow[arow + w] and tags[row + w] != -1:
                        sw = stamps[row + w]
                        if sw < best:
                            best = sw
                            vw = w
                if pref[row + vw]:
                    pref[row + vw] = 0
                    ev += 1
            slot = row + vw
            tags[slot] = ln
            stamps[slot] = seq0 + i
            if ispf[i]:
                pref[slot] = 1
                f += 1
                pref_m[rp, blk[i]] += 1
            else:
                pref[slot] = 0
                mem_d[rp, blk[i]] += 1
        stats_out[rp, 0] += h
        stats_out[rp, 1] += f
        stats_out[rp, 2] += u
        stats_out[rp, 3] += ev
        stats_out[rp, 4] += fd


_serve_llc_py = _serve_llc
K_SERVE_LLC = _maybe_jit(_serve_llc)


def serve_llc_arrays(
    tags_f,
    stamps_f,
    pref_f,
    S,
    W,
    run_idx,
    allow_u8,
    C,
    line,
    si,
    ispf_u8,
    blk,
    cpu_col,
    seq0,
    n_blocks,
):
    """One :data:`K_SERVE_LLC` dispatch; returns the dense outputs.

    ``(stats_out, hits_d, mem_d, pref_m)`` with ``stats_out`` shaped
    ``(R, 5)`` and the block counters ``(R, n_blocks)``.  Raises
    whatever the kernel raises — callers own the fallback policy.
    """
    R = len(run_idx)
    stats_out = np.zeros((R, 5), dtype=np.int64)
    hits_d = np.zeros((R, n_blocks), dtype=np.int64)
    mem_d = np.zeros((R, n_blocks), dtype=np.int64)
    pref_m = np.zeros((R, n_blocks), dtype=np.int64)
    if profiling.ON:
        t0 = profiling.clock()
        K_SERVE_LLC(
            tags_f, stamps_f, pref_f, S, W, run_idx, allow_u8, C,
            line, si, ispf_u8, blk, cpu_col, seq0,
            stats_out, hits_d, mem_d, pref_m,
        )
        profiling.add("llc_serve", profiling.clock() - t0)
    else:
        K_SERVE_LLC(
            tags_f, stamps_f, pref_f, S, W, run_idx, allow_u8, C,
            line, si, ispf_u8, blk, cpu_col, seq0,
            stats_out, hits_d, mem_d, pref_m,
        )
    return stats_out, hits_d, mem_d, pref_m


# ------------------------------------------------------------------
# Kernel (b)/(c): one core-quantum over array-backed private state
# ------------------------------------------------------------------


def _core_chunk(
    ctxs,
    lines,
    n,
    t1,
    p1,
    s1,
    m1,
    w1,
    t2,
    p2,
    s2,
    m2,
    w2,
    st_ctx,
    st_last,
    st_stride,
    st_conf,
    st_ord,
    sm_page,
    sm_off,
    sm_dir,
    sm_run,
    sm_ptr,
    sm_ord,
    seqs,
    en_stride,
    en_next,
    en_stream,
    en_adj,
    stride_degree,
    stride_thr,
    stream_degree,
    req,
    counts,
):
    """Reference-semantics core quantum over array L1/L2 + FIFO tables.

    Transcription of ``Machine._run_core_chunk_reference`` (pinned
    bit-identical to the fast kernel by the differential suite) onto
    the native layout: ``t*/p*/s*`` are flat tag/pref/stamp arrays with
    set mask ``m*`` and ways ``w*``; the prefetcher tables are
    linear-scan arrays with ``*_ord`` insertion stamps standing in for
    dict FIFO order.  ``seqs = [l1_seq, l2_seq, st_seq, sm_seq]`` is
    read and written in place.  Sign-encoded LLC requests land in
    ``req``; returns their count.  ``counts`` layout: ``[l1_acc,
    l1_hits, l1_fills, l1_used, l1_evic, l2_acc, l2_hits, l2_fills,
    l2_used, l2_evic, n_l1_miss, n_l1_pref, n_l2_hit_d, n_l2_dm_miss,
    n_l2_pref, n_l2_pref_miss]``.
    """
    nreq = 0
    E = st_ctx.shape[0]
    P = sm_page.shape[0]
    for i in range(n):
        c = ctxs[i]
        ln = lines[i]
        # ---------------- L1 demand access --------------------------
        row = (ln & m1) * w1
        counts[0] += 1
        hw = -1
        for w in range(w1):
            if t1[row + w] == ln:
                hw = w
                break
        if hw >= 0:
            hit1 = True
            counts[1] += 1
            if p1[row + hw]:
                counts[3] += 1
            p1[row + hw] = 0
            seqs[0] += 1
            s1[row + hw] = seqs[0]
        else:
            hit1 = False
            fw = -1
            for w in range(w1):
                if t1[row + w] == -1:
                    fw = w
                    break
            if fw < 0:
                best = _BIG
                for w in range(w1):
                    if s1[row + w] < best:
                        best = s1[row + w]
                        fw = w
                if p1[row + fw]:
                    counts[4] += 1
            t1[row + fw] = ln
            p1[row + fw] = 0
            seqs[0] += 1
            s1[row + fw] = seqs[0]
        # ---------------- L1 (DCU) prefetchers ----------------------
        if en_stride:
            j = -1
            for t in range(E):
                if st_ctx[t] == c:
                    j = t
                    break
            if j < 0:
                slot = -1
                for t in range(E):
                    if st_ctx[t] == -1:
                        slot = t
                        break
                if slot < 0:
                    oldest = _BIG
                    for t in range(E):
                        if st_ord[t] < oldest:
                            oldest = st_ord[t]
                            slot = t
                st_ctx[slot] = c
                st_last[slot] = ln
                st_stride[slot] = 0
                st_conf[slot] = 0
                seqs[2] += 1
                st_ord[slot] = seqs[2]
            else:
                delta = ln - st_last[j]
                st_last[j] = ln
                if delta == st_stride[j] and delta != 0:
                    if st_conf[j] < 3:
                        st_conf[j] += 1
                else:
                    if st_conf[j] > 0:
                        st_conf[j] -= 1
                    if st_conf[j] == 0:
                        st_stride[j] = delta
                if st_conf[j] >= stride_thr and st_stride[j] != 0:
                    stride = st_stride[j]
                    for m in range(1, stride_degree + 1):
                        p = ln + stride * m
                        counts[11] += 1
                        # DCU prefetchers fetch from L2 only; a request
                        # missing L2 is dropped.
                        prow = (p & m1) * w1
                        inl1 = False
                        for w in range(w1):
                            if t1[prow + w] == p:
                                inl1 = True
                                break
                        if not inl1:
                            qrow = (p & m2) * w2
                            qw = -1
                            for w in range(w2):
                                if t2[qrow + w] == p:
                                    qw = w
                                    break
                            if qw >= 0:
                                if p2[qrow + qw]:
                                    counts[8] += 1
                                p2[qrow + qw] = 0  # touch: MRU, bit consumed
                                seqs[1] += 1
                                s2[qrow + qw] = seqs[1]
                                counts[0] += 1
                                fw = -1
                                for w in range(w1):
                                    if t1[prow + w] == -1:
                                        fw = w
                                        break
                                if fw < 0:
                                    best = _BIG
                                    for w in range(w1):
                                        if s1[prow + w] < best:
                                            best = s1[prow + w]
                                            fw = w
                                    if p1[prow + fw]:
                                        counts[4] += 1
                                t1[prow + fw] = p
                                p1[prow + fw] = 1
                                seqs[0] += 1
                                s1[prow + fw] = seqs[0]
                                counts[2] += 1
        if en_next and not hit1:
            p = ln + 1
            counts[11] += 1
            prow = (p & m1) * w1
            inl1 = False
            for w in range(w1):
                if t1[prow + w] == p:
                    inl1 = True
                    break
            if not inl1:
                qrow = (p & m2) * w2
                qw = -1
                for w in range(w2):
                    if t2[qrow + w] == p:
                        qw = w
                        break
                if qw >= 0:
                    if p2[qrow + qw]:
                        counts[8] += 1
                    p2[qrow + qw] = 0
                    seqs[1] += 1
                    s2[qrow + qw] = seqs[1]
                    counts[0] += 1
                    fw = -1
                    for w in range(w1):
                        if t1[prow + w] == -1:
                            fw = w
                            break
                    if fw < 0:
                        best = _BIG
                        for w in range(w1):
                            if s1[prow + w] < best:
                                best = s1[prow + w]
                                fw = w
                        if p1[prow + fw]:
                            counts[4] += 1
                    t1[prow + fw] = p
                    p1[prow + fw] = 1
                    seqs[0] += 1
                    s1[prow + fw] = seqs[0]
                    counts[2] += 1
        # ---------------- L2 demand + prefetchers -------------------
        if not hit1:
            counts[10] += 1
            row2 = (ln & m2) * w2
            counts[5] += 1
            hw2 = -1
            for w in range(w2):
                if t2[row2 + w] == ln:
                    hw2 = w
                    break
            if hw2 >= 0:
                hit2 = True
                counts[6] += 1
                if p2[row2 + hw2]:
                    counts[8] += 1
                p2[row2 + hw2] = 0
                seqs[1] += 1
                s2[row2 + hw2] = seqs[1]
                counts[12] += 1
            else:
                hit2 = False
                fw = -1
                for w in range(w2):
                    if t2[row2 + w] == -1:
                        fw = w
                        break
                if fw < 0:
                    best = _BIG
                    for w in range(w2):
                        if s2[row2 + w] < best:
                            best = s2[row2 + w]
                            fw = w
                    if p2[row2 + fw]:
                        counts[9] += 1
                t2[row2 + fw] = ln
                p2[row2 + fw] = 0
                seqs[1] += 1
                s2[row2 + fw] = seqs[1]
                counts[13] += 1
                req[nreq] = ln
                nreq += 1
            if en_stream:
                page = ln >> 6
                off = ln & 63
                j = -1
                for t in range(P):
                    if sm_page[t] == page:
                        j = t
                        break
                if j < 0:
                    slot = -1
                    for t in range(P):
                        if sm_page[t] == -1:
                            slot = t
                            break
                    if slot < 0:
                        oldest = _BIG
                        for t in range(P):
                            if sm_ord[t] < oldest:
                                oldest = sm_ord[t]
                                slot = t
                    sm_page[slot] = page
                    sm_off[slot] = off
                    sm_dir[slot] = 0
                    sm_run[slot] = 0
                    sm_ptr[slot] = -1
                    seqs[3] += 1
                    sm_ord[slot] = seqs[3]
                else:
                    delta = off - sm_off[j]
                    direction = 0
                    if delta > 0:
                        direction = 1
                    elif delta < 0:
                        direction = -1
                    if direction != 0 and direction == sm_dir[j]:
                        sm_run[j] += 1
                    else:
                        sm_dir[j] = direction
                        sm_run[j] = 1 if direction != 0 else 0
                        sm_ptr[j] = -1
                    sm_off[j] = off
                    if sm_run[j] >= 2 and sm_dir[j] != 0:
                        base = page << 6
                        ptr = sm_ptr[j]
                        if sm_dir[j] > 0:
                            start = off + 1 if ptr < off + 1 else ptr + 1
                            stop = off + stream_degree
                            if stop > 63:
                                stop = 63
                            if stop >= start:
                                sm_ptr[j] = stop
                            for noff in range(start, stop + 1):
                                p = base + noff
                                counts[14] += 1
                                qrow = (p & m2) * w2
                                inl2 = False
                                for w in range(w2):
                                    if t2[qrow + w] == p:
                                        inl2 = True
                                        break
                                if not inl2:
                                    counts[5] += 1
                                    fw = -1
                                    for w in range(w2):
                                        if t2[qrow + w] == -1:
                                            fw = w
                                            break
                                    if fw < 0:
                                        best = _BIG
                                        for w in range(w2):
                                            if s2[qrow + w] < best:
                                                best = s2[qrow + w]
                                                fw = w
                                        if p2[qrow + fw]:
                                            counts[9] += 1
                                    t2[qrow + fw] = p
                                    p2[qrow + fw] = 1
                                    seqs[1] += 1
                                    s2[qrow + fw] = seqs[1]
                                    counts[7] += 1
                                    counts[15] += 1
                                    req[nreq] = ~p
                                    nreq += 1
                        else:
                            start = off - 1 if (ptr == -1 or ptr > off - 1) else ptr - 1
                            stop = off - stream_degree
                            if stop < 0:
                                stop = 0
                            if start >= stop:
                                sm_ptr[j] = stop
                            for noff in range(start, stop - 1, -1):
                                p = base + noff
                                counts[14] += 1
                                qrow = (p & m2) * w2
                                inl2 = False
                                for w in range(w2):
                                    if t2[qrow + w] == p:
                                        inl2 = True
                                        break
                                if not inl2:
                                    counts[5] += 1
                                    fw = -1
                                    for w in range(w2):
                                        if t2[qrow + w] == -1:
                                            fw = w
                                            break
                                    if fw < 0:
                                        best = _BIG
                                        for w in range(w2):
                                            if s2[qrow + w] < best:
                                                best = s2[qrow + w]
                                                fw = w
                                        if p2[qrow + fw]:
                                            counts[9] += 1
                                    t2[qrow + fw] = p
                                    p2[qrow + fw] = 1
                                    seqs[1] += 1
                                    s2[qrow + fw] = seqs[1]
                                    counts[7] += 1
                                    counts[15] += 1
                                    req[nreq] = ~p
                                    nreq += 1
            if en_adj and not hit2:
                p = ln ^ 1
                counts[14] += 1
                qrow = (p & m2) * w2
                inl2 = False
                for w in range(w2):
                    if t2[qrow + w] == p:
                        inl2 = True
                        break
                if not inl2:
                    counts[5] += 1
                    fw = -1
                    for w in range(w2):
                        if t2[qrow + w] == -1:
                            fw = w
                            break
                    if fw < 0:
                        best = _BIG
                        for w in range(w2):
                            if s2[qrow + w] < best:
                                best = s2[qrow + w]
                                fw = w
                        if p2[qrow + fw]:
                            counts[9] += 1
                    t2[qrow + fw] = p
                    p2[qrow + fw] = 1
                    seqs[1] += 1
                    s2[qrow + fw] = seqs[1]
                    counts[7] += 1
                    counts[15] += 1
                    req[nreq] = ~p
                    nreq += 1
    return nreq


_core_chunk_py = _core_chunk
K_CORE_CHUNK = _maybe_jit(_core_chunk)


# ------------------------------------------------------------------
# Native state containers
# ------------------------------------------------------------------


class NativeCache:
    """Array-backed private L1/L2 image (kernel layout).

    Behavioural replacement for :class:`~repro.sim.fastcache.FastCache`
    under the core kernel: per-way tags/pref bits plus strictly
    increasing touch stamps whose order is exactly the dict's LRU
    order.  Only the kernel mutates it; the methods here are the
    inspection surface the rest of the stack expects (stats, occupancy,
    canonical LRU-ordered array views).
    """

    __slots__ = ("geometry", "n_sets", "ways", "_set_mask", "tags", "pref", "stamps", "seq", "stats")

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.n_sets = geometry.sets
        self.ways = geometry.ways
        self._set_mask = self.n_sets - 1
        size = self.n_sets * self.ways
        self.tags = np.full(size, -1, dtype=np.int64)
        self.pref = np.zeros(size, dtype=np.uint8)
        self.stamps = np.zeros(size, dtype=np.int64)
        self.seq = 0
        self.stats = CacheStats()

    def occupancy(self) -> int:
        return int((self.tags != -1).sum())

    def probe(self, line: int) -> bool:
        row = (line & self._set_mask) * self.ways
        return bool((self.tags[row : row + self.ways] == line).any())

    def flush(self) -> None:
        self.tags[:] = -1
        self.pref[:] = 0
        self.stamps[:] = 0

    def clone(self) -> "NativeCache":
        c = NativeCache.__new__(NativeCache)
        c.geometry = self.geometry
        c.n_sets = self.n_sets
        c.ways = self.ways
        c._set_mask = self._set_mask
        c.tags = self.tags.copy()
        c.pref = self.pref.copy()
        c.stamps = self.stamps.copy()
        c.seq = self.seq
        c.stats = CacheStats()
        return c

    def _lru_order(self) -> np.ndarray:
        """Way permutation per set: filled ways LRU->MRU, empties trail."""
        t = self.tags.reshape(self.n_sets, self.ways)
        s = self.stamps.reshape(self.n_sets, self.ways)
        key = np.where(t == -1, _BIG, s)
        return np.argsort(key, axis=1, kind="stable")

    def tags_array(self) -> np.ndarray:
        """Resident lines, ``[sets, ways]`` int64, LRU->MRU like FastCache."""
        t = self.tags.reshape(self.n_sets, self.ways)
        return np.take_along_axis(t, self._lru_order(), axis=1)

    def pref_array(self) -> np.ndarray:
        """Prefetched-unused bits in the same canonical order as tags."""
        p = self.pref.reshape(self.n_sets, self.ways)
        return np.take_along_axis(p, self._lru_order(), axis=1)

    def state_equal(self, other: "NativeCache") -> bool:
        """Canonical behavioural equality (lines + bits in LRU order).

        Physical way placement may differ between two images that
        behave identically — private-cache behaviour depends only on
        contents and recency order, which is what this compares.
        """
        return np.array_equal(self.tags_array(), other.tags_array()) and np.array_equal(
            self.pref_array(), other.pref_array()
        )


class NativeTables:
    """Array-backed IP-stride + streamer tables (linear scan, FIFO).

    ``*_ord`` insertion stamps reproduce the dict tables' FIFO eviction
    (``pop(next(iter(table)))`` == min insertion stamp); empty slots
    carry key -1.  Also holds the static prefetcher knobs the kernel
    needs, so one object rides along with each lane/core state.
    """

    __slots__ = (
        "st_ctx", "st_last", "st_stride", "st_conf", "st_ord", "st_seq",
        "sm_page", "sm_off", "sm_dir", "sm_run", "sm_ptr", "sm_ord", "sm_seq",
        "stride_degree", "stride_thr", "stream_degree",
    )

    def __init__(self, params: MachineParams) -> None:
        E = params.stride_table_entries
        P = params.streamer_table_pages
        self.st_ctx = np.full(E, -1, dtype=np.int64)
        self.st_last = np.zeros(E, dtype=np.int64)
        self.st_stride = np.zeros(E, dtype=np.int64)
        self.st_conf = np.zeros(E, dtype=np.int64)
        self.st_ord = np.zeros(E, dtype=np.int64)
        self.st_seq = 0
        self.sm_page = np.full(P, -1, dtype=np.int64)
        self.sm_off = np.zeros(P, dtype=np.int64)
        self.sm_dir = np.zeros(P, dtype=np.int64)
        self.sm_run = np.zeros(P, dtype=np.int64)
        self.sm_ptr = np.full(P, -1, dtype=np.int64)
        self.sm_ord = np.zeros(P, dtype=np.int64)
        self.sm_seq = 0
        self.stride_degree = params.stride_degree
        self.stride_thr = params.stride_confidence
        self.stream_degree = params.streamer_degree

    def clone(self) -> "NativeTables":
        c = NativeTables.__new__(NativeTables)
        for name in ("st_ctx", "st_last", "st_stride", "st_conf", "st_ord",
                     "sm_page", "sm_off", "sm_dir", "sm_run", "sm_ptr", "sm_ord"):
            setattr(c, name, getattr(self, name).copy())
        c.st_seq = self.st_seq
        c.sm_seq = self.sm_seq
        c.stride_degree = self.stride_degree
        c.stride_thr = self.stride_thr
        c.stream_degree = self.stream_degree
        return c

    def _fifo_order(self, keys: np.ndarray, ords: np.ndarray) -> np.ndarray:
        return np.argsort(np.where(keys == -1, _BIG, ords), kind="stable")

    def stride_canonical(self) -> np.ndarray:
        """Occupied stride rows ``[ctx, last, stride, conf]`` in FIFO order."""
        o = self._fifo_order(self.st_ctx, self.st_ord)
        rows = np.stack(
            [self.st_ctx[o], self.st_last[o], self.st_stride[o], self.st_conf[o]], axis=1
        )
        return rows[self.st_ctx[o] != -1]

    def streamer_canonical(self) -> np.ndarray:
        """Occupied streamer rows ``[page, off, dir, run, ptr]`` in FIFO order."""
        o = self._fifo_order(self.sm_page, self.sm_ord)
        rows = np.stack(
            [self.sm_page[o], self.sm_off[o], self.sm_dir[o], self.sm_run[o], self.sm_ptr[o]],
            axis=1,
        )
        return rows[self.sm_page[o] != -1]

    def tables_equal(self, other: "NativeTables") -> bool:
        return np.array_equal(self.stride_canonical(), other.stride_canonical()) and (
            np.array_equal(self.streamer_canonical(), other.streamer_canonical())
        )


def stride_rows(tabs: NativeTables, entries: int) -> np.ndarray:
    """``(entries, 4)`` stride-table block in FIFO order, -1 padded.

    Same layout as ``GroupedCore.stride_tensor`` builds from the dict
    table, so the property suite sees identical tensors either way.
    """
    block = np.full((entries, 4), -1, dtype=np.int64)
    rows = tabs.stride_canonical()
    block[: len(rows)] = rows
    return block


class _Enables:
    """Prefetcher enable flags with ``PrefetcherBank.set_enables``'s shape."""

    __slots__ = ("en_stride", "en_next_line", "en_streamer", "en_adjacent")

    def __init__(self) -> None:
        self.en_stride = True
        self.en_next_line = True
        self.en_streamer = True
        self.en_adjacent = True

    def set_enables(self, *, stride=None, next_line=None, streamer=None, adjacent=None):
        if stride is not None:
            self.en_stride = bool(stride)
        if next_line is not None:
            self.en_next_line = bool(next_line)
        if streamer is not None:
            self.en_streamer = bool(streamer)
        if adjacent is not None:
            self.en_adjacent = bool(adjacent)


class NativeLaneState:
    """Native-layout lane image (duck-types ``_LaneState`` for the kernel).

    Carries the same ``l1``/``l2``/``bank``/``trace``/``mask_applied``
    surface the batch engine's lane machinery touches, plus the
    prefetcher table arrays the core kernel needs.
    """

    __slots__ = ("l1", "l2", "tabs", "bank", "trace", "mask_applied")

    def __init__(self, l1, l2, tabs, trace, mask_applied=-1) -> None:
        self.l1 = l1
        self.l2 = l2
        self.tabs = tabs
        self.bank = _Enables()
        self.trace = trace
        self.mask_applied = mask_applied


def fresh_lane_state(params: MachineParams, trace) -> NativeLaneState:
    return NativeLaneState(
        NativeCache(params.l1), NativeCache(params.l2), NativeTables(params), trace
    )


def clone_lane_state(st: NativeLaneState, trace) -> NativeLaneState:
    c = NativeLaneState(st.l1.clone(), st.l2.clone(), st.tabs.clone(), trace, st.mask_applied)
    c.bank.set_enables(
        stride=st.bank.en_stride,
        next_line=st.bank.en_next_line,
        streamer=st.bank.en_streamer,
        adjacent=st.bank.en_adjacent,
    )
    return c


def images_equal(a, b) -> bool:
    """Behavioural equality of two native lane images (see ``_images_equal``).

    Canonical comparison: private-cache behaviour depends only on
    contents + recency order (never way indices) and table behaviour on
    contents + FIFO order, so stamp-rank/insertion-rank equality is
    exactly the dict paths' order-sensitive equality.  Mask/enable
    flags are ignored for the same reason as the dict path; live traces
    never compare equal.
    """
    if not (isinstance(a, NativeLaneState) and isinstance(b, NativeLaneState)):
        return False
    if a.trace._live is not None or b.trace._live is not None:
        return False
    if a.trace.pos != b.trace.pos:
        return False
    if not a.tabs.tables_equal(b.tabs):
        return False
    return a.l1.state_equal(b.l1) and a.l2.state_equal(b.l2)


# ------------------------------------------------------------------
# Kernel dispatch wrappers (Machine/lane entry points)
# ------------------------------------------------------------------


def run_core_chunk_native(cpu, cs, q, qc, llc_req, pmu_counts) -> None:
    """Native drop-in for :func:`repro.sim.fastengine.run_core_chunk`.

    ``cs`` needs ``trace``, :class:`NativeCache` ``l1``/``l2``,
    :class:`NativeTables` ``tabs`` and a ``bank`` with the four enable
    flags — satisfied by both :class:`NativeLaneState` and the native
    scalar machine's core state.  A kernel failure sticky-disables the
    tier (new state falls back pure) and re-raises: the chunk is
    consumed, so this call cannot be retried — callers' existing
    degradation paths (chaos layer, lockstep fallback) own recovery.
    """
    prof = profiling.ON
    if prof:
        t0 = profiling.clock()
        ctxs, lines = cs.trace.chunk(q)
        profiling.add("trace_serve", profiling.clock() - t0)
        t0 = profiling.clock()
    else:
        ctxs, lines = cs.trace.chunk(q)
    n = len(lines)
    if n == 0:
        return
    l1 = cs.l1
    l2 = cs.l2
    tabs = cs.tabs
    bank = cs.bank
    # Strict bound: one demand + <= streamer_degree + 1 adjacent
    # requests per access (stride/next-line never leave the core).
    req = np.empty(n * (tabs.stream_degree + 2), dtype=np.int64)
    counts = np.zeros(16, dtype=np.int64)
    seqs = np.empty(4, dtype=np.int64)
    seqs[0] = l1.seq
    seqs[1] = l2.seq
    seqs[2] = tabs.st_seq
    seqs[3] = tabs.sm_seq
    try:
        nreq = int(
            K_CORE_CHUNK(
                ctxs, lines, n,
                l1.tags, l1.pref, l1.stamps, l1._set_mask, l1.ways,
                l2.tags, l2.pref, l2.stamps, l2._set_mask, l2.ways,
                tabs.st_ctx, tabs.st_last, tabs.st_stride, tabs.st_conf, tabs.st_ord,
                tabs.sm_page, tabs.sm_off, tabs.sm_dir, tabs.sm_run, tabs.sm_ptr, tabs.sm_ord,
                seqs,
                bank.en_stride, bank.en_next_line, bank.en_streamer, bank.en_adjacent,
                tabs.stride_degree, tabs.stride_thr, tabs.stream_degree,
                req, counts,
            )
        )
    except Exception as e:
        note_native_fallback()
        disable_runtime(f"core kernel failed: {e!r}")
        raise
    l1.seq = int(seqs[0])
    l2.seq = int(seqs[1])
    tabs.st_seq = int(seqs[2])
    tabs.sm_seq = int(seqs[3])
    llc_req.extend(req[:nreq].tolist())
    st1 = l1.stats
    st1.accesses += int(counts[0])
    st1.hits += int(counts[1])
    st1.pref_fills += int(counts[2])
    st1.pref_used += int(counts[3])
    st1.pref_evicted_unused += int(counts[4])
    st2 = l2.stats
    st2.accesses += int(counts[5])
    st2.hits += int(counts[6])
    st2.pref_fills += int(counts[7])
    st2.pref_used += int(counts[8])
    st2.pref_evicted_unused += int(counts[9])
    qc.n_access = n
    qc.n_l2_hit_d = int(counts[12])
    pmu_counts[cpu, Event.L1_DM_REQ] += n
    pmu_counts[cpu, Event.L1_DM_MISS] += int(counts[10])
    pmu_counts[cpu, Event.L1_PREF_REQ] += int(counts[11])
    pmu_counts[cpu, Event.L2_DM_REQ] += int(counts[10])
    pmu_counts[cpu, Event.L2_DM_MISS] += int(counts[13])
    pmu_counts[cpu, Event.L2_PREF_REQ] += int(counts[14])
    pmu_counts[cpu, Event.L2_PREF_MISS] += int(counts[15])
    if prof:
        profiling.add("core_advance", profiling.clock() - t0)


class NativeLLC:
    """Array-backed shared LLC for the native scalar machine.

    The R=1 case of the grouped SoA layout, served by the same
    :data:`K_SERVE_LLC` kernel.  Exposes the
    :class:`~repro.sim.fastcache.FastPartitionedCache` inspection
    surface (stats, occupancy, way-indexed array views).
    """

    __slots__ = ("geometry", "n_sets", "ways", "_set_mask", "tags", "stamps", "pref",
                 "_seq", "free_lines", "stats")

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.n_sets = geometry.sets
        self.ways = geometry.ways
        self._set_mask = self.n_sets - 1
        size = self.n_sets * self.ways
        self.tags = np.full(size, -1, dtype=np.int64)
        self.stamps = np.zeros(size, dtype=np.int64)
        self.pref = np.zeros(size, dtype=np.uint8)
        self._seq = 1
        self.free_lines = size
        self.stats = CacheStats()

    def occupancy(self) -> int:
        return int((self.tags != -1).sum())

    def occupancy_in_ways(self, ways) -> int:
        t = self.tags.reshape(self.n_sets, self.ways)
        return int((t[:, list(ways)] != -1).sum())

    def probe(self, line: int) -> bool:
        row = (line & self._set_mask) * self.ways
        return bool((self.tags[row : row + self.ways] == line).any())

    def resident_way(self, line: int):
        row = (line & self._set_mask) * self.ways
        hits = np.flatnonzero(self.tags[row : row + self.ways] == line)
        return int(hits[0]) if len(hits) else None

    def flush(self) -> None:
        self.tags[:] = -1
        self.stamps[:] = 0
        self.pref[:] = 0
        self.free_lines = self.n_sets * self.ways

    def tags_array(self) -> np.ndarray:
        """Resident lines, way-indexed ``[sets, ways]`` (-1 = empty)."""
        return self.tags.reshape(self.n_sets, self.ways).copy()

    def pref_array(self) -> np.ndarray:
        return self.pref.reshape(self.n_sets, self.ways).copy()

    def recency_array(self) -> np.ndarray:
        """Way indices per set in LRU->MRU order, empties (lowest) first."""
        t = self.tags.reshape(self.n_sets, self.ways)
        s = self.stamps.reshape(self.n_sets, self.ways)
        w = np.arange(self.ways, dtype=np.int64)[None, :]
        key = np.where(t == -1, w - self.ways, s)  # empties sort below stamps
        return np.argsort(key, axis=1, kind="stable").astype(np.int64)


def run_llc_phase_native(machine, counts, llc_reqs, pmu_counts) -> None:
    """Native drop-in for :func:`repro.sim.fastengine.run_llc_phase`.

    Merges with the shared vectorised merge, then serves the whole
    quantum with one :data:`K_SERVE_LLC` dispatch over the machine's
    :class:`NativeLLC` (R=1).  Tail accounting goes through
    :func:`repro.sim.fastengine.apply_llc_tail` per busy core in
    ascending order — the scalar serve's exact accumulation sequence.
    """
    busy, merged, mcpus = fastengine.merge_llc_requests(llc_reqs)
    if not busy:
        return
    llc = machine.llc
    W = llc.ways
    C = len(llc_reqs)
    allow = np.zeros(C * W, dtype=np.uint8)
    for cpu in busy:
        base = cpu * W
        for w in machine.cat.allowed_ways(cpu):
            allow[base + w] = 1
    enc = np.asarray(merged, dtype=np.int64)
    ispf = enc < 0
    line = np.where(ispf, ~enc, enc)
    si = line & llc._set_mask
    cpus = np.asarray(mcpus, dtype=np.int64)
    n = len(enc)
    try:
        stats_out, dh, dm, dp = serve_llc_arrays(
            llc.tags, llc.stamps, llc.pref, llc.n_sets, W,
            np.zeros(1, dtype=np.int64), allow, C,
            line, si, ispf.view(np.uint8), cpus, cpus, llc._seq, C,
        )
    except Exception as e:
        note_native_fallback()
        disable_runtime(f"LLC serve kernel failed: {e!r}")
        raise
    llc._seq += n
    llc.free_lines -= int(stats_out[0, 4])
    st = llc.stats
    st.accesses += n
    st.hits += int(stats_out[0, 0])
    st.pref_fills += int(stats_out[0, 1])
    st.pref_used += int(stats_out[0, 2])
    st.pref_evicted_unused += int(stats_out[0, 3])
    line_bytes = float(machine.params.line_bytes)
    for cpu in busy:
        fastengine.apply_llc_tail(
            counts[cpu], pmu_counts, cpu,
            int(dh[0, cpu]), int(dm[0, cpu]), int(dp[0, cpu]), line_bytes,
        )


# ------------------------------------------------------------------
# Self-check: JIT warm-up + pure-vs-compiled equivalence
# ------------------------------------------------------------------


def _selfcheck_ok() -> bool:
    global _SELFCHECK
    if _SELFCHECK is None:
        try:
            _run_selfcheck()
            _SELFCHECK = True
        except Exception:
            _SELFCHECK = False
            note_native_fallback()
    return _SELFCHECK


def _selfcheck_llc_inputs():
    S, W, C, R = 4, 2, 2, 2
    rng = np.random.default_rng(7)
    tags = np.full(R * S * W, -1, dtype=np.int64)
    stamps = np.zeros(R * S * W, dtype=np.int64)
    pref = np.zeros(R * S * W, dtype=np.uint8)
    allow = np.ones(R * C * W, dtype=np.uint8)
    allow[C * W + 1 :: W] = 0  # run 1: way 1 disallowed everywhere
    n = 24
    line = rng.integers(0, 16, size=n).astype(np.int64)
    si = line & (S - 1)
    ispf = (rng.integers(0, 3, size=n) == 0).astype(np.uint8)
    cpu_col = rng.integers(0, C, size=n).astype(np.int64)
    return (tags, stamps, pref, S, W,
            np.arange(R, dtype=np.int64), allow, C,
            line, si, ispf, cpu_col, cpu_col, 1)


def _selfcheck_core_inputs():
    class _G:
        pass

    n = 40
    ctxs = np.repeat(np.arange(4, dtype=np.int64), 10)
    lines = (np.arange(n, dtype=np.int64) * 3) % 64 + (ctxs << 8)
    t1 = np.full(4 * 2, -1, dtype=np.int64)
    p1 = np.zeros(4 * 2, dtype=np.uint8)
    s1 = np.zeros(4 * 2, dtype=np.int64)
    t2 = np.full(8 * 2, -1, dtype=np.int64)
    p2 = np.zeros(8 * 2, dtype=np.uint8)
    s2 = np.zeros(8 * 2, dtype=np.int64)
    E, P = 4, 4
    return (
        ctxs, lines, n,
        t1, p1, s1, 3, 2,
        t2, p2, s2, 7, 2,
        np.full(E, -1, dtype=np.int64), np.zeros(E, dtype=np.int64),
        np.zeros(E, dtype=np.int64), np.zeros(E, dtype=np.int64),
        np.zeros(E, dtype=np.int64),
        np.full(P, -1, dtype=np.int64), np.zeros(P, dtype=np.int64),
        np.zeros(P, dtype=np.int64), np.zeros(P, dtype=np.int64),
        np.full(P, -1, dtype=np.int64), np.zeros(P, dtype=np.int64),
        np.zeros(4, dtype=np.int64),
        True, True, True, True,
        2, 2, 4,
        np.empty(n * 6, dtype=np.int64), np.zeros(16, dtype=np.int64),
    )


def _run_selfcheck() -> None:
    """Run both kernels (compiling them under numba) against the pure
    Python source on copied inputs; any exception or mismatch keeps the
    tier off for the whole process."""
    # Kernel (a)
    args = _selfcheck_llc_inputs()
    outs = []
    for fn in (K_SERVE_LLC, _serve_llc_py):
        tags, stamps, pref = args[0].copy(), args[1].copy(), args[2].copy()
        stats_out = np.zeros((2, 5), dtype=np.int64)
        dh = np.zeros((2, 2), dtype=np.int64)
        dm = np.zeros((2, 2), dtype=np.int64)
        dp = np.zeros((2, 2), dtype=np.int64)
        fn(tags, stamps, pref, *args[3:], stats_out, dh, dm, dp)
        outs.append((tags, stamps, pref, stats_out, dh, dm, dp))
    for a, b in zip(*outs):
        if not np.array_equal(a, b):
            raise RuntimeError("native LLC serve kernel diverged from pure source")
    # Kernel (b)
    args = _selfcheck_core_inputs()
    outs = []
    for fn in (K_CORE_CHUNK, _core_chunk_py):
        mut = tuple(a.copy() if isinstance(a, np.ndarray) else a for a in args)
        nreq = int(fn(*mut))
        outs.append((nreq, mut))
    (n_a, mut_a), (n_b, mut_b) = outs
    if n_a != n_b:
        raise RuntimeError("native core kernel diverged from pure source")
    for a, b in zip(mut_a, mut_b):
        if isinstance(a, np.ndarray):
            ok = np.array_equal(a[:n_a], b[:n_a]) if a.shape == (len(args[-2]),) else np.array_equal(a, b)
            if not ok:
                raise RuntimeError("native core kernel diverged from pure source")
