"""The ``fast`` engine's fused per-quantum kernels.

Bit-identical restructuring of ``Machine._run_core_chunk_reference`` /
``_run_llc_phase_reference`` (see :mod:`repro.sim.engines`):

* **Staged chunk pipeline** — the trace chunk is pre-segmented with
  NumPy into runs of identical ``(ctx, line)`` records (spatial-locality
  repeats are the common case: sequential streams emit every line 8x).
  The first access of a run executes the full L1/prefetcher/L2 pipeline
  inline; once the line is resident and the IP-stride entry has fully
  decayed, the remaining repeats are *provably* pure L1 hits with no
  prefetcher side effects, so they collapse into O(1) counter updates
  plus one LRU refresh.
* **Fused loops** — the per-access work of ``Cache.access``,
  ``PrefetcherBank.l1_candidates``/``l2_candidates`` and the four
  prefetcher models is inlined into one interpreter loop over local
  variables; cache stats accumulate in locals and flush once per chunk.
* **Vectorised LLC merge** — per-core request lists (prefetches encoded
  as ``~line`` so a list stays a flat int vector) are round-robin
  merged with one NumPy transpose instead of a nested Python loop, and
  per-core PMU/byte accounting is accumulated in flat counters and
  applied once per quantum.

Everything here mutates the same state objects the reference engine
would (:class:`~repro.sim.fastcache.FastCache` sets, prefetcher tables,
PMU count array), so mid-run engine introspection (analysis hooks,
``CacheStats``) sees identical values.
"""

from __future__ import annotations

from itertools import repeat as _repeat

import numpy as np

from repro.sim import profiling
from repro.sim.pmu import Event

__all__ = ["run_core_chunk", "run_llc_phase", "encode_prefetch", "decode_request"]

_SENTINEL = np.int64(np.iinfo(np.int64).min)


def encode_prefetch(line: int) -> int:
    """Encode a prefetch LLC request as ``~line`` (demands stay ``>= 0``)."""
    return ~line


def decode_request(enc: int) -> tuple[int, bool]:
    """Inverse of the request encoding: ``(line, is_prefetch)``."""
    return (~enc, True) if enc < 0 else (enc, False)


def run_core_chunk(cpu, cs, q, qc, llc_req, pmu_counts) -> None:
    """Filter one core's chunk through L1/L2 with prefetch triggering.

    Appends sign-encoded LLC requests (``line`` demand, ``~line``
    prefetch) to ``llc_req``; bit-identical to the reference path.
    """
    if not profiling.ON:
        _run_core_chunk_impl(cpu, cs, q, qc, llc_req, pmu_counts)
        return
    t0 = profiling.clock()
    _run_core_chunk_impl(cpu, cs, q, qc, llc_req, pmu_counts)
    profiling.add("core_advance", profiling.clock() - t0)


def _run_core_chunk_impl(cpu, cs, q, qc, llc_req, pmu_counts) -> None:
    if profiling.ON:
        # trace_serve is a documented sub-phase of core_advance.
        t0 = profiling.clock()
        ctxs, lines = cs.trace.chunk(q)
        profiling.add("trace_serve", profiling.clock() - t0)
    else:
        ctxs, lines = cs.trace.chunk(q)
    n = len(lines)
    if n == 0:
        return

    l1 = cs.l1
    l2 = cs.l2
    bank = cs.bank
    l1_sets = l1._sets
    l2_sets = l2._sets
    l1_mask = l1._set_mask
    l2_mask = l2._set_mask
    l1_ways = l1.ways
    l2_ways = l2.ways

    en_stride = bank.en_stride
    en_next = bank.en_next_line
    en_stream = bank.en_streamer
    en_adj = bank.en_adjacent
    any_l1 = en_stride or en_next
    any_l2 = en_stream or en_adj

    ip = bank.ip_stride
    stride_table = ip._table
    stride_entries = ip.table_entries
    stride_degree = ip.degree
    stride_conf = ip.conf_threshold
    sp = bank.streamer
    stream_table = sp._table
    stream_pages = sp.table_pages
    stream_degree = sp.degree

    append = llc_req.append

    # --- run-length segmentation (vectorised) -----------------------
    # One (ctx, line, count) triple per run of identical records; a
    # run-free chunk iterates the raw chunk zipped with count 1.
    runs = None
    if n > 1:
        same = (lines[1:] == lines[:-1]) & (ctxs[1:] == ctxs[:-1])
        if same.any():
            brk = np.flatnonzero(~same) + 1
            starts = np.empty(len(brk) + 1, dtype=np.int64)
            starts[0] = 0
            starts[1:] = brk
            counts_arr = np.diff(np.append(starts, n))
            runs = zip(
                ctxs[starts].tolist(), lines[starts].tolist(), counts_arr.tolist()
            )
    if runs is None:
        runs = zip(ctxs.tolist(), lines.tolist(), _repeat(1))

    # --- local stat accumulators ------------------------------------
    l1_acc = l1_hits = l1_fills = l1_used = l1_evic = 0
    l2_acc = l2_hits = l2_fills = l2_used = l2_evic = 0
    n_l1_miss = 0
    n_l1_pref = 0
    n_l2_hit_d = 0
    n_l2_dm_miss = 0
    n_l2_pref = 0
    n_l2_pref_miss = 0

    for c, line, k in runs:
        s1 = l1_sets[line & l1_mask]
        j = 0
        while True:
            # ---------------- L1 demand lookup ----------------------
            v = s1.pop(line, None)
            l1_acc += 1
            if v is not None:
                hit1 = True
                l1_hits += 1
                if v:
                    l1_used += 1
            else:
                hit1 = False
                if len(s1) >= l1_ways:
                    vb = s1.pop(next(iter(s1)))
                    if vb:
                        l1_evic += 1
            s1[line] = 0  # (re)insert -> MRU, pref bit consumed
            # ---------------- L1 (DCU) prefetchers ------------------
            e = None
            if any_l1:
                if en_stride:
                    e = stride_table.get(c)
                    if e is None:
                        if len(stride_table) >= stride_entries:
                            del stride_table[next(iter(stride_table))]
                        e = stride_table[c] = [line, 0, 0]
                    else:
                        delta = line - e[0]
                        e[0] = line
                        if delta == e[1] and delta != 0:
                            if e[2] < 3:
                                e[2] += 1
                        else:
                            if e[2] > 0:
                                e[2] -= 1
                            if e[2] == 0:
                                e[1] = delta
                        if e[2] >= stride_conf and e[1] != 0:
                            stride = e[1]
                            for m in range(1, stride_degree + 1):
                                p = line + stride * m
                                n_l1_pref += 1
                                # DCU prefetchers fetch from L2 only; a
                                # request missing L2 is dropped.
                                sp1 = l1_sets[p & l1_mask]
                                if p not in sp1:
                                    sl2 = l2_sets[p & l2_mask]
                                    v2 = sl2.pop(p, None)
                                    if v2 is not None:
                                        if v2:
                                            l2_used += 1
                                        sl2[p] = 0  # touch: -> MRU, bit consumed
                                        l1_acc += 1
                                        if len(sp1) >= l1_ways:
                                            vb = sp1.pop(next(iter(sp1)))
                                            if vb:
                                                l1_evic += 1
                                        sp1[p] = 1
                                        l1_fills += 1
                if en_next and not hit1:
                    p = line + 1
                    n_l1_pref += 1
                    sp1 = l1_sets[p & l1_mask]
                    if p not in sp1:
                        sl2 = l2_sets[p & l2_mask]
                        v2 = sl2.pop(p, None)
                        if v2 is not None:
                            if v2:
                                l2_used += 1
                            sl2[p] = 0  # touch: -> MRU, bit consumed
                            l1_acc += 1
                            if len(sp1) >= l1_ways:
                                vb = sp1.pop(next(iter(sp1)))
                                if vb:
                                    l1_evic += 1
                            sp1[p] = 1
                            l1_fills += 1
            # ---------------- L2 demand + prefetchers ---------------
            if not hit1:
                n_l1_miss += 1
                s2 = l2_sets[line & l2_mask]
                v2 = s2.pop(line, None)
                l2_acc += 1
                if v2 is not None:
                    hit2 = True
                    l2_hits += 1
                    if v2:
                        l2_used += 1
                    n_l2_hit_d += 1
                else:
                    hit2 = False
                    if len(s2) >= l2_ways:
                        vb = s2.pop(next(iter(s2)))
                        if vb:
                            l2_evic += 1
                    n_l2_dm_miss += 1
                    append(line)
                s2[line] = 0  # (re)insert -> MRU, pref bit consumed
                if any_l2:
                    if en_stream:
                        page = line >> 6
                        off = line & 63
                        e2 = stream_table.get(page)
                        if e2 is None:
                            if len(stream_table) >= stream_pages:
                                del stream_table[next(iter(stream_table))]
                            stream_table[page] = [off, 0, 0, -1]
                        else:
                            delta = off - e2[0]
                            direction = 1 if delta > 0 else (-1 if delta < 0 else 0)
                            if direction != 0 and direction == e2[1]:
                                e2[2] += 1
                            else:
                                e2[1] = direction
                                e2[2] = 1 if direction else 0
                                e2[3] = -1
                            e2[0] = off
                            if e2[2] >= 2 and e2[1] != 0:
                                base = page << 6
                                ptr = e2[3]
                                if e2[1] > 0:
                                    start = off + 1 if ptr < off + 1 else ptr + 1
                                    stop = off + stream_degree
                                    if stop > 63:
                                        stop = 63
                                    if stop >= start:
                                        e2[3] = stop
                                    for noff in range(start, stop + 1):
                                        p = base + noff
                                        n_l2_pref += 1
                                        sl2 = l2_sets[p & l2_mask]
                                        if p not in sl2:
                                            l2_acc += 1
                                            if len(sl2) >= l2_ways:
                                                vb = sl2.pop(next(iter(sl2)))
                                                if vb:
                                                    l2_evic += 1
                                            sl2[p] = 1
                                            l2_fills += 1
                                            n_l2_pref_miss += 1
                                            append(~p)
                                else:
                                    start = off - 1 if (ptr == -1 or ptr > off - 1) else ptr - 1
                                    stop = off - stream_degree
                                    if stop < 0:
                                        stop = 0
                                    if start >= stop:
                                        e2[3] = stop
                                    for noff in range(start, stop - 1, -1):
                                        p = base + noff
                                        n_l2_pref += 1
                                        sl2 = l2_sets[p & l2_mask]
                                        if p not in sl2:
                                            l2_acc += 1
                                            if len(sl2) >= l2_ways:
                                                vb = sl2.pop(next(iter(sl2)))
                                                if vb:
                                                    l2_evic += 1
                                            sl2[p] = 1
                                            l2_fills += 1
                                            n_l2_pref_miss += 1
                                            append(~p)
                    if en_adj and not hit2:
                        p = line ^ 1
                        n_l2_pref += 1
                        sl2 = l2_sets[p & l2_mask]
                        if p not in sl2:
                            l2_acc += 1
                            if len(sl2) >= l2_ways:
                                vb = sl2.pop(next(iter(sl2)))
                                if vb:
                                    l2_evic += 1
                            sl2[p] = 1
                            l2_fills += 1
                            n_l2_pref_miss += 1
                            append(~p)
            # ---------------- repeat collapse -----------------------
            j += 1
            if j >= k:
                break
            if not en_stride or e[2] == 0:
                v = s1.pop(line, None)
                if v is None:
                    continue  # evicted by a same-set prefetch fill: re-miss
                # The remaining k-j repeats are pure L1 hits: the stride
                # entry (if any) sits at [line, 0, 0] and stays there,
                # the next-line prefetcher needs a miss, and L2 is never
                # consulted.  Each repeat is stats + an MRU refresh.
                r = k - j
                l1_acc += r
                l1_hits += r
                if v:
                    l1_used += 1
                s1[line] = 0
                if en_stride:
                    e[1] = 0
                break
            # Stride entry still confident: repeats decay it (delta is
            # 0) and may re-emit the same candidates while confidence
            # stays >= threshold.  Emulate per repeat; the moment an
            # emitting repeat changes no cache state, every further
            # emission repeats the exact same inert probes and the rest
            # of the run collapses to closed-form counter updates.
            rerun = False
            while True:
                v = s1.pop(line, None)
                if v is None:
                    rerun = True  # evicted by an emission fill: re-miss
                    break
                l1_acc += 1
                l1_hits += 1
                if v:
                    l1_used += 1
                s1[line] = 0
                if e[2] > 0:
                    e[2] -= 1
                if e[2] == 0:
                    e[1] = 0
                if e[2] >= stride_conf and e[1]:
                    d = e[1]
                    filled = False
                    for m in range(1, stride_degree + 1):
                        p = line + d * m
                        n_l1_pref += 1
                        sp1 = l1_sets[p & l1_mask]
                        if p not in sp1:
                            sl2 = l2_sets[p & l2_mask]
                            v2 = sl2.pop(p, None)
                            if v2 is not None:
                                if v2:
                                    l2_used += 1
                                sl2[p] = 0  # touch: -> MRU, bit consumed
                                l1_acc += 1
                                if len(sp1) >= l1_ways:
                                    vb = sp1.pop(next(iter(sp1)))
                                    if vb:
                                        l1_evic += 1
                                sp1[p] = 1
                                l1_fills += 1
                                filled = True
                    j += 1
                    if j >= k:
                        break
                    if filled:
                        continue
                    # Inert emission: conf decays by 1 per repeat, d is
                    # stable until conf hits 0, so exactly
                    # min(T, conf - max(thr, 1)) further repeats emit —
                    # each a no-op plus `degree` request counters.
                    T = k - j
                    E = e[2] - (stride_conf if stride_conf >= 1 else 1)
                    if E > T:
                        E = T
                    if E < 0:
                        E = 0
                    n_l1_pref += stride_degree * E
                    l1_acc += T
                    l1_hits += T
                    e[2] -= T
                    if e[2] < 0:
                        e[2] = 0
                    if e[2] == 0:
                        e[1] = 0
                    j = k
                    break
                else:
                    # Emissions are over for good (conf only decays from
                    # here): the rest are pure L1 hits plus decay.
                    j += 1
                    T = k - j
                    l1_acc += T
                    l1_hits += T
                    e[2] -= T
                    if e[2] < 0:
                        e[2] = 0
                    if e[2] == 0:
                        e[1] = 0
                    j = k
                    break
            if rerun:
                continue
            break

    # --- flush accumulators -----------------------------------------
    st1 = l1.stats
    st1.accesses += l1_acc
    st1.hits += l1_hits
    st1.pref_fills += l1_fills
    st1.pref_used += l1_used
    st1.pref_evicted_unused += l1_evic
    st2 = l2.stats
    st2.accesses += l2_acc
    st2.hits += l2_hits
    st2.pref_fills += l2_fills
    st2.pref_used += l2_used
    st2.pref_evicted_unused += l2_evic

    qc.n_access = n
    qc.n_l2_hit_d = n_l2_hit_d
    pmu_counts[cpu, Event.L1_DM_REQ] += n
    pmu_counts[cpu, Event.L1_DM_MISS] += n_l1_miss
    pmu_counts[cpu, Event.L1_PREF_REQ] += n_l1_pref
    pmu_counts[cpu, Event.L2_DM_REQ] += n_l1_miss
    pmu_counts[cpu, Event.L2_DM_MISS] += n_l2_dm_miss
    pmu_counts[cpu, Event.L2_PREF_REQ] += n_l2_pref
    pmu_counts[cpu, Event.L2_PREF_MISS] += n_l2_pref_miss


def merge_llc_requests(llc_reqs) -> tuple[list, list, list]:
    """Round-robin merge of per-core request lists, materialized.

    Returns ``(busy, merged, mcpus)`` — the busy-core list plus the
    column-major interleaved request stream and the core each request
    came from, as plain lists.  The merge depends only on the request
    lists (not on CAT or LLC state), so the batch kernel computes it
    once per unique lane combination and replays it across runs.
    """
    t0 = profiling.clock() if profiling.ON else 0.0
    busy = [cpu for cpu, reqs in enumerate(llc_reqs) if reqs]
    if not busy:
        return busy, [], []
    if len(busy) == 1:
        cpu0 = busy[0]
        merged = list(llc_reqs[cpu0])
        if profiling.ON:
            profiling.add("merge", profiling.clock() - t0)
        return busy, merged, [cpu0] * len(merged)
    lens = [len(llc_reqs[c]) for c in busy]
    maxlen = max(lens)
    mat = np.full((len(busy), maxlen), _SENTINEL, dtype=np.int64)
    for row, c in enumerate(busy):
        mat[row, : lens[row]] = llc_reqs[c]
    flat = mat.T.ravel()
    valid = flat != _SENTINEL
    merged = flat[valid].tolist()
    mcpus = np.tile(np.asarray(busy, dtype=np.int64), maxlen)[valid].tolist()
    if profiling.ON:
        profiling.add("merge", profiling.clock() - t0)
    return busy, merged, mcpus


def run_llc_phase(machine, counts, llc_reqs, pmu_counts, premerged=None) -> None:
    """Serve all cores' LLC requests, merged round-robin (fused loop).

    ``premerged`` short-circuits the merge with a cached
    :func:`merge_llc_requests` result (the batch kernel's merge cache);
    the serve loop itself always runs against this machine's LLC/CAT.
    """
    if premerged is None:
        busy = [cpu for cpu, reqs in enumerate(llc_reqs) if reqs]
    else:
        busy = premerged[0]
    if not busy:
        return
    t0 = profiling.clock() if profiling.ON else 0.0
    llc = machine.llc
    W = llc.ways
    set_mask = llc._set_mask
    sets = llc._sets
    free = llc._free
    pref = llc._pref
    way_occ = llc._way_occ
    full_bits = llc._full_bits

    ncpu = len(llc_reqs)
    abits_l = [0] * ncpu
    for cpu in busy:
        abits_l[cpu] = llc._allowed_bits(machine.cat.allowed_ways(cpu))

    # --- round-robin merge (vectorised column-major interleave) -----
    if premerged is not None:
        pairs = zip(premerged[1], premerged[2])
    elif len(busy) == 1:
        cpu0 = busy[0]
        pairs = zip(llc_reqs[cpu0], _repeat(cpu0))
    else:
        lens = [len(llc_reqs[c]) for c in busy]
        maxlen = max(lens)
        mat = np.full((len(busy), maxlen), _SENTINEL, dtype=np.int64)
        for row, c in enumerate(busy):
            mat[row, : lens[row]] = llc_reqs[c]
        flat = mat.T.ravel()
        valid = flat != _SENTINEL
        merged = flat[valid].tolist()
        mcpus = np.tile(np.asarray(busy, dtype=np.int64), maxlen)[valid].tolist()
        pairs = zip(merged, mcpus)

    hits_d = [0] * ncpu
    mem_d = [0] * ncpu
    pref_m = [0] * ncpu
    acc = hits = fills = used = evic = 0

    for enc, cpu in pairs:
        if enc >= 0:
            line = enc
            is_pref = False
        else:
            line = ~enc
            is_pref = True
        si = line & set_mask
        s = sets[si]
        acc += 1
        w = s.pop(line, None)
        if w is not None:
            hits += 1
            s[line] = w  # reinsert -> MRU
            if is_pref:
                continue
            slot = si * W + w
            if pref[slot]:
                pref[slot] = 0
                used += 1
            hits_d[cpu] += 1
            continue
        abits = abits_l[cpu]
        fm = free[si] & abits
        if fm:
            vw = (fm & -fm).bit_length() - 1
            free[si] ^= 1 << vw
            way_occ[vw] += 1
        else:
            if abits == full_bits:
                vw = s.pop(next(iter(s)))
            else:
                for victim, vw in s.items():
                    if abits >> vw & 1:
                        break
                del s[victim]
            slot = si * W + vw
            if pref[slot]:
                pref[slot] = 0
                evic += 1
        s[line] = vw
        if is_pref:
            pref[si * W + vw] = 1
            fills += 1
            pref_m[cpu] += 1
        else:
            mem_d[cpu] += 1

    st = llc.stats
    st.accesses += acc
    st.hits += hits
    st.pref_fills += fills
    st.pref_used += used
    st.pref_evicted_unused += evic

    line_bytes = float(machine.params.line_bytes)
    for cpu in busy:
        apply_llc_tail(
            counts[cpu], pmu_counts, cpu, hits_d[cpu], mem_d[cpu], pref_m[cpu], line_bytes
        )
    if profiling.ON:
        profiling.add("llc_serve", profiling.clock() - t0)


def apply_llc_tail(qc, pmu_counts, cpu, n_hit_d, n_mem_d, n_pref_fill, line_bytes) -> None:
    """Fold per-core LLC serve tallies into quantum counts and PMU rows.

    Shared by :func:`run_llc_phase` and the batch engine's grouped-LLC
    paths (:func:`repro.sim.batch.run_static_sweep`, lockstep machines)
    so the exact accumulation order — and therefore float64 bit-identity
    with the scalar engine — lives in one place.
    """
    qc.n_llc_hit_d += n_hit_d
    if n_mem_d:
        qc.n_mem_d += n_mem_d
        qc.demand_bytes += n_mem_d * line_bytes
        pmu_counts[cpu, Event.L3_LOAD_MISS] += n_mem_d
    if n_pref_fill:
        qc.pref_bytes += n_pref_fill * line_bytes
