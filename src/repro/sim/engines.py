"""Simulation-engine registry and selection.

Engines implement the machine's hot path.  Each is described by an
:class:`EngineSpec` in a process-wide registry:

* ``reference`` — the original per-access object-oriented kernel
  (:mod:`repro.sim.cache` + ``Machine._run_core_chunk_reference``).
  Simple, audited, and the semantic source of truth.
* ``fast`` — the scalar batched-chunk kernel (:mod:`repro.sim.fastcache`
  / :mod:`repro.sim.fastengine`): run-length-collapsed chunk pipeline,
  fused cache/prefetcher loops, vectorised LLC merge.  Differential
  tests assert it is bit-identical to ``reference``.
* ``batch`` — the multi-run batch kernel (:mod:`repro.sim.batch`): the
  fast kernel's core phase deduplicated across N runs of the same mix
  that share one zero-copy materialized trace.  Bit-identical to
  ``fast`` (and therefore to ``reference``); a ``Machine`` built with
  ``engine="batch"`` outside a batch group degrades to the scalar fast
  kernel (batch width 1 ≡ fast).
* ``native`` — the compiled kernel tier (:mod:`repro.sim.nativekernels`):
  Numba ``@njit(cache=True)`` fusions of the grouped LLC serve, the
  lockstep core advance, and the scalar set-lookup loop over an
  array-backed LRU layout.  Bit-identical to ``batch``/``fast``;
  degrades to them (with ``RunStats.native_fallbacks`` accounting) when
  numba is unavailable, JIT compilation fails, or
  ``$REPRO_NATIVE_KERNELS=off``.

Because every engine is pinned bit-identical, results never depend on
the engine choice and the experiment cache keys deliberately exclude it
(see ``PlannedRun.key_payload``).

Selection order: an explicit ``Machine(engine=...)`` argument beats
``MachineParams.sim_engine`` beats the ``REPRO_SIM_ENGINE`` environment
variable beats the default (``fast``).  All selection paths resolve
through :func:`resolve_engine`, which returns the full
:class:`EngineSpec`; unknown names raise :class:`EngineSelectionError`
listing the registered engines.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

ENGINE_REFERENCE = "reference"
ENGINE_FAST = "fast"
ENGINE_BATCH = "batch"
ENGINE_NATIVE = "native"
ENGINE_AUTO = "auto"

ENV_VAR = "REPRO_SIM_ENGINE"

DEFAULT_ENGINE = ENGINE_FAST


class EngineSelectionError(ValueError):
    """An engine name did not resolve against the registry.

    Subclasses :class:`ValueError` so pre-registry callers that caught
    ``ValueError`` keep working.
    """


@dataclass(frozen=True)
class EngineSpec:
    """Registered description of one simulation engine.

    ``kernel`` names the scalar kernel a ``Machine`` runs when built
    with this engine (``"reference"`` or ``"fast"``); ``batch_width``
    is the maximum number of runs one dispatch may advance together
    (1 = scalar-only).  ``capabilities`` is a free-form tag set used by
    the experiment layer (e.g. ``"multi-run"`` gates batch dispatch).
    """

    name: str
    kernel: str = ENGINE_FAST
    batch_width: int = 1
    description: str = ""
    capabilities: frozenset[str] = field(default_factory=frozenset)

    @property
    def batched(self) -> bool:
        return self.batch_width > 1

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.strip().lower():
            raise EngineSelectionError(
                f"engine name must be a lowercase identifier, got {self.name!r}"
            )
        if self.kernel not in (ENGINE_REFERENCE, ENGINE_FAST, ENGINE_NATIVE):
            raise EngineSelectionError(
                f"engine kernel must be {ENGINE_REFERENCE!r}, {ENGINE_FAST!r} "
                f"or {ENGINE_NATIVE!r}, got {self.kernel!r}"
            )
        if self.batch_width < 1:
            raise EngineSelectionError(
                f"engine batch_width must be >= 1, got {self.batch_width}"
            )


_REGISTRY: dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec, *, replace: bool = False) -> EngineSpec:
    """Add an engine to the registry; returns the spec for chaining."""
    if spec.name == ENGINE_AUTO:
        raise EngineSelectionError(f"{ENGINE_AUTO!r} is reserved for deferred selection")
    if spec.name in _REGISTRY and not replace:
        raise EngineSelectionError(
            f"engine {spec.name!r} is already registered (pass replace=True to override)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def available_engines() -> tuple[str, ...]:
    """Names of all registered engines, in registration order."""
    return tuple(_REGISTRY)


def get_engine(name: str) -> EngineSpec:
    """Look up a concrete engine name (no ``auto`` resolution)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EngineSelectionError(
            f"unknown simulation engine {name!r}; "
            f"registered engines: {available_engines() + (ENGINE_AUTO,)}"
        ) from None


def _auto_engine() -> str:
    """Pick the best engine: compiled tier when usable, else the default.

    Imported lazily — :mod:`repro.sim.nativekernels` pulls in the fast
    engine, which is only safe once this registry module is loaded.
    """
    from repro.sim import nativekernels

    if ENGINE_NATIVE in _REGISTRY and nativekernels.kernels_enabled():
        return ENGINE_NATIVE
    return DEFAULT_ENGINE


def resolve_engine(name: str | None = None) -> EngineSpec:
    """Resolve an engine name (or ``auto``/None/env var) to its spec."""
    n = (name or ENGINE_AUTO).strip().lower()
    if n == ENGINE_AUTO:
        n = os.environ.get(ENV_VAR, "").strip().lower() or _auto_engine()
    if n not in _REGISTRY:
        raise EngineSelectionError(
            f"unknown simulation engine {name!r} (resolved {n!r}); "
            f"one of {available_engines() + (ENGINE_AUTO,)}"
        )
    return _REGISTRY[n]


register_engine(
    EngineSpec(
        name=ENGINE_REFERENCE,
        kernel=ENGINE_REFERENCE,
        description="per-access object-oriented kernel; semantic source of truth",
    )
)
register_engine(
    EngineSpec(
        name=ENGINE_FAST,
        kernel=ENGINE_FAST,
        description="run-length-collapsed scalar chunk kernel, bit-identical to reference",
    )
)
register_engine(
    EngineSpec(
        name=ENGINE_BATCH,
        kernel=ENGINE_FAST,
        batch_width=64,
        capabilities=frozenset({"multi-run", "dynamic"}),
        description=(
            "multi-run lane-deduplicated kernel over a shared materialized "
            "trace, bit-identical to fast; 'dynamic' adds masked-lockstep "
            "batching of runs with divergent per-quantum policies; scalar "
            "fallback is the fast kernel"
        ),
    )
)
register_engine(
    EngineSpec(
        name=ENGINE_NATIVE,
        kernel=ENGINE_NATIVE,
        batch_width=64,
        capabilities=frozenset({"multi-run", "dynamic", "native"}),
        description=(
            "compiled (Numba) fused serve/advance kernels over flat SoA "
            "state, bit-identical to batch/fast; selected by 'auto' when "
            "numba imports and $REPRO_NATIVE_KERNELS != off, otherwise "
            "degrades to the pure-NumPy/dict paths with fallback accounting"
        ),
    )
)

# Legacy snapshot of the built-in engines (the live view is
# available_engines()); kept for importers of the pre-registry API.
ENGINES = available_engines()
