"""Simulation-engine selection.

Two engines implement the machine's hot path:

* ``reference`` — the original per-access object-oriented kernel
  (:mod:`repro.sim.cache` + ``Machine._run_core_chunk_reference``).
  Simple, audited, and the semantic source of truth.
* ``fast`` — the batched kernel (:mod:`repro.sim.fastcache` /
  :mod:`repro.sim.fastengine`): run-length-collapsed chunk pipeline,
  fused cache/prefetcher loops, vectorised LLC merge.  Differential
  tests assert it is bit-identical to ``reference`` (PMU counters,
  cache stats, IPC), so results never depend on the engine choice and
  the experiment cache keys deliberately exclude it.

Selection order: an explicit ``Machine(engine=...)`` argument beats
``MachineParams.sim_engine`` beats the ``REPRO_SIM_ENGINE`` environment
variable beats the default (``fast``).
"""

from __future__ import annotations

import os

ENGINE_REFERENCE = "reference"
ENGINE_FAST = "fast"
ENGINE_AUTO = "auto"

ENGINES = (ENGINE_REFERENCE, ENGINE_FAST)

ENV_VAR = "REPRO_SIM_ENGINE"

DEFAULT_ENGINE = ENGINE_FAST


def resolve_engine(name: str | None = None) -> str:
    """Resolve an engine name (or ``auto``/None) to a concrete engine."""
    n = (name or ENGINE_AUTO).strip().lower()
    if n == ENGINE_AUTO:
        n = os.environ.get(ENV_VAR, DEFAULT_ENGINE).strip().lower() or DEFAULT_ENGINE
    if n not in ENGINES:
        raise ValueError(
            f"unknown simulation engine {name!r} (resolved {n!r}); one of {ENGINES + (ENGINE_AUTO,)}"
        )
    return n
