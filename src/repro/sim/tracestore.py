"""Materialized trace plane: generate each deterministic trace once,
replay it everywhere as zero-copy array slices.

Every simulation run regenerates its benchmark traces from scratch
(:func:`repro.workloads.speclike.build_trace` + ``TraceGenerator``
chunk synthesis), even though a cold sweep asks for the *same* traces
over and over: every mechanism run of a mix re-synthesises the mix's
eight per-core streams, and a profile way-sweep rebuilds one benchmark
a dozen times.  This module materializes a trace once per
``(benchmark spec, llc_lines, base_line, seed)`` into a flat int64
``(2, length)`` array — row 0 the ctx ids, row 1 the line addresses —
and serves it back through :class:`MaterializedTrace`, which implements
the same ``chunk(n)`` protocol as a live generator but returns
**zero-copy views** into the materialized array.  ``Machine`` and
``fastengine`` are untouched; they cannot tell the difference.

Bit-identity rests on the generator's *chunk-alignment invariance*
(documented in :mod:`repro.sim.trace`): as long as every ``chunk(n)``
request is a multiple of the generator's ``burst_len`` (all practical
quantum/interval sizes are), the emitted stream depends only on the
cumulative position, not on how it was partitioned into chunks.  A
request that breaks alignment (or outruns the materialized length)
drops the trace back to a live generator, fast-forwarded to the exact
position — still bit-identical, just no longer zero-copy.

Storage tiers:

* **memory** — per-:class:`TraceStore` dict of materialized arrays;
* **disk** — mmap-backed ``.npy`` files plus JSON meta under
  ``<REPRO_CACHE_DIR>/tracestore/`` (atomic writes, content-addressed
  names, size-accounted by :meth:`TraceStore.stats`, wiped by
  :meth:`TraceStore.clear` / ``repro cache clear``);
* **shared memory** — the parent experiment process *publishes*
  segments (``multiprocessing.shared_memory``) that persistent pool
  workers attach by name instead of receiving arrays through pickle.
  Segments are parent-owned: the session that created them unlinks
  them on close (normal exit, ``KeyboardInterrupt`` via
  ``weakref.finalize``/atexit, and after worker crashes — a dead
  worker only ever *attached*).

The ``REPRO_TRACE_CACHE`` knob selects the mode: ``off`` disables the
plane entirely (every run synthesises live, the pre-plane behaviour),
``memory`` keeps materialized traces in-process only, and the default
(``1``/``on``/``disk``) adds the on-disk tier.  The trace plane is a
pure transport optimisation and is deliberately **excluded from
experiment cache keys**, exactly like the ``sim_engine`` selection.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import weakref
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.workloads.speclike import BenchmarkSpec, benchmark, build_trace

__all__ = [
    "TRACESTORE_SCHEMA_VERSION",
    "SHM_PREFIX",
    "MaterializedTrace",
    "TraceStore",
    "TraceStoreStats",
    "fallback_count",
    "trace_cache_mode",
    "trace_key",
    "active_view",
    "use_view",
    "ManifestView",
    "shm_residue",
]

#: Bump whenever the materialized layout or the generation recipe
#: changes; old disk entries then miss instead of replaying stale data.
TRACESTORE_SCHEMA_VERSION = 1

#: Prefix of every shared-memory segment the trace plane creates; the
#: leak checks (``repro.platform.faults.verify_no_segment_leaks``, the
#: chaos suite) scan ``/dev/shm`` for it.
SHM_PREFIX = "repro-tr-"

_MODES = ("off", "memory", "disk")


def trace_cache_mode(raw: str | None = None) -> str:
    """Resolve ``REPRO_TRACE_CACHE`` to ``off`` | ``memory`` | ``disk``.

    Unset, ``1``, ``on``, ``auto`` and ``disk`` all mean the full
    plane (memory + disk tiers); ``memory`` skips the disk tier;
    ``0``/``off``/``false``/``no`` disable materialization entirely.
    """
    if raw is None:
        raw = os.environ.get("REPRO_TRACE_CACHE", "")
    norm = raw.strip().lower()
    if norm in ("0", "off", "false", "no"):
        return "off"
    if norm in ("mem", "memory"):
        return "memory"
    if norm in ("", "1", "on", "auto", "disk", "true", "yes"):
        return "disk"
    raise ValueError(
        f"REPRO_TRACE_CACHE must be one of off/memory/disk (or a boolean), got {raw!r}"
    )


def trace_key(
    spec: BenchmarkSpec | str, *, llc_lines: int, base_line: int, seed: int
) -> str:
    """Content key of one materialized trace.

    Hashes the *full benchmark spec* (not just its name) so editing a
    registry entry invalidates its materializations, plus everything
    :func:`build_trace` consumes.  Length is deliberately not part of
    the key: a longer materialization of the same trace supersedes a
    shorter one (the stream is a deterministic prefix-extension).
    """
    if isinstance(spec, str):
        spec = benchmark(spec)
    payload = {
        "schema": TRACESTORE_SCHEMA_VERSION,
        "spec": asdict(spec),
        "llc_lines": int(llc_lines),
        "base_line": int(base_line),
        "seed": int(seed),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _round_up(n: int, align: int) -> int:
    return -(-int(n) // align) * align


class MaterializedTrace:
    """Replays a materialized ``(ctx, lines)`` array via ``chunk(n)``.

    Serves zero-copy views while every request keeps the cumulative
    position a multiple of ``align`` (the source generator's
    ``burst_len``) and inside the materialized length.  The first
    request that breaks either condition switches to a **live**
    generator built by ``factory`` and fast-forwarded to the current
    position — bit-identical output either way, so callers never need
    to care which side served them.  ``fallbacks`` counts the switch
    (0 or 1); tests pin it at 0 for the standard scales.
    """

    def __init__(
        self,
        ctx: np.ndarray,
        lines: np.ndarray,
        *,
        inst_per_mem: float,
        mlp: float,
        footprint: int,
        factory: Callable[[], object],
        align: int = 32,
    ) -> None:
        if len(ctx) != len(lines):
            raise ValueError("ctx and lines must be equal-length")
        self._ctx = ctx
        self._lines = lines
        self.inst_per_mem = float(inst_per_mem)
        self.mlp = float(mlp)
        self._footprint = int(footprint)
        self._factory = factory
        self._align = int(align)
        self._pos = 0
        self._live = None
        self.fallbacks = 0

    @property
    def length(self) -> int:
        return len(self._ctx)

    @property
    def pos(self) -> int:
        return self._pos

    def footprint_lines(self) -> int:
        return self._footprint

    def _go_live(self) -> None:
        global _PROCESS_FALLBACKS
        gen = self._factory()
        # All requests so far were align-multiples, so the position is
        # too — one aligned fast-forward call reproduces the internal
        # state any aligned chunk partition would have reached (see the
        # alignment invariance note in repro.sim.trace).
        if self._pos:
            gen.chunk(self._pos)
        self._live = gen
        self.fallbacks += 1
        _PROCESS_FALLBACKS += 1

    def fork(self, pos: int = 0) -> "MaterializedTrace":
        """Cheap clone sharing the materialized arrays, cursor at ``pos``.

        The batch kernel's lane forks: each lane replays the same
        zero-copy arrays through its own cursor.  ``pos`` must be a
        position a zero-copy replay actually reached (lane snapshots
        only record positions while ``_live is None``), so the clone's
        state is fully described by the cursor.
        """
        t = MaterializedTrace(
            self._ctx,
            self._lines,
            inst_per_mem=self.inst_per_mem,
            mlp=self.mlp,
            footprint=self._footprint,
            factory=self._factory,
            align=self._align,
        )
        t._pos = int(pos)
        return t

    def chunk(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        if self._live is None:
            if n % self._align == 0 and self._pos + n <= len(self._ctx):
                start, self._pos = self._pos, self._pos + n
                return self._ctx[start : self._pos], self._lines[start : self._pos]
            self._go_live()
        out = self._live.chunk(n)
        self._pos += n
        return out


# Process-wide count of MaterializedTrace zero-copy go-live fallbacks
# (every _go_live adds one).  Surfaced via fallback_count() /
# TraceStoreStats.fallbacks / `repro cache stats` so batch runs can
# assert the whole sweep stayed on the zero-copy path.
_PROCESS_FALLBACKS = 0


def fallback_count() -> int:
    """Zero-copy go-live fallbacks in this process (all traces, all stores)."""
    return _PROCESS_FALLBACKS


@dataclass(frozen=True)
class TraceStoreStats:
    """What a :class:`TraceStore`'s disk tier holds (plus live segments)."""

    root: Path | None
    entries: int
    bytes: int
    shm_segments: int
    shm_bytes: int
    #: process-wide go-live fallbacks at sampling time (see fallback_count)
    fallbacks: int = 0


@dataclass
class _Entry:
    ctx: np.ndarray
    lines: np.ndarray
    inst_per_mem: float
    mlp: float
    footprint: int
    align: int


class TraceStore:
    """Materialized-trace cache: memory tier, optional disk tier, and
    parent-owned shared-memory publication for pool workers.

    ``root`` is the disk-tier directory (conventionally
    ``<cache>/tracestore``); ``None`` keeps everything in memory.
    ``mode`` defaults to :func:`trace_cache_mode` (the
    ``REPRO_TRACE_CACHE`` env knob); a store in ``off`` mode returns
    ``None`` from :meth:`trace_for` so callers fall back to live
    generation.
    """

    _ids = iter(range(1, 1 << 62))

    def __init__(self, root: str | Path | None = None, *, mode: str | None = None) -> None:
        self.mode = trace_cache_mode() if mode is None else mode
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        self.root = Path(root).expanduser() if root is not None and self.mode == "disk" else None
        self._mem: dict[str, _Entry] = {}
        self._shm: dict[str, object] = {}  # key -> SharedMemory (parent-owned)
        #: Distinguishes this store's segments from any other store in
        #: this or another process, so concurrent sessions never fight
        #: over segment names and ownership stays unambiguous.
        self._tag = f"{os.getpid():x}-{next(TraceStore._ids):x}"
        # Guaranteed unlink on interpreter exit (including SIGINT →
        # KeyboardInterrupt) even when close() is never called; the
        # callback must not reference self or it would never fire.
        self._segments_finalizer = weakref.finalize(self, TraceStore._release, self._shm)

    # -- keys & lifecycle --------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def close(self) -> None:
        """Unlink every published segment; idempotent."""
        self._segments_finalizer()

    @staticmethod
    def _release(shm_map: dict[str, object]) -> None:
        for shm in shm_map.values():
            with contextlib.suppress(Exception):
                shm.close()
            with contextlib.suppress(Exception):
                shm.unlink()
        shm_map.clear()

    # -- disk tier ----------------------------------------------------

    def _data_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npy"

    def _meta_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _write_disk(self, key: str, stacked: np.ndarray, meta: dict) -> None:
        data_path = self._data_path(key)
        data_path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic like the result cache: a torn .npy must never be
        # visible under its final name.
        fd, tmp = tempfile.mkstemp(dir=data_path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                np.save(f, stacked)
            os.replace(tmp, data_path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        fd, tmp = tempfile.mkstemp(dir=data_path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(json.dumps(meta, sort_keys=True))
            os.replace(tmp, self._meta_path(key))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def _load_disk(self, key: str, min_length: int) -> _Entry | None:
        if self.root is None:
            return None
        meta_path = self._meta_path(key)
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if meta.get("schema") != TRACESTORE_SCHEMA_VERSION or meta.get("length", 0) < min_length:
            return None
        try:
            stacked = np.load(self._data_path(key), mmap_mode="r")
        except (OSError, ValueError):
            return None
        if stacked.shape != (2, meta["length"]) or stacked.dtype != np.int64:
            return None
        return _Entry(
            ctx=stacked[0],
            lines=stacked[1],
            inst_per_mem=meta["inst_per_mem"],
            mlp=meta["mlp"],
            footprint=meta["footprint"],
            align=meta["align"],
        )

    # -- materialization ---------------------------------------------

    def _entry_for(
        self, spec: BenchmarkSpec, *, llc_lines: int, base_line: int, seed: int, length: int
    ) -> tuple[str, _Entry]:
        key = trace_key(spec, llc_lines=llc_lines, base_line=base_line, seed=seed)
        entry = self._mem.get(key)
        if entry is not None and len(entry.ctx) >= length:
            return key, entry
        entry = self._load_disk(key, length)
        if entry is None:
            gen = build_trace(spec, llc_lines=llc_lines, base_line=base_line, seed=seed)
            n = _round_up(max(length, 1), gen.burst_len)
            ctx, lines = gen.chunk(n)
            stacked = np.stack([ctx, lines])
            entry = _Entry(
                ctx=stacked[0],
                lines=stacked[1],
                inst_per_mem=gen.inst_per_mem,
                mlp=gen.mlp,
                footprint=gen.footprint_lines(),
                align=gen.burst_len,
            )
            if self.root is not None:
                meta = {
                    "schema": TRACESTORE_SCHEMA_VERSION,
                    "bench": spec.name,
                    "length": n,
                    "inst_per_mem": entry.inst_per_mem,
                    "mlp": entry.mlp,
                    "footprint": entry.footprint,
                    "align": entry.align,
                }
                with contextlib.suppress(OSError):
                    self._write_disk(key, stacked, meta)
        self._mem[key] = entry
        # A longer materialization supersedes any published segment of
        # the shorter one only on the parent side; workers keep serving
        # the (still-correct) shorter prefix until it runs out.
        return key, entry

    def trace_for(
        self,
        spec: BenchmarkSpec | str,
        *,
        llc_lines: int,
        base_line: int,
        seed: int,
        length: int,
    ) -> MaterializedTrace | None:
        """A replayable trace covering ``length`` accesses, or ``None``
        when the plane is off (caller then builds a live generator)."""
        if not self.enabled:
            return None
        if isinstance(spec, str):
            spec = benchmark(spec)
        _key, entry = self._entry_for(
            spec, llc_lines=llc_lines, base_line=base_line, seed=seed, length=length
        )
        return _entry_trace(entry, spec, llc_lines, base_line, seed)

    # -- shared-memory publication (parent side) ---------------------

    def publish(
        self,
        spec: BenchmarkSpec | str,
        *,
        llc_lines: int,
        base_line: int,
        seed: int,
        length: int,
    ) -> dict | None:
        """Materialize + publish one trace; returns its manifest item.

        The manifest item is a plain JSON-able dict a pool worker turns
        back into a :class:`MaterializedTrace` by attaching the segment
        (see :class:`ManifestView`).  Returns ``None`` when the plane
        is off or shared memory is unavailable on this platform — the
        worker then falls back to live generation, which is always
        bit-identical.
        """
        if not self.enabled:
            return None
        if isinstance(spec, str):
            spec = benchmark(spec)
        key, entry = self._entry_for(
            spec, llc_lines=llc_lines, base_line=base_line, seed=seed, length=length
        )
        shm = self._shm.get(key)
        nbytes = 2 * len(entry.ctx) * 8
        if shm is None or shm.size < nbytes:
            try:
                from multiprocessing import shared_memory

                # The length rides in the name so a longer publish of
                # the same trace never collides with the (still-live)
                # shorter segment it supersedes.
                fresh = shared_memory.SharedMemory(
                    create=True,
                    size=nbytes,
                    name=f"{SHM_PREFIX}{self._tag}-{key[:16]}-{len(entry.ctx):x}",
                )
            except Exception:
                return None
            view = np.ndarray((2, len(entry.ctx)), dtype=np.int64, buffer=fresh.buf)
            view[0] = entry.ctx
            view[1] = entry.lines
            if shm is not None:  # superseded shorter segment
                with contextlib.suppress(Exception):
                    shm.close()
                with contextlib.suppress(Exception):
                    shm.unlink()
            self._shm[key] = shm = fresh
        return {
            "key": key,
            "shm": shm.name,
            "length": len(entry.ctx),
            "inst_per_mem": entry.inst_per_mem,
            "mlp": entry.mlp,
            "footprint": entry.footprint,
            "align": entry.align,
            "bench": spec.name,
            "llc_lines": int(llc_lines),
            "base_line": int(base_line),
            "seed": int(seed),
        }

    # -- accounting ---------------------------------------------------

    def stats(self) -> TraceStoreStats:
        entries = 0
        total = 0
        if self.root is not None and self.root.is_dir():
            for path in self.root.glob("*/*.npy"):
                entries += 1
                with contextlib.suppress(OSError):
                    total += path.stat().st_size
        elif self.root is None:
            entries = len(self._mem)
            total = sum(2 * len(e.ctx) * 8 for e in self._mem.values())
        shm_bytes = sum(getattr(s, "size", 0) for s in self._shm.values())
        return TraceStoreStats(
            self.root, entries, total, len(self._shm), shm_bytes, fallback_count()
        )

    def clear(self) -> int:
        """Drop the memory tier and every on-disk entry; returns entries removed."""
        removed = len(self._mem)
        self._mem.clear()
        if self.root is not None and self.root.is_dir():
            disk = list(self.root.glob("*/*.npy"))
            removed = max(removed, len(disk))
            for path in disk + list(self.root.glob("*/*.json")):
                path.unlink(missing_ok=True)
        return removed


def _entry_trace(
    entry: _Entry, spec: BenchmarkSpec, llc_lines: int, base_line: int, seed: int
) -> MaterializedTrace:
    def factory():
        return build_trace(spec, llc_lines=llc_lines, base_line=base_line, seed=seed)

    return MaterializedTrace(
        entry.ctx,
        entry.lines,
        inst_per_mem=entry.inst_per_mem,
        mlp=entry.mlp,
        footprint=entry.footprint,
        factory=factory,
        align=entry.align,
    )


# ------------------------------------------------- worker-side attach

#: name -> (SharedMemory, ndarray) attachments this process made, kept
#: for the life of the process: a persistent pool worker re-serving a
#: mix it has already mapped pays zero transport cost (the mix-affine
#: scheduling payoff).  Workers only ever attach — unlinking is the
#: publishing parent's job.
_ATTACHED: dict[str, tuple[object, np.ndarray]] = {}


def _attach(name: str, length: int) -> np.ndarray | None:
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[1]
    # Python < 3.13 registers every attach with the resource tracker,
    # which would (wrongly) warn about and unlink the parent-owned
    # segment — and, under the fork start method, the tracker process
    # is *shared* with the parent, so an attach/unregister pair from a
    # worker would erase the parent's own registration.  Suppress the
    # registration for the attach instead (the parent owns cleanup).
    try:
        from multiprocessing import resource_tracker, shared_memory

        register, resource_tracker.register = resource_tracker.register, lambda *a, **k: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = register
    except Exception:
        return None
    if shm.size < 2 * length * 8:
        with contextlib.suppress(Exception):
            shm.close()
        return None
    arr = np.ndarray((2, length), dtype=np.int64, buffer=shm.buf)
    _ATTACHED[name] = (shm, arr)
    return arr


class ManifestView:
    """Worker-side trace source: manifest items -> attached segments.

    The parent sends ``{trace_key: item}`` manifests with each planned
    run; this view resolves :meth:`trace_for` requests against them,
    attaching segments by name (cached process-wide).  Anything not in
    the manifest — or whose segment cannot be attached — returns
    ``None``, and the caller synthesises the trace live.
    """

    def __init__(self, items: dict[str, dict]) -> None:
        self._items = dict(items)

    def trace_for(
        self,
        spec: BenchmarkSpec | str,
        *,
        llc_lines: int,
        base_line: int,
        seed: int,
        length: int,
    ) -> MaterializedTrace | None:
        if isinstance(spec, str):
            spec = benchmark(spec)
        key = trace_key(spec, llc_lines=llc_lines, base_line=base_line, seed=seed)
        item = self._items.get(key)
        if item is None or item["length"] < length:
            return None
        arr = _attach(item["shm"], item["length"])
        if arr is None:
            return None
        entry = _Entry(
            ctx=arr[0],
            lines=arr[1],
            inst_per_mem=item["inst_per_mem"],
            mlp=item["mlp"],
            footprint=item["footprint"],
            align=item["align"],
        )
        return _entry_trace(entry, spec, llc_lines, base_line, seed)


# ------------------------------------------------- active-view plumbing

#: The trace source compute functions consult, set around each run by
#: the experiment engine: the session's TraceStore on the serial path,
#: a ManifestView inside pool workers, None when the plane is off.
_ACTIVE: TraceStore | ManifestView | None = None


def active_view() -> TraceStore | ManifestView | None:
    return _ACTIVE


@contextlib.contextmanager
def use_view(view: TraceStore | ManifestView | None) -> Iterator[None]:
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = view
    try:
        yield
    finally:
        _ACTIVE = prev


# ------------------------------------------------------ leak checking


def shm_residue(prefix: str = SHM_PREFIX) -> list[str]:
    """Names of trace-plane shared-memory segments still in ``/dev/shm``.

    Empty on platforms without a POSIX shm filesystem; the chaos suite
    asserts this is empty after every session lifecycle (normal close,
    interrupt, worker crash).
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    return sorted(p.name for p in shm_dir.iterdir() if p.name.startswith(prefix))
