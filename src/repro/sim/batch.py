"""Multi-run batch kernel: lane-deduplicated core phase over one trace.

The ``batch`` engine advances N independent runs of the *same workload
mix* while sharing the expensive half of the simulator between them.
The key observation is a strict layering in :class:`~repro.sim.machine.
Machine`'s quantum (DESIGN.md section 5): the **core phase** — trace
chunk through private L1/L2 with prefetcher triggering — depends only
on the core's trace, its prefetcher-mask history and the quantum
partition.  It never observes the LLC, CAT partitioning, DRAM or any
other core.  Runs that differ only in CAT masks (the paper's
partition-size sweeps) share *every* core phase; runs that diverge in
prefetcher masks share the common history prefix (e.g. the warmup all
mechanisms execute under the baseline configuration).

Instead of a structure-of-arrays with an explicit run axis, per-core
state is deduplicated behind **lanes**: a per-core tree whose edges are
keyed by ``(quantum_len, pf_mask)`` and store the core phase's entire
observable output for that quantum —

* the sign-encoded LLC request list (``line`` demand / ``~line``
  prefetch, exactly what :func:`repro.sim.fastengine.run_core_chunk`
  emits),
* the ``QuantumCounts`` fields the core phase sets (``n_access``,
  ``n_l2_hit_d``),
* the per-core PMU row delta (seven integral core events, exact in
  float64),
* the L1/L2 :class:`~repro.sim.cache.CacheStats` deltas, and
* the trace's ``inst_per_mem`` / ``mlp`` for the quantum.

The first run to take a ``(q, mask)`` step computes it with the
unmodified scalar fast kernel against live lane state (FastCache L1/L2,
prefetcher bank, a zero-copy fork of the shared
:class:`~repro.sim.tracestore.MaterializedTrace`); every later run
replays the recorded edge in O(1).  A :class:`LaneMachine` — a
:class:`Machine` whose ``_core_phase`` consumes lanes — then runs its
*own* LLC phase (private ``FastPartitionedCache`` + CAT) and timing
phase on those outputs.  Because the downstream phases are byte-for-
byte the scalar implementation fed byte-for-byte the scalar inputs
(integer deltas are exact in float64 and the merge order is replayed
verbatim), batch results are **bit-identical** to the scalar fast
engine, which is itself pinned bit-identical to ``reference``.

Lane state is snapshotted every :data:`SNAP_EVERY` trunk quanta (and at
divergence points), so a run forking off a shared prefix replays at
most ``SNAP_EVERY - 1`` quanta of kernel work to rebuild state.  Trace
snapshots record only the cursor position and are taken only while the
materialized replay is still zero-copy; if a trace ever goes live
(alignment fallback), that lane stops snapshotting and rebuilds replay
the recorded quantum partition faithfully — bit-identical either way,
with every fallback counted (see ``BatchKernel.trace_fallbacks``).

The round-robin LLC merge depends only on the request lists, not on
LLC/CAT state, so merges are also cached per unique lane-edge
combination (:func:`repro.sim.fastengine.merge_llc_requests`) and
shared across runs; the serve loop always executes against the
consuming machine's own LLC.

Masked lockstep (dynamic batching)
----------------------------------

Lane trees pay off while runs share history; once per-quantum policy
decisions diverge (PT throttling one run's prefetchers, CMM resizing
another's partition), every ``(q, mask)`` edge is unique and the tree
degrades to per-run scalar work.  :class:`GroupedCore` +
:class:`LockstepGroup` remove that cliff: all R runs of a mix advance
through the shared zero-copy trace *together*, one quantum at a time,
SIMT-style.  Private-core state lives in **lanes** again — but now a
lane is a *state-equality class across runs at the same trace
position*, not a shared history prefix.  Each step partitions a lane's
runs by their per-run prefetch mask (the divergence axis), clones the
live image per partition, advances each image once with the unmodified
scalar kernel, and re-merges lanes whose images become bitwise equal
again (order-sensitive dict comparison: CPython preserves insertion
order, which *is* the LRU/FIFO order the kernels evict by).  The LLC
side reuses :class:`GroupedLLC` with a per-run CAT allow tensor and a
``runs=`` subgroup axis, and the timing phase is the inherited scalar
``Machine._timing_phase`` fed per-run grouped-serve counters — the same
op-for-op replication :func:`run_static_sweep` pins.

:class:`LockstepGroup` drives R unmodified per-run controller loops
(each on its own :class:`LockstepMachine`, a ``Machine`` that parks at
every quantum boundary) from one scheduler thread, stepping the group
at the minimum ``(trace_pos, quantum)`` so ragged sampling schedules
stay correct.  Exactly one thread is ever runnable, so execution is
deterministic and bit-identical to running each controller on its own
scalar fast machine.  Any failure inside the lockstep plane raises
:class:`LockstepError`; callers fall back to per-run execution and
count a degradation (:func:`note_degradation`, surfaced as
``RunStats.batch_degradations``).
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

from repro.sim import fastengine, nativekernels, profiling
from repro.sim.cat import CatController
from repro.sim.core_model import QuantumCounts, solve_quantum
from repro.sim.engines import ENGINE_BATCH
from repro.sim.fastcache import FastCache
from repro.sim.machine import Machine
from repro.sim.memory import DramModel
from repro.sim.msr import MsrFile, PrefetchMsr, enables_from_mask
from repro.sim.params import MachineParams
from repro.sim.pmu import N_EVENTS, Event
from repro.sim.prefetcher import PrefetcherBank

__all__ = [
    "SNAP_EVERY",
    "BatchKernel",
    "GroupedCore",
    "GroupedLLC",
    "LaneMachine",
    "LockstepError",
    "LockstepGroup",
    "LockstepMachine",
    "StaticSweepRun",
    "degradation_count",
    "note_degradation",
    "run_static_sweep",
]

#: Trunk-snapshot period, in quanta.  Smaller = cheaper forks, more
#: copying on first-run trunks; 16 keeps snapshot overhead ~1/16 of a
#: dict-copy per quantum while bounding fork replay to 15 quanta.
SNAP_EVERY = 16

# Process-wide degradation tally, mirroring the trace plane's
# fallback counter idiom: every fork-to-scalar or unbatchable-group
# event is counted here (in addition to per-run attribution on the
# fallback machines) so `repro cache stats` can surface it.
_PROCESS_DEGRADATIONS = 0


def note_degradation(n: int = 1) -> None:
    """Record ``n`` batch-engine degradations (fallback to scalar)."""
    global _PROCESS_DEGRADATIONS
    _PROCESS_DEGRADATIONS += int(n)


def degradation_count() -> int:
    """Process-wide batch degradations recorded so far."""
    return _PROCESS_DEGRADATIONS


class LockstepError(RuntimeError):
    """A lockstep group cannot continue batched; run members per-run.

    Raised by :class:`LockstepGroup`/:class:`GroupedCore` whenever the
    batched plane hits a shape it cannot handle bit-identically (live
    traces needing a split, a member stalling, an internal failure).
    Callers catch it, count a degradation and re-run scalar — results
    are identical either way by construction.
    """


class _LockstepAbort(BaseException):
    """Unwinds a member thread past ``except Exception`` handlers.

    Derives from ``BaseException`` so controller-level recovery code
    (which catches ``Exception``/RECOVERABLE) cannot swallow the abort
    and keep driving a machine whose group is being torn down.
    """


class _LaneState:
    """Live private-core state a lane edge is computed against.

    Duck-types the ``l1``/``l2``/``bank``/``trace`` attributes of
    ``Machine``'s per-core state, which is all
    :func:`repro.sim.fastengine.run_core_chunk` touches.
    """

    __slots__ = ("l1", "l2", "bank", "trace", "mask_applied")

    def __init__(self, l1, l2, bank, trace, mask_applied=-1) -> None:
        self.l1 = l1
        self.l2 = l2
        self.bank = bank
        self.trace = trace
        self.mask_applied = mask_applied


class _LaneEdge:
    """One quantum's recorded core-phase output along a lane."""

    __slots__ = (
        "child",
        "llc_req",
        "n_access",
        "n_l2_hit_d",
        "pmu_row",
        "l1_stats",
        "l2_stats",
        "ipm",
        "mlp",
    )


def _fresh_bank(p: MachineParams) -> PrefetcherBank:
    return PrefetcherBank(
        stride_table=p.stride_table_entries,
        stride_degree=p.stride_degree,
        stride_confidence=p.stride_confidence,
        streamer_pages=p.streamer_table_pages,
        streamer_degree=p.streamer_degree,
    )


def _clone_image(params: MachineParams, st, trace):
    """Deep-copy a lane image's private-core state onto a given trace fork."""
    if isinstance(st, nativekernels.NativeLaneState):
        return nativekernels.clone_lane_state(st, trace)
    l1 = FastCache(params.l1)
    l1._sets = [dict(s) for s in st.l1._sets]
    l2 = FastCache(params.l2)
    l2._sets = [dict(s) for s in st.l2._sets]
    bank = _fresh_bank(params)
    bank.set_enables(
        stride=st.bank.en_stride,
        next_line=st.bank.en_next_line,
        streamer=st.bank.en_streamer,
        adjacent=st.bank.en_adjacent,
    )
    bank.ip_stride._table = {k: v[:] for k, v in st.bank.ip_stride._table.items()}
    bank.streamer._table = {k: v[:] for k, v in st.bank.streamer._table.items()}
    return _LaneState(l1, l2, bank, trace, st.mask_applied)


def _advance_image(st: _LaneState, q: int, mask: int, scratch):
    """Advance a lane image one quantum under ``mask``; return the outputs.

    The single scalar-kernel entry point shared by the lane trees and
    :class:`GroupedCore`: applies the mask exactly like the scalar
    machine's ``_sync_prefetchers`` (latched, decode on change only),
    zeroes the per-quantum stats windows and runs the unmodified
    :func:`repro.sim.fastengine.run_core_chunk`.
    """
    if mask != st.mask_applied:
        en = enables_from_mask(mask)
        st.bank.set_enables(
            stride=en["stride"],
            next_line=en["next_line"],
            streamer=en["streamer"],
            adjacent=en["adjacent"],
        )
        st.mask_applied = mask
    ipm = st.trace.inst_per_mem
    mlp = st.trace.mlp
    s1, s2 = st.l1.stats, st.l2.stats
    s1.accesses = s1.hits = s1.pref_fills = s1.pref_used = s1.pref_evicted_unused = 0
    s2.accesses = s2.hits = s2.pref_fills = s2.pref_used = s2.pref_evicted_unused = 0
    scratch[:] = 0.0
    qc = QuantumCounts()
    llc_req: list[int] = []
    if isinstance(st, nativekernels.NativeLaneState):
        nativekernels.run_core_chunk_native(0, st, q, qc, llc_req, scratch)
    else:
        fastengine.run_core_chunk(0, st, q, qc, llc_req, scratch)
    return qc, llc_req, scratch[0].copy(), ipm, mlp


def _fill_edge(st: _LaneState, qc, llc_req, pmu_row, ipm, mlp) -> "_LaneEdge":
    """Package one quantum's core-phase outputs as a lane edge."""
    edge = _LaneEdge()
    edge.child = None
    edge.llc_req = llc_req
    edge.n_access = qc.n_access
    edge.n_l2_hit_d = qc.n_l2_hit_d
    edge.pmu_row = pmu_row
    edge.l1_stats = (
        st.l1.stats.accesses,
        st.l1.stats.hits,
        st.l1.stats.pref_fills,
        st.l1.stats.pref_used,
        st.l1.stats.pref_evicted_unused,
    )
    edge.l2_stats = (
        st.l2.stats.accesses,
        st.l2.stats.hits,
        st.l2.stats.pref_fills,
        st.l2.stats.pref_used,
        st.l2.stats.pref_evicted_unused,
    )
    edge.ipm = ipm
    edge.mlp = mlp
    return edge


def _images_equal(a, b) -> bool:
    """Behavioural equality of two lane images at the same trace position.

    Order-sensitive: dict insertion order is the caches' LRU order and
    the prefetcher tables' FIFO order, so content equality alone is not
    enough.  ``mask_applied`` and the bank enable flags are deliberately
    ignored — merged lanes only ever advance under an explicitly
    supplied mask, and :func:`_advance_image` re-applies it (and
    ``set_enables`` writes flags only, no table side effects), so two
    images that differ solely in latched mask behave identically from
    here on.  Live traces never compare equal: their replay is
    position-dependent in ways a merged fork cannot reproduce.
    """
    if isinstance(a, nativekernels.NativeLaneState) or isinstance(
        b, nativekernels.NativeLaneState
    ):
        return nativekernels.images_equal(a, b)
    if a.trace._live is not None or b.trace._live is not None:
        return False
    if a.trace.pos != b.trace.pos:
        return False
    t1, t2 = a.bank.ip_stride._table, b.bank.ip_stride._table
    if t1 != t2 or list(t1) != list(t2):
        return False
    t1, t2 = a.bank.streamer._table, b.bank.streamer._table
    if t1 != t2 or list(t1) != list(t2):
        return False
    return a.l1.state_equal(b.l1) and a.l2.state_equal(b.l2)


class _LaneNode:
    """A point in a core's (quantum, mask) history tree."""

    __slots__ = ("parent", "key", "edges", "snapshot", "depth")

    def __init__(self, parent=None, key=None) -> None:
        self.parent = parent
        self.key = key  # (q, mask) edge taken from parent to reach here
        self.edges: dict[tuple[int, int], _LaneEdge] = {}
        self.snapshot: _LaneState | None = None
        self.depth = 0 if parent is None else parent.depth + 1


class _LaneTree:
    """All recorded histories of one core across the batch's runs."""

    def __init__(self, params: MachineParams, base_trace) -> None:
        self.params = params
        self.base_trace = base_trace
        self.root = _LaneNode()
        # Strong refs to every trace fork so fallbacks stay countable
        # even after a hot state is dropped (forks are tiny views).
        self.forks: list = []
        self._scratch = np.zeros((1, N_EVENTS), dtype=np.float64)

    # -- state management --------------------------------------------

    def _fork_trace(self, pos: int):
        t = self.base_trace.fork(pos)
        self.forks.append(t)
        return t

    def _fresh_state(self) -> _LaneState:
        p = self.params
        if nativekernels.kernels_enabled():
            return nativekernels.fresh_lane_state(p, self._fork_trace(0))
        return _LaneState(FastCache(p.l1), FastCache(p.l2), _fresh_bank(p), self._fork_trace(0))

    def _clone_state(self, st: _LaneState) -> _LaneState:
        return _clone_image(self.params, st, self._fork_trace(st.trace.pos))

    def _state_at(self, node: _LaneNode) -> _LaneState:
        """Rebuild live state for ``node``: nearest snapshot + replay."""
        path: list[tuple[int, int]] = []
        anchor = node
        while anchor.parent is not None and anchor.snapshot is None:
            path.append(anchor.key)
            anchor = anchor.parent
        st = self._clone_state(anchor.snapshot) if anchor.snapshot else self._fresh_state()
        for q, mask in reversed(path):
            self._run_kernel(st, q, mask)
        return st

    # -- kernel -------------------------------------------------------

    def _run_kernel(self, st: _LaneState, q: int, mask: int):
        """Advance ``st`` by one quantum under ``mask``; return outputs."""
        return _advance_image(st, q, mask, self._scratch)

    def step(self, cursor: "_LaneCursor", q: int, mask: int) -> _LaneEdge:
        """Advance a run's cursor one quantum, computing the edge once."""
        node = cursor.node
        key = (q, mask)
        edge = node.edges.get(key)
        if edge is not None:
            # Replay: the cursor's hot state (if any) is now stale.
            if cursor.state is not None:
                cursor.state = None
            cursor.node = edge.child
            return edge
        st = cursor.state
        if st is None:
            st = self._state_at(node)
        if node.edges and node.snapshot is None and st.trace._live is None:
            # Second+ divergence from this node: pin a snapshot so the
            # remaining siblings fork from here instead of replaying.
            node.snapshot = self._clone_state(st)
        qc, llc_req, pmu_row, ipm, mlp = self._run_kernel(st, q, mask)
        edge = _fill_edge(st, qc, llc_req, pmu_row, ipm, mlp)
        child = _LaneNode(node, key)
        edge.child = child
        node.edges[key] = edge
        if child.depth % SNAP_EVERY == 0 and st.trace._live is None:
            child.snapshot = self._clone_state(st)
        cursor.node = child
        cursor.state = st
        return edge

    def occupancy(self, cursor: "_LaneCursor") -> tuple[int, int]:
        """(L1, L2) line occupancy of the cursor's current lane state."""
        st = cursor.state if cursor.state is not None else self._state_at(cursor.node)
        return st.l1.occupancy(), st.l2.occupancy()

    def trace_fallbacks(self) -> int:
        return sum(t.fallbacks for t in self.forks)


class _LaneCursor:
    """One run's position in one core's lane tree."""

    __slots__ = ("tree", "node", "state")

    def __init__(self, tree: _LaneTree) -> None:
        self.tree = tree
        self.node = tree.root
        self.state: _LaneState | None = None


#: Larger than any LRU stamp; masks disallowed/empty ways out of the
#: vectorised victim argmin.
_TS_INF = np.int64(np.iinfo(np.int64).max)


class _PreparedStream:
    """A merged LLC request stream decoded into NumPy columns.

    ``rounds`` partitions the stream by *occurrence rank within each
    set*: round ``r`` holds every request that is the ``r``-th access
    to its LLC set.  Within a round all sets are distinct, so the
    requests touch disjoint state and the grouped serve can process a
    whole round — for every run at once — with one batch of array
    operations.  Processing rounds in rank order preserves the scalar
    serve exactly: requests to different sets never interact (LRU
    order, victim choice and counters are all per-set) and each
    request carries its absolute stream position as its LRU stamp, so
    only the relative order of same-set requests matters — which rank
    order keeps by construction.
    """

    __slots__ = (
        "n", "line", "si", "is_pref", "demand", "prepared",
        "cpu_col", "cpu_perm", "cpu_starts", "cpu_ids", "seg_ids", "rounds",
        "_blk", "_blk_cores",
    )

    def __init__(self, merged, mcpus, set_mask: int) -> None:
        enc = np.asarray(merged, dtype=np.int64)
        self.n = len(enc)
        is_pref = enc < 0
        line = np.where(is_pref, ~enc, enc)
        self.line = line
        self.si = line & set_mask
        self.is_pref = is_pref
        self.demand = ~is_pref
        self.cpu_col = np.asarray(mcpus, dtype=np.int64)
        # The sort-heavy reduction/round structures are built on first
        # serve: streams that only ever feed a multi-quantum concat
        # never need their own (the concat builds one for the span).
        self.prepared = False
        self._blk = None
        self._blk_cores = None

    def prepare(self) -> "_PreparedStream":
        if not self.prepared:
            if self._blk is not None:
                self._finish(self._blk, self._blk_cores)
            else:
                self._finish(self.cpu_col, None)
        return self

    def stat_blocks(self):
        """Each request's stat-block column (``segment*C + cpu`` or ``cpu``).

        Available without :meth:`prepare` — the native serve reduces
        into dense block counters in-kernel and never needs the
        sort-heavy round/reduction structures.
        """
        return self._blk if self._blk is not None else self.cpu_col

    @classmethod
    def concat(cls, streams: list["_PreparedStream"], n_cores: int) -> "_PreparedStream":
        """Concatenate per-quantum streams into one multi-segment stream.

        Requests keep their order, so occurrence ranks — and therefore
        the serve's per-set replay order and absolute LRU stamps — are
        exactly those of serving the quanta back to back.  Stats reduce
        over ``(segment, cpu)`` blocks instead of cpus, letting the
        caller recover per-quantum counters from a single serve.
        """
        self = cls.__new__(cls)
        self.n = sum(s.n for s in streams)
        self.line = np.concatenate([s.line for s in streams])
        self.si = np.concatenate([s.si for s in streams])
        self.is_pref = np.concatenate([s.is_pref for s in streams])
        self.demand = np.concatenate([s.demand for s in streams])
        self.cpu_col = np.concatenate([s.cpu_col for s in streams])
        seg = np.repeat(
            np.arange(len(streams), dtype=np.int64),
            [s.n for s in streams],
        )
        # Deferred like __init__: the native serve consumes the block
        # column directly and skips _finish entirely.
        self.prepared = False
        self._blk = seg * n_cores + self.cpu_col
        self._blk_cores = n_cores
        return self

    def _finish(self, blk, n_cores) -> None:
        """Build stat-reduction blocks and occurrence-rank rounds."""
        t0 = profiling.clock() if profiling.ON else 0.0
        self.prepared = True
        perm = np.argsort(blk, kind="stable")
        sb = blk[perm]
        if self.n:
            starts = np.flatnonzero(np.r_[True, sb[1:] != sb[:-1]])
        else:
            starts = np.empty(0, dtype=np.int64)
        self.cpu_perm = perm
        self.cpu_starts = starts
        ids = sb[starts]
        if n_cores is None:
            self.cpu_ids = ids
            self.seg_ids = None
        else:
            self.cpu_ids = ids % n_cores
            self.seg_ids = ids // n_cores
        if self.n:
            order = np.argsort(self.si, kind="stable")
            ss = self.si[order]
            newgrp = np.empty(self.n, dtype=bool)
            newgrp[0] = True
            np.not_equal(ss[1:], ss[:-1], out=newgrp[1:])
            idx = np.arange(self.n, dtype=np.int64)
            ranks = idx - np.maximum.accumulate(np.where(newgrp, idx, 0))
            by_rank = np.argsort(ranks, kind="stable")
            counts = np.bincount(ranks[by_rank])
            self.rounds = [
                (ids_r, self.si[ids_r], self.line[ids_r], self.is_pref[ids_r])
                for ids_r in np.split(order[by_rank], np.cumsum(counts)[:-1])
            ]
        else:
            self.rounds = []
        if profiling.ON:
            profiling.add("merge", profiling.clock() - t0)


class GroupedLLC:
    """R independent LLC images in structure-of-arrays layout.

    The run axis leads: ``tags``/``stamps``/``pref`` are ``(runs, sets,
    ways)`` arrays holding every run's way-partitioned LLC at once, so
    one pass over a shared merged request stream advances all runs
    together.  Bit-identical mapping onto
    :class:`~repro.sim.fastcache.FastPartitionedCache`'s dict sets:

    * dict order is last-touch order (hits pop + reinsert), so "first
      entry" == minimum LRU stamp; ``stamps`` hold each way's last
      touch as its global stream position.
    * the free-way bitmask tracks never-filled ways, so ``tags == -1``
      is exactly "free"; the scalar picks the lowest set bit of
      ``free & abits`` and ``argmax`` over a boolean way axis picks the
      same lowest allowed free way.
    * the victim when no allowed way is free is the min-stamp valid way
      among the allowed ways — which is also ``next(iter(set))`` when
      the partition spans every way, because a set with no free way has
      all ways valid.

    Every request touches exactly one way per run (hits refresh the hit
    way, misses fill the chosen way), so each segment needs a single
    scatter per state array.
    """

    def __init__(self, geometry, n_runs: int) -> None:
        self.geometry = geometry
        self.n_runs = n_runs
        shape = (n_runs, geometry.sets, geometry.ways)
        self.tags = np.full(shape, -1, dtype=np.int64)
        self.stamps = np.zeros(shape, dtype=np.int64)
        self.pref = np.zeros(shape, dtype=np.uint8)
        self._seq = 1
        # Free (never-filled) lines left per run; fills only consume
        # free ways, so zero here means the free-way search is dead.
        self.free_lines = np.full(n_runs, geometry.sets * geometry.ways, dtype=np.int64)
        # Per-run count of free lines currently *allowed* (union over
        # cores), keyed by the allow matrix it was computed against —
        # CAT flips invalidate the entry.  A CAT-partitioned run never
        # fills its disallowed ways, so ``free_lines`` stays positive
        # forever; this refinement still lets the serve skip the
        # free-way search once nothing free is reachable.
        self._af: dict[int, list] = {}
        # CacheStats mirror, all per run (lockstep subgroups may serve
        # different runs different stream lengths).
        self.accesses = np.zeros(n_runs, dtype=np.int64)
        self.hits = np.zeros(n_runs, dtype=np.int64)
        self.pref_fills = np.zeros(n_runs, dtype=np.int64)
        self.pref_used = np.zeros(n_runs, dtype=np.int64)
        self.pref_evicted_unused = np.zeros(n_runs, dtype=np.int64)

    def stats_for(self, run: int) -> tuple[int, int, int, int, int]:
        """One run's ``CacheStats`` tuple (accesses, hits, fills, used, evicted)."""
        return (
            int(self.accesses[run]),
            int(self.hits[run]),
            int(self.pref_fills[run]),
            int(self.pref_used[run]),
            int(self.pref_evicted_unused[run]),
        )

    def occupancy(self, run: int) -> int:
        return int((self.tags[run] != -1).sum())

    def _allowed_free(self, run: int, allowed) -> int:
        """Count free lines reachable under ``run``'s current allow row.

        Cached against the row's bytes: CAT flips invalidate the entry,
        free fills decrement it in :meth:`serve`, so the recompute (a
        full-image scan) only happens after a partition change.
        """
        b = allowed[run].tobytes()
        ent = self._af.get(run)
        if ent is None or ent[0] != b:
            if self.free_lines[run]:
                cnt = int(((self.tags[run] == -1) & allowed[run].any(axis=0)).sum())
            else:
                cnt = 0
            ent = [b, cnt]
            self._af[run] = ent
        return ent[1]

    def _dedup_classes(self, run_idx, allowed):
        """Partition subgroup runs into bitwise-identical serve classes.

        Two runs land in one class when their CAT allow rows and full
        LLC images match — an identical stream then produces identical
        outcomes, so only the class representative needs serving.
        Returns ``(reps, class_idx, dups)``: representative positions
        into ``run_idx``, each position's class number, and
        ``(duplicate_run, representative_run)`` pairs.
        """
        reps: list[int] = []
        class_idx = np.empty(len(run_idx), dtype=np.int64)
        dups: list[tuple[int, int]] = []
        for i, run in enumerate(run_idx):
            r = int(run)
            for ci, pi in enumerate(reps):
                p = int(run_idx[pi])
                if (
                    np.array_equal(allowed[r], allowed[p])
                    and np.array_equal(self.tags[r], self.tags[p])
                    and np.array_equal(self.stamps[r], self.stamps[p])
                    and np.array_equal(self.pref[r], self.pref[p])
                ):
                    class_idx[i] = ci
                    dups.append((r, p))
                    break
            else:
                class_idx[i] = len(reps)
                reps.append(i)
        return np.asarray(reps, dtype=np.int64), class_idx, dups

    def serve(self, stream: _PreparedStream, allowed, hits_d, mem_d, pref_m, runs=None) -> None:
        """Serve one quantum's merged stream for every run at once.

        ``allowed`` is the ``(n_runs, cpus, ways)`` boolean CAT matrix;
        ``hits_d``/``mem_d``/``pref_m`` are ``(R, cpus)`` int64
        accumulators for demand hits, demand fills and prefetch fills —
        the per-core counters the scalar serve loop tracks.  ``runs``
        restricts the serve to a subgroup of run indices (the lockstep
        scheduler serves each unique stream shape to exactly the runs
        that produced it); accumulator rows align with ``runs`` order.
        Defaults to all runs.

        The subgroup path dedups the run axis too: runs whose LLC
        image (tags/stamps/pref) and CAT allow row are bitwise equal
        see identical outcomes for an identical stream, so only one
        representative per equality class is served; duplicates get
        the representative's stats and a copy of the touched sets.
        """
        tags, stamps, pref = self.tags, self.stamps, self.pref
        S = self.geometry.sets
        W = self.geometry.ways
        n = stream.n
        full = runs is None
        if full:
            run_idx = np.arange(self.n_runs, dtype=np.int64)
            stat_idx = run_idx
            class_idx = None
            dups: list[tuple[int, int]] = []
        else:
            stat_idx = np.asarray(runs, dtype=np.int64)
            reps, class_idx, dups = self._dedup_classes(stat_idx, allowed)
            run_idx = stat_idx[reps]
        R = len(run_idx)
        # Fills only ever consume free ways, never create them, so once
        # a run's LLC is full the free-way search can be skipped: every
        # miss takes the LRU victim among the allowed ways.  A run with
        # CAT keeps its disallowed ways unfilled forever, so the gate
        # counts free lines *reachable* under the current allow rows —
        # invalid entries only shrink and ``allowed`` is fixed for the
        # whole serve, so the condition holds for every round.  The
        # loop deliberately touches every rep so each has a fresh
        # ``_af`` entry for the decrement and duplicate copies below.
        all_full = True
        for r in run_idx:
            if self._allowed_free(int(r), allowed):
                all_full = False
        if n and nativekernels.kernels_enabled():
            # Compiled tier: one fused kernel pass, no round structures.
            # A kernel failure mid-serve cannot fall through (state may
            # be partially mutated), so it sticky-disables the tier and
            # propagates; the callers' existing degradation paths rerun
            # the affected runs on fresh pure-path machines.
            try:
                self._serve_native(
                    stream, allowed, hits_d, mem_d, pref_m,
                    run_idx, stat_idx, class_idx, dups,
                )
                return
            except Exception as e:
                nativekernels.note_native_fallback()
                nativekernels.disable_runtime(f"grouped LLC serve kernel failed: {e!r}")
                raise
        stream.prepare()
        t0 = profiling.clock() if profiling.ON else 0.0
        tags_f = tags.reshape(self.n_runs * S * W)
        stamps_f = stamps.reshape(self.n_runs * S * W)
        pref_f = pref.reshape(self.n_runs * S * W)
        run_off = (run_idx * S * W)[:, None]
        rsel = run_idx[:, None]
        seqs = np.arange(self._seq, self._seq + n, dtype=np.int64)
        # Per-request outcome columns, reduced to stats once per quantum.
        H = np.empty((R, n), dtype=bool)  # hit?
        OP = np.empty((R, n), dtype=bool)  # touched way's pref bit was set?
        OV = np.empty((R, n), dtype=bool)  # touched way held a valid line?
        # One (runs, requests, ways) CAT gather per quantum, deferred
        # to the first round that actually misses; rounds index into it
        # instead of re-gathering.
        allow_q = None
        free_dec = None
        # When every served run allows every way (non-CAT mechanisms),
        # the allow mask is the identity and its gathers/wheres vanish.
        allow_trivial = bool(allowed[run_idx].all())
        for ids, si, line, ispf_r in stream.rounds:
            sub_t = tags[:, si, :] if full else tags[rsel, si]  # (R, k, W)
            hit = sub_t == line[None, :, None]
            way = hit.argmax(axis=2)
            # The argmax way is a hit way iff any way hit — one small
            # gather instead of a second full reduction over ways.
            hit_any = np.take_along_axis(hit, way[:, :, None], axis=2)[:, :, 0]
            if hit_any.all():
                # A touched way on a hit always holds a valid line.
                OV[:, ids] = True
            else:
                if allow_trivial:
                    allow = None
                else:
                    if allow_q is None:
                        if full:
                            allow_q = allowed[:, stream.cpu_col, :]
                        else:
                            allow_q = allowed[rsel, stream.cpu_col]
                    allow = allow_q[:, ids, :]  # (R, k, W)
                if all_full:
                    sub_s = stamps[:, si, :] if full else stamps[rsel, si]
                    if allow is None:
                        vic = sub_s.argmin(axis=2)
                    else:
                        vic = np.where(allow, sub_s, _TS_INF).argmin(axis=2)
                    way = np.where(hit_any, way, vic)
                    # Hits touch a valid line, victims evict one.
                    OV[:, ids] = True
                else:
                    invalid = sub_t == -1
                    freem = invalid if allow is None else invalid & allow
                    have_free = freem.any(axis=2)
                    wmiss = freem.argmax(axis=2)
                    need_vic = ~(hit_any | have_free)
                    if need_vic.any():
                        sub_s = stamps[:, si, :] if full else stamps[rsel, si]
                        valid_ok = ~freem if allow is None else allow ^ freem
                        vic = np.where(valid_ok, sub_s, _TS_INF).argmin(axis=2)
                        wmiss = np.where(have_free, wmiss, vic)
                    way = np.where(hit_any, way, wmiss)
                    # Valid unless the miss filled a free (invalid) way:
                    # hits touch a valid line, victims evict one.
                    OV[:, ids] = hit_any | ~have_free
                    if free_dec is None:
                        free_dec = np.zeros(R, dtype=np.int64)
                    free_dec += (~hit_any & have_free).sum(axis=1)
            flat = run_off + (si * W + way)  # (R, k)
            old_p = pref_f[flat]
            is_pref_r = ispf_r[None, :]
            H[:, ids] = hit_any
            OP[:, ids] = old_p
            # Hits keep the bit on prefetch touches and clear it on
            # demand; fills set it iff the fill is a prefetch.
            new_p = np.where(hit_any, old_p & is_pref_r, is_pref_r)
            tags_f[flat] = line[None, :]
            stamps_f[flat] = seqs[ids][None, :]
            pref_f[flat] = new_p
        if free_dec is not None:
            self.free_lines[run_idx] -= free_dec
            for pos, r in enumerate(run_idx):
                self._af[int(r)][1] -= int(free_dec[pos])
        if dups:
            # Duplicates evolve identically to their representative for
            # this stream; only the touched sets changed.
            usets = np.unique(stream.si)
            for dup, rep in dups:
                tags[dup, usets] = tags[rep, usets]
                stamps[dup, usets] = stamps[rep, usets]
                pref[dup, usets] = pref[rep, usets]
                self.free_lines[dup] = self.free_lines[rep]
                ent = self._af[rep]
                self._af[dup] = [ent[0], ent[1]]
        dem = stream.demand[None, :]
        ispf = stream.is_pref[None, :]
        M = ~H
        fillm = M & ispf
        hit_v = H.sum(axis=1)
        used_v = (H & dem & OP).sum(axis=1)
        evic_v = (M & OV & OP).sum(axis=1)
        fill_v = fillm.sum(axis=1)
        if class_idx is not None:
            hit_v = hit_v[class_idx]
            used_v = used_v[class_idx]
            evic_v = evic_v[class_idx]
            fill_v = fill_v[class_idx]
        self.hits[stat_idx] += hit_v
        self.pref_used[stat_idx] += used_v
        self.pref_evicted_unused[stat_idx] += evic_v
        self.pref_fills[stat_idx] += fill_v
        # Per-(run, core) reductions in one pass: permute request
        # columns into contiguous per-core blocks, then segment-sum.
        if n:
            dh = H & dem
            dm = M & dem
            P = stream.cpu_perm
            st = stream.cpu_starts
            hv = np.add.reduceat(dh[:, P].astype(np.int32), st, axis=1)
            mv = np.add.reduceat(dm[:, P].astype(np.int32), st, axis=1)
            fv = np.add.reduceat(fillm[:, P].astype(np.int32), st, axis=1)
            if class_idx is not None:
                hv = hv[class_idx]
                mv = mv[class_idx]
                fv = fv[class_idx]
            if stream.seg_ids is None:
                hits_d[:, stream.cpu_ids] += hv
                mem_d[:, stream.cpu_ids] += mv
                pref_m[:, stream.cpu_ids] += fv
            else:
                # Multi-quantum stream: accumulators carry a segment
                # axis so each quantum's counters come back separately.
                hits_d[:, stream.seg_ids, stream.cpu_ids] += hv
                mem_d[:, stream.seg_ids, stream.cpu_ids] += mv
                pref_m[:, stream.seg_ids, stream.cpu_ids] += fv
        self._seq += n
        self.accesses[stat_idx] += n
        if profiling.ON:
            profiling.add("llc_serve", profiling.clock() - t0)

    def _serve_native(
        self, stream, allowed, hits_d, mem_d, pref_m, run_idx, stat_idx, class_idx, dups
    ) -> None:
        """Compiled-tier serve: one :data:`~repro.sim.nativekernels.
        K_SERVE_LLC` dispatch over the flat SoA arrays.

        Consumes the raw stream columns plus :meth:`_PreparedStream.
        stat_blocks` — the sort-heavy round/permutation structures are
        never built.  The kernel reduces stats and dense per-block
        demand-hit/fill counters in place of the NumPy path's
        ``reduceat``; everything downstream (free-line bookkeeping,
        duplicate copies, class expansion, accumulator writes) matches
        the NumPy path op-for-op so results stay bit-identical.
        """
        n = stream.n
        S = self.geometry.sets
        W = self.geometry.ways
        C = allowed.shape[1]
        n_blocks = hits_d[0].size
        stats_out, dh, dm, dp = nativekernels.serve_llc_arrays(
            self.tags.reshape(-1),
            self.stamps.reshape(-1),
            self.pref.reshape(-1),
            S,
            W,
            run_idx,
            np.ascontiguousarray(allowed).view(np.uint8).reshape(-1),
            C,
            stream.line,
            stream.si,
            stream.is_pref.view(np.uint8),
            stream.stat_blocks(),
            stream.cpu_col,
            self._seq,
            n_blocks,
        )
        free_dec = stats_out[:, 4]
        if free_dec.any():
            self.free_lines[run_idx] -= free_dec
            for pos, r in enumerate(run_idx):
                self._af[int(r)][1] -= int(free_dec[pos])
        if dups:
            tags, stamps, pref = self.tags, self.stamps, self.pref
            usets = np.unique(stream.si)
            for dup, rep in dups:
                tags[dup, usets] = tags[rep, usets]
                stamps[dup, usets] = stamps[rep, usets]
                pref[dup, usets] = pref[rep, usets]
                self.free_lines[dup] = self.free_lines[rep]
                ent = self._af[rep]
                self._af[dup] = [ent[0], ent[1]]
        hit_v = stats_out[:, 0]
        fill_v = stats_out[:, 1]
        used_v = stats_out[:, 2]
        evic_v = stats_out[:, 3]
        if class_idx is not None:
            hit_v = hit_v[class_idx]
            used_v = used_v[class_idx]
            evic_v = evic_v[class_idx]
            fill_v = fill_v[class_idx]
            dh = dh[class_idx]
            dm = dm[class_idx]
            dp = dp[class_idx]
        self.hits[stat_idx] += hit_v
        self.pref_used[stat_idx] += used_v
        self.pref_evicted_unused[stat_idx] += evic_v
        self.pref_fills[stat_idx] += fill_v
        # += on the caller's (possibly strided) accumulator views; the
        # reshape only reinterprets the kernel's dense block columns.
        hits_d += dh.reshape(hits_d.shape)
        mem_d += dm.reshape(mem_d.shape)
        pref_m += dp.reshape(pref_m.shape)
        self._seq += n
        self.accesses[stat_idx] += n


class BatchKernel:
    """Shared lane trees + merge cache for one batch of mix-affine runs.

    Build one kernel per (params, quantum, per-core traces) group, then
    :meth:`machine` a fresh :class:`LaneMachine` per run.  Runs may
    execute sequentially or interleaved; lanes are computed on first
    use and replayed ever after.
    """

    def __init__(self, params: MachineParams, *, quantum: int) -> None:
        self.params = params
        self.quantum = int(quantum)
        self._trees: dict[int, _LaneTree] = {}
        self._merge_cache: dict[tuple, tuple] = {}
        self._stream_cache: dict[int, _PreparedStream] = {}
        self.runs_built = 0

    def add_core(self, cpu: int, base_trace) -> None:
        """Register a core's shared materialized trace (forkable)."""
        if not hasattr(base_trace, "fork"):
            raise TypeError(
                "batch kernel requires forkable materialized traces "
                f"(got {type(base_trace).__name__} for core {cpu}); "
                "enable the trace plane or fall back to the scalar engine"
            )
        self._trees[cpu] = _LaneTree(self.params, base_trace)

    @property
    def lane_cores(self) -> tuple[int, ...]:
        return tuple(sorted(self._trees))

    def machine(self) -> "LaneMachine":
        """A fresh run member consuming this kernel's lanes."""
        self.runs_built += 1
        return LaneMachine(self)

    def merged(self, llc_reqs: list[list]) -> tuple:
        """Cached round-robin merge for one combination of lane edges.

        Keyed by the identity of the (immutable, kernel-owned) request
        lists — identical edge combinations across runs resolve to the
        same key, so the merge interleave is computed once per unique
        quantum shape instead of once per run.
        """
        key = tuple(id(r) if r else 0 for r in llc_reqs)
        hit = self._merge_cache.get(key)
        if hit is None:
            hit = fastengine.merge_llc_requests(llc_reqs)
            self._merge_cache[key] = hit
        return hit

    def grouped_stream(self, llc_reqs: list[list]) -> _PreparedStream:
        """Cached decoded + conflict-segmented merge for the grouped serve.

        Layered on :meth:`merged`: the cached merge tuple's identity is
        stable per unique lane combination, so the NumPy decode and the
        set-conflict segmentation are also computed once per unique
        quantum shape and shared by every run in a lockstep sweep.
        """
        pre = self.merged(llc_reqs)
        key = id(pre)
        hit = self._stream_cache.get(key)
        if hit is None:
            hit = _PreparedStream(pre[1], pre[2], self.params.llc.sets - 1)
            self._stream_cache[key] = hit
        return hit

    def trace_fallbacks(self) -> int:
        """Total zero-copy go-live fallbacks across every lane fork."""
        return sum(t.trace_fallbacks() for t in self._trees.values())


class LaneMachine(Machine):
    """A ``Machine`` whose core phase replays a :class:`BatchKernel`.

    Everything downstream of the core phase — LLC + CAT, DRAM, PMU,
    timing — is this machine's own scalar-fast state, so per-run
    control (MSR masks, CAT masks) behaves exactly as on a scalar
    machine and results are bit-identical to one.
    """

    def __init__(self, kernel: BatchKernel) -> None:
        super().__init__(kernel.params, quantum=kernel.quantum, engine=ENGINE_BATCH)
        self._kernel = kernel
        self._cursors: dict[int, _LaneCursor] = {}
        for cpu in kernel.lane_cores:
            self._cursors[cpu] = _LaneCursor(kernel._trees[cpu])
            self.cores[cpu].active = True

    def attach_trace(self, core: int, trace) -> None:  # pragma: no cover
        raise TypeError(
            "LaneMachine cores are driven by the batch kernel's lanes; "
            "register traces via BatchKernel.add_core before building runs"
        )

    def _core_phase(self, q, counts, ipm, mlp, active, llc_reqs) -> None:
        pmu_counts = self.pmu.counts
        get_mask = self.prefetch_msr.get_mask
        for cpu, cursor in self._cursors.items():
            active[cpu] = True
            e = cursor.tree.step(cursor, q, get_mask(cpu))
            qc = counts[cpu]
            qc.n_access = e.n_access
            qc.n_l2_hit_d = e.n_l2_hit_d
            llc_reqs[cpu] = e.llc_req
            ipm[cpu] = e.ipm
            mlp[cpu] = e.mlp
            # Row add: untouched events gain +0.0, which is exact for
            # the non-negative counters the PMU holds; the seven core
            # events add the same float64 integers the scalar path does.
            pmu_counts[cpu] += e.pmu_row
            cs = self.cores[cpu]
            s1, d1 = cs.l1.stats, e.l1_stats
            s1.accesses += d1[0]
            s1.hits += d1[1]
            s1.pref_fills += d1[2]
            s1.pref_used += d1[3]
            s1.pref_evicted_unused += d1[4]
            s2, d2 = cs.l2.stats, e.l2_stats
            s2.accesses += d2[0]
            s2.hits += d2[1]
            s2.pref_fills += d2[2]
            s2.pref_used += d2[3]
            s2.pref_evicted_unused += d2[4]

    def _llc_phase(self, counts, llc_reqs) -> None:
        fastengine.run_llc_phase(
            self, counts, llc_reqs, self.pmu.counts, self._kernel.merged(llc_reqs)
        )

    def private_occupancy(self, cpu: int) -> tuple[int, int]:
        """(L1, L2) occupancy of this run's lane state for ``cpu``.

        The member's own ``cores[cpu].l1/l2`` only accumulate stats
        deltas; the actual cache contents live in the lane state.
        """
        cursor = self._cursors[cpu]
        return cursor.tree.occupancy(cursor)

    def trace_fallbacks(self) -> int:
        return self._kernel.trace_fallbacks()


class StaticSweepRun:
    """One run's outputs from :func:`run_static_sweep`."""

    __slots__ = ("pmu_counts", "wall_cycles", "llc_stats", "llc_occupancy")

    def __init__(self, pmu_counts, wall_cycles, llc_stats, llc_occupancy) -> None:
        self.pmu_counts = pmu_counts  # (n_cores, N_EVENTS) float64
        self.wall_cycles = wall_cycles
        self.llc_stats = llc_stats  # (accesses, hits, fills, used, evicted)
        self.llc_occupancy = llc_occupancy


def run_static_sweep(
    kernel: BatchKernel,
    configs: list[tuple[tuple[tuple[int, int], ...], tuple[int, ...]]],
    masks: tuple[int, ...],
    n_accesses: int,
) -> list[StaticSweepRun]:
    """Advance R static runs in lockstep through one SoA kernel pass.

    ``configs`` is one ``(clos_cbms, core_clos)`` CAT configuration per
    run; ``masks`` are the per-core prefetcher masks *shared by every
    run* — that is what makes the core phase, and therefore the merged
    LLC request stream, identical across the sweep, so a single lane
    walk feeds a :class:`GroupedLLC` that serves all runs per quantum.
    Timing stays a per-run scalar fixed point fed the grouped serve's
    per-run counters, and every per-run arithmetic sequence matches a
    scalar fast machine op for op: results are bit-identical to running
    each configuration on its own machine.
    """
    params = kernel.params
    n = params.n_cores
    R = len(configs)
    # Effective per-core masks: static configs overlay MSR defaults.
    pmsr = PrefetchMsr(MsrFile(n))
    for cpu, m in enumerate(masks):
        pmsr.set_mask(cpu, m)
    eff_mask = [pmsr.get_mask(cpu) for cpu in range(n)]
    # Per-run CAT -> (runs, cpus, ways) boolean allowed-way matrix.
    W = params.llc.ways
    allowed = np.zeros((R, n, W), dtype=bool)
    for r, (clos_cbms, core_clos) in enumerate(configs):
        cat = CatController(W, n)
        for clos, cbm in clos_cbms:
            cat.set_cbm(clos, cbm)
        for cpu, clos in enumerate(core_clos):
            cat.assign_core(cpu, clos)
        for cpu in range(n):
            for w in cat.allowed_ways(cpu):
                allowed[r, cpu, w] = True

    glc = GroupedLLC(params.llc, R)
    cursors = {cpu: _LaneCursor(kernel._trees[cpu]) for cpu in kernel.lane_cores}
    pmu = [np.zeros((n, N_EVENTS), dtype=np.float64) for _ in range(R)]
    wall = [0.0] * R
    drams = [DramModel(params) for _ in range(R)]
    line_bytes = float(params.line_bytes)
    hits_d = np.zeros((R, n), dtype=np.int64)
    mem_d = np.zeros((R, n), dtype=np.int64)
    pref_m = np.zeros((R, n), dtype=np.int64)

    remaining = int(n_accesses)
    while remaining > 0:
        q = min(kernel.quantum, remaining)
        llc_reqs: list[list] = [[] for _ in range(n)]
        edges = {}
        for cpu, cursor in cursors.items():
            e = cursor.tree.step(cursor, q, eff_mask[cpu])
            edges[cpu] = e
            llc_reqs[cpu] = e.llc_req
        stream = kernel.grouped_stream(llc_reqs)
        hits_d[:] = 0
        mem_d[:] = 0
        pref_m[:] = 0
        if stream.n:
            glc.serve(stream, allowed, hits_d, mem_d, pref_m)
        active = [False] * n
        ipm = [0.0] * n
        mlp = [1.0] * n
        for cpu, e in edges.items():
            active[cpu] = True
            ipm[cpu] = e.ipm
            mlp[cpu] = e.mlp
        t0 = profiling.clock() if profiling.ON else 0.0
        for r in range(R):
            counts = [QuantumCounts() for _ in range(n)]
            prow = pmu[r]
            for cpu, e in edges.items():
                qc = counts[cpu]
                qc.n_access = e.n_access
                qc.n_l2_hit_d = e.n_l2_hit_d
                fastengine.apply_llc_tail(
                    qc,
                    prow,
                    cpu,
                    int(hits_d[r, cpu]),
                    int(mem_d[r, cpu]),
                    int(pref_m[r, cpu]),
                    line_bytes,
                )
                prow[cpu] += e.pmu_row
            timing = solve_quantum(params, drams[r], counts, ipm, mlp, active)
            demand_b = 0.0
            pref_b = 0.0
            for cpu in range(n):
                if not active[cpu]:
                    continue
                c = counts[cpu]
                prow[cpu, Event.INSTRUCTIONS] += c.n_access * (1.0 + ipm[cpu])
                prow[cpu, Event.CYCLES] += timing.cycles[cpu]
                prow[cpu, Event.STALLS_L2_PENDING] += timing.stalls_l2_pending[cpu]
                prow[cpu, Event.MEM_DEMAND_BYTES] += c.demand_bytes
                prow[cpu, Event.MEM_PREF_BYTES] += c.pref_bytes
                demand_b += c.demand_bytes
                pref_b += c.pref_bytes
            drams[r].account(demand_b, pref_b)
            wall[r] += timing.machine_cycles
        if profiling.ON:
            profiling.add("timing", profiling.clock() - t0)
        remaining -= q

    return [
        StaticSweepRun(pmu[r], wall[r], glc.stats_for(r), glc.occupancy(r)) for r in range(R)
    ]


# --------------------------------------------------------------------------
# Masked lockstep: dynamic batching for runs with divergent policies
# --------------------------------------------------------------------------


class _CoreLane:
    """One state-equality class of runs inside a :class:`GroupedCore`.

    All member runs sit at the same trace position with bitwise-equal
    private-core state, so one scalar-kernel advance serves them all.
    ``serial`` is a stable identity for the merge-comparison backoff.
    """

    __slots__ = ("state", "runs", "serial")

    def __init__(self, state: _LaneState, runs: set, serial: int) -> None:
        self.state = state
        self.runs = runs
        self.serial = serial


class GroupedCore:
    """R runs' private-core state for one core, advanced in masked lockstep.

    Run-axis batching for the core side: all R runs share one zero-copy
    trace, and per-run prefetch masks are the only divergence axis.
    State is deduplicated into lanes (equality classes) rather than a
    dense ``(runs, sets, ways)`` tensor: interval-aligned sweeps spend
    most quanta with every run under the same mask, so one lane — one
    scalar-kernel call — usually covers the whole group, and the dense
    tensors are still available as views (:meth:`cache_tensors`,
    :meth:`stride_tensor`) for inspection and the property suite.

    Each :meth:`step` partitions stepping runs by mask, clones the lane
    image per partition (before any advance), merges lanes whose images
    re-converged (order-sensitive content equality; failed comparisons
    back off :data:`MERGE_BACKOFF` steps per pair) and advances each
    surviving lane once with the unmodified scalar kernel.  Raises
    :class:`LockstepError` when a live-trace lane would need cloning —
    the caller degrades the whole group to per-run scalar execution.
    """

    #: Steps to skip re-comparing a lane pair after a failed merge.
    MERGE_BACKOFF = 8

    def __init__(self, params: MachineParams, base_trace, n_runs: int) -> None:
        if not hasattr(base_trace, "fork"):
            raise TypeError(
                "GroupedCore requires a forkable materialized trace "
                f"(got {type(base_trace).__name__})"
            )
        self.params = params
        self.base_trace = base_trace
        self.n_runs = n_runs
        self.forks: list = []
        self._scratch = np.zeros((1, N_EVENTS), dtype=np.float64)
        self._serial = 0
        self._step_no = 0
        self._backoff: dict[tuple[int, int], int] = {}
        if nativekernels.kernels_enabled():
            st = nativekernels.fresh_lane_state(params, self._fork_trace(0))
        else:
            st = _LaneState(
                FastCache(params.l1), FastCache(params.l2), _fresh_bank(params), self._fork_trace(0)
            )
        self.lanes: list[_CoreLane] = [_CoreLane(st, set(range(n_runs)), self._next_serial())]

    def _next_serial(self) -> int:
        self._serial += 1
        return self._serial

    def _fork_trace(self, pos: int):
        t = self.base_trace.fork(pos)
        self.forks.append(t)
        return t

    def _clone(self, st: _LaneState) -> _LaneState:
        if st.trace._live is not None:
            raise LockstepError(
                "cannot split a lane whose trace left the zero-copy path"
            )
        return _clone_image(self.params, st, self._fork_trace(st.trace.pos))

    def step(self, active, q: int, mask_of) -> dict:
        """Advance runs in ``active`` one quantum of ``q`` accesses.

        ``mask_of`` maps run -> effective prefetch mask for this core.
        Returns ``{run: _LaneEdge}`` with each run's core-phase outputs
        (runs sharing a lane share the edge object, and therefore the
        identity of its request list — the scheduler keys stream merges
        on exactly that).
        """
        self._step_no += 1
        active_set = set(active)
        new_lanes: list[_CoreLane] = []
        plan: list[tuple[_CoreLane, int]] = []
        for lane in self.lanes:
            stepping = lane.runs & active_set
            if not stepping:
                new_lanes.append(lane)
                continue
            staying = lane.runs - stepping
            groups: dict[int, set] = {}
            for r in stepping:
                groups.setdefault(mask_of[r], set()).add(r)
            keys = sorted(groups)
            if staying:
                # The un-advanced image stays behind for the parked
                # runs; every stepping partition gets a clone.
                lane.runs = staying
                new_lanes.append(lane)
                donors = keys
            else:
                # First partition advances the lane in place; clones
                # for the rest are taken before anything advances.
                donors = keys[1:]
            clones = {m: self._clone(lane.state) for m in donors}
            if not staying:
                lane.runs = groups[keys[0]]
                plan.append((lane, keys[0]))
                new_lanes.append(lane)
            for m in donors:
                nl = _CoreLane(clones[m], groups[m], self._next_serial())
                plan.append((nl, m))
                new_lanes.append(nl)
        # Re-merge pass: lanes stepping under the same mask whose images
        # re-converged advance once for all their runs.
        by_mask: dict[int, list[_CoreLane]] = {}
        for lane, m in plan:
            by_mask.setdefault(m, []).append(lane)
        merged_plan: list[tuple[_CoreLane, int]] = []
        for m in sorted(by_mask):
            survivors: list[_CoreLane] = []
            for lane in by_mask[m]:
                merged = False
                for surv in survivors:
                    key = (surv.serial, lane.serial)
                    if self._backoff.get(key, 0) > self._step_no:
                        continue
                    if _images_equal(surv.state, lane.state):
                        surv.runs |= lane.runs
                        new_lanes.remove(lane)
                        merged = True
                        break
                    self._backoff[key] = self._step_no + self.MERGE_BACKOFF
                if not merged:
                    survivors.append(lane)
            merged_plan.extend((lane, m) for lane in survivors)
        edges: dict[int, _LaneEdge] = {}
        for lane, m in merged_plan:
            qc, llc_req, pmu_row, ipm, mlp = _advance_image(lane.state, q, m, self._scratch)
            e = _fill_edge(lane.state, qc, llc_req, pmu_row, ipm, mlp)
            for r in lane.runs:
                edges[r] = e
        self.lanes = new_lanes
        return edges

    def retire(self, run: int) -> None:
        """Drop a finished run so its lane can keep merging freely."""
        for lane in self.lanes:
            lane.runs.discard(run)
        self.lanes = [lane for lane in self.lanes if lane.runs]

    # -- dense SoA views (inspection / property suite) -----------------

    def _lane_of(self, run: int) -> _CoreLane:
        for lane in self.lanes:
            if run in lane.runs:
                return lane
        raise KeyError(f"run {run} not in any lane (retired?)")

    def cache_tensors(self, level: str = "l1"):
        """``(tags, stamps)`` as ``(runs, sets, ways)`` int64 tensors.

        ``tags`` hold line addresses in LRU -> MRU way order (-1 =
        empty); ``stamps`` hold each occupied way's recency rank (0 =
        LRU) and -1 for empty ways.  Retired runs keep all -1.
        """
        geom = self.params.l1 if level == "l1" else self.params.l2
        S, W = geom.sets, geom.ways
        tags = np.full((self.n_runs, S, W), -1, dtype=np.int64)
        stamps = np.full((self.n_runs, S, W), -1, dtype=np.int64)
        ranks = np.arange(W, dtype=np.int64)[None, :]
        for lane in self.lanes:
            cache = lane.state.l1 if level == "l1" else lane.state.l2
            t = cache.tags_array()
            s = np.where(t != -1, ranks, np.int64(-1))
            for r in lane.runs:
                tags[r] = t
                stamps[r] = s
        return tags, stamps

    def stride_tensor(self):
        """IP-stride tables as a ``(runs, entries, 4)`` int64 tensor.

        Rows are ``[ctx, last_line, stride, confidence]`` in FIFO
        (insertion) order, -1-padded past each table's population.
        """
        E = self.params.stride_table_entries
        out = np.full((self.n_runs, E, 4), -1, dtype=np.int64)
        for lane in self.lanes:
            if isinstance(lane.state, nativekernels.NativeLaneState):
                block = nativekernels.stride_rows(lane.state.tabs, E)
            else:
                block = np.full((E, 4), -1, dtype=np.int64)
                for i, (ctx, row) in enumerate(lane.state.bank.ip_stride._table.items()):
                    block[i, 0] = ctx
                    block[i, 1:] = row
            for r in lane.runs:
                out[r] = block
        return out

    def trace_fallbacks(self) -> int:
        return sum(t.fallbacks for t in self.forks)


class LockstepMachine(Machine):
    """A per-run ``Machine`` that parks at every quantum boundary.

    Controllers drive it exactly like a scalar machine — MSR writes,
    CAT moves, ``run_accesses`` between decisions — but ``_run_quantum``
    posts the run's position, effective prefetch masks and CAT allow
    matrix to the owning :class:`LockstepGroup` and blocks until the
    scheduler has advanced the grouped core/LLC state, then folds the
    returned per-run counters through the inherited scalar
    ``_timing_phase``.  The accumulation sequence is op-for-op the one
    :func:`run_static_sweep` pins, so results are bit-identical to a
    scalar fast machine.
    """

    def __init__(self, group: "LockstepGroup", run_id: int) -> None:
        kernel = group.kernel
        super().__init__(kernel.params, quantum=kernel.quantum, engine=ENGINE_BATCH)
        self._group = group
        self._run_id = run_id
        self._pos = 0
        self._q = -1
        self._masks: dict[int, int] = {}
        self._allow = np.zeros((kernel.params.n_cores, kernel.params.llc.ways), dtype=bool)
        self._allow_gen = -1
        self._outq: deque = deque()
        self._decl_remaining = 0
        self._sched_pos = 0
        self._sched_left = 0
        self._parked = threading.Event()
        self._resume = threading.Event()
        self._done = False
        self._error: BaseException | None = None
        self._result = None
        for cpu in kernel.lane_cores:
            self.cores[cpu].active = True

    def attach_trace(self, core: int, trace) -> None:  # pragma: no cover
        raise TypeError(
            "LockstepMachine cores are driven by the group's shared "
            "trace; traces are registered on the BatchKernel"
        )

    def _refresh_allow(self) -> None:
        cat = self.cat
        if cat.generation == self._allow_gen:
            return
        self._allow[:] = False
        for cpu in range(self.params.n_cores):
            for w in cat.allowed_ways(cpu):
                self._allow[cpu, w] = True
        self._allow_gen = cat.generation

    def run_accesses(self, n_per_core: int) -> None:
        # Prefetch-mask and CAT writes only happen between driver calls,
        # so both are fixed for this whole span.  Declaring the span
        # lets the scheduler compute every quantum of it in one go and
        # deliver the outputs as a batch — one park per span instead of
        # one park per quantum.
        self._decl_remaining = int(n_per_core)
        try:
            super().run_accesses(n_per_core)
        finally:
            self._decl_remaining = 0

    def _run_quantum(self, q: int) -> None:
        group = self._group
        if group._aborting:
            raise _LockstepAbort()
        if not self._outq:
            get_mask = self.prefetch_msr.get_mask
            self._masks = {cpu: get_mask(cpu) for cpu in group.kernel.lane_cores}
            self._refresh_allow()
            self._q = q
            self._parked.set()
            ok = self._resume.wait(group.timeout)
            self._resume.clear()
            if not ok or group._aborting:
                raise _LockstepAbort()
        edges, hits_d, mem_d, pref_m = self._outq.popleft()
        self._apply(edges, hits_d, mem_d, pref_m)
        self._pos += q
        self._decl_remaining -= q

    def _apply(self, edges, hits_d, mem_d, pref_m) -> None:
        """Fold one quantum's grouped outputs through the scalar tail."""
        n = self.params.n_cores
        counts = [QuantumCounts() for _ in range(n)]
        ipm = [0.0] * n
        mlp = [1.0] * n
        active = [False] * n
        pmu_counts = self.pmu.counts
        line_bytes = float(self.params.line_bytes)
        for cpu, e in edges.items():
            active[cpu] = True
            ipm[cpu] = e.ipm
            mlp[cpu] = e.mlp
            qc = counts[cpu]
            qc.n_access = e.n_access
            qc.n_l2_hit_d = e.n_l2_hit_d
            fastengine.apply_llc_tail(
                qc,
                pmu_counts,
                cpu,
                int(hits_d[cpu]),
                int(mem_d[cpu]),
                int(pref_m[cpu]),
                line_bytes,
            )
            pmu_counts[cpu] += e.pmu_row
            cs = self.cores[cpu]
            s1, d1 = cs.l1.stats, e.l1_stats
            s1.accesses += d1[0]
            s1.hits += d1[1]
            s1.pref_fills += d1[2]
            s1.pref_used += d1[3]
            s1.pref_evicted_unused += d1[4]
            s2, d2 = cs.l2.stats, e.l2_stats
            s2.accesses += d2[0]
            s2.hits += d2[1]
            s2.pref_fills += d2[2]
            s2.pref_used += d2[3]
            s2.pref_evicted_unused += d2[4]
        self._timing_phase(counts, ipm, mlp, active)

    def trace_fallbacks(self) -> int:
        return self._group.trace_fallbacks()


class LockstepGroup:
    """Scheduler advancing R divergent runs of one mix in lockstep.

    Owns the grouped SoA state (one :class:`GroupedCore` per lane core,
    one :class:`GroupedLLC`) and R :class:`LockstepMachine` members.
    :meth:`run` executes one unmodified driver callable per member on a
    worker thread; the scheduler repeatedly picks the minimum
    ``(trace_pos, quantum)`` cohort, steps every grouped core once for
    it, serves the merged LLC stream per unique stream shape, and wakes
    members one at a time — exactly one thread is ever runnable, so the
    interleave is deterministic and the per-run arithmetic matches a
    scalar fast machine op for op.

    The kernel is never mutated by lockstep execution (grouped cores
    fork the shared base traces directly), so a caller catching
    :class:`LockstepError` can reuse the same kernel for the per-run
    fallback path.
    """

    def __init__(self, kernel: BatchKernel, n_runs: int, *, timeout: float = 120.0) -> None:
        if n_runs < 1:
            raise ValueError("n_runs must be positive")
        self.kernel = kernel
        self.n_runs = n_runs
        self.timeout = timeout
        p = kernel.params
        self.cores = {
            cpu: GroupedCore(p, kernel._trees[cpu].base_trace, n_runs)
            for cpu in kernel.lane_cores
        }
        self.llc = GroupedLLC(p.llc, n_runs)
        self._allowed = np.zeros((n_runs, p.n_cores, p.llc.ways), dtype=bool)
        self.members = [LockstepMachine(self, r) for r in range(n_runs)]
        self._stream_cache: dict[tuple, _PreparedStream] = {}
        self._aborting = False

    def trace_fallbacks(self) -> int:
        return sum(c.trace_fallbacks() for c in self.cores.values())

    def run(self, drivers) -> list:
        """Run one driver per member to completion; return their results.

        ``drivers[r]`` is called with member ``r``'s machine on a worker
        thread and may drive it arbitrarily (controller loops included).
        Raises :class:`LockstepError` if the group cannot complete
        batched — including when any driver raises, since the member's
        partial state is unusable; the caller re-runs per-run, where a
        genuine driver error will reproduce scalar.
        """
        if len(drivers) != self.n_runs:
            raise ValueError("need exactly one driver per run")
        threads = [
            threading.Thread(
                target=self._thread_main, args=(m, drv), daemon=True, name=f"lockstep-{m._run_id}"
            )
            for m, drv in zip(self.members, drivers)
        ]
        quantum = self.kernel.quantum
        try:
            for m, t in zip(self.members, threads):
                t.start()
                self._observe_parked(m)
            while True:
                for m in self.members:
                    if m._error is not None:
                        raise m._error
                live = [m for m in self.members if not m._done]
                if not live:
                    break
                # Advance declared spans without waking anyone: cohorts
                # form over the scheduler's view of each member's
                # position, outputs queue up per member.  The chunking
                # mirrors ``Machine.run_accesses`` exactly, so the
                # member pops one queue entry per quantum it replays.
                # Cohorts stay pinned to the global minimum position —
                # a member whose span is exhausted there is woken for a
                # fresh declaration *before* the cohort advances, so
                # cross-run serve batching never shrinks just because
                # spans have unequal lengths.
                min_pos = min(m._sched_pos for m in live)
                stale = [
                    m for m in live if m._sched_pos == min_pos and m._sched_left == 0
                ]
                if stale:
                    # Wake in run order to drain queues, run controller
                    # work, and park again with a new declaration (or
                    # finish).  Still one runnable thread at a time.
                    for m in sorted(stale, key=lambda mm: mm._run_id):
                        m._resume.set()
                        self._observe_parked(m)
                    continue
                cands = [m for m in live if m._sched_pos == min_pos]
                q = min(min(quantum, m._sched_left) for m in cands)
                sub = [m for m in cands if min(quantum, m._sched_left) == q]
                # Whole quanta with no member ahead in between can be
                # computed as one multi-segment serve; ``q == quantum``
                # implies every member at ``min_pos`` is in ``sub``.
                k = 1
                if q == quantum:
                    k = min(m._sched_left // quantum for m in sub)
                    ahead = [
                        mm._sched_pos for mm in live if mm._sched_pos > min_pos
                    ]
                    if ahead:
                        k = min(k, (min(ahead) - min_pos) // quantum)
                    k = max(k, 1)
                self._step_subgroup(sub, q, k)
                for m in sub:
                    m._sched_pos += q * k
                    m._sched_left -= q * k
        except Exception as e:
            self._abort(threads)
            raise LockstepError(f"lockstep group degraded: {e!r}") from e
        for t in threads:
            t.join(self.timeout)
        return [m._result for m in self.members]

    # -- internals -----------------------------------------------------

    def _thread_main(self, m: LockstepMachine, driver) -> None:
        try:
            m._result = driver(m)
        except _LockstepAbort:
            pass
        except BaseException as e:  # noqa: BLE001 - relayed to scheduler
            m._error = e
        finally:
            m._done = True
            m._parked.set()

    def _wait_parked(self, m: LockstepMachine) -> None:
        if not m._parked.wait(self.timeout):
            raise RuntimeError(f"lockstep member {m._run_id} stalled")
        m._parked.clear()

    def _observe_parked(self, m: LockstepMachine) -> None:
        """Wait for a park (or exit) and snapshot the declared span.

        At park time the member's queue is empty and ``_pos`` reflects
        every applied quantum, so the scheduler's view starts there;
        ``_decl_remaining`` covers the rest of the member's current
        ``run_accesses`` span (falling back to the single parked
        quantum if the member was advanced outside a declaration).
        """
        self._wait_parked(m)
        if m._done:
            self._retire(m._run_id)
            return
        m._sched_pos = m._pos
        m._sched_left = m._decl_remaining if m._decl_remaining > 0 else m._q

    def _retire(self, run: int) -> None:
        for core in self.cores.values():
            core.retire(run)

    def _abort(self, threads) -> None:
        self._aborting = True
        for m in self.members:
            m._resume.set()
        for t in threads:
            t.join(self.timeout)

    def _step_subgroup(self, sub, q: int, k: int = 1) -> None:
        """Advance one cohort ``k`` quanta of length ``q`` at once.

        Lanes still advance quantum by quantum (edges are keyed per
        quantum), but the LLC serves the whole span as one concatenated
        multi-segment stream: per-set replay order and absolute stamps
        are identical to ``k`` back-to-back serves, and the segment
        axis on the accumulators recovers each quantum's counters for
        the member-side timing phase.
        """
        by_run = {m._run_id: m for m in sub}
        runs = sorted(by_run)
        p = self.kernel.params
        n = p.n_cores
        edges_seq: list[dict[int, dict]] = [{r: {} for r in runs} for _ in range(k)]
        for cpu, core in self.cores.items():
            mask_of = {r: by_run[r]._masks[cpu] for r in runs}
            for j in range(k):
                for r, e in core.step(runs, q, mask_of).items():
                    edges_seq[j][r][cpu] = e
        for r in runs:
            self._allowed[r] = by_run[r]._allow
        # Group runs by merged-stream shape: runs whose lanes coincide
        # on every core for the whole span share the request lists (by
        # identity) and thus one merge + one grouped serve.
        order: list[tuple] = []
        groups: dict[tuple, list[int]] = {}
        for r in runs:
            key = tuple(
                id(edges_seq[j][r][cpu].llc_req) if cpu in edges_seq[j][r] else 0
                for j in range(k)
                for cpu in range(n)
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(r)
        for key in order:
            grp = groups[key]
            quanta: list[_PreparedStream] = []
            for j in range(k):
                ed0 = edges_seq[j][grp[0]]
                # Merged streams repeat across quanta in steady state;
                # replayed lane edges reuse the very same request-list
                # objects, so an identity key finds them for free, with
                # a content key as fallback for equal streams produced
                # by distinct edges.  Edges stay alive in the lane
                # trees, so ids cannot be recycled.
                ikey = tuple(
                    id(ed0[cpu].llc_req) if cpu in ed0 else 0 for cpu in range(n)
                )
                stream = self._stream_cache.get(ikey)
                if stream is None:
                    llc_reqs: list[list] = [
                        ed0[cpu].llc_req if cpu in ed0 else [] for cpu in range(n)
                    ]
                    ckey = tuple(
                        np.asarray(lst, dtype=np.int64).tobytes() for lst in llc_reqs
                    )
                    stream = self._stream_cache.get(ckey)
                    if stream is None:
                        pre = fastengine.merge_llc_requests(llc_reqs)
                        stream = _PreparedStream(pre[1], pre[2], p.llc.sets - 1)
                        self._stream_cache[ckey] = stream
                    self._stream_cache[ikey] = stream
                quanta.append(stream)
            hits_d = np.zeros((len(grp), k, n), dtype=np.int64)
            mem_d = np.zeros((len(grp), k, n), dtype=np.int64)
            pref_m = np.zeros((len(grp), k, n), dtype=np.int64)
            if k == 1:
                stream = quanta[0]
                if stream.n:
                    self.llc.serve(
                        stream, self._allowed,
                        hits_d[:, 0], mem_d[:, 0], pref_m[:, 0],
                        runs=grp,
                    )
            else:
                stream = _PreparedStream.concat(quanta, n)
                if stream.n:
                    self.llc.serve(stream, self._allowed, hits_d, mem_d, pref_m, runs=grp)
            # Queue the outputs; members drain them park-free when
            # woken at the end of their declared span (apply +
            # controller work stays fully serialized — the scheduler is
            # the only runnable thread until it wakes someone).
            for i, r in enumerate(grp):
                outq = by_run[r]._outq
                for j in range(k):
                    outq.append((edges_seq[j][r], hits_d[i, j], mem_d[i, j], pref_m[i, j]))
