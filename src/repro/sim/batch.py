"""Multi-run batch kernel: lane-deduplicated core phase over one trace.

The ``batch`` engine advances N independent runs of the *same workload
mix* while sharing the expensive half of the simulator between them.
The key observation is a strict layering in :class:`~repro.sim.machine.
Machine`'s quantum (DESIGN.md section 5): the **core phase** — trace
chunk through private L1/L2 with prefetcher triggering — depends only
on the core's trace, its prefetcher-mask history and the quantum
partition.  It never observes the LLC, CAT partitioning, DRAM or any
other core.  Runs that differ only in CAT masks (the paper's
partition-size sweeps) share *every* core phase; runs that diverge in
prefetcher masks share the common history prefix (e.g. the warmup all
mechanisms execute under the baseline configuration).

Instead of a structure-of-arrays with an explicit run axis, per-core
state is deduplicated behind **lanes**: a per-core tree whose edges are
keyed by ``(quantum_len, pf_mask)`` and store the core phase's entire
observable output for that quantum —

* the sign-encoded LLC request list (``line`` demand / ``~line``
  prefetch, exactly what :func:`repro.sim.fastengine.run_core_chunk`
  emits),
* the ``QuantumCounts`` fields the core phase sets (``n_access``,
  ``n_l2_hit_d``),
* the per-core PMU row delta (seven integral core events, exact in
  float64),
* the L1/L2 :class:`~repro.sim.cache.CacheStats` deltas, and
* the trace's ``inst_per_mem`` / ``mlp`` for the quantum.

The first run to take a ``(q, mask)`` step computes it with the
unmodified scalar fast kernel against live lane state (FastCache L1/L2,
prefetcher bank, a zero-copy fork of the shared
:class:`~repro.sim.tracestore.MaterializedTrace`); every later run
replays the recorded edge in O(1).  A :class:`LaneMachine` — a
:class:`Machine` whose ``_core_phase`` consumes lanes — then runs its
*own* LLC phase (private ``FastPartitionedCache`` + CAT) and timing
phase on those outputs.  Because the downstream phases are byte-for-
byte the scalar implementation fed byte-for-byte the scalar inputs
(integer deltas are exact in float64 and the merge order is replayed
verbatim), batch results are **bit-identical** to the scalar fast
engine, which is itself pinned bit-identical to ``reference``.

Lane state is snapshotted every :data:`SNAP_EVERY` trunk quanta (and at
divergence points), so a run forking off a shared prefix replays at
most ``SNAP_EVERY - 1`` quanta of kernel work to rebuild state.  Trace
snapshots record only the cursor position and are taken only while the
materialized replay is still zero-copy; if a trace ever goes live
(alignment fallback), that lane stops snapshotting and rebuilds replay
the recorded quantum partition faithfully — bit-identical either way,
with every fallback counted (see ``BatchKernel.trace_fallbacks``).

The round-robin LLC merge depends only on the request lists, not on
LLC/CAT state, so merges are also cached per unique lane-edge
combination (:func:`repro.sim.fastengine.merge_llc_requests`) and
shared across runs; the serve loop always executes against the
consuming machine's own LLC.
"""

from __future__ import annotations

import numpy as np

from repro.sim import fastengine
from repro.sim.cat import CatController
from repro.sim.core_model import QuantumCounts, solve_quantum
from repro.sim.engines import ENGINE_BATCH
from repro.sim.fastcache import FastCache
from repro.sim.machine import Machine
from repro.sim.memory import DramModel
from repro.sim.msr import MsrFile, PrefetchMsr, enables_from_mask
from repro.sim.params import MachineParams
from repro.sim.pmu import N_EVENTS, Event
from repro.sim.prefetcher import PrefetcherBank

__all__ = [
    "SNAP_EVERY",
    "BatchKernel",
    "GroupedLLC",
    "LaneMachine",
    "StaticSweepRun",
    "run_static_sweep",
]

#: Trunk-snapshot period, in quanta.  Smaller = cheaper forks, more
#: copying on first-run trunks; 16 keeps snapshot overhead ~1/16 of a
#: dict-copy per quantum while bounding fork replay to 15 quanta.
SNAP_EVERY = 16


class _LaneState:
    """Live private-core state a lane edge is computed against.

    Duck-types the ``l1``/``l2``/``bank``/``trace`` attributes of
    ``Machine``'s per-core state, which is all
    :func:`repro.sim.fastengine.run_core_chunk` touches.
    """

    __slots__ = ("l1", "l2", "bank", "trace", "mask_applied")

    def __init__(self, l1, l2, bank, trace, mask_applied=-1) -> None:
        self.l1 = l1
        self.l2 = l2
        self.bank = bank
        self.trace = trace
        self.mask_applied = mask_applied


class _LaneEdge:
    """One quantum's recorded core-phase output along a lane."""

    __slots__ = (
        "child",
        "llc_req",
        "n_access",
        "n_l2_hit_d",
        "pmu_row",
        "l1_stats",
        "l2_stats",
        "ipm",
        "mlp",
    )


class _LaneNode:
    """A point in a core's (quantum, mask) history tree."""

    __slots__ = ("parent", "key", "edges", "snapshot", "depth")

    def __init__(self, parent=None, key=None) -> None:
        self.parent = parent
        self.key = key  # (q, mask) edge taken from parent to reach here
        self.edges: dict[tuple[int, int], _LaneEdge] = {}
        self.snapshot: _LaneState | None = None
        self.depth = 0 if parent is None else parent.depth + 1


class _LaneTree:
    """All recorded histories of one core across the batch's runs."""

    def __init__(self, params: MachineParams, base_trace) -> None:
        self.params = params
        self.base_trace = base_trace
        self.root = _LaneNode()
        # Strong refs to every trace fork so fallbacks stay countable
        # even after a hot state is dropped (forks are tiny views).
        self.forks: list = []
        self._scratch = np.zeros((1, N_EVENTS), dtype=np.float64)

    # -- state management --------------------------------------------

    def _fork_trace(self, pos: int):
        t = self.base_trace.fork(pos)
        self.forks.append(t)
        return t

    def _fresh_state(self) -> _LaneState:
        p = self.params
        bank = PrefetcherBank(
            stride_table=p.stride_table_entries,
            stride_degree=p.stride_degree,
            stride_confidence=p.stride_confidence,
            streamer_pages=p.streamer_table_pages,
            streamer_degree=p.streamer_degree,
        )
        return _LaneState(FastCache(p.l1), FastCache(p.l2), bank, self._fork_trace(0))

    def _clone_state(self, st: _LaneState) -> _LaneState:
        p = self.params
        l1 = FastCache(p.l1)
        l1._sets = [dict(s) for s in st.l1._sets]
        l2 = FastCache(p.l2)
        l2._sets = [dict(s) for s in st.l2._sets]
        bank = PrefetcherBank(
            stride_table=p.stride_table_entries,
            stride_degree=p.stride_degree,
            stride_confidence=p.stride_confidence,
            streamer_pages=p.streamer_table_pages,
            streamer_degree=p.streamer_degree,
        )
        bank.set_enables(
            stride=st.bank.en_stride,
            next_line=st.bank.en_next_line,
            streamer=st.bank.en_streamer,
            adjacent=st.bank.en_adjacent,
        )
        bank.ip_stride._table = {k: v[:] for k, v in st.bank.ip_stride._table.items()}
        bank.streamer._table = {k: v[:] for k, v in st.bank.streamer._table.items()}
        return _LaneState(l1, l2, bank, self._fork_trace(st.trace.pos), st.mask_applied)

    def _state_at(self, node: _LaneNode) -> _LaneState:
        """Rebuild live state for ``node``: nearest snapshot + replay."""
        path: list[tuple[int, int]] = []
        anchor = node
        while anchor.parent is not None and anchor.snapshot is None:
            path.append(anchor.key)
            anchor = anchor.parent
        st = self._clone_state(anchor.snapshot) if anchor.snapshot else self._fresh_state()
        for q, mask in reversed(path):
            self._run_kernel(st, q, mask)
        return st

    # -- kernel -------------------------------------------------------

    def _run_kernel(self, st: _LaneState, q: int, mask: int):
        """Advance ``st`` by one quantum under ``mask``; return outputs."""
        if mask != st.mask_applied:
            en = enables_from_mask(mask)
            st.bank.set_enables(
                stride=en["stride"],
                next_line=en["next_line"],
                streamer=en["streamer"],
                adjacent=en["adjacent"],
            )
            st.mask_applied = mask
        ipm = st.trace.inst_per_mem
        mlp = st.trace.mlp
        s1, s2 = st.l1.stats, st.l2.stats
        s1.accesses = s1.hits = s1.pref_fills = s1.pref_used = s1.pref_evicted_unused = 0
        s2.accesses = s2.hits = s2.pref_fills = s2.pref_used = s2.pref_evicted_unused = 0
        scratch = self._scratch
        scratch[:] = 0.0
        qc = QuantumCounts()
        llc_req: list[int] = []
        fastengine.run_core_chunk(0, st, q, qc, llc_req, scratch)
        return qc, llc_req, scratch[0].copy(), ipm, mlp

    def step(self, cursor: "_LaneCursor", q: int, mask: int) -> _LaneEdge:
        """Advance a run's cursor one quantum, computing the edge once."""
        node = cursor.node
        key = (q, mask)
        edge = node.edges.get(key)
        if edge is not None:
            # Replay: the cursor's hot state (if any) is now stale.
            if cursor.state is not None:
                cursor.state = None
            cursor.node = edge.child
            return edge
        st = cursor.state
        if st is None:
            st = self._state_at(node)
        if node.edges and node.snapshot is None and st.trace._live is None:
            # Second+ divergence from this node: pin a snapshot so the
            # remaining siblings fork from here instead of replaying.
            node.snapshot = self._clone_state(st)
        qc, llc_req, pmu_row, ipm, mlp = self._run_kernel(st, q, mask)
        edge = _LaneEdge()
        child = _LaneNode(node, key)
        edge.child = child
        edge.llc_req = llc_req
        edge.n_access = qc.n_access
        edge.n_l2_hit_d = qc.n_l2_hit_d
        edge.pmu_row = pmu_row
        edge.l1_stats = (
            st.l1.stats.accesses,
            st.l1.stats.hits,
            st.l1.stats.pref_fills,
            st.l1.stats.pref_used,
            st.l1.stats.pref_evicted_unused,
        )
        edge.l2_stats = (
            st.l2.stats.accesses,
            st.l2.stats.hits,
            st.l2.stats.pref_fills,
            st.l2.stats.pref_used,
            st.l2.stats.pref_evicted_unused,
        )
        edge.ipm = ipm
        edge.mlp = mlp
        node.edges[key] = edge
        if child.depth % SNAP_EVERY == 0 and st.trace._live is None:
            child.snapshot = self._clone_state(st)
        cursor.node = child
        cursor.state = st
        return edge

    def occupancy(self, cursor: "_LaneCursor") -> tuple[int, int]:
        """(L1, L2) line occupancy of the cursor's current lane state."""
        st = cursor.state if cursor.state is not None else self._state_at(cursor.node)
        return st.l1.occupancy(), st.l2.occupancy()

    def trace_fallbacks(self) -> int:
        return sum(t.fallbacks for t in self.forks)


class _LaneCursor:
    """One run's position in one core's lane tree."""

    __slots__ = ("tree", "node", "state")

    def __init__(self, tree: _LaneTree) -> None:
        self.tree = tree
        self.node = tree.root
        self.state: _LaneState | None = None


#: Larger than any LRU stamp; masks disallowed/empty ways out of the
#: vectorised victim argmin.
_TS_INF = np.int64(np.iinfo(np.int64).max)


class _PreparedStream:
    """A merged LLC request stream decoded into NumPy columns.

    ``segments`` partitions the stream into maximal conflict-free
    prefixes: within a segment every request maps to a *distinct* LLC
    set, so the requests touch disjoint state and the grouped serve can
    process a whole segment — for every run at once — with one batch of
    array operations while preserving the scalar serve order exactly
    (requests to different sets never interact; LRU order, victim
    choice and counters are all per-set).
    """

    __slots__ = ("n", "line", "si", "is_pref", "demand", "cpu_col", "cpu_groups", "segments")

    def __init__(self, merged, mcpus, set_mask: int) -> None:
        enc = np.asarray(merged, dtype=np.int64)
        self.n = len(enc)
        is_pref = enc < 0
        line = np.where(is_pref, ~enc, enc)
        self.line = line
        self.si = line & set_mask
        self.is_pref = is_pref
        self.demand = ~is_pref
        cpu = np.asarray(mcpus, dtype=np.int64)
        self.cpu_col = cpu
        self.cpu_groups = [
            (c, np.flatnonzero(cpu == c)) for c in np.unique(cpu).tolist()
        ]
        segments: list[tuple[int, int]] = []
        seen: set[int] = set()
        start = 0
        for i, s in enumerate(self.si.tolist()):
            if s in seen:
                segments.append((start, i))
                seen.clear()
                start = i
            seen.add(s)
        if self.n:
            segments.append((start, self.n))
        self.segments = segments


class GroupedLLC:
    """R independent LLC images in structure-of-arrays layout.

    The run axis leads: ``tags``/``stamps``/``pref`` are ``(runs, sets,
    ways)`` arrays holding every run's way-partitioned LLC at once, so
    one pass over a shared merged request stream advances all runs
    together.  Bit-identical mapping onto
    :class:`~repro.sim.fastcache.FastPartitionedCache`'s dict sets:

    * dict order is last-touch order (hits pop + reinsert), so "first
      entry" == minimum LRU stamp; ``stamps`` hold each way's last
      touch as its global stream position.
    * the free-way bitmask tracks never-filled ways, so ``tags == -1``
      is exactly "free"; the scalar picks the lowest set bit of
      ``free & abits`` and ``argmax`` over a boolean way axis picks the
      same lowest allowed free way.
    * the victim when no allowed way is free is the min-stamp valid way
      among the allowed ways — which is also ``next(iter(set))`` when
      the partition spans every way, because a set with no free way has
      all ways valid.

    Every request touches exactly one way per run (hits refresh the hit
    way, misses fill the chosen way), so each segment needs a single
    scatter per state array.
    """

    def __init__(self, geometry, n_runs: int) -> None:
        self.geometry = geometry
        self.n_runs = n_runs
        shape = (n_runs, geometry.sets, geometry.ways)
        self.tags = np.full(shape, -1, dtype=np.int64)
        self.stamps = np.zeros(shape, dtype=np.int64)
        self.pref = np.zeros(shape, dtype=np.uint8)
        self._seq = 1
        # CacheStats mirror: accesses are stream-shared, the rest per run.
        self.accesses = 0
        self.hits = np.zeros(n_runs, dtype=np.int64)
        self.pref_fills = np.zeros(n_runs, dtype=np.int64)
        self.pref_used = np.zeros(n_runs, dtype=np.int64)
        self.pref_evicted_unused = np.zeros(n_runs, dtype=np.int64)

    def stats_for(self, run: int) -> tuple[int, int, int, int, int]:
        """One run's ``CacheStats`` tuple (accesses, hits, fills, used, evicted)."""
        return (
            self.accesses,
            int(self.hits[run]),
            int(self.pref_fills[run]),
            int(self.pref_used[run]),
            int(self.pref_evicted_unused[run]),
        )

    def occupancy(self, run: int) -> int:
        return int((self.tags[run] != -1).sum())

    def serve(self, stream: _PreparedStream, allowed, hits_d, mem_d, pref_m) -> None:
        """Serve one quantum's merged stream for every run at once.

        ``allowed`` is the ``(runs, cpus, ways)`` boolean CAT matrix;
        ``hits_d``/``mem_d``/``pref_m`` are ``(runs, cpus)`` int64
        accumulators for demand hits, demand fills and prefetch fills —
        the per-core counters the scalar serve loop tracks.
        """
        tags, stamps, pref = self.tags, self.stamps, self.pref
        R = self.n_runs
        S = self.geometry.sets
        W = self.geometry.ways
        n = stream.n
        tags_f = tags.reshape(R * S * W)
        stamps_f = stamps.reshape(R * S * W)
        pref_f = pref.reshape(R * S * W)
        run_off = (np.arange(R, dtype=np.int64) * S * W)[:, None]
        seqs = np.arange(self._seq, self._seq + n, dtype=np.int64)
        slot = stream.si * W  # per-request flat set offset
        # Per-request outcome columns, reduced to stats once per quantum.
        H = np.empty((R, n), dtype=bool)  # hit?
        OP = np.empty((R, n), dtype=bool)  # touched way's pref bit was set?
        OV = np.empty((R, n), dtype=bool)  # touched way held a valid line?
        # One (runs, requests, ways) CAT gather per quantum; segments
        # below slice views out of it instead of re-gathering.
        allow_q = allowed[:, stream.cpu_col, :]
        for a, b in stream.segments:
            si = stream.si[a:b]
            line = stream.line[a:b]
            sub_t = tags[:, si, :]  # (R, k, W)
            hit = sub_t == line[None, :, None]
            hit_any = hit.any(axis=2)
            way = hit.argmax(axis=2)
            if not hit_any.all():
                allow = allow_q[:, a:b, :]  # (R, k, W) view
                invalid = sub_t == -1
                freem = invalid & allow
                have_free = freem.any(axis=2)
                wmiss = freem.argmax(axis=2)
                need_vic = ~(hit_any | have_free)
                if need_vic.any():
                    vic = np.where(
                        allow & ~invalid, stamps[:, si, :], _TS_INF
                    ).argmin(axis=2)
                    wmiss = np.where(have_free, wmiss, vic)
                way = np.where(hit_any, way, wmiss)
            flat = run_off + (slot[a:b] + way)  # (R, k)
            old_p = pref_f[flat]
            H[:, a:b] = hit_any
            OP[:, a:b] = old_p
            OV[:, a:b] = tags_f[flat] != -1
            # Hits keep the bit on prefetch touches and clear it on
            # demand; fills set it iff the fill is a prefetch.
            new_p = np.where(
                hit_any, old_p & stream.is_pref[a:b][None, :], stream.is_pref[a:b][None, :]
            )
            tags_f[flat] = line[None, :]
            stamps_f[flat] = seqs[a:b][None, :]
            pref_f[flat] = new_p
        dem = stream.demand[None, :]
        ispf = stream.is_pref[None, :]
        M = ~H
        fillm = M & ispf
        self.hits += H.sum(axis=1)
        self.pref_used += (H & dem & OP).sum(axis=1)
        self.pref_evicted_unused += (M & OV & OP).sum(axis=1)
        self.pref_fills += fillm.sum(axis=1)
        dh = H & dem
        dm = M & dem
        for c, sel in stream.cpu_groups:
            hits_d[:, c] += dh[:, sel].sum(axis=1)
            mem_d[:, c] += dm[:, sel].sum(axis=1)
            pref_m[:, c] += fillm[:, sel].sum(axis=1)
        self._seq += n
        self.accesses += n


class BatchKernel:
    """Shared lane trees + merge cache for one batch of mix-affine runs.

    Build one kernel per (params, quantum, per-core traces) group, then
    :meth:`machine` a fresh :class:`LaneMachine` per run.  Runs may
    execute sequentially or interleaved; lanes are computed on first
    use and replayed ever after.
    """

    def __init__(self, params: MachineParams, *, quantum: int) -> None:
        self.params = params
        self.quantum = int(quantum)
        self._trees: dict[int, _LaneTree] = {}
        self._merge_cache: dict[tuple, tuple] = {}
        self._stream_cache: dict[int, _PreparedStream] = {}
        self.runs_built = 0

    def add_core(self, cpu: int, base_trace) -> None:
        """Register a core's shared materialized trace (forkable)."""
        if not hasattr(base_trace, "fork"):
            raise TypeError(
                "batch kernel requires forkable materialized traces "
                f"(got {type(base_trace).__name__} for core {cpu}); "
                "enable the trace plane or fall back to the scalar engine"
            )
        self._trees[cpu] = _LaneTree(self.params, base_trace)

    @property
    def lane_cores(self) -> tuple[int, ...]:
        return tuple(sorted(self._trees))

    def machine(self) -> "LaneMachine":
        """A fresh run member consuming this kernel's lanes."""
        self.runs_built += 1
        return LaneMachine(self)

    def merged(self, llc_reqs: list[list]) -> tuple:
        """Cached round-robin merge for one combination of lane edges.

        Keyed by the identity of the (immutable, kernel-owned) request
        lists — identical edge combinations across runs resolve to the
        same key, so the merge interleave is computed once per unique
        quantum shape instead of once per run.
        """
        key = tuple(id(r) if r else 0 for r in llc_reqs)
        hit = self._merge_cache.get(key)
        if hit is None:
            hit = fastengine.merge_llc_requests(llc_reqs)
            self._merge_cache[key] = hit
        return hit

    def grouped_stream(self, llc_reqs: list[list]) -> _PreparedStream:
        """Cached decoded + conflict-segmented merge for the grouped serve.

        Layered on :meth:`merged`: the cached merge tuple's identity is
        stable per unique lane combination, so the NumPy decode and the
        set-conflict segmentation are also computed once per unique
        quantum shape and shared by every run in a lockstep sweep.
        """
        pre = self.merged(llc_reqs)
        key = id(pre)
        hit = self._stream_cache.get(key)
        if hit is None:
            hit = _PreparedStream(pre[1], pre[2], self.params.llc.sets - 1)
            self._stream_cache[key] = hit
        return hit

    def trace_fallbacks(self) -> int:
        """Total zero-copy go-live fallbacks across every lane fork."""
        return sum(t.trace_fallbacks() for t in self._trees.values())


class LaneMachine(Machine):
    """A ``Machine`` whose core phase replays a :class:`BatchKernel`.

    Everything downstream of the core phase — LLC + CAT, DRAM, PMU,
    timing — is this machine's own scalar-fast state, so per-run
    control (MSR masks, CAT masks) behaves exactly as on a scalar
    machine and results are bit-identical to one.
    """

    def __init__(self, kernel: BatchKernel) -> None:
        super().__init__(kernel.params, quantum=kernel.quantum, engine=ENGINE_BATCH)
        self._kernel = kernel
        self._cursors: dict[int, _LaneCursor] = {}
        for cpu in kernel.lane_cores:
            self._cursors[cpu] = _LaneCursor(kernel._trees[cpu])
            self.cores[cpu].active = True

    def attach_trace(self, core: int, trace) -> None:  # pragma: no cover
        raise TypeError(
            "LaneMachine cores are driven by the batch kernel's lanes; "
            "register traces via BatchKernel.add_core before building runs"
        )

    def _core_phase(self, q, counts, ipm, mlp, active, llc_reqs) -> None:
        pmu_counts = self.pmu.counts
        get_mask = self.prefetch_msr.get_mask
        for cpu, cursor in self._cursors.items():
            active[cpu] = True
            e = cursor.tree.step(cursor, q, get_mask(cpu))
            qc = counts[cpu]
            qc.n_access = e.n_access
            qc.n_l2_hit_d = e.n_l2_hit_d
            llc_reqs[cpu] = e.llc_req
            ipm[cpu] = e.ipm
            mlp[cpu] = e.mlp
            # Row add: untouched events gain +0.0, which is exact for
            # the non-negative counters the PMU holds; the seven core
            # events add the same float64 integers the scalar path does.
            pmu_counts[cpu] += e.pmu_row
            cs = self.cores[cpu]
            s1, d1 = cs.l1.stats, e.l1_stats
            s1.accesses += d1[0]
            s1.hits += d1[1]
            s1.pref_fills += d1[2]
            s1.pref_used += d1[3]
            s1.pref_evicted_unused += d1[4]
            s2, d2 = cs.l2.stats, e.l2_stats
            s2.accesses += d2[0]
            s2.hits += d2[1]
            s2.pref_fills += d2[2]
            s2.pref_used += d2[3]
            s2.pref_evicted_unused += d2[4]

    def _llc_phase(self, counts, llc_reqs) -> None:
        fastengine.run_llc_phase(
            self, counts, llc_reqs, self.pmu.counts, self._kernel.merged(llc_reqs)
        )

    def private_occupancy(self, cpu: int) -> tuple[int, int]:
        """(L1, L2) occupancy of this run's lane state for ``cpu``.

        The member's own ``cores[cpu].l1/l2`` only accumulate stats
        deltas; the actual cache contents live in the lane state.
        """
        cursor = self._cursors[cpu]
        return cursor.tree.occupancy(cursor)

    def trace_fallbacks(self) -> int:
        return self._kernel.trace_fallbacks()


class StaticSweepRun:
    """One run's outputs from :func:`run_static_sweep`."""

    __slots__ = ("pmu_counts", "wall_cycles", "llc_stats", "llc_occupancy")

    def __init__(self, pmu_counts, wall_cycles, llc_stats, llc_occupancy) -> None:
        self.pmu_counts = pmu_counts  # (n_cores, N_EVENTS) float64
        self.wall_cycles = wall_cycles
        self.llc_stats = llc_stats  # (accesses, hits, fills, used, evicted)
        self.llc_occupancy = llc_occupancy


def run_static_sweep(
    kernel: BatchKernel,
    configs: list[tuple[tuple[tuple[int, int], ...], tuple[int, ...]]],
    masks: tuple[int, ...],
    n_accesses: int,
) -> list[StaticSweepRun]:
    """Advance R static runs in lockstep through one SoA kernel pass.

    ``configs`` is one ``(clos_cbms, core_clos)`` CAT configuration per
    run; ``masks`` are the per-core prefetcher masks *shared by every
    run* — that is what makes the core phase, and therefore the merged
    LLC request stream, identical across the sweep, so a single lane
    walk feeds a :class:`GroupedLLC` that serves all runs per quantum.
    Timing stays a per-run scalar fixed point fed the grouped serve's
    per-run counters, and every per-run arithmetic sequence matches a
    scalar fast machine op for op: results are bit-identical to running
    each configuration on its own machine.
    """
    params = kernel.params
    n = params.n_cores
    R = len(configs)
    # Effective per-core masks: static configs overlay MSR defaults.
    pmsr = PrefetchMsr(MsrFile(n))
    for cpu, m in enumerate(masks):
        pmsr.set_mask(cpu, m)
    eff_mask = [pmsr.get_mask(cpu) for cpu in range(n)]
    # Per-run CAT -> (runs, cpus, ways) boolean allowed-way matrix.
    W = params.llc.ways
    allowed = np.zeros((R, n, W), dtype=bool)
    for r, (clos_cbms, core_clos) in enumerate(configs):
        cat = CatController(W, n)
        for clos, cbm in clos_cbms:
            cat.set_cbm(clos, cbm)
        for cpu, clos in enumerate(core_clos):
            cat.assign_core(cpu, clos)
        for cpu in range(n):
            for w in cat.allowed_ways(cpu):
                allowed[r, cpu, w] = True

    glc = GroupedLLC(params.llc, R)
    cursors = {cpu: _LaneCursor(kernel._trees[cpu]) for cpu in kernel.lane_cores}
    pmu = [np.zeros((n, N_EVENTS), dtype=np.float64) for _ in range(R)]
    wall = [0.0] * R
    drams = [DramModel(params) for _ in range(R)]
    line_bytes = float(params.line_bytes)
    hits_d = np.zeros((R, n), dtype=np.int64)
    mem_d = np.zeros((R, n), dtype=np.int64)
    pref_m = np.zeros((R, n), dtype=np.int64)

    remaining = int(n_accesses)
    while remaining > 0:
        q = min(kernel.quantum, remaining)
        llc_reqs: list[list] = [[] for _ in range(n)]
        edges = {}
        for cpu, cursor in cursors.items():
            e = cursor.tree.step(cursor, q, eff_mask[cpu])
            edges[cpu] = e
            llc_reqs[cpu] = e.llc_req
        stream = kernel.grouped_stream(llc_reqs)
        hits_d[:] = 0
        mem_d[:] = 0
        pref_m[:] = 0
        if stream.n:
            glc.serve(stream, allowed, hits_d, mem_d, pref_m)
        active = [False] * n
        ipm = [0.0] * n
        mlp = [1.0] * n
        for cpu, e in edges.items():
            active[cpu] = True
            ipm[cpu] = e.ipm
            mlp[cpu] = e.mlp
        for r in range(R):
            counts = [QuantumCounts() for _ in range(n)]
            prow = pmu[r]
            for cpu, e in edges.items():
                qc = counts[cpu]
                qc.n_access = e.n_access
                qc.n_l2_hit_d = e.n_l2_hit_d
                qc.n_llc_hit_d = int(hits_d[r, cpu])
                nm = int(mem_d[r, cpu])
                if nm:
                    qc.n_mem_d = nm
                    qc.demand_bytes = nm * line_bytes
                    prow[cpu, Event.L3_LOAD_MISS] += nm
                npf = int(pref_m[r, cpu])
                if npf:
                    qc.pref_bytes = npf * line_bytes
                prow[cpu] += e.pmu_row
            timing = solve_quantum(params, drams[r], counts, ipm, mlp, active)
            demand_b = 0.0
            pref_b = 0.0
            for cpu in range(n):
                if not active[cpu]:
                    continue
                c = counts[cpu]
                prow[cpu, Event.INSTRUCTIONS] += c.n_access * (1.0 + ipm[cpu])
                prow[cpu, Event.CYCLES] += timing.cycles[cpu]
                prow[cpu, Event.STALLS_L2_PENDING] += timing.stalls_l2_pending[cpu]
                prow[cpu, Event.MEM_DEMAND_BYTES] += c.demand_bytes
                prow[cpu, Event.MEM_PREF_BYTES] += c.pref_bytes
                demand_b += c.demand_bytes
                pref_b += c.pref_bytes
            drams[r].account(demand_b, pref_b)
            wall[r] += timing.machine_cycles
        remaining -= q

    return [
        StaticSweepRun(pmu[r], wall[r], glc.stats_for(r), glc.occupancy(r)) for r in range(R)
    ]
