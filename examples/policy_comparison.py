#!/usr/bin/env python
"""Compare all seven mechanisms on one workload category (mini Fig. 13).

    python examples/policy_comparison.py [category] [scale]

category: pref_fri | pref_agg | pref_unfri | pref_no_agg (default pref_unfri)
"""

import sys

import numpy as np

from repro import ExperimentSession, get_scale, make_mixes
from repro.experiments.report import render_table

MECHANISMS = ("pt", "dunn", "pref-cp", "pref-cp2", "cmm-a", "cmm-b", "cmm-c")


def main() -> None:
    category = sys.argv[1] if len(sys.argv) > 1 else "pref_unfri"
    sc = get_scale(sys.argv[2] if len(sys.argv) > 2 else None)
    mixes = make_mixes(category, sc.workloads_per_category, seed=sc.seed)
    print(f"category={category}  scale={sc.name}  workloads={len(mixes)}")

    # Runs are deduplicated (shared baselines/alone runs), executed in
    # parallel on cache misses, and replayed from disk on a re-run.
    session = ExperimentSession()

    rows = []
    per_mech: dict[str, list[float]] = {m: [] for m in MECHANISMS}
    for ev in session.sweep(MECHANISMS, sc, mixes=mixes):
        mix = ev.mix
        print(f"  evaluated {mix.name} ({', '.join(mix.benchmarks[:3])}, ...)")
        row = [mix.name] + [ev.metric(m, "hs_norm") for m in MECHANISMS]
        rows.append(row)
        for m in MECHANISMS:
            per_mech[m].append(ev.metric(m, "hs_norm"))

    rows.append(["MEAN"] + [float(np.mean(per_mech[m])) for m in MECHANISMS])
    print()
    print(render_table(["workload"] + list(MECHANISMS), rows,
                       title=f"Normalized harmonic speedup vs. baseline — {category}"))

    best = max(MECHANISMS, key=lambda m: np.mean(per_mech[m]))
    print(f"\nbest mechanism on {category}: {best} "
          f"(+{(np.mean(per_mech[best]) - 1) * 100:.1f}% HS over baseline)")


if __name__ == "__main__":
    main()
