#!/usr/bin/env python
"""Regenerate every paper table/figure and emit a markdown report.

    python examples/regenerate_figures.py [scale] > report.md

This is the script that produced the measured numbers recorded in
EXPERIMENTS.md.  At ``full`` scale it takes a while; ``tiny`` finishes
in a couple of minutes.
"""

import sys
import time

from repro.experiments.config import get_scale
from repro.experiments.figures import (
    ALL_MECHS,
    fig01_bandwidth,
    fig02_prefetch_speedup,
    fig03_way_sensitivity,
    fig05_detection,
    fig13_all,
    fig14_bandwidth,
    fig15_stalls,
    get_store,
    table1_metrics,
)
from repro.workloads.mixes import CATEGORIES


def md_table(headers, rows):
    def fmt(v):
        return f"{v:.3f}" if isinstance(v, float) else str(v)

    out = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    out += ["| " + " | ".join(fmt(c) for c in row) + " |" for row in rows]
    return "\n".join(out)


def category_means_table(d):
    mechs = list(next(iter(d["category_means"].values())))
    rows = [[cat] + [d["category_means"][cat][m] for m in mechs] for cat in CATEGORIES]
    return md_table(["category"] + mechs, rows)


def main() -> None:
    sc = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    t0 = time.time()
    print(f"# Regenerated figures (scale = {sc.name})\n")

    d = fig01_bandwidth(sc)
    print("## Fig. 1 — memory bandwidth (MB/s), prefetch off demand vs. on total\n")
    print(md_table(["benchmark", "demand", "total", "increase %"],
                   [[r["benchmark"], r["demand_bw_mbs"], r["total_bw_mbs"], r["increase_pct"]]
                    for r in d["rows"]]))

    d = fig02_prefetch_speedup(sc)
    print("\n## Fig. 2 — IPC speedup from prefetching\n")
    print(md_table(["benchmark", "IPC on", "IPC off", "speedup %"],
                   [[r["benchmark"], r["ipc_on"], r["ipc_off"], r["speedup_pct"]]
                    for r in d["rows"]]))

    d = fig03_way_sensitivity(sc)
    print("\n## Fig. 3 — LLC way sensitivity\n")
    print(md_table(["benchmark", "min ways for 90%", "min ways for 80%"],
                   [[r["benchmark"], r["min_ways_90pct"], r["min_ways_80pct"]]
                    for r in d["rows"]]))

    d = fig05_detection(sc)
    print("\n## Fig. 5 — detected Agg sets\n")
    print(md_table(["workload", "agg cores", "agg benchmarks"],
                   [[r["workload"], str(r["agg_set"]), ", ".join(r["agg_benchmarks"])]
                    for r in d["rows"]]))

    d = table1_metrics(sc)
    print("\n## Table I — metrics on one pref_agg workload\n")
    print(md_table(["core", "benchmark", "M2", "M3 PTR/s", "M4 PGA", "M5 PMR", "M6 PPM", "M7 B/s"],
                   [[r["core"], r["benchmark"], r["M2_l2_pref_miss_frac"], r["M3_l2_ptr"],
                     r["M4_pga"], r["M5_l2_pmr"], r["M6_l2_ppm"], r["M7_llc_pt"]]
                    for r in d["rows"]]))

    store = get_store(sc)
    store.sweep(ALL_MECHS)  # one pass fills the cache for figs 7-15

    from repro.experiments.figures import (
        fig07_pt, fig08_pt_worstcase, fig09_cp, fig10_cp_worstcase,
        fig11_cmm, fig12_cmm_worstcase,
    )

    for title, fn in [
        ("Fig. 7 — PT normalized HS (category means)", fig07_pt),
        ("Fig. 8 — PT worst-case speedup", fig08_pt_worstcase),
        ("Fig. 9 — CP normalized HS", fig09_cp),
        ("Fig. 10 — CP worst-case speedup", fig10_cp_worstcase),
        ("Fig. 11 — CMM normalized HS", fig11_cmm),
        ("Fig. 12 — CMM worst-case speedup", fig12_cmm_worstcase),
        ("Fig. 13 — all mechanisms, normalized HS", fig13_all),
        ("Fig. 14 — normalized memory traffic", fig14_bandwidth),
        ("Fig. 15 — normalized L2-pending stalls", fig15_stalls),
    ]:
        d = fn(sc, store)
        print(f"\n## {title}\n")
        print(category_means_table(d))

    print(f"\n_(generated in {time.time() - t0:.0f}s)_", file=sys.stderr)


if __name__ == "__main__":
    main()
