#!/usr/bin/env python
"""Regenerate every paper table/figure and emit a markdown report.

    python examples/regenerate_figures.py [scale] > report.md

This is the script that produced the measured numbers recorded in
EXPERIMENTS.md.  All simulation goes through an
:class:`~repro.experiments.engine.ExperimentSession`: runs are
deduplicated, cache misses fan out over ``REPRO_WORKERS`` processes,
and every result persists in the on-disk cache (``REPRO_CACHE_DIR``),
so a warm re-run replays in seconds instead of re-simulating.  At
``full`` scale the first (cold) pass takes a while; ``tiny`` finishes
in a couple of minutes cold and seconds warm.
"""

import os
import sys
import time

from repro.experiments.config import get_scale
from repro.experiments.engine import ExperimentSession, set_default_session
from repro.experiments.figures import (
    ALL_MECHS,
    EvalStore,
    fig01_bandwidth,
    fig02_prefetch_speedup,
    fig03_way_sensitivity,
    fig05_detection,
    fig13_all,
    fig14_bandwidth,
    fig15_stalls,
    table1_metrics,
)
from repro.workloads.mixes import CATEGORIES


def md_table(headers, rows):
    def fmt(v):
        return f"{v:.3f}" if isinstance(v, float) else str(v)

    out = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    out += ["| " + " | ".join(fmt(c) for c in row) + " |" for row in rows]
    return "\n".join(out)


def category_means_table(d):
    mechs = list(next(iter(d["category_means"].values())))
    rows = [[cat] + [d["category_means"][cat][m] for m in mechs] for cat in CATEGORIES]
    return md_table(["category"] + mechs, rows)


def main() -> None:
    sc = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    t0 = time.time()

    def progress(rec, done, total):
        status = "cached" if rec.cached else f"{rec.seconds:5.1f}s"
        print(f"[{done}/{total}] {status}  {rec.label}", file=sys.stderr)

    verbose = bool(os.environ.get("REPRO_PROGRESS"))
    session = ExperimentSession(progress=progress if verbose else None)
    set_default_session(session)  # figure drivers share the same store
    store = EvalStore(sc, session=session)

    print(f"# Regenerated figures (scale = {sc.name})\n")

    d = fig01_bandwidth(sc)
    print("## Fig. 1 — memory bandwidth (MB/s), prefetch off demand vs. on total\n")
    print(md_table(["benchmark", "demand", "total", "increase %"],
                   [[r["benchmark"], r["demand_bw_mbs"], r["total_bw_mbs"], r["increase_pct"]]
                    for r in d["rows"]]))

    d = fig02_prefetch_speedup(sc)
    print("\n## Fig. 2 — IPC speedup from prefetching\n")
    print(md_table(["benchmark", "IPC on", "IPC off", "speedup %"],
                   [[r["benchmark"], r["ipc_on"], r["ipc_off"], r["speedup_pct"]]
                    for r in d["rows"]]))

    d = fig03_way_sensitivity(sc)
    print("\n## Fig. 3 — LLC way sensitivity\n")
    print(md_table(["benchmark", "min ways for 90%", "min ways for 80%"],
                   [[r["benchmark"], r["min_ways_90pct"], r["min_ways_80pct"]]
                    for r in d["rows"]]))

    d = fig05_detection(sc)
    print("\n## Fig. 5 — detected Agg sets\n")
    print(md_table(["workload", "agg cores", "agg benchmarks"],
                   [[r["workload"], str(r["agg_set"]), ", ".join(r["agg_benchmarks"])]
                    for r in d["rows"]]))

    d = table1_metrics(sc)
    print("\n## Table I — metrics on one pref_agg workload\n")
    print(md_table(["core", "benchmark", "M2", "M3 PTR/s", "M4 PGA", "M5 PMR", "M6 PPM", "M7 B/s"],
                   [[r["core"], r["benchmark"], r["M2_l2_pref_miss_frac"], r["M3_l2_ptr"],
                     r["M4_pga"], r["M5_l2_pmr"], r["M6_l2_ppm"], r["M7_llc_pt"]]
                    for r in d["rows"]]))

    store.sweep(ALL_MECHS)  # one deduplicated, parallel pass for figs 7-15

    from repro.experiments.figures import (
        fig07_pt, fig08_pt_worstcase, fig09_cp, fig10_cp_worstcase,
        fig11_cmm, fig12_cmm_worstcase,
    )

    for title, fn in [
        ("Fig. 7 — PT normalized HS (category means)", fig07_pt),
        ("Fig. 8 — PT worst-case speedup", fig08_pt_worstcase),
        ("Fig. 9 — CP normalized HS", fig09_cp),
        ("Fig. 10 — CP worst-case speedup", fig10_cp_worstcase),
        ("Fig. 11 — CMM normalized HS", fig11_cmm),
        ("Fig. 12 — CMM worst-case speedup", fig12_cmm_worstcase),
        ("Fig. 13 — all mechanisms, normalized HS", fig13_all),
        ("Fig. 14 — normalized memory traffic", fig14_bandwidth),
        ("Fig. 15 — normalized L2-pending stalls", fig15_stalls),
    ]:
        d = fn(sc, store)
        print(f"\n## {title}\n")
        print(category_means_table(d))

    hits = sum(1 for r in session.records if r.cached)
    simulated = len(session.records) - hits
    sim_secs = sum(r.seconds for r in session.records)
    print(
        f"\n_(generated in {time.time() - t0:.0f}s: {simulated} runs simulated "
        f"[{sim_secs:.0f}s of simulation], {hits} replayed from cache, "
        f"{session.max_workers} worker(s))_",
        file=sys.stderr,
    )


if __name__ == "__main__":
    main()
