#!/usr/bin/env python
"""Regenerate every paper table/figure and emit a markdown report.

    python examples/regenerate_figures.py [scale] [--artifacts DIR] > report.md

This is the script that produced the measured numbers recorded in
EXPERIMENTS.md.  It is now a thin driver over :mod:`repro.analysis`:
the figure registry builds every figure through one shared
:class:`~repro.experiments.engine.ExperimentSession` (deduplicated,
parallel on misses, persisted in the on-disk cache), the markdown
tables render through the shared formatter, and ``--artifacts DIR``
additionally emits the canonical CSV + Vega-Lite artifact set
(``repro figures`` is the CLI equivalent).  At ``full`` scale the
first (cold) pass takes a while; ``tiny`` finishes in a couple of
minutes cold and seconds warm.
"""

import os
import sys
import time

from repro.analysis import build_artifacts, render_markdown_table, write_artifacts
from repro.experiments.config import get_scale
from repro.experiments.engine import ExperimentSession, set_default_session
from repro.workloads.mixes import CATEGORIES

md_table = render_markdown_table

#: (figure id, section title, row renderer).  Mechanism figures (7-15)
#: have no renderer here: they all print their category-means table.
SECTIONS = {
    "fig01": ("Fig. 1 — memory bandwidth (MB/s), prefetch off demand vs. on total",
              ["benchmark", "demand", "total", "increase %"],
              lambda r: [r["benchmark"], r["demand_bw_mbs"], r["total_bw_mbs"], r["increase_pct"]]),
    "fig02": ("Fig. 2 — IPC speedup from prefetching",
              ["benchmark", "IPC on", "IPC off", "speedup %"],
              lambda r: [r["benchmark"], r["ipc_on"], r["ipc_off"], r["speedup_pct"]]),
    "fig03": ("Fig. 3 — LLC way sensitivity",
              ["benchmark", "min ways for 90%", "min ways for 80%"],
              lambda r: [r["benchmark"], r["min_ways_90pct"], r["min_ways_80pct"]]),
    "fig05": ("Fig. 5 — detected Agg sets",
              ["workload", "agg cores", "agg benchmarks"],
              lambda r: [r["workload"], str(r["agg_set"]), ", ".join(r["agg_benchmarks"])]),
    "table1": ("Table I — metrics on one pref_agg workload",
               ["core", "benchmark", "M2", "M3 PTR/s", "M4 PGA", "M5 PMR", "M6 PPM", "M7 B/s"],
               lambda r: [r["core"], r["benchmark"], r["M2_l2_pref_miss_frac"], r["M3_l2_ptr"],
                          r["M4_pga"], r["M5_l2_pmr"], r["M6_l2_ppm"], r["M7_llc_pt"]]),
}

MECHANISM_TITLES = {
    "fig07": "Fig. 7 — PT normalized HS (category means)",
    "fig08": "Fig. 8 — PT worst-case speedup",
    "fig09": "Fig. 9 — CP normalized HS",
    "fig10": "Fig. 10 — CP worst-case speedup",
    "fig11": "Fig. 11 — CMM normalized HS",
    "fig12": "Fig. 12 — CMM worst-case speedup",
    "fig13": "Fig. 13 — all mechanisms, normalized HS",
    "fig14": "Fig. 14 — normalized memory traffic",
    "fig15": "Fig. 15 — normalized L2-pending stalls",
}

#: Presentation order: alone/profile figures first, then the sweep.
ORDER = ("fig01", "fig02", "fig03", "fig05", "table1") + tuple(MECHANISM_TITLES)


def category_means_table(d):
    mechs = list(next(iter(d["category_means"].values())))
    rows = [[cat] + [d["category_means"][cat][m] for m in mechs] for cat in CATEGORIES]
    return md_table(["category"] + mechs, rows)


def main() -> None:
    argv = list(sys.argv[1:])
    artifacts_dir = None
    if "--artifacts" in argv:
        i = argv.index("--artifacts")
        artifacts_dir = argv[i + 1]
        del argv[i:i + 2]
    sc = get_scale(argv[0] if argv else None)
    t0 = time.time()

    def progress(rec, done, total):
        status = "cached" if rec.cached else f"{rec.seconds:5.1f}s"
        print(f"[{done}/{total}] {status}  {rec.label}", file=sys.stderr)

    verbose = bool(os.environ.get("REPRO_PROGRESS"))
    session = ExperimentSession(progress=progress if verbose else None)
    set_default_session(session)  # figure drivers share the same store

    built = build_artifacts(list(ORDER), sc, session=session)

    print(f"# Regenerated figures (scale = {sc.name})\n")
    for bf in built:
        if bf.fig_id in SECTIONS:
            title, headers, to_row = SECTIONS[bf.fig_id]
            print(f"## {title}\n" if bf.fig_id == ORDER[0] else f"\n## {title}\n")
            print(md_table(headers, [to_row(r) for r in bf.figure["rows"]]))
        else:
            print(f"\n## {MECHANISM_TITLES[bf.fig_id]}\n")
            print(category_means_table(bf.figure))

    if artifacts_dir:
        paths = write_artifacts(built, artifacts_dir, scale=sc.name, seed=sc.seed)
        print(f"\nwrote {len(paths)} canonical artifacts to {artifacts_dir}", file=sys.stderr)

    hits = sum(1 for r in session.records if r.cached)
    simulated = len(session.records) - hits
    sim_secs = sum(r.seconds for r in session.records)
    print(
        f"\n_(generated in {time.time() - t0:.0f}s: {simulated} runs simulated "
        f"[{sim_secs:.0f}s of simulation], {hits} replayed from cache, "
        f"{session.max_workers} worker(s))_",
        file=sys.stderr,
    )


if __name__ == "__main__":
    main()
