#!/usr/bin/env python
"""Quickstart: evaluate CMM on one multiprogrammed workload.

Builds an 8-core machine, runs one prefetch-aggressive workload mix
under the baseline (no control) and under the coordinated CMM-a
mechanism, and prints the paper's headline metrics.

    python examples/quickstart.py [scale]

``scale`` is tiny (default), small or full.
"""

import sys

from repro import ExperimentSession, get_scale, make_mixes


def main() -> None:
    sc = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    mix = make_mixes("pref_agg", 1, seed=sc.seed)[0]

    print(f"scale           : {sc.name}")
    print(f"workload        : {mix.name}")
    for core, bench in enumerate(mix.benchmarks):
        print(f"  core {core}: {bench}")

    print("\nrunning baseline and cmm-a ...")
    session = ExperimentSession()  # cached on disk; instant on a re-run
    ev = session.evaluate(mix, ("cmm-a",), sc)

    base = ev.metrics["baseline"]
    cmm = ev.metrics["cmm-a"]
    print(f"\nbaseline harmonic speedup (vs alone) : {base['hs']:.3f}")
    print(f"cmm-a    harmonic speedup (vs alone) : {cmm['hs']:.3f}")
    print(f"normalized HS  (cmm-a / baseline)    : {cmm['hs_norm']:.3f}")
    print(f"normalized WS                        : {cmm['ws']:.3f}")
    print(f"worst-case per-app speedup           : {cmm['worst']:.3f}")
    print(f"memory bandwidth vs baseline         : {cmm['bw_norm']:.3f}")
    print(f"L2-pending stalls vs baseline        : {cmm['stalls_norm']:.3f}")

    print("\nper-core IPC (baseline -> cmm-a):")
    for core, bench in enumerate(mix.benchmarks):
        b = ev.baseline.ipc[core]
        c = ev.runs["cmm-a"].ipc[core]
        print(f"  core {core} {bench:16s} {b:6.3f} -> {c:6.3f}  ({(c / b - 1) * 100:+5.1f}%)")


if __name__ == "__main__":
    main()
