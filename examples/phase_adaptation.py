#!/usr/bin/env python
"""Watch CMM adapt to program phases, epoch by epoch.

Core 0 alternates between a prefetch-aggressive streaming phase and a
quiet compute phase; the remaining cores run LLC-sensitive and compute
workloads.  The decision timeline shows CMM re-detecting the Agg set
every epoch and changing its partitions/throttles accordingly — the
reason the paper samples periodically rather than deciding once.

    python examples/phase_adaptation.py
"""

from repro.core.controller import CMMController
from repro.core.coordinated import CMMPolicy
from repro.core.epoch import EpochConfig
from repro.experiments.analysis import timeline_summary
from repro.experiments.config import get_scale
from repro.platform.simulated import SimulatedPlatform
from repro.sim.machine import Machine
from repro.sim.trace import PhasedTrace, SequentialStream, TraceGenerator
from repro.workloads.speclike import build_trace


def main() -> None:
    sc = get_scale()
    params = sc.params()
    m = Machine(params, quantum=sc.quantum)

    base0 = m.core_base_line(0)
    streaming_phase = TraceGenerator(
        [SequentialStream(1, base0, params.llc.lines * 4)], [1.0],
        inst_per_mem=5.0, mlp=8.0, seed=1,
    )
    compute_phase = TraceGenerator(
        [SequentialStream(2, base0 + (1 << 28), 64)], [1.0],
        inst_per_mem=12.0, mlp=3.0, seed=2,
    )
    epoch_accesses = sc.exec_units + 12 * sc.sample_units
    m.attach_trace(0, PhasedTrace([streaming_phase, compute_phase], epoch_accesses))

    others = ["429.mcf", "483.xalancbmk", "453.povray", "416.gamess", "444.namd"]
    for core, bench in enumerate(others, start=1):
        m.attach_trace(core, build_trace(
            bench, llc_lines=params.llc.lines, base_line=m.core_base_line(core), seed=core))

    policy = CMMPolicy("a")
    agg_history = []
    original_plan = policy.plan

    def recording_plan(ctx):
        rc = original_plan(ctx)
        agg_history.append(policy.last_agg_set)
        return rc

    policy.plan = recording_plan

    ctl = CMMController(
        SimulatedPlatform(m), policy,
        epoch_cfg=EpochConfig(exec_units=sc.exec_units, sample_units=sc.sample_units),
    )
    n_epochs = 4
    print(f"running {n_epochs} epochs (core 0 phase flips each epoch)...\n")
    stats = ctl.run(n_epochs)

    print("Agg set per epoch:", [list(a) for a in agg_history])
    print("\nDecision timeline:")
    print(timeline_summary(stats))
    print("\nCore 0 is detected only during its streaming phases;")
    print("in its quiet phases CMM falls back to Dunn partitioning (option d).")


if __name__ == "__main__":
    main()
