#!/usr/bin/env python
"""Interference anatomy: one LLC-sensitive victim vs. aggressive neighbours.

Reproduces the paper's motivation (Sec. II) on the raw simulator API:
a pointer-chasing victim (429.mcf-like) shares the machine with
prefetch-aggressive streams and a Rand Access core.  We measure the
victim alone, co-run unmanaged, with a CAT partition confining the
aggressors, with the useless prefetchers throttled, and with both —
showing where each resource control helps.

    python examples/interference_study.py
"""

from repro.sim.cat import low_ways_mask
from repro.sim.machine import Machine
from repro.sim.params import scaled_params
from repro.sim.pmu import Event
from repro.workloads.speclike import build_trace

PARAMS = scaled_params(16)
N = 40_000
VICTIM = "429.mcf"
STREAMS = ["410.bwaves", "462.libquantum", "459.GemsFDTD", "470.lbm"]
RANDOMS = ["rand_access", "rand_access", "rand_access"]


def build(co_run: bool) -> Machine:
    m = Machine(PARAMS, quantum=1024)
    m.attach_trace(
        0, build_trace(VICTIM, llc_lines=PARAMS.llc.lines, base_line=m.core_base_line(0), seed=0)
    )
    if co_run:
        for core, bench in enumerate(STREAMS + RANDOMS, start=1):
            m.attach_trace(
                core,
                build_trace(bench, llc_lines=PARAMS.llc.lines, base_line=m.core_base_line(core), seed=core),
            )
    return m


def run(m: Machine) -> dict:
    m.run_accesses(N)  # warm up
    snap = m.pmu.snapshot()
    m.run_accesses(N)
    s = m.pmu.delta_since(snap)
    return {
        "ipc": s.ipc(0),
        "l3_miss": s.get(0, Event.L3_LOAD_MISS),
        "stalls": s.get(0, Event.STALLS_L2_PENDING),
    }


def main() -> None:
    alone = run(build(co_run=False))
    print(f"victim ({VICTIM}) alone:        ipc={alone['ipc']:.3f}")

    results = {}

    m = build(co_run=True)
    results["unmanaged co-run"] = run(m)

    m = build(co_run=True)
    m.cat.set_cbm(1, low_ways_mask(6, PARAMS.llc.ways))  # aggressors -> 6 low ways
    for core in range(1, 8):
        m.cat.assign_core(core, 1)
    results["CAT partition (aggressors -> 6 ways)"] = run(m)

    m = build(co_run=True)
    for core in range(5, 8):  # the Rand Access cores
        m.prefetch_msr.set_all_off(core)
    results["throttle useless prefetchers"] = run(m)

    m = build(co_run=True)
    m.cat.set_cbm(1, low_ways_mask(6, PARAMS.llc.ways))
    for core in range(1, 8):
        m.cat.assign_core(core, 1)
    for core in range(5, 8):
        m.prefetch_msr.set_all_off(core)
    results["partition + throttle (coordinated)"] = run(m)

    print(f"\n{'configuration':40s} {'victim IPC':>10s} {'vs alone':>9s} {'L3 misses':>10s}")
    for name, r in results.items():
        print(f"{name:40s} {r['ipc']:10.3f} {r['ipc'] / alone['ipc']:8.1%} {r['l3_miss']:10.0f}")

    coord = results["partition + throttle (coordinated)"]["ipc"]
    unmanaged = results["unmanaged co-run"]["ipc"]
    print(f"\ncoordinated control recovers {coord / unmanaged:.2f}x of the victim's co-run IPC")


if __name__ == "__main__":
    main()
