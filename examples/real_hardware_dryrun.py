#!/usr/bin/env python
"""Dry-run of the real-hardware backend (resctrl + MSR).

On an actual Intel Xeon with CAT you would run the CMM controller with
``LinuxPlatform`` pointed at the real ``/sys/fs/resctrl`` and
``/dev/cpu``; this example exercises exactly that code path against a
throwaway fake filesystem tree, printing the resctrl schemata and MSR
writes the controller would issue.

    python examples/real_hardware_dryrun.py
"""

import tempfile
from pathlib import Path

from repro.core.allocation import ResourceConfig
from repro.platform.linux import LinuxPlatform, MsrDevice
from repro.platform.resctrl import ResctrlFs

N_CORES = 8
LLC_WAYS = 20


def make_fake_tree(root: Path) -> tuple[ResctrlFs, MsrDevice]:
    resctrl_root = root / "sys" / "fs" / "resctrl"
    resctrl_root.mkdir(parents=True)
    (resctrl_root / "schemata").write_text(f"L3:0={(1 << LLC_WAYS) - 1:x}\n")
    (resctrl_root / "cpus_list").write_text(f"0-{N_CORES - 1}\n")
    dev_root = root / "dev" / "cpu"
    for cpu in range(N_CORES):
        d = dev_root / str(cpu)
        d.mkdir(parents=True)
        (d / "msr").write_bytes(b"\x00" * 0x400)
    return ResctrlFs(resctrl_root), MsrDevice(dev_root)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        resctrl, msr = make_fake_tree(root)
        plat = LinuxPlatform(N_CORES, LLC_WAYS, resctrl=resctrl, msr=msr, sleep=lambda s: None)

        # A CMM-c style allocation: friendly aggressors {2,3} in a small
        # partition, unfriendly {6,7} in a separate one AND throttled.
        config = (
            ResourceConfig.all_on(N_CORES, LLC_WAYS)
            .with_partition(1, 0b111, [2, 3])
            .with_partition(2, 0b11000, [6, 7])
            .with_prefetch_off([6, 7])
        )
        config.apply(plat)

        print("resctrl tree after applying the CMM-c configuration:\n")
        for group in [None] + plat.resctrl.list_groups():
            name = group or "(root)"
            cbm = plat.resctrl.read_l3_cbm(group)
            cpus = plat.resctrl.read_cpus(group)
            print(f"  {name:12s} schemata=L3:0={cbm:x}   cpus={cpus}")

        print("\nMSR 0x1A4 per core (0x0 = all prefetchers on, 0xF = all off):")
        for cpu in range(N_CORES):
            print(f"  cpu {cpu}: {plat.prefetch_mask(cpu):#x}")

        plat.reset_partitions()
        print(f"\nafter reset: groups={plat.resctrl.list_groups()} "
              f"root cbm={plat.resctrl.read_l3_cbm(None):#x}")

    print("\nOn real hardware: mount resctrl, run as root, construct")
    print("LinuxPlatform() with default paths and a perf-based pmu_reader,")
    print("then drive it with repro.core.CMMController exactly as the")
    print("simulated backend is driven.")


if __name__ == "__main__":
    main()
