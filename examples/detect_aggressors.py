#!/usr/bin/env python
"""Front-end walkthrough: Table I metrics and the Fig. 5 detector.

Runs one sampling interval of a mixed workload and shows every stage
of the Agg-set detection pipeline, then the friendliness probe
(second sampling interval with Agg prefetchers off).

    python examples/detect_aggressors.py
"""

from repro.core.allocation import ResourceConfig
from repro.core.frontend import AggDetector
from repro.core.metrics_defs import summarize_sample
from repro.experiments.config import get_scale
from repro.experiments.runner import build_machine
from repro.platform.simulated import SimulatedPlatform
from repro.workloads.mixes import make_mixes


def main() -> None:
    sc = get_scale()
    mix = make_mixes("pref_agg", 1, seed=sc.seed)[0]
    machine = build_machine(mix, sc)
    plat = SimulatedPlatform(machine)

    plat.run_interval(4096)  # warm up the caches
    sample_on = plat.run_interval(sc.sample_units)
    on = summarize_sample(sample_on, plat.cycles_per_second)

    print("Sampling interval 1 (all prefetchers on) — Table I metrics:\n")
    print(f"{'core':4s} {'benchmark':16s} {'ipc':>6s} {'PGA':>6s} {'PMR':>5s} {'PTR/s':>10s} {'LLC_PT B/s':>11s}")
    for s in on:
        m = s.metrics
        print(f"{s.cpu:4d} {mix.benchmarks[s.cpu]:16s} {s.ipc:6.3f} {m.pga:6.2f} "
              f"{m.l2_pmr:5.2f} {m.l2_ptr:10.2e} {m.llc_pt:11.2e}")

    detector = AggDetector()
    report = detector.detect(on)
    print(f"\nFig. 5 pipeline:")
    print(f"  PGA mean                  : {report.pga_mean:.3f}")
    print(f"  stage 1 (PGA)   survivors : {report.candidates_pga}")
    print(f"  stage 2 (PMR)   survivors : {report.candidates_pmr}")
    print(f"  stage 3 (PTR)   survivors : {report.candidates_ptr}")
    print(f"  Agg set                   : {report.agg_set}"
          f"  -> {[mix.benchmarks[c] for c in report.agg_set]}")

    if not report.agg_set:
        print("\nAgg set empty — CMM would fall back to Dunn partitioning.")
        return

    base = ResourceConfig.all_on(plat.n_cores, plat.llc_ways)
    base.with_prefetch_off(report.agg_set).apply(plat)
    sample_off = plat.run_interval(sc.sample_units)
    off = summarize_sample(sample_off, plat.cycles_per_second)

    print("\nSampling interval 2 (Agg prefetchers off) — friendliness probe:\n")
    print(f"{'core':4s} {'benchmark':16s} {'ipc on':>7s} {'ipc off':>7s} {'speedup':>8s} verdict")
    for c in report.agg_set:
        speedup = on[c].ipc / off[c].ipc - 1.0 if off[c].ipc > 0 else 0.0
        verdict = "prefetch FRIENDLY" if speedup > 0.5 else "prefetch unfriendly"
        print(f"{c:4d} {mix.benchmarks[c]:16s} {on[c].ipc:7.3f} {off[c].ipc:7.3f} "
              f"{speedup:8.1%} {verdict}")


if __name__ == "__main__":
    main()
