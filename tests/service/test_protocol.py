"""Wire protocol: run serialization roundtrips and eager validation."""

import dataclasses
import json

import pytest

from repro.experiments.config import TINY
from repro.experiments.engine import (
    KIND_ALONE,
    KIND_HOOK,
    KIND_MECHANISM,
    KIND_PROFILE,
    PlannedRun,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    run_from_wire,
    run_to_wire,
)
from repro.workloads.mixes import make_mixes

SC = dataclasses.replace(TINY, name="unit")


def sample_runs() -> list[PlannedRun]:
    mix = make_mixes("pref_agg", 1, seed=7)[0]
    return [
        PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="cmm-a"),
        PlannedRun(KIND_ALONE, SC, bench="429.mcf"),
        PlannedRun(KIND_PROFILE, SC, bench="429.mcf", way_sweep=(1, 2, 4)),
        PlannedRun(KIND_HOOK, SC, bench="tests.chaos.workers:ok_a"),
    ]


class TestRoundtrip:
    @pytest.mark.parametrize("idx", range(4))
    def test_key_survives_the_wire(self, idx):
        run = sample_runs()[idx]
        restored = run_from_wire(run_to_wire(run))
        assert restored.key() == run.key()
        assert restored.kind == run.kind
        assert restored.label == run.label

    def test_wire_objects_are_json_and_line_safe(self):
        for run in sample_runs():
            wire = run_to_wire(run)
            json.dumps(wire)  # must not raise
            assert decode_line(encode_line(wire)) == wire

    def test_custom_scale_travels_whole(self):
        sc = dataclasses.replace(TINY, name="custom", alone_accesses=1234)
        restored = run_from_wire(run_to_wire(PlannedRun(KIND_ALONE, sc, bench="433.milc")))
        assert restored.sc == sc


class TestValidation:
    def test_missing_kind_rejected(self):
        with pytest.raises(ProtocolError, match="kind"):
            run_from_wire({"v": PROTOCOL_VERSION, "scale": dataclasses.asdict(SC)})

    def test_unknown_kind_rejected(self):
        wire = run_to_wire(sample_runs()[1]) | {"kind": "bogus"}
        with pytest.raises(ProtocolError, match="unknown run kind"):
            run_from_wire(wire)

    def test_wrong_wire_version_rejected(self):
        wire = run_to_wire(sample_runs()[1]) | {"v": 999}
        with pytest.raises(ProtocolError, match="version"):
            run_from_wire(wire)

    def test_mechanism_without_mix_rejected(self):
        wire = run_to_wire(sample_runs()[0])
        del wire["mix"]
        with pytest.raises(ProtocolError, match="mix"):
            run_from_wire(wire)

    def test_alone_without_bench_rejected(self):
        wire = run_to_wire(sample_runs()[1])
        del wire["bench"]
        with pytest.raises(ProtocolError, match="bench"):
            run_from_wire(wire)

    def test_unknown_mechanism_name_rejected_eagerly(self):
        wire = run_to_wire(sample_runs()[0]) | {"mechanism": "no-such-policy"}
        with pytest.raises(ProtocolError):
            run_from_wire(wire)

    def test_invalid_scale_rejected(self):
        wire = run_to_wire(sample_runs()[1]) | {"scale": {"bogus_field": 1}}
        with pytest.raises(ProtocolError, match="scale"):
            run_from_wire(wire)

    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError):
            run_from_wire(["not", "a", "dict"])


class TestFraming:
    def test_malformed_json_frame(self):
        with pytest.raises(ProtocolError, match="JSON"):
            decode_line(b'{"torn')

    def test_non_object_frame(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_line(b"[1, 2]")

    def test_error_response_shape(self):
        resp = error_response("overloaded", "queue full", queued=7, limit=4)
        assert resp["ok"] is False
        assert resp["error"]["type"] == "overloaded"
        assert resp["error"]["message"] == "queue full"
        assert resp["error"]["queued"] == 7 and resp["error"]["limit"] == 4
