"""Service front door: protocol ops, both transports, fail-soft startup."""

import asyncio
import dataclasses
import json
import os
import threading

import pytest

from repro.experiments.config import TINY
from repro.experiments.engine import KIND_HOOK, ExperimentSession, PlannedRun
from repro.service.journal import SweepJournal
from repro.service.protocol import PROTOCOL_VERSION, run_to_wire
from repro.service.scheduler import SchedulerConfig
from repro.service.server import ExperimentService, ServiceClient, sanitized_run_timeout

SC = dataclasses.replace(TINY, name="unit")


def hook(name: str) -> PlannedRun:
    return PlannedRun(KIND_HOOK, SC, bench=f"tests.chaos.workers:{name}")


def make_service(tmp_path, **kw) -> ExperimentService:
    session = ExperimentSession(cache_dir=tmp_path / "cache", max_workers=1)
    kw.setdefault("journal_dir", tmp_path / "journal")
    return ExperimentService(session=session, **kw)


class TestSanitizedRunTimeout:
    def test_valid_value_passes_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "5.5")
        assert sanitized_run_timeout() == (5.5, None)

    def test_invalid_value_warns_instead_of_raising(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "banana")
        timeout, warning = sanitized_run_timeout()
        assert timeout is None
        assert "REPRO_RUN_TIMEOUT" in warning

    def test_service_startup_is_fail_soft(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "banana")
        with pytest.warns(RuntimeWarning, match="REPRO_RUN_TIMEOUT"):
            service = ExperimentService()
        assert service.session.run_timeout is None
        # The environment is restored for everything else in the process.
        assert os.environ["REPRO_RUN_TIMEOUT"] == "banana"
        service.close()

    def test_library_sessions_stay_strict(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "banana")
        with pytest.raises(ValueError):
            ExperimentSession()


class TestDispatch:
    def test_ping_status_and_unknown_op(self, tmp_path):
        service = make_service(tmp_path)
        try:
            pong = asyncio.run(service.dispatch({"op": "ping", "id": 7}))
            assert pong["ok"] and pong["protocol"] == PROTOCOL_VERSION
            assert pong["id"] == 7
            status = asyncio.run(service.dispatch({"op": "status"}))
            assert status["ok"] and "scheduler" in status["status"]
            bad = asyncio.run(service.dispatch({"op": "frobnicate"}))
            assert bad["ok"] is False and bad["error"]["type"] == "protocol"
        finally:
            service.close()

    def test_submit_validates_at_the_front_door(self, tmp_path):
        service = make_service(tmp_path)
        try:
            empty = asyncio.run(service.dispatch({"op": "submit", "runs": []}))
            assert empty["error"]["type"] == "protocol"
            bogus = asyncio.run(service.dispatch(
                {"op": "submit", "runs": [{"kind": "bogus"}]}))
            assert bogus["error"]["type"] == "protocol"
        finally:
            service.close()


class TestInProcessTransport:
    def test_submit_roundtrip_and_status(self, tmp_path):
        service = make_service(tmp_path)
        with service, ServiceClient(service=service, client_name="t") as cli:
            assert cli.ping()["ok"]
            resp = cli.submit([hook("ok_a"), hook("ok_b")])
            assert resp["ok"]
            assert [o["ok"] for o in resp["results"]] == [True, True]
            assert all(o["cached"] is False for o in resp["results"])
            again = cli.submit([hook("ok_a")])
            assert again["results"][0]["cached"] is True
            status = cli.status()["status"]
            assert status["scheduler"]["executed"] == 2
            assert status["scheduler"]["cache_replays"] == 1

    def test_overload_is_a_structured_refusal(self, tmp_path):
        service = make_service(
            tmp_path, scheduler_config=SchedulerConfig(max_pending=1))
        with service:
            with ServiceClient(service=service) as cli:
                resp = cli.request({
                    "op": "submit",
                    "runs": [run_to_wire(hook("ok_a")), run_to_wire(hook("ok_b"))],
                })
        assert resp["ok"] is False
        assert resp["error"]["type"] == "overloaded"
        assert resp["error"]["limit"] == 1


class TestSocketTransport:
    def test_unix_socket_end_to_end(self, tmp_path):
        service = make_service(tmp_path)
        sock = tmp_path / "svc.sock"
        ready = threading.Event()
        t = threading.Thread(
            target=lambda: asyncio.run(
                service.serve(unix_path=sock, ready=lambda _b: ready.set())),
            daemon=True,
        )
        t.start()
        assert ready.wait(10)
        with ServiceClient(path=sock) as cli:
            assert cli.ping()["ok"]
            resp = cli.submit([hook("ok_a")])
            assert resp["ok"] and resp["results"][0]["ok"]
            assert cli.shutdown()["stopping"]
        t.join(timeout=10)
        assert not t.is_alive()
        assert not sock.exists()  # cleaned up on shutdown
        service.close()


class TestSubscribe:
    def test_in_process_streams_per_run_events(self, tmp_path):
        service = make_service(tmp_path)
        with service, ServiceClient(service=service, client_name="t") as cli:
            assert cli.subscribe()["subscribed"] is True
            assert cli.submit([hook("ok_a"), hook("ok_b")])["ok"]
            events = [cli.next_event(timeout_s=10) for _ in range(2)]
            assert all(e["event"] == "run" for e in events)
            assert {e["label"].rsplit(":", 1)[-1] for e in events} == {"ok_a", "ok_b"}
            assert events[-1]["done"] == 2 and events[-1]["total"] == 2
            assert all(e["cached"] is False and e["error"] is None for e in events)
            with pytest.raises(TimeoutError):
                cli.next_event(timeout_s=0.1)
            assert cli.unsubscribe()["subscribed"] is False

    def test_cached_replays_are_flagged(self, tmp_path):
        service = make_service(tmp_path)
        with service, ServiceClient(service=service) as cli:
            cli.submit([hook("ok_a")])
            cli.subscribe()
            cli.submit([hook("ok_a")])
            assert cli.next_event(timeout_s=10)["cached"] is True

    def test_next_event_requires_subscription(self, tmp_path):
        service = make_service(tmp_path)
        with service, ServiceClient(service=service) as cli:
            with pytest.raises(RuntimeError, match="subscribe"):
                cli.next_event(timeout_s=0.1)

    def test_subscribe_op_rejected_on_request_path(self, tmp_path):
        # The single-response dispatch path can't stream; the op only
        # works on a socket connection (or scheduler.subscribe() in-proc).
        service = make_service(tmp_path)
        try:
            resp = asyncio.run(service.dispatch({"op": "subscribe"}))
            assert resp["ok"] is False and resp["error"]["type"] == "protocol"
        finally:
            service.close()

    def test_socket_streaming_mode(self, tmp_path):
        from repro.service.protocol import decode_line, encode_line

        service = make_service(tmp_path)
        sock = tmp_path / "svc.sock"
        ready = threading.Event()
        t = threading.Thread(
            target=lambda: asyncio.run(
                service.serve(unix_path=sock, ready=lambda _b: ready.set())),
            daemon=True,
        )
        t.start()
        assert ready.wait(10)
        with ServiceClient(path=sock) as watcher, ServiceClient(path=sock) as cli:
            ack = watcher.subscribe()
            assert ack["ok"] and ack["subscribed"] is True
            assert cli.submit([hook("ok_a")])["ok"]
            ev = watcher.next_event(timeout_s=10)
            assert ev["event"] == "run" and ev["label"].endswith("ok_a")

            # Any other op on a subscribed connection is a protocol error.
            f = watcher._file
            f.write(encode_line({"op": "status"}))
            f.flush()
            while True:
                resp = decode_line(f.readline())
                if "event" not in resp:
                    break
            assert resp["ok"] is False and resp["error"]["type"] == "protocol"

            # Unsubscribe returns the connection to request mode.
            assert watcher.unsubscribe()["subscribed"] is False
            assert watcher.ping()["ok"]
            assert cli.shutdown()["stopping"]
        t.join(timeout=10)
        service.close()


class TestResume:
    def test_unsealed_journal_replays_on_resume(self, tmp_path):
        runs = [hook("ok_a"), hook("ok_b")]
        wal_dir = tmp_path / "journal"
        SweepJournal.create(
            wal_dir, {r.key(): run_to_wire(r) for r in runs}, sweep_id="crashed"
        ).close()

        service = make_service(tmp_path)
        try:
            service.start_background(resume=True)
            assert service.resumed_sweeps == 1
            for r in runs:
                assert service.session.cache.get(r.key()) is not None
        finally:
            service.close()
        sealed = SweepJournal.load(wal_dir / "crashed.jsonl")
        assert sealed.sealed and sealed.pending_keys() == []

    def test_resumed_payloads_match_uninterrupted_run(self, tmp_path):
        runs = [hook("ok_a"), hook("ok_b")]
        with ExperimentSession(cache_dir=tmp_path / "baseline", max_workers=1) as s0:
            baseline = s0.execute(runs)

        wal_dir = tmp_path / "journal"
        SweepJournal.create(
            wal_dir, {r.key(): run_to_wire(r) for r in runs}, sweep_id="crashed"
        ).close()
        service = make_service(tmp_path)
        try:
            service.start_background(resume=True)
            replayed = {
                r.key(): service.session.cache.get(r.key())["payload"] for r in runs
            }
        finally:
            service.close()
        assert json.dumps(replayed, sort_keys=True) == json.dumps(baseline, sort_keys=True)

    def test_sealed_journals_are_not_resumed(self, tmp_path):
        runs = [hook("ok_a")]
        wal_dir = tmp_path / "journal"
        with SweepJournal.create(
            wal_dir, {r.key(): run_to_wire(r) for r in runs}, sweep_id="done"
        ) as j:
            j.record_finished(runs[0].key())
            j.seal()
        service = make_service(tmp_path)
        try:
            service.start_background(resume=True)
            assert service.resumed_sweeps == 0
        finally:
            service.close()
