"""Concurrent cache writers: atomic puts, one winner, quarantine mid-race.

Two real processes race ``ResultCache.put`` on the same key while a
reader polls the disk tier.  The atomic tmp+``os.replace`` discipline
must guarantee the reader never observes a torn payload, and the final
entry is exactly one writer's record — never an interleaving.
"""

import multiprocessing

import pytest

from repro.experiments.engine import SCHEMA_VERSION, ResultCache

FORK = multiprocessing.get_context("fork")

#: Payloads big enough that a torn write would be observable.
PAYLOAD_CHARS = 64 * 1024
KEY = "ab" + "0" * 62
ROUNDS = 60


def record(tag: str) -> dict:
    return {"schema": SCHEMA_VERSION, "payload": {"writer": tag, "data": tag * PAYLOAD_CHARS}}


def writer(root, tag: str, barrier) -> None:
    cache = ResultCache(root)
    rec = record(tag)
    barrier.wait()
    for _ in range(ROUNDS):
        cache.put(KEY, rec)


def fresh_read(root) -> dict | None:
    """A disk read with no memory tier (a new process would see this)."""
    return ResultCache(root).get(KEY)


class TestConcurrentWriters:
    def test_racing_puts_never_tear_and_pin_one_winner(self, tmp_path):
        barrier = FORK.Barrier(3)
        procs = [
            FORK.Process(target=writer, args=(tmp_path, tag, barrier))
            for tag in ("A", "B")
        ]
        for p in procs:
            p.start()
        barrier.wait()
        observed = set()
        while any(p.is_alive() for p in procs):
            rec = fresh_read(tmp_path)
            if rec is not None:
                # Atomicity: the payload is always one writer's, whole.
                tag = rec["payload"]["writer"]
                assert rec["payload"]["data"] == tag * PAYLOAD_CHARS
                observed.add(tag)
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        final = fresh_read(tmp_path)
        tag = final["payload"]["writer"]
        assert tag in ("A", "B")  # exactly one winner
        assert final == record(tag)
        # No stray temp files or quarantine left behind by the race.
        reader = ResultCache(tmp_path)
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file() and p != reader._path(KEY)]
        assert leftovers == []

    def test_reader_quarantines_corrupt_entry_mid_race(self, tmp_path):
        # A torn entry from some earlier catastrophe sits at the key...
        seed_cache = ResultCache(tmp_path)
        path = seed_cache._path(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b'{"schema": torn...')

        barrier = FORK.Barrier(2)
        p = FORK.Process(target=writer, args=(tmp_path, "W", barrier))
        p.start()

        # ...and a reader hits it while the writer is racing to replace
        # it: the entry is quarantined to <key>.corrupt, counted, and
        # reported as a miss — never parsed into a result.
        reader = ResultCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert reader.get(KEY) is None
        assert reader.corrupt == 1
        corrupt_path = path.with_suffix(".corrupt")
        assert corrupt_path.is_file()
        assert corrupt_path.read_bytes() == b'{"schema": torn...'

        barrier.wait()
        p.join(timeout=30)
        assert p.exitcode == 0
        # The writer won the slot back with a whole, valid record.
        final = fresh_read(tmp_path)
        assert final == record("W")
