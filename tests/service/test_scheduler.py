"""Single-flight scheduler: dedup, admission, fairness, deadlines."""

import asyncio
import dataclasses
import time

import pytest

from repro.experiments.config import TINY
from repro.experiments.engine import KIND_HOOK, PlannedRun, RunRecord
from repro.service.journal import SweepJournal
from repro.service.scheduler import (
    OverloadedError,
    SchedulerConfig,
    SingleFlightScheduler,
)

SC = dataclasses.replace(TINY, name="unit")


def hook(name: str) -> PlannedRun:
    return PlannedRun(KIND_HOOK, SC, bench=f"tests.chaos.workers:{name}")


class FakeSession:
    """Engine stand-in: records batches, replays from a memory cache."""

    def __init__(self, *, delay: float = 0.0, fail_benches: tuple = ()):
        self.records: list[RunRecord] = []
        self.failed: dict[str, str] = {}
        self.calls: list[list[str]] = []
        self.delay = delay
        self.fail_benches = fail_benches
        self._cache: dict[str, dict] = {}

    def execute(self, runs, *, strict=True, resume=None):
        self.calls.append([r.key() for r in runs])
        if self.delay:
            time.sleep(self.delay)
        out = {}
        for r in runs:
            key = r.key()
            if r.bench.rsplit(":", 1)[-1] in self.fail_benches:
                self.failed[key] = "injected failure"
                self.records.append(
                    RunRecord(key, r.kind, r.label, r.sc.name, 0.0,
                              cached=False, error="injected failure"))
                continue
            cached = key in self._cache
            self._cache.setdefault(key, {"hook": r.bench})
            out[key] = self._cache[key]
            self.records.append(
                RunRecord(key, r.kind, r.label, r.sc.name, 0.0, cached=cached))
        return out


def run_async(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


class TestSingleFlight:
    def test_concurrent_overlapping_submits_execute_once(self):
        session = FakeSession(delay=0.02)
        runs = [hook("ok_a"), hook("ok_b"), hook("ok_c")]

        async def main():
            sched = SingleFlightScheduler(session)
            await sched.start()
            try:
                return await asyncio.gather(*[
                    sched.submit(runs, client=f"c{i}") for i in range(6)
                ])
            finally:
                await sched.stop()

        all_outcomes = run_async(main())
        executed = [k for call in session.calls for k in call]
        assert sorted(executed) == sorted({r.key() for r in runs})  # once each
        for outcomes in all_outcomes:
            assert [o["ok"] for o in outcomes] == [True, True, True]
        deduped = sum(o.get("deduped", False) for out in all_outcomes for o in out)
        assert deduped == 5 * len(runs)

    def test_resubmit_after_completion_replays_from_cache(self):
        session = FakeSession()
        runs = [hook("ok_a")]

        async def main():
            sched = SingleFlightScheduler(session)
            await sched.start()
            try:
                first = await sched.submit(runs)
                second = await sched.submit(runs)
                return first, second, dict(sched.counters)
            finally:
                await sched.stop()

        first, second, counters = run_async(main())
        assert first[0]["cached"] is False
        assert second[0]["cached"] is True
        assert counters["executed"] == 1 and counters["cache_replays"] == 1


class TestAdmission:
    def test_global_queue_bound_refuses_structured(self):
        session = FakeSession()
        config = SchedulerConfig(max_pending=2, max_client_pending=64)

        async def main():
            sched = SingleFlightScheduler(session, config)
            # No dispatcher: everything submitted stays queued.
            with pytest.raises(OverloadedError) as ei:
                await sched.submit([hook("ok_a"), hook("ok_b"), hook("ok_c")])
            assert ei.value.limit == 2
            assert sched.counters["overloaded"] == 1
            await sched.stop()

        run_async(main())

    def test_per_client_bound(self):
        session = FakeSession()
        config = SchedulerConfig(max_pending=64, max_client_pending=1)

        async def main():
            sched = SingleFlightScheduler(session, config)
            with pytest.raises(OverloadedError, match="client"):
                await sched.submit([hook("ok_a"), hook("ok_b")], client="greedy")
            await sched.stop()

        run_async(main())

    def test_attaching_to_inflight_keys_is_always_admitted(self):
        session = FakeSession(delay=0.05)
        config = SchedulerConfig(max_pending=3)
        runs = [hook("ok_a"), hook("ok_b"), hook("ok_c")]

        async def main():
            sched = SingleFlightScheduler(session, config)
            await sched.start()
            try:
                # Both clients submit the full queue-limit batch; the
                # second only attaches, so admission must not refuse it.
                return await asyncio.gather(
                    sched.submit(runs, client="a"),
                    sched.submit(runs, client="b"),
                )
            finally:
                await sched.stop()

        a, b = run_async(main())
        assert all(o["ok"] for o in a + b)


class TestFairnessAndDispatch:
    def test_round_robin_across_clients(self):
        session = FakeSession()
        config = SchedulerConfig(batch_max=2)
        a_runs = [hook(f"slow_{s}") for s in "abc"]
        b_run = [hook("ok_a")]

        async def main():
            sched = SingleFlightScheduler(session, config)
            task_a = asyncio.ensure_future(sched.submit(a_runs, client="a"))
            task_b = asyncio.ensure_future(sched.submit(b_run, client="b"))
            for _ in range(5):  # let both enqueue before dispatch starts
                await asyncio.sleep(0)
            await sched.start()
            await asyncio.gather(task_a, task_b)
            await sched.stop()

        run_async(main())
        # First batch interleaves the clients: one of A's runs plus B's,
        # instead of burning the whole batch on A's backlog.
        assert b_run[0].key() in session.calls[0]

    def test_failed_runs_resolve_with_structured_errors(self):
        session = FakeSession(fail_benches=("boom",))

        async def main():
            sched = SingleFlightScheduler(session)
            await sched.start()
            try:
                return await sched.submit([hook("ok_a"), hook("boom")])
            finally:
                await sched.stop()

        ok, bad = run_async(main())
        assert ok["ok"] is True
        assert bad["ok"] is False
        assert bad["error"]["type"] == "run-failed"
        assert "injected failure" in bad["error"]["message"]

    def test_submit_deadline_yields_structured_error(self):
        session = FakeSession(delay=0.5)
        config = SchedulerConfig(submit_timeout_s=0.05)

        async def main():
            sched = SingleFlightScheduler(session, config)
            await sched.start()
            try:
                return await sched.submit([hook("ok_a")]), dict(sched.counters)
            finally:
                await sched.stop()

        outcomes, counters = run_async(main())
        assert outcomes[0]["ok"] is False
        assert outcomes[0]["error"]["type"] == "deadline"
        assert counters["deadline_expired"] == 1

    def test_stop_resolves_queued_with_shutdown_errors(self):
        session = FakeSession()

        async def main():
            sched = SingleFlightScheduler(session)  # dispatcher never started
            task = asyncio.ensure_future(sched.submit([hook("ok_a")]))
            for _ in range(5):
                await asyncio.sleep(0)
            await sched.stop()
            return await task

        outcomes = run_async(main())
        assert outcomes[0]["error"]["type"] == "shutdown"


class TestSubscribers:
    def test_subscribe_unsubscribe_registry(self):
        async def main():
            sched = SingleFlightScheduler(FakeSession())
            await sched.start()
            try:
                sub_id, queue = sched.subscribe()
                assert sched.status()["subscribers"] == 1
                assert sched.unsubscribe(sub_id) is True
                assert sched.unsubscribe(sub_id) is False
                assert sched.status()["subscribers"] == 0
            finally:
                await sched.stop()

        run_async(main())

    def test_emit_is_lossy_drop_oldest(self):
        async def main():
            sched = SingleFlightScheduler(FakeSession())
            await sched.start()
            try:
                _sub, queue = sched.subscribe(max_queue=2)
                for i in range(5):
                    sched._emit({"event": "run", "i": i})
                # Oldest events dropped; the slow consumer sees the tail.
                return [queue.get_nowait() for _ in range(queue.qsize())]
            finally:
                await sched.stop()

        events = run_async(main())
        assert [e["i"] for e in events] == [3, 4]

    def test_stop_emits_shutdown_and_clears(self):
        async def main():
            sched = SingleFlightScheduler(FakeSession())
            await sched.start()
            _sub, queue = sched.subscribe()
            await sched.stop()
            assert queue.get_nowait() == {"event": "shutdown"}
            assert sched.status()["subscribers"] == 0

        run_async(main())


class TestJournaling:
    def test_completed_batch_seals_its_journal(self, tmp_path):
        session = FakeSession(fail_benches=("boom",))
        runs = [hook("ok_a"), hook("boom")]

        async def main():
            sched = SingleFlightScheduler(session, journal_dir=tmp_path)
            await sched.start()
            try:
                await sched.submit(runs)
            finally:
                await sched.stop()

        run_async(main())
        paths = list(tmp_path.glob("*.jsonl"))
        assert len(paths) == 1
        journal = SweepJournal.load(paths[0])
        assert journal.sealed  # every key got an outcome
        assert journal.finished_keys() == {runs[0].key()}
        assert journal.failed_keys().keys() == {runs[1].key()}

    def test_interrupted_batch_leaves_resumable_journal(self, tmp_path):
        session = FakeSession()

        async def main():
            sched = SingleFlightScheduler(session, journal_dir=tmp_path)
            task = asyncio.ensure_future(sched.submit([hook("ok_a")]))
            for _ in range(5):
                await asyncio.sleep(0)
            await sched.stop()  # dies before dispatching
            return await task

        run_async(main())
        pending = SweepJournal.incomplete(tmp_path)
        assert len(pending) == 1
        assert pending[0].pending_keys() == [hook("ok_a").key()]
