"""Remote cache tier: breaker, retries, hedged reads, tiered validation."""

import json
import threading
import time

import pytest

from repro.experiments.engine import SCHEMA_VERSION
from repro.service.cachetier import (
    CacheTierError,
    CircuitBreaker,
    InMemoryCacheTier,
    RemoteTierConfig,
    ResilientTier,
    TieredResultCache,
)

NO_SLEEP = dict(sleep=lambda _s: None)


def fast_config(**kw) -> RemoteTierConfig:
    kw.setdefault("retries", 1)
    kw.setdefault("backoff_base_s", 0.0)
    kw.setdefault("breaker_threshold", 3)
    kw.setdefault("breaker_cooldown_s", 10.0)
    return RemoteTierConfig(**kw)


def valid_blob(payload: dict) -> bytes:
    return json.dumps({"schema": SCHEMA_VERSION, "payload": payload}).encode()


class FailingTier:
    """Raises on every operation."""

    def __init__(self, exc=CacheTierError("remote down")):
        self.exc = exc
        self.calls = 0

    def get(self, key):
        self.calls += 1
        raise self.exc

    def put(self, key, blob):
        self.calls += 1
        raise self.exc


class FlakyTier:
    """Fails the first ``fail_first`` operations, then behaves."""

    def __init__(self, fail_first: int):
        self.inner = InMemoryCacheTier()
        self.fail_first = fail_first
        self.calls = 0

    def _maybe_fail(self):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise CacheTierError("transient")

    def get(self, key):
        self._maybe_fail()
        return self.inner.get(key)

    def put(self, key, blob):
        self._maybe_fail()
        self.inner.put(key, blob)


class TestCircuitBreaker:
    def test_threshold_opens_cooldown_half_opens(self):
        now = [0.0]
        b = CircuitBreaker(threshold=3, cooldown_s=5.0, clock=lambda: now[0])
        for _ in range(3):
            assert b.allow()
            b.record_failure()
        assert b.state == b.OPEN and b.opens == 1
        assert not b.allow()  # short-circuited during cooldown
        now[0] = 5.0
        assert b.allow()  # the half-open probe
        assert b.state == b.HALF_OPEN
        assert not b.allow()  # only one probe at a time
        b.record_success()
        assert b.state == b.CLOSED and b.allow()

    def test_failed_probe_reopens(self):
        now = [0.0]
        b = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=lambda: now[0])
        b.record_failure()
        now[0] = 5.0
        assert b.allow()
        b.record_failure()
        assert b.state == b.OPEN and b.opens == 2
        assert not b.allow()


class TestRetries:
    def test_transient_failure_is_retried_away(self):
        flaky = FlakyTier(fail_first=1)
        tier = ResilientTier(flaky, fast_config(), **NO_SLEEP)
        assert tier.put("k", b"blob") is True
        assert tier.counters["retries"] == 1
        assert tier.counters["put_errors"] == 0
        assert tier.get("k") == b"blob"

    def test_exhausted_retries_degrade_not_raise(self):
        tier = ResilientTier(FailingTier(), fast_config(), **NO_SLEEP)
        assert tier.get("k") is None
        assert tier.put("k", b"blob") is False
        assert tier.counters["get_errors"] == 1
        assert tier.counters["put_errors"] == 1

    def test_breaker_short_circuits_after_outage(self):
        tier = ResilientTier(FailingTier(), fast_config(breaker_threshold=2), **NO_SLEEP)
        tier.get("a")
        tier.get("b")
        before = tier.inner.calls
        assert tier.get("c") is None  # breaker open: no network touched
        assert tier.inner.calls == before
        assert tier.counters["short_circuited"] == 1
        assert tier.status()["breaker"] == CircuitBreaker.OPEN

    def test_jitter_is_seeded_and_bounded(self):
        def delays(seed):
            out = []
            tier = ResilientTier(
                FailingTier(),
                fast_config(retries=3, backoff_base_s=0.01, jitter_seed=seed,
                            breaker_threshold=100),
                sleep=out.append,
            )
            tier.get("k")
            return out

        a, b = delays(7), delays(7)
        assert a == b and len(a) == 3  # deterministic for one seed
        assert delays(8) != a  # and seed-dependent
        for attempt, d in enumerate(a):
            assert 0.0 <= d <= 0.01 * 2.0 ** attempt


class TestHedgedReads:
    def test_slow_read_is_abandoned_then_repairs_late(self):
        release = threading.Event()

        class SlowTier:
            def get(self, key):
                release.wait(5.0)
                return valid_blob({"late": True})

            def put(self, key, blob):
                pass

        tier = ResilientTier(SlowTier(), fast_config(retries=0, hedge_timeout_s=0.05))
        repaired = []
        assert tier.get("k", on_late_result=repaired.append) is None
        assert tier.counters["hedge_abandoned"] == 1
        release.set()
        deadline = time.monotonic() + 5.0
        while not repaired and time.monotonic() < deadline:
            time.sleep(0.01)
        assert repaired == [valid_blob({"late": True})]
        assert tier.counters["late_repairs"] == 1
        tier.close()


class TestTieredResultCache:
    def test_remote_hit_is_read_repaired_locally(self, tmp_path):
        remote = InMemoryCacheTier()
        key = "ab" + "0" * 62
        remote.put(key, valid_blob({"x": 1}))
        cache = TieredResultCache(tmp_path, remote=remote, remote_config=fast_config())
        rec = cache.get(key)
        assert rec["payload"] == {"x": 1}
        # The repair used the atomic local path: a fresh cache with no
        # remote sees the entry on disk.
        local_only = TieredResultCache(tmp_path)
        assert local_only.get(key)["payload"] == {"x": 1}

    def test_local_hits_never_touch_the_remote(self, tmp_path):
        remote = FailingTier()
        cache = TieredResultCache(tmp_path, remote=InMemoryCacheTier())
        key = "cd" + "0" * 62
        cache.put(key, {"schema": SCHEMA_VERSION, "payload": {"y": 2}})
        cache2 = TieredResultCache(tmp_path, remote=remote, remote_config=fast_config())
        assert cache2.get(key)["payload"] == {"y": 2}
        assert remote.calls == 0

    @pytest.mark.parametrize("blob", [
        b'{"torn', b"[]", b'{"schema": -1, "payload": {}}', b'{"schema": %d}' % SCHEMA_VERSION,
    ])
    def test_invalid_remote_blob_is_a_counted_miss(self, tmp_path, blob):
        remote = InMemoryCacheTier()
        key = "ef" + "0" * 62
        remote.put(key, blob)
        cache = TieredResultCache(tmp_path, remote=remote, remote_config=fast_config())
        assert cache.get(key) is None
        assert cache.remote_invalid == 1
        # The bad blob never entered the local tier — no entry, no quarantine.
        assert not list(tmp_path.rglob("*.json"))
        assert not list(tmp_path.rglob("*.corrupt"))

    def test_put_writes_through(self, tmp_path):
        remote = InMemoryCacheTier()
        cache = TieredResultCache(tmp_path, remote=remote, remote_config=fast_config())
        key = "01" + "0" * 62
        rec = {"schema": SCHEMA_VERSION, "payload": {"z": 3}}
        cache.put(key, rec)
        assert json.loads(remote.get(key)) == rec

    def test_total_outage_degrades_to_local_only(self, tmp_path):
        cache = TieredResultCache(
            tmp_path, remote=FailingTier(), remote_config=fast_config(breaker_threshold=1)
        )
        key = "23" + "0" * 62
        rec = {"schema": SCHEMA_VERSION, "payload": {"w": 4}}
        cache.put(key, rec)  # write-through fails silently
        assert cache.get(key)["payload"] == {"w": 4}  # local tier still serves
        status = cache.remote_status()
        assert status["put_errors"] == 1
        assert status["breaker"] == CircuitBreaker.OPEN
