"""Sweep journal: WAL discipline, crash-damage tolerance, resume identity."""

import dataclasses
import json

import pytest

from repro.experiments.config import TINY
from repro.experiments.engine import KIND_HOOK, ExperimentSession, PlannedRun
from repro.service.journal import JOURNAL_SCHEMA_VERSION, JournalError, SweepJournal
from repro.service.protocol import run_to_wire

SC = dataclasses.replace(TINY, name="unit")


def hook(name: str) -> PlannedRun:
    return PlannedRun(KIND_HOOK, SC, bench=f"tests.chaos.workers:{name}")


def dummy_plan(n: int = 3) -> dict[str, dict]:
    return {f"key{i:02d}": {"spec": i} for i in range(n)}


class TestCreateLoad:
    def test_roundtrip(self, tmp_path):
        plan = dummy_plan()
        with SweepJournal.create(tmp_path, plan, sweep_id="s1") as j:
            j.record_started("key00")
            j.record_finished("key00")
            j.record_failed("key01", "boom")
        loaded = SweepJournal.load(tmp_path / "s1.jsonl")
        assert loaded.sweep_id == "s1"
        assert loaded.plan == plan
        assert loaded.finished_keys() == {"key00"}
        assert loaded.failed_keys() == {"key01": "boom"}
        assert loaded.pending_keys() == ["key01", "key02"]
        assert not loaded.sealed

    def test_started_but_unfinished_is_pending(self, tmp_path):
        with SweepJournal.create(tmp_path, dummy_plan(2), sweep_id="s1") as j:
            j.record_started("key00")
        loaded = SweepJournal.load(tmp_path / "s1.jsonl")
        assert loaded.pending_keys() == ["key00", "key01"]

    def test_finish_after_fail_clears_the_failure(self, tmp_path):
        with SweepJournal.create(tmp_path, dummy_plan(1), sweep_id="s1") as j:
            j.record_failed("key00", "transient")
            j.record_finished("key00")
        loaded = SweepJournal.load(tmp_path / "s1.jsonl")
        assert loaded.failed_keys() == {}
        assert loaded.pending_keys() == []

    def test_duplicate_sweep_id_refused(self, tmp_path):
        SweepJournal.create(tmp_path, dummy_plan(), sweep_id="s1").close()
        with pytest.raises(JournalError, match="exists"):
            SweepJournal.create(tmp_path, dummy_plan(), sweep_id="s1")


class TestCrashDamage:
    def test_torn_tail_without_newline_is_discarded(self, tmp_path):
        with SweepJournal.create(tmp_path, dummy_plan(), sweep_id="s1") as j:
            j.record_finished("key00")
        path = tmp_path / "s1.jsonl"
        with open(path, "ab") as f:
            f.write(b'{"event":"finis')  # crash mid-write, no newline
        loaded = SweepJournal.load(path)
        assert loaded.finished_keys() == {"key00"}

    def test_midfile_corruption_raises(self, tmp_path):
        with SweepJournal.create(tmp_path, dummy_plan(), sweep_id="s1") as j:
            j.record_finished("key00")
            j.record_finished("key01")
        path = tmp_path / "s1.jsonl"
        lines = path.read_bytes().split(b"\n")
        lines[1] = b"garbage"  # interior line: not crash damage
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(JournalError, match="mid-file"):
            SweepJournal.load(path)

    def test_missing_plan_raises(self, tmp_path):
        path = tmp_path / "noplan.jsonl"
        path.write_bytes(b'{"event":"finished","key":"k"}\n')
        with pytest.raises(JournalError, match="plan"):
            SweepJournal.load(path)

    def test_schema_mismatch_raises(self, tmp_path):
        with SweepJournal.create(tmp_path, dummy_plan(), sweep_id="s1"):
            pass
        path = tmp_path / "s1.jsonl"
        head = json.loads(path.read_bytes().split(b"\n")[0])
        head["schema"] = JOURNAL_SCHEMA_VERSION + 1
        path.write_bytes(json.dumps(head).encode() + b"\n")
        with pytest.raises(JournalError, match="schema"):
            SweepJournal.load(path)


class TestIncomplete:
    def test_sealed_journals_are_skipped(self, tmp_path):
        with SweepJournal.create(tmp_path, dummy_plan(), sweep_id="done") as j:
            for key in dummy_plan():
                j.record_finished(key)
            j.seal()
        SweepJournal.create(tmp_path, dummy_plan(), sweep_id="crashed").close()
        pending = SweepJournal.incomplete(tmp_path)
        assert [j.sweep_id for j in pending] == ["crashed"]

    def test_unparsable_files_are_skipped(self, tmp_path):
        (tmp_path / "junk.jsonl").write_bytes(b"not json at all\n")
        SweepJournal.create(tmp_path, dummy_plan(), sweep_id="good").close()
        assert [j.sweep_id for j in SweepJournal.incomplete(tmp_path)] == ["good"]

    def test_missing_root_is_empty(self, tmp_path):
        assert SweepJournal.incomplete(tmp_path / "nowhere") == []


class TestResumeIdentity:
    def test_replay_is_bit_identical_to_uninterrupted_run(self, tmp_path):
        runs = [hook("ok_a"), hook("ok_b"), hook("ok_c")]
        # Baseline: the uninterrupted sweep.
        with ExperimentSession(cache_dir=tmp_path / "c0", max_workers=1) as s0:
            baseline = s0.execute(runs)

        # Crash simulation: one key completed and journaled, then the
        # process dies — the journal is left unsealed with two pending
        # keys.
        cache_dir = tmp_path / "c1"
        with ExperimentSession(cache_dir=cache_dir, max_workers=1) as s1:
            s1.execute([runs[0]])
        journal = SweepJournal.create(
            tmp_path / "wal", {r.key(): run_to_wire(r) for r in runs}, sweep_id="s1"
        )
        journal.record_started(runs[0].key())
        journal.record_finished(runs[0].key())
        journal.close()

        # Resume in a fresh session: pending keys execute, the finished
        # key replays from the cache, and payloads match byte-for-byte.
        with ExperimentSession(cache_dir=cache_dir, max_workers=1) as s2:
            replayed = s2.execute([], resume=tmp_path / "wal" / "s1.jsonl")
            cached_flags = {rec.key: rec.cached for rec in s2.records}
        assert json.dumps(replayed, sort_keys=True) == json.dumps(baseline, sort_keys=True)
        assert cached_flags[runs[0].key()] is True
        assert cached_flags[runs[1].key()] is False

        sealed = SweepJournal.load(tmp_path / "wal" / "s1.jsonl")
        assert sealed.sealed
        assert sealed.pending_keys() == []

    def test_failed_pending_key_leaves_journal_unsealed(self, tmp_path):
        runs = [hook("ok_a"), hook("boom")]
        journal = SweepJournal.create(
            tmp_path / "wal", {r.key(): run_to_wire(r) for r in runs}, sweep_id="s1"
        )
        journal.close()
        with ExperimentSession(cache_dir=tmp_path / "c", max_workers=1) as s:
            out = s.execute([], resume=tmp_path / "wal" / "s1.jsonl", strict=False)
        assert set(out) == {runs[0].key()}
        loaded = SweepJournal.load(tmp_path / "wal" / "s1.jsonl")
        assert not loaded.sealed  # the failed key is still owed a result
        assert loaded.failed_keys().keys() == {runs[1].key()}
