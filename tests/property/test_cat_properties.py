"""Hypothesis properties of CAT masks and the Dunn way assignment."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dunn import dunn_way_assignment
from repro.core.partitioning import partition_ways
from repro.sim.cat import is_contiguous_mask, low_ways_mask
from repro.sim.cache import ways_from_mask


class TestMaskProperties:
    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_low_ways_mask_contiguous_and_sized(self, n, total):
        mask = low_ways_mask(n, total)
        assert is_contiguous_mask(mask)
        assert mask.bit_count() == min(max(n, 1), total)

    @given(st.integers(min_value=1, max_value=(1 << 20) - 1))
    @settings(max_examples=100, deadline=None)
    def test_ways_from_mask_matches_popcount(self, mask):
        ways = ways_from_mask(mask, 20)
        assert len(ways) == mask.bit_count()
        for w in ways:
            assert mask >> w & 1


class TestPartitionSizing:
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=2, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_partition_ways_within_bounds(self, n_cores, total):
        w = partition_ways(n_cores, total)
        assert 1 <= w <= total - 1 or total == 1


stall_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False), min_size=1, max_size=8
)


class TestDunnProperties:
    @given(stall_lists, st.integers(min_value=4, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_assignment_monotone_and_topped(self, stalls, total):
        stalls = sorted(stalls)
        ways = dunn_way_assignment(stalls, total)
        assert ways == sorted(ways)
        assert ways[-1] == total
        assert all(1 <= w <= total for w in ways)

    @given(stall_lists, st.integers(min_value=4, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_nested_masks(self, stalls, total):
        stalls = sorted(stalls)
        ways = dunn_way_assignment(stalls, total)
        masks = [low_ways_mask(w, total) for w in ways]
        for small, large in zip(masks, masks[1:]):
            assert small & large == small
