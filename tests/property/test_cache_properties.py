"""Hypothesis properties of the cache models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import Cache, PartitionedCache, ways_from_mask
from repro.sim.params import CacheGeometry

GEOM = CacheGeometry(8 * 4 * 64, 4)  # 8 sets x 4 ways

lines = st.integers(min_value=0, max_value=1 << 20)
accesses = st.lists(st.tuples(lines, st.booleans()), min_size=1, max_size=300)


class TestCacheProperties:
    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, seq):
        c = Cache(GEOM)
        for line, pf in seq:
            c.access(line, pf)
        assert c.occupancy() <= GEOM.lines
        # and per-set bound
        for s in c._sets:
            assert len(s) <= GEOM.ways

    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_access_after_access_hits(self, seq):
        """Immediately repeated access always hits (MRU is safe)."""
        c = Cache(GEOM)
        for line, pf in seq:
            c.access(line, pf)
            assert c.access(line) is True

    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_stats_consistent(self, seq):
        c = Cache(GEOM)
        for line, pf in seq:
            c.access(line, pf)
        st_ = c.stats
        assert st_.hits + st_.misses == st_.accesses
        assert st_.pref_used + st_.pref_evicted_unused <= st_.pref_fills

    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_probe_matches_recent_fill(self, seq):
        c = Cache(GEOM)
        for line, pf in seq:
            c.access(line, pf)
        last_line = seq[-1][0]
        assert c.probe(last_line)


masks = st.integers(min_value=1, max_value=(1 << 4) - 1)


class TestPartitionedCacheProperties:
    @given(st.lists(st.tuples(lines, masks, st.booleans()), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_fills_only_into_allowed_ways(self, seq):
        p = PartitionedCache(GEOM)
        filled_by_mask: dict[int, int] = {}
        for line, mask, pf in seq:
            allowed = ways_from_mask(mask, GEOM.ways)
            p.access(line, allowed, pf)
            w = p.resident_way(line)
            assert w is not None
            filled_by_mask[line] = filled_by_mask.get(line, mask) | mask
        # every resident line sits in a way some accessor was allowed to use
        for si in range(p.n_sets):
            for w, tag in enumerate(p._tags[si]):
                if tag != -1:
                    assert filled_by_mask.get(tag, 0) >> w & 1

    @given(st.lists(st.tuples(lines, masks, st.booleans()), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_index_matches_tags(self, seq):
        p = PartitionedCache(GEOM)
        for line, mask, pf in seq:
            p.access(line, ways_from_mask(mask, GEOM.ways), pf)
        for si in range(p.n_sets):
            idx = p._index[si]
            tags = p._tags[si]
            assert len(idx) == sum(1 for t in tags if t != -1)
            for tag, w in idx.items():
                assert tags[w] == tag

    @given(st.lists(st.tuples(lines, st.booleans()), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_full_mask_behaves_like_plain_lru(self, seq):
        """With the full mask, hit/miss stream equals the plain Cache."""
        plain = Cache(GEOM)
        part = PartitionedCache(GEOM)
        allowed = tuple(range(GEOM.ways))
        for line, pf in seq:
            assert plain.access(line, pf) == part.access(line, allowed, pf)
