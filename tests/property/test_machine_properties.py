"""Hypothesis properties of whole-machine PMU accounting.

Conservation laws that must hold for any workload/configuration:
the miss hierarchy is monotone, memory demand bytes equal L3 load
misses times the line size, and counters never go negative.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.machine import Machine
from repro.sim.params import CacheGeometry, MachineParams
from repro.sim.pmu import Event
from repro.sim.trace import PointerChaseStream, RandomStream, SequentialStream, TraceGenerator

PARAMS = MachineParams(
    n_cores=2,
    l1=CacheGeometry(8 * 64 * 2, 2),
    l2=CacheGeometry(32 * 64 * 4, 4),
    llc=CacheGeometry(64 * 64 * 8, 8),
)


@st.composite
def machine_runs(draw):
    """A machine with 1-2 random traces, a prefetch config, and a length."""
    rng_seed = draw(st.integers(0, 2**20))
    n_active = draw(st.integers(1, 2))
    masks = [draw(st.integers(0, 0xF)) for _ in range(2)]
    n = draw(st.integers(200, 1500))
    kinds = [draw(st.sampled_from(["seq", "rand", "chase"])) for _ in range(n_active)]
    return rng_seed, masks, n, kinds


def build(rng_seed, masks, kinds):
    m = Machine(PARAMS, quantum=256)
    rng = np.random.default_rng(rng_seed)
    for core, kind in enumerate(kinds):
        base = m.core_base_line(core)
        if kind == "seq":
            s = SequentialStream(1, base, int(rng.integers(64, 4096)))
        elif kind == "rand":
            s = RandomStream(1, base, int(rng.integers(256, 20000)), rng)
        else:
            s = PointerChaseStream(1, base, int(rng.integers(32, 2048)), rng)
        m.attach_trace(core, TraceGenerator([s], [1.0], inst_per_mem=3.0, mlp=4.0, seed=core))
        m.prefetch_msr.set_mask(core, masks[core])
    return m


class TestMachineInvariants:
    @given(machine_runs())
    @settings(max_examples=25, deadline=None)
    def test_miss_hierarchy_monotone(self, case):
        rng_seed, masks, n, kinds = case
        m = build(rng_seed, masks, kinds)
        m.run_accesses(n)
        for cpu in range(len(kinds)):
            p = m.pmu
            assert p.read(cpu, Event.L1_DM_MISS) <= p.read(cpu, Event.L1_DM_REQ)
            assert p.read(cpu, Event.L2_DM_REQ) == p.read(cpu, Event.L1_DM_MISS)
            assert p.read(cpu, Event.L2_DM_MISS) <= p.read(cpu, Event.L2_DM_REQ)
            assert p.read(cpu, Event.L3_LOAD_MISS) <= p.read(cpu, Event.L2_DM_MISS)
            assert p.read(cpu, Event.L2_PREF_MISS) <= p.read(cpu, Event.L2_PREF_REQ)

    @given(machine_runs())
    @settings(max_examples=25, deadline=None)
    def test_demand_bytes_conservation(self, case):
        rng_seed, masks, n, kinds = case
        m = build(rng_seed, masks, kinds)
        m.run_accesses(n)
        for cpu in range(len(kinds)):
            assert m.pmu.read(cpu, Event.MEM_DEMAND_BYTES) == (
                m.pmu.read(cpu, Event.L3_LOAD_MISS) * 64
            )

    @given(machine_runs())
    @settings(max_examples=25, deadline=None)
    def test_counters_non_negative_and_cycles_positive(self, case):
        rng_seed, masks, n, kinds = case
        m = build(rng_seed, masks, kinds)
        m.run_accesses(n)
        assert (m.pmu.counts >= 0).all()
        for cpu in range(len(kinds)):
            assert m.pmu.read(cpu, Event.CYCLES) > 0
            assert m.pmu.read(cpu, Event.INSTRUCTIONS) == n * 4.0

    @given(machine_runs())
    @settings(max_examples=15, deadline=None)
    def test_prefetch_masks_gate_prefetch_events(self, case):
        rng_seed, masks, n, kinds = case
        m = build(rng_seed, masks, kinds)
        m.run_accesses(n)
        for cpu in range(len(kinds)):
            if masks[cpu] & 0b11 == 0b11:  # both L2 prefetchers disabled
                assert m.pmu.read(cpu, Event.L2_PREF_REQ) == 0
