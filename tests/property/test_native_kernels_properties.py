"""Differential properties of the compiled LLC serve kernel.

:func:`repro.sim.nativekernels._serve_llc` — the fused whole-quantum
grouped-LLC kernel — is checked on random lockstep request streams
against the reference dict-LRU :class:`~repro.sim.cache.
PartitionedCache` oracle, per run, under randomly varying CAT way
masks.  "Identical" covers per-access hit/miss outcomes (recovered
from the dense block counters), every stats column the grouped LLC
consumes, resident-line placement down to the way index, and the
free-fill counter (cross-checked against the oracle's occupancy
delta).  The kernel is driven through :func:`serve_llc_arrays`, the
exact dispatch the batch engine uses.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import nativekernels
from repro.sim.cache import PartitionedCache, ways_from_mask
from repro.sim.params import CacheGeometry

S, W, C, R = 8, 4, 2, 2
GEOM = CacheGeometry(S * W * 64, W)

lines = st.integers(min_value=0, max_value=(1 << 10) - 1)
masks = st.integers(min_value=1, max_value=(1 << W) - 1)

# One serve batch: a shared (lockstep) request stream plus a per-run,
# per-CAT-row way mask held fixed for the batch (GroupedLLC re-derives
# the allow matrix between quanta, never inside one).
batch = st.tuples(
    st.lists(st.tuples(lines, st.booleans(), st.integers(0, C - 1)), min_size=1, max_size=120),
    st.tuples(*[st.tuples(*[masks] * C)] * R),
)
batches = st.lists(batch, min_size=1, max_size=6)


def _fresh_flat():
    tags = np.full(R * S * W, -1, dtype=np.int64)
    stamps = np.zeros(R * S * W, dtype=np.int64)
    pref = np.zeros(R * S * W, dtype=np.uint8)
    return tags, stamps, pref


def _allow_matrix(run_masks):
    allow = np.zeros(R * C * W, dtype=np.uint8)
    for r in range(R):
        for c in range(C):
            for w in ways_from_mask(run_masks[r][c], W):
                allow[r * C * W + c * W + w] = 1
    return allow


class TestServeLlcMatchesDictLruOracle:
    @given(batches)
    @settings(max_examples=60, deadline=None)
    def test_counters_and_outcomes(self, seq):
        tags, stamps, pref = _fresh_flat()
        oracles = [PartitionedCache(GEOM) for _ in range(R)]
        run_idx = np.arange(R, dtype=np.int64)
        seq0 = 1
        for ops, run_masks in seq:
            n = len(ops)
            line = np.array([o[0] for o in ops], dtype=np.int64)
            ispf = np.array([o[1] for o in ops], dtype=np.uint8)
            cpu = np.array([o[2] for o in ops], dtype=np.int64)
            occ_before = [o.occupancy() for o in oracles]
            stats_out, hits_d, mem_d, pref_m = nativekernels.serve_llc_arrays(
                tags, stamps, pref, S, W, run_idx, _allow_matrix(run_masks),
                C, line, line & (S - 1), ispf, cpu, cpu, seq0, C,
            )
            seq0 += n
            for r, o in enumerate(oracles):
                s0 = (o.stats.hits, o.stats.pref_fills, o.stats.pref_used,
                      o.stats.pref_evicted_unused)
                exp_hits = np.zeros(C, dtype=np.int64)
                exp_mem = np.zeros(C, dtype=np.int64)
                exp_pref = np.zeros(C, dtype=np.int64)
                for ln, pf, cp in ops:
                    allowed = ways_from_mask(run_masks[r][cp], W)
                    hit = o.access(ln, allowed, bool(pf))
                    if pf:
                        if not hit:
                            exp_pref[cp] += 1
                    elif hit:
                        exp_hits[cp] += 1
                    else:
                        exp_mem[cp] += 1
                assert stats_out[r, 0] == o.stats.hits - s0[0], "hits"
                assert stats_out[r, 1] == o.stats.pref_fills - s0[1], "pref_fills"
                assert stats_out[r, 2] == o.stats.pref_used - s0[2], "pref_used"
                assert stats_out[r, 3] == o.stats.pref_evicted_unused - s0[3], "evic"
                assert stats_out[r, 4] == o.occupancy() - occ_before[r], "free_fills"
                assert np.array_equal(hits_d[r], exp_hits), "demand-hit blocks"
                assert np.array_equal(mem_d[r], exp_mem), "demand-fill blocks"
                assert np.array_equal(pref_m[r], exp_pref), "prefetch-fill blocks"

    @given(batches)
    @settings(max_examples=40, deadline=None)
    def test_placement_and_lru_state(self, seq):
        """Resident lines sit in the same set and way as the oracle, and
        per-set stamp order reproduces the oracle's LRU order."""
        tags, stamps, pref = _fresh_flat()
        oracles = [PartitionedCache(GEOM) for _ in range(R)]
        run_idx = np.arange(R, dtype=np.int64)
        seq0 = 1
        touched = set()
        for ops, run_masks in seq:
            n = len(ops)
            line = np.array([o[0] for o in ops], dtype=np.int64)
            ispf = np.array([o[1] for o in ops], dtype=np.uint8)
            cpu = np.array([o[2] for o in ops], dtype=np.int64)
            nativekernels.serve_llc_arrays(
                tags, stamps, pref, S, W, run_idx, _allow_matrix(run_masks),
                C, line, line & (S - 1), ispf, cpu, cpu, seq0, C,
            )
            seq0 += n
            for ln, pf, cp in ops:
                touched.add(ln)
                for r, o in enumerate(oracles):
                    o.access(ln, ways_from_mask(run_masks[r][cp], W), bool(pf))
        t3 = tags.reshape(R, S, W)
        s3 = stamps.reshape(R, S, W)
        for r, o in enumerate(oracles):
            for ln in touched:
                si = ln & (S - 1)
                ways = np.flatnonzero(t3[r, si] == ln)
                if o.probe(ln):
                    assert ways.size == 1 and ways[0] == o.resident_way(ln), (
                        f"run {r}: line {ln} placement diverged"
                    )
                else:
                    assert ways.size == 0, f"run {r}: stale line {ln}"
            for si in range(S):
                valid = t3[r, si] != -1
                order = np.argsort(np.where(valid, s3[r, si], np.iinfo(np.int64).max),
                                   kind="stable")[: int(valid.sum())]
                kern_lru = t3[r, si][order].tolist()
                oracle_stamps = o._stamps[si]
                oracle_lru = [
                    o._tags[si][w]
                    for w in sorted(
                        (w for w in range(W) if o._tags[si][w] != -1),
                        key=lambda w: oracle_stamps[w],
                    )
                ]
                assert kern_lru == oracle_lru, f"run {r} set {si}: LRU order diverged"
