"""Hypothesis properties of trace generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import PointerChaseStream, RandomStream, SequentialStream, TraceGenerator

regions = st.integers(min_value=2, max_value=512)
chunk_sizes = st.integers(min_value=1, max_value=600)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestStreamProperties:
    @given(regions, chunk_sizes, st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_sequential_stays_in_region(self, region, n, repeats):
        s = SequentialStream(1, 1000, region, repeats=repeats)
        out = s.burst(n)
        assert out.min() >= 1000
        assert out.max() < 1000 + region

    @given(regions, chunk_sizes, seeds)
    @settings(max_examples=80, deadline=None)
    def test_chase_stays_in_region(self, region, n, seed):
        s = PointerChaseStream(1, 500, region, np.random.default_rng(seed))
        out = s.burst(n)
        assert out.min() >= 500
        assert out.max() < 500 + region

    @given(regions, seeds)
    @settings(max_examples=60, deadline=None)
    def test_chase_lap_is_permutation(self, region, seed):
        s = PointerChaseStream(1, 0, region, np.random.default_rng(seed), repeats=1)
        lap = s.burst(region)
        assert sorted(lap.tolist()) == list(range(region))

    @given(regions, chunk_sizes, seeds)
    @settings(max_examples=60, deadline=None)
    def test_random_stays_in_region(self, region, n, seed):
        s = RandomStream(1, 0, region, np.random.default_rng(seed))
        out = s.burst(n)
        assert out.min() >= 0
        assert out.max() < region

    @given(regions, st.integers(min_value=1, max_value=100), st.integers(min_value=1, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_burst_split_invariance(self, region, n1, n2):
        """Two bursts equal one concatenated burst (state continuity)."""
        a = SequentialStream(1, 0, region, repeats=2)
        b = SequentialStream(1, 0, region, repeats=2)
        joint = a.burst(n1 + n2)
        split = np.concatenate([b.burst(n1), b.burst(n2)])
        np.testing.assert_array_equal(joint, split)


class TestGeneratorProperties:
    @given(chunk_sizes, seeds)
    @settings(max_examples=60, deadline=None)
    def test_chunk_length_exact(self, n, seed):
        gen = TraceGenerator([SequentialStream(1, 0, 64)], [1.0], seed=seed)
        ctx, lines = gen.chunk(n)
        assert len(ctx) == n
        assert len(lines) == n

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_seed_determinism(self, seed):
        def make():
            return TraceGenerator(
                [SequentialStream(1, 0, 64), SequentialStream(2, 1 << 20, 32)],
                [0.7, 0.3],
                seed=seed,
            )

        _, a = make().chunk(256)
        _, b = make().chunk(256)
        np.testing.assert_array_equal(a, b)
