"""Hypothesis properties of 1-D k-means."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kmeans import cluster_groups, kmeans1d

values = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=32,
)
ks = st.integers(min_value=1, max_value=6)


class TestKmeansProperties:
    @given(values, ks)
    @settings(max_examples=80, deadline=None)
    def test_labels_valid_and_clusters_nonempty(self, vals, k):
        labels, centers = kmeans1d(vals, k)
        assert len(labels) == len(vals)
        assert set(labels) == set(range(len(centers)))

    @given(values, ks)
    @settings(max_examples=80, deadline=None)
    def test_centers_sorted(self, vals, k):
        _, centers = kmeans1d(vals, k)
        assert (np.diff(centers) >= 0).all()

    @given(values, ks)
    @settings(max_examples=80, deadline=None)
    def test_at_most_k_clusters(self, vals, k):
        _, centers = kmeans1d(vals, k)
        assert 1 <= len(centers) <= k

    @given(values, ks)
    @settings(max_examples=80, deadline=None)
    def test_each_point_assigned_to_nearest_center(self, vals, k):
        labels, centers = kmeans1d(vals, k)
        for v, l in zip(vals, labels):
            dists = np.abs(centers - v)
            assert dists[l] <= dists.min() + 1e-9

    @given(values, ks)
    @settings(max_examples=80, deadline=None)
    def test_cluster_groups_partition_indices(self, vals, k):
        groups = cluster_groups(vals, k)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(len(vals)))
        assert all(groups)

    @given(values, ks)
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, vals, k):
        a_labels, a_centers = kmeans1d(vals, k)
        b_labels, b_centers = kmeans1d(vals, k)
        assert list(a_labels) == list(b_labels)
        assert list(a_centers) == list(b_centers)
