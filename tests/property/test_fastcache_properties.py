"""Differential properties of the fast-engine cache models.

Three-way checks on random access sequences:

* :class:`FastCache` vs the reference :class:`Cache` vs a transparent
  plain-dict LRU oracle written independently of both,
* :class:`FastPartitionedCache` vs the reference
  :class:`PartitionedCache` under randomly varying CAT way masks.

"Identical" means the full observable surface: per-access hit/miss
return values, every :class:`CacheStats` counter, occupancy, probe
results and (for the LLC) resident-way placement and per-way
occupancy.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import Cache, PartitionedCache, ways_from_mask
from repro.sim.fastcache import FastCache, FastPartitionedCache
from repro.sim.params import CacheGeometry

GEOM = CacheGeometry(8 * 4 * 64, 4)  # 8 sets x 4 ways

lines = st.integers(min_value=0, max_value=1 << 12)
ops = st.lists(
    st.tuples(lines, st.booleans(), st.sampled_from(["access", "touch", "probe"])),
    min_size=1,
    max_size=400,
)


class DictLruOracle:
    """Independent LRU model: one insertion-ordered dict per set.

    Deliberately naive — no stats micro-optimisation, no shared code
    with either engine — so it can arbitrate if the two disagree.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.sets = [dict() for _ in range(geometry.sets)]
        self.ways = geometry.ways
        self.mask = geometry.sets - 1

    def access(self, line: int, is_prefetch: bool) -> bool:
        s = self.sets[line & self.mask]
        if line in s:
            bit = s.pop(line)
            s[line] = bit and is_prefetch  # demand hit consumes the bit
            return True
        if len(s) == self.ways:
            oldest = next(iter(s))
            s.pop(oldest)
        s[line] = is_prefetch
        return False

    def resident(self, line: int) -> bool:
        return line in self.sets[line & self.mask]

    def lru_order(self, line: int) -> list[int]:
        return list(self.sets[line & self.mask])


def _stats_tuple(c) -> tuple:
    s = c.stats
    return (s.accesses, s.hits, s.pref_fills, s.pref_used, s.pref_evicted_unused)


class TestFastCacheMatchesReferenceAndOracle:
    @given(ops)
    @settings(max_examples=80, deadline=None)
    def test_three_way_identical(self, seq):
        ref, fast = Cache(GEOM), FastCache(GEOM)
        oracle = DictLruOracle(GEOM)
        for line, pf, op in seq:
            if op == "access":
                r, f = ref.access(line, pf), fast.access(line, pf)
                o = oracle.access(line, pf)
                assert r == f == o
            elif op == "touch":
                assert ref.touch_used(line) == fast.touch_used(line)
                # The oracle treats an internal touch as an LRU refresh
                # that consumes the prefetched-unused bit.
                if oracle.resident(line):
                    s = oracle.sets[line & oracle.mask]
                    s.pop(line)
                    s[line] = False
            else:
                assert ref.probe(line) == fast.probe(line) == oracle.resident(line)
        assert _stats_tuple(ref) == _stats_tuple(fast)
        assert ref.occupancy() == fast.occupancy()

    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_tag_state_matches_oracle(self, seq):
        """After any sequence, resident lines and LRU order match the oracle."""
        fast = FastCache(GEOM)
        oracle = DictLruOracle(GEOM)
        for line, pf, op in seq:
            if op == "access":
                fast.access(line, pf)
                oracle.access(line, pf)
        tags = fast.tags_array()
        for si, s in enumerate(oracle.sets):
            expect = list(s)
            got = [t for t in tags[si].tolist() if t != -1]
            assert got == expect

    @given(st.lists(st.lists(lines, min_size=1, max_size=32), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_access_many_equals_scalar_loop(self, batches):
        a, b = FastCache(GEOM), FastCache(GEOM)
        for i, batch in enumerate(batches):
            pf = bool(i % 2)
            hits = a.access_many(batch, pf)
            for line, hit in zip(batch, hits):
                assert b.access(line, pf) == hit
        assert _stats_tuple(a) == _stats_tuple(b)
        assert (a.tags_array() == b.tags_array()).all()
        assert (a.pref_array() == b.pref_array()).all()


masks = st.integers(min_value=1, max_value=(1 << GEOM.ways) - 1)
part_ops = st.lists(
    st.tuples(lines, masks, st.booleans()), min_size=1, max_size=400
)


class TestFastPartitionedCacheMatchesReference:
    @given(part_ops)
    @settings(max_examples=80, deadline=None)
    def test_identical_under_varying_masks(self, seq):
        ref, fast = PartitionedCache(GEOM), FastPartitionedCache(GEOM)
        for line, mask, pf in seq:
            allowed = ways_from_mask(mask, GEOM.ways)
            assert ref.access(line, allowed, pf) == fast.access(line, allowed, pf)
            assert ref.resident_way(line) == fast.resident_way(line)
        assert _stats_tuple(ref) == _stats_tuple(fast)
        assert ref.occupancy() == fast.occupancy()
        for w in range(GEOM.ways):
            assert ref.occupancy_in_ways((w,)) == fast.occupancy_in_ways((w,))

    @given(part_ops)
    @settings(max_examples=60, deadline=None)
    def test_full_placement_matches(self, seq):
        """Every resident line sits in the same set *and way* in both."""
        ref, fast = PartitionedCache(GEOM), FastPartitionedCache(GEOM)
        touched = set()
        for line, mask, pf in seq:
            allowed = ways_from_mask(mask, GEOM.ways)
            ref.access(line, allowed, pf)
            fast.access(line, allowed, pf)
            touched.add(line)
        for line in touched:
            assert ref.probe(line) == fast.probe(line)
            assert ref.resident_way(line) == fast.resident_way(line)

    @given(part_ops)
    @settings(max_examples=40, deadline=None)
    def test_way_occupancy_consistent(self, seq):
        """O(1)-counter way occupancy equals a recount from the tag state."""
        fast = FastPartitionedCache(GEOM)
        for line, mask, pf in seq:
            fast.access(line, ways_from_mask(mask, GEOM.ways), pf)
        tags = fast.tags_array()
        for w in range(GEOM.ways):
            assert fast.occupancy_in_ways((w,)) == int((tags[:, w] != -1).sum())
        assert fast.occupancy() == int((tags != -1).sum())
