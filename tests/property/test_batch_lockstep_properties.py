"""Properties of the masked-lockstep grouped kernels.

Two layers of differential checks:

* :class:`GroupedLLC` served with per-run *divergent* CAT allow
  matrices — including mid-stream flips, subgroup (ragged) serves and
  multi-quantum concatenated streams — against an independent
  CAT-aware dict-LRU oracle, on hypothesis-generated request streams.
* The full :class:`LockstepGroup` under seeded-random scripts
  (divergent prefetch masks, mid-run CAT flips, uneven ``run_accesses``
  spans including non-quantum-aligned tails) against one scalar fast
  machine per run, comparing PMU totals, wall cycles, the dense
  ``cache_tensors``/``stride_tensor`` views and the grouped LLC image.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.batch import build_batch_kernel
from repro.experiments.config import ScaleConfig
from repro.experiments.runner import build_machine
from repro.sim.batch import GroupedLLC, LockstepGroup, _PreparedStream
from repro.sim.params import CacheGeometry
from repro.sim.tracestore import TraceStore
from repro.workloads.mixes import make_mixes

GEOM = CacheGeometry(8 * 4 * 64, 4)  # 8 sets x 4 ways
N_CPUS = 2

SC = ScaleConfig(name="lockstep-prop", llc_scale=16, n_cores=4, quantum=512)


class CatLruOracle:
    """Independent way-partitioned LRU model for one run.

    Deliberately naive: per set a list of ``[tag, stamp, pref]`` rows,
    one per way, no shared code with the grouped serve.  Fills take the
    lowest-indexed *allowed* empty way; victims the least-recently
    touched allowed valid way.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.g = geometry
        self.ways = [
            [[-1, -1, 0] for _ in range(geometry.ways)] for _ in range(geometry.sets)
        ]
        self.t = 0
        self.accesses = 0
        self.hits = 0
        self.pref_fills = 0
        self.pref_used = 0
        self.pref_evicted_unused = 0
        self.hits_d = [0] * N_CPUS
        self.mem_d = [0] * N_CPUS
        self.pref_m = [0] * N_CPUS

    def access(self, line: int, cpu: int, is_pref: bool, allow_row) -> None:
        self.t += 1
        self.accesses += 1
        ws = self.ways[line & (self.g.sets - 1)]
        for w in ws:
            if w[0] == line:
                self.hits += 1
                if not is_pref:
                    self.hits_d[cpu] += 1
                    if w[2]:
                        self.pref_used += 1
                w[1] = self.t
                w[2] = w[2] and is_pref
                return
        if not is_pref:
            self.mem_d[cpu] += 1
        else:
            self.pref_fills += 1
            self.pref_m[cpu] += 1
        victim = None
        for wi, w in enumerate(ws):
            if allow_row[wi] and w[0] == -1:
                victim = w
                break
        if victim is None:
            victim = min(
                (w for wi, w in enumerate(ws) if allow_row[wi]), key=lambda w: w[1]
            )
            if victim[2]:
                self.pref_evicted_unused += 1
        victim[0] = line
        victim[1] = self.t
        victim[2] = 1 if is_pref else 0

    def tags(self) -> np.ndarray:
        return np.array([[w[0] for w in ws] for ws in self.ways], dtype=np.int64)

    def prefs(self) -> np.ndarray:
        return np.array([[w[2] for w in ws] for ws in self.ways], dtype=np.uint8)

    def touch_ranks(self) -> np.ndarray:
        """Per-way rank of the last touch among the set's valid ways."""
        out = np.full((self.g.sets, self.g.ways), -1, dtype=np.int64)
        for si, ws in enumerate(self.ways):
            stamps = sorted(w[1] for w in ws if w[0] != -1)
            for wi, w in enumerate(ws):
                if w[0] != -1:
                    out[si, wi] = stamps.index(w[1])
        return out


def _stamp_ranks(llc: GroupedLLC, run: int) -> np.ndarray:
    """GroupedLLC stamps normalized to per-set touch ranks."""
    tags = llc.tags[run]
    stamps = llc.stamps[run]
    out = np.full(tags.shape, -1, dtype=np.int64)
    for si in range(tags.shape[0]):
        valid = np.flatnonzero(tags[si] != -1)
        order = valid[np.argsort(stamps[si][valid], kind="stable")]
        for rank, wi in enumerate(order):
            out[si, wi] = rank
    return out


def _rand_allow(rng, n_runs: int) -> np.ndarray:
    """Per-run, per-cpu way masks; every cpu keeps >=1 allowed way."""
    allow = rng.random((n_runs, N_CPUS, GEOM.ways)) < 0.6
    for r in range(n_runs):
        for c in range(N_CPUS):
            if not allow[r, c].any():
                allow[r, c, rng.integers(GEOM.ways)] = True
    return allow


def _stream(rng, n: int) -> _PreparedStream:
    lines = rng.integers(0, 64, size=n)
    is_pref = rng.random(n) < 0.4
    enc = np.where(is_pref, ~lines, lines)
    cpus = rng.integers(0, N_CPUS, size=n)
    return _PreparedStream(enc.tolist(), cpus.tolist(), GEOM.sets - 1)


def _oracle_replay(oracles, stream: _PreparedStream, allowed, runs) -> None:
    for i in range(stream.n):
        line = int(stream.line[i])
        cpu = int(stream.cpu_col[i])
        is_pref = bool(stream.is_pref[i])
        for r in runs:
            oracles[r].access(line, cpu, is_pref, allowed[r, cpu])


def _assert_run_matches(llc: GroupedLLC, oracle: CatLruOracle, run: int, label: str):
    assert np.array_equal(llc.tags[run], oracle.tags()), f"{label}: tags"
    assert np.array_equal(llc.pref[run] != 0, oracle.prefs() != 0), f"{label}: pref bits"
    assert np.array_equal(_stamp_ranks(llc, run), oracle.touch_ranks()), f"{label}: LRU order"
    assert llc.stats_for(run) == (
        oracle.accesses,
        oracle.hits,
        oracle.pref_fills,
        oracle.pref_used,
        oracle.pref_evicted_unused,
    ), f"{label}: stats"


class TestGroupedLLCOracle:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**6), width=st.sampled_from([1, 3, 8]))
    def test_divergent_allow_matches_oracle(self, seed, width):
        """Random streams, per-run divergent CAT rows re-randomized
        between serves (mid-run flips), full-group serving."""
        rng = np.random.default_rng(seed)
        llc = GroupedLLC(GEOM, width)
        oracles = [CatLruOracle(GEOM) for _ in range(width)]
        for _ in range(4):
            allowed = _rand_allow(rng, width)
            stream = _stream(rng, int(rng.integers(1, 120)))
            hits_d = np.zeros((width, N_CPUS), dtype=np.int64)
            mem_d = np.zeros((width, N_CPUS), dtype=np.int64)
            pref_m = np.zeros((width, N_CPUS), dtype=np.int64)
            runs = list(range(width))
            llc.serve(stream, allowed, hits_d, mem_d, pref_m, runs=runs)
            before = [(o.hits_d[:], o.mem_d[:], o.pref_m[:]) for o in oracles]
            _oracle_replay(oracles, stream, allowed, runs)
            for r in runs:
                bh, bm, bp = before[r]
                dh = [a - b for a, b in zip(oracles[r].hits_d, bh)]
                dm = [a - b for a, b in zip(oracles[r].mem_d, bm)]
                dp = [a - b for a, b in zip(oracles[r].pref_m, bp)]
                assert hits_d[r].tolist() == dh, f"run {r}: per-cpu demand hits"
                assert mem_d[r].tolist() == dm, f"run {r}: per-cpu demand misses"
                assert pref_m[r].tolist() == dp, f"run {r}: per-cpu pref fills"
        for r in range(width):
            _assert_run_matches(llc, oracles[r], r, f"run {r}")

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_ragged_subgroups_leave_others_untouched(self, seed):
        """Subgroup serves (the lockstep scheduler's shape) advance only
        the named runs; runs with equal images dedup without skew."""
        rng = np.random.default_rng(seed)
        width = 4
        llc = GroupedLLC(GEOM, width)
        oracles = [CatLruOracle(GEOM) for _ in range(width)]
        allowed = _rand_allow(rng, width)
        allowed[1] = allowed[0]  # identical pair: exercises run dedup
        for _ in range(5):
            sub = sorted(rng.choice(width, size=int(rng.integers(1, width + 1)), replace=False))
            stream = _stream(rng, int(rng.integers(1, 100)))
            hits_d = np.zeros((len(sub), N_CPUS), dtype=np.int64)
            mem_d = np.zeros((len(sub), N_CPUS), dtype=np.int64)
            pref_m = np.zeros((len(sub), N_CPUS), dtype=np.int64)
            llc.serve(stream, allowed, hits_d, mem_d, pref_m, runs=list(sub))
            _oracle_replay(oracles, stream, allowed, list(sub))
        for r in range(width):
            _assert_run_matches(llc, oracles[r], r, f"run {r}")

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_concat_equals_sequential_serves(self, seed):
        """One multi-segment serve over concatenated quanta must equal
        serving the quanta back to back, stamps included, and its
        segment axis must recover the per-quantum counters."""
        rng = np.random.default_rng(seed)
        width = 3
        k = int(rng.integers(2, 5))
        allowed = _rand_allow(rng, width)
        quanta = [_stream(rng, int(rng.integers(1, 60))) for _ in range(k)]
        runs = list(range(width))

        seq_llc = GroupedLLC(GEOM, width)
        seq_hits = np.zeros((width, k, N_CPUS), dtype=np.int64)
        seq_mem = np.zeros((width, k, N_CPUS), dtype=np.int64)
        seq_pref = np.zeros((width, k, N_CPUS), dtype=np.int64)
        for j, s in enumerate(quanta):
            seq_llc.serve(
                s, allowed, seq_hits[:, j], seq_mem[:, j], seq_pref[:, j], runs=runs
            )

        cat_llc = GroupedLLC(GEOM, width)
        cat_hits = np.zeros((width, k, N_CPUS), dtype=np.int64)
        cat_mem = np.zeros((width, k, N_CPUS), dtype=np.int64)
        cat_pref = np.zeros((width, k, N_CPUS), dtype=np.int64)
        span = _PreparedStream.concat(quanta, N_CPUS)
        cat_llc.serve(span, allowed, cat_hits, cat_mem, cat_pref, runs=runs)

        assert np.array_equal(seq_llc.tags, cat_llc.tags)
        assert np.array_equal(seq_llc.stamps, cat_llc.stamps)
        assert np.array_equal(seq_llc.pref, cat_llc.pref)
        assert np.array_equal(seq_hits, cat_hits)
        assert np.array_equal(seq_mem, cat_mem)
        assert np.array_equal(seq_pref, cat_pref)
        for r in runs:
            assert seq_llc.stats_for(r) == cat_llc.stats_for(r)


def _make_script(rng, n_cores: int, ways: int, n_segs: int):
    """A seeded driver script: per segment, new per-core prefetch
    masks, an optional CAT flip, and an uneven (sometimes unaligned)
    access span."""
    script = []
    for _ in range(n_segs):
        masks = [int(rng.integers(0, 16)) for _ in range(n_cores)]
        cat = None
        if rng.random() < 0.5:

            def contiguous_cbm():
                length = int(rng.integers(1, ways + 1))
                start = int(rng.integers(0, ways - length + 1))
                return ((1 << length) - 1) << start

            clos = [int(rng.integers(0, 2)) for _ in range(n_cores)]
            cat = (contiguous_cbm(), contiguous_cbm(), clos)
        n = int(rng.integers(1, 5)) * 512
        if rng.random() < 0.25:
            n += 256  # unaligned tail: exercises the k=1 scheduler path
        script.append((masks, cat, n))
    return script


def _apply_script(machine, script):
    for masks, cat, n in script:
        for cpu, mask in enumerate(masks):
            machine.prefetch_msr.set_mask(cpu, mask)
        if cat is not None:
            cbm0, cbm1, clos = cat
            machine.cat.set_cbm(0, cbm0)
            machine.cat.set_cbm(1, cbm1)
            for cpu, c in enumerate(clos):
                machine.cat.assign_core(cpu, c)
        machine.run_accesses(n)
    return None


class TestLockstepGroupVsScalar:
    @pytest.mark.parametrize("width", [1, 3, 8])
    @pytest.mark.parametrize("seed", [7, 2019])
    def test_scripts_match_scalar_machines(self, width, seed):
        """Seeded-random divergent scripts (masks, CAT flips, ragged
        span lengths) through a LockstepGroup match one scalar fast
        machine per run — PMU, wall, dense core tensors, LLC image."""
        rng = np.random.default_rng(seed)
        store = TraceStore(None, mode="memory")
        mix = make_mixes("pref_agg", 1, n_cores=4, seed=2019)[0]
        ways = SC.params().llc.ways
        # Ragged: each run gets a different number of segments.
        scripts = [
            _make_script(rng, mix.n_cores, ways, 2 + (r % 3)) for r in range(width)
        ]
        budget = max(sum(seg[2] for seg in s) for s in scripts) + 512
        kernel = build_batch_kernel(mix, SC, store, length=budget)
        group = LockstepGroup(kernel, width)

        def driver(m, s, r):
            _apply_script(m, s)
            # Snapshot this run's dense core state before the scheduler
            # retires it (drivers run one at a time, so this is safe).
            snap = {}
            for cpu, core in group.cores.items():
                snap[cpu] = (
                    core.cache_tensors("l1")[0][r].copy(),
                    core.cache_tensors("l2")[0][r].copy(),
                    core.stride_tensor()[r].copy(),
                )
            return snap

        snaps = group.run(
            [lambda m, s=s, r=r: driver(m, s, r) for r, s in enumerate(scripts)]
        )

        for r, script in enumerate(scripts):
            ref = build_machine(mix, SC, trace_store=store)
            _apply_script(ref, script)
            m = group.members[r]
            assert np.array_equal(m.pmu.counts, ref.pmu.counts), f"run {r}: pmu"
            assert m.pmu.wall_cycles == ref.pmu.wall_cycles, f"run {r}: wall"
            rs = ref.llc.stats
            assert group.llc.stats_for(r) == (
                rs.accesses, rs.hits, rs.pref_fills, rs.pref_used,
                rs.pref_evicted_unused,
            ), f"run {r}: llc stats"
            assert group.llc.occupancy(r) == ref.llc.occupancy(), f"run {r}: occupancy"
            for cpu in group.cores:
                l1_tags, l2_tags, table = snaps[r][cpu]
                assert np.array_equal(l1_tags, ref.cores[cpu].l1.tags_array()), (
                    f"run {r} cpu {cpu}: l1 tags"
                )
                assert np.array_equal(l2_tags, ref.cores[cpu].l2.tags_array()), (
                    f"run {r} cpu {cpu}: l2 tags"
                )
                ref_rows = [
                    [int(ctx), *map(int, row)]
                    for ctx, row in ref.cores[cpu].bank.ip_stride._table.items()
                ]
                got = table[table[:, 0] != -1]
                assert got.tolist() == ref_rows, f"run {r} cpu {cpu}: stride table"
