"""Hypothesis properties of the system-level metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.speedup import (
    harmonic_mean,
    harmonic_speedup,
    normalized_ipcs,
    weighted_speedup,
    worst_case_speedup,
)

pos = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)
pairs = st.integers(min_value=1, max_value=12).flatmap(
    lambda n: st.tuples(
        st.lists(pos, min_size=n, max_size=n), st.lists(pos, min_size=n, max_size=n)
    )
)


class TestMetricProperties:
    @given(pairs)
    @settings(max_examples=100, deadline=None)
    def test_hs_bounded_by_min_and_max_ratio(self, pair):
        together, alone = pair
        ratios = normalized_ipcs(together, alone)
        hs = harmonic_speedup(together, alone)
        assert ratios.min() - 1e-9 <= hs <= ratios.max() + 1e-9

    @given(pairs)
    @settings(max_examples=100, deadline=None)
    def test_hs_le_ws(self, pair):
        """Harmonic mean never exceeds arithmetic mean of the ratios."""
        together, alone = pair
        assert harmonic_speedup(together, alone) <= weighted_speedup(together, alone) + 1e-9

    @given(pairs)
    @settings(max_examples=100, deadline=None)
    def test_worst_le_hs(self, pair):
        together, alone = pair
        assert worst_case_speedup(together, alone) <= harmonic_speedup(together, alone) + 1e-9

    @given(pairs, pos)
    @settings(max_examples=60, deadline=None)
    def test_scale_invariance(self, pair, scale):
        """Scaling both runs by the same factor changes nothing."""
        together, alone = pair
        scaled = [t * scale for t in together]
        ref = [a * scale for a in alone]
        np.testing.assert_allclose(
            harmonic_speedup(scaled, ref), harmonic_speedup(together, alone), rtol=1e-6
        )

    @given(st.lists(pos, min_size=1, max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_harmonic_mean_bounds(self, vals):
        hm = harmonic_mean(vals)
        assert min(vals) - 1e-9 <= hm <= max(vals) + 1e-9

    @given(pairs)
    @settings(max_examples=60, deadline=None)
    def test_identity_run_scores_one(self, pair):
        _, alone = pair
        assert harmonic_speedup(alone, alone) == 1.0
        assert weighted_speedup(alone, alone) == 1.0
        assert worst_case_speedup(alone, alone) == 1.0
