"""Resctrl filesystem protocol against a fake /sys/fs/resctrl."""

import pytest

from repro.platform.resctrl import ResctrlError, ResctrlFs, format_cpu_list, parse_cpu_list


@pytest.fixture
def fs(tmp_path):
    """A fake resctrl mount with the files the kernel would provide."""
    root = tmp_path / "resctrl"
    root.mkdir()
    (root / "schemata").write_text("L3:0=fffff\n")
    (root / "cpus_list").write_text("0-7\n")
    return ResctrlFs(root)


class TestCpuListSyntax:
    @pytest.mark.parametrize(
        "cpus,text",
        [([0], "0"), ([0, 1, 2], "0-2"), ([0, 2, 3, 4, 7], "0,2-4,7"), ([], "")],
    )
    def test_format(self, cpus, text):
        assert format_cpu_list(cpus) == text

    @pytest.mark.parametrize(
        "text,cpus",
        [("0", [0]), ("0-2", [0, 1, 2]), ("0,2-4,7", [0, 2, 3, 4, 7]), ("", []), ("3,1", [1, 3])],
    )
    def test_parse(self, text, cpus):
        assert parse_cpu_list(text) == cpus

    def test_roundtrip(self):
        cpus = [0, 1, 5, 6, 7, 11]
        assert parse_cpu_list(format_cpu_list(cpus)) == cpus

    def test_format_dedupes_and_sorts(self):
        assert format_cpu_list([3, 1, 3, 2]) == "1-3"


class TestGroups:
    def test_available(self, fs, tmp_path):
        assert fs.available()
        assert not ResctrlFs(tmp_path / "nope").available()

    def test_create_and_list(self, fs):
        fs.create_group("cmm_clos1")
        fs.create_group("cmm_clos2")
        assert fs.list_groups() == ["cmm_clos1", "cmm_clos2"]

    def test_info_dirs_excluded(self, fs):
        (fs.root / "info").mkdir()
        (fs.root / "mon_groups").mkdir()
        fs.create_group("g")
        assert fs.list_groups() == ["g"]

    def test_remove(self, fs):
        fs.create_group("g")
        fs.remove_group("g")
        assert fs.list_groups() == []

    def test_remove_root_refused(self, fs):
        with pytest.raises(ResctrlError):
            fs.remove_group("")  # "" resolves inside root; name invalid anyway

    def test_bad_names_rejected(self, fs):
        for bad in ("a/b", ".", ".."):
            with pytest.raises(ResctrlError):
                fs.group_path(bad)


class TestSchemata:
    def test_read_root_cbm(self, fs):
        assert fs.read_l3_cbm(None) == 0xFFFFF

    def test_write_then_read(self, fs):
        fs.write_l3_cbm(None, 0x3F)
        assert fs.read_l3_cbm(None) == 0x3F
        assert (fs.root / "schemata").read_text() == "L3:0=3f\n"

    def test_group_schemata(self, fs):
        fs.create_group("g")
        fs.write_l3_cbm("g", 0x7)
        assert fs.read_l3_cbm("g") == 0x7
        assert fs.read_l3_cbm(None) == 0xFFFFF  # root untouched

    def test_multi_domain_line(self, fs):
        (fs.root / "schemata").write_text("L3:0=f;1=ff\n")
        assert ResctrlFs(fs.root, cache_id=1).read_l3_cbm(None) == 0xFF

    def test_missing_domain_raises(self, fs):
        with pytest.raises(ResctrlError):
            ResctrlFs(fs.root, cache_id=3).read_l3_cbm(None)

    def test_zero_cbm_rejected(self, fs):
        with pytest.raises(ResctrlError):
            fs.write_l3_cbm(None, 0)


class TestCpus:
    def test_assign_and_read(self, fs):
        fs.create_group("g")
        fs.assign_cpus("g", [1, 2, 3, 6])
        assert fs.read_cpus("g") == [1, 2, 3, 6]
        assert (fs.root / "g" / "cpus_list").read_text() == "1-3,6\n"

    def test_read_root_cpus(self, fs):
        assert fs.read_cpus(None) == list(range(8))
