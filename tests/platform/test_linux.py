"""LinuxPlatform against fake /dev/cpu and /sys/fs/resctrl trees."""

import struct

import numpy as np
import pytest

from repro.platform.linux import LinuxPlatform, MsrDevice, NullPmuReader
from repro.platform.resctrl import ResctrlFs
from repro.sim.msr import MSR_MISC_FEATURE_CONTROL
from repro.sim.pmu import Event, N_EVENTS

N_CORES = 4
LLC_WAYS = 20


@pytest.fixture
def fake_dev(tmp_path):
    """Fake /dev/cpu/N/msr files big enough to pread at offset 0x1A4."""
    dev = tmp_path / "dev" / "cpu"
    for cpu in range(N_CORES):
        d = dev / str(cpu)
        d.mkdir(parents=True)
        (d / "msr").write_bytes(b"\x00" * 0x400)
    return dev


@pytest.fixture
def fake_resctrl(tmp_path):
    root = tmp_path / "resctrl"
    root.mkdir()
    (root / "schemata").write_text(f"L3:0={(1 << LLC_WAYS) - 1:x}\n")
    (root / "cpus_list").write_text(f"0-{N_CORES - 1}\n")
    return root


@pytest.fixture
def platform(fake_dev, fake_resctrl):
    return LinuxPlatform(
        N_CORES,
        LLC_WAYS,
        resctrl=ResctrlFs(fake_resctrl),
        msr=MsrDevice(fake_dev),
        sleep=lambda s: None,
    )


class TestMsrDevice:
    def test_write_read_roundtrip(self, fake_dev):
        dev = MsrDevice(fake_dev)
        dev.write(0, MSR_MISC_FEATURE_CONTROL, 0xF)
        assert dev.read(0, MSR_MISC_FEATURE_CONTROL) == 0xF

    def test_little_endian_layout(self, fake_dev):
        dev = MsrDevice(fake_dev)
        dev.write(1, 0x10, 0x0102030405060708)
        raw = (fake_dev / "1" / "msr").read_bytes()[0x10:0x18]
        assert struct.unpack("<Q", raw)[0] == 0x0102030405060708


class TestPrefetchControl:
    def test_set_get_mask(self, platform):
        platform.set_prefetch_mask(2, 0x9)
        assert platform.prefetch_mask(2) == 0x9

    def test_only_low_bits_touched(self, platform, fake_dev):
        dev = MsrDevice(fake_dev)
        dev.write(0, MSR_MISC_FEATURE_CONTROL, 0xF0)
        platform.set_prefetch_mask(0, 0x3)
        assert dev.read(0, MSR_MISC_FEATURE_CONTROL) == 0xF3

    def test_mask_validated(self, platform):
        with pytest.raises(ValueError):
            platform.set_prefetch_mask(0, 0x10)


class TestPartitioning:
    def test_clos0_writes_root_schemata(self, platform, fake_resctrl):
        platform.set_clos_cbm(0, 0xFF)
        assert "L3:0=ff" in (fake_resctrl / "schemata").read_text()

    def test_nonzero_clos_creates_group(self, platform, fake_resctrl):
        platform.set_clos_cbm(1, 0x3)
        group = fake_resctrl / "cmm_clos1"
        assert group.is_dir()
        assert "L3:0=3" in (group / "schemata").read_text()

    def test_assign_core_partitions_cpu_lists(self, platform, fake_resctrl):
        platform.set_clos_cbm(1, 0x3)
        platform.assign_core_clos(0, 1)
        platform.assign_core_clos(1, 1)
        assert (fake_resctrl / "cmm_clos1" / "cpus_list").read_text().strip() == "0-1"
        # remaining cores stay in the root group
        assert (fake_resctrl / "cpus_list").read_text().strip() == "2-3"

    def test_reset_partitions(self, platform, fake_resctrl):
        platform.set_clos_cbm(1, 0x3)
        platform.assign_core_clos(0, 1)
        platform.reset_partitions()
        assert not (fake_resctrl / "cmm_clos1").exists()
        assert f"{(1 << LLC_WAYS) - 1:x}" in (fake_resctrl / "schemata").read_text()


class TestMeasurement:
    def test_run_interval_returns_deltas(self, fake_dev, fake_resctrl):
        counts = np.zeros((N_CORES, N_EVENTS))
        clock = [0.0]

        def reader():
            counts[:, Event.INSTRUCTIONS] += 100.0
            clock[0] += 1000.0
            return counts.copy(), clock[0]

        plat = LinuxPlatform(
            N_CORES, LLC_WAYS,
            resctrl=ResctrlFs(fake_resctrl), msr=MsrDevice(fake_dev),
            pmu_reader=reader, sleep=lambda s: None,
        )
        sample = plat.run_interval(100)
        assert sample.get(0, Event.INSTRUCTIONS) == 100.0
        assert sample.wall_cycles == 1000.0

    def test_null_reader_contract(self):
        counts, cyc = NullPmuReader(3).read()
        assert counts.shape == (3, N_EVENTS)
        assert cyc == 0.0

    def test_identity_properties(self, platform):
        assert platform.n_cores == N_CORES
        assert platform.llc_ways == LLC_WAYS
        assert platform.cycles_per_second == pytest.approx(2.1e9)
        assert platform.full_cbm() == (1 << LLC_WAYS) - 1
