"""SimulatedPlatform adapter."""

import pytest

from repro.platform.simulated import SimulatedPlatform
from repro.sim.machine import Machine
from repro.sim.pmu import Event
from tests.conftest import make_seq_trace


@pytest.fixture
def platform(tiny_params):
    m = Machine(tiny_params, quantum=256)
    m.attach_trace(0, make_seq_trace())
    return SimulatedPlatform(m)


class TestSimulatedPlatform:
    def test_identity(self, platform, tiny_params):
        assert platform.n_cores == tiny_params.n_cores
        assert platform.llc_ways == tiny_params.llc.ways
        assert platform.cycles_per_second == tiny_params.cycles_per_second

    def test_prefetch_mask_roundtrip(self, platform):
        platform.set_prefetch_mask(0, 0xF)
        assert platform.prefetch_mask(0) == 0xF

    def test_partitions_forwarded_to_cat(self, platform):
        platform.set_clos_cbm(1, 0b11)
        platform.assign_core_clos(0, 1)
        assert platform.machine.cat.allowed_ways(0) == (0, 1)

    def test_reset_partitions(self, platform):
        platform.set_clos_cbm(1, 0b11)
        platform.assign_core_clos(0, 1)
        platform.reset_partitions()
        assert platform.machine.cat.core_clos(0) == 0

    def test_run_interval_returns_delta_only(self, platform):
        s1 = platform.run_interval(500)
        s2 = platform.run_interval(500)
        assert s1.get(0, Event.L1_DM_REQ) == 500
        assert s2.get(0, Event.L1_DM_REQ) == 500  # delta, not cumulative

    def test_set_all_prefetchers(self, platform):
        platform.set_all_prefetchers(0xF)
        assert all(platform.prefetch_mask(c) == 0xF for c in range(platform.n_cores))
