"""Shared fixtures: small geometries and machines that run in milliseconds."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.sim.machine import Machine
from repro.sim.params import CacheGeometry, MachineParams
from repro.sim.trace import RandomStream, SequentialStream, TraceGenerator


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    """Point the experiment engine's on-disk cache at a throwaway dir.

    Keeps test runs from reading (or polluting) the user's real
    ``~/.cache/repro`` store while still exercising the disk tier.
    """
    from repro.experiments import engine

    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    engine.set_default_session(None)
    yield
    engine.set_default_session(None)


@pytest.fixture
def tiny_geometry() -> CacheGeometry:
    """4 sets x 4 ways x 64 B."""
    return CacheGeometry(4 * 4 * 64, 4)


@pytest.fixture
def tiny_params() -> MachineParams:
    """A 2-core machine with very small caches for fast unit tests."""
    return MachineParams(
        n_cores=2,
        l1=CacheGeometry(8 * 64 * 2, 2),      # 16 sets x 2 ways
        l2=CacheGeometry(32 * 64 * 4, 4),     # 32 sets x 4 ways
        llc=CacheGeometry(64 * 64 * 8, 8),    # 64 sets x 8 ways
    )


@pytest.fixture
def tiny_machine(tiny_params) -> Machine:
    return Machine(tiny_params, quantum=256)


def make_seq_trace(base: int = 0, region: int = 4096, *, ipm: float = 4.0, seed: int = 1) -> TraceGenerator:
    return TraceGenerator(
        [SequentialStream(ctx=1, base_line=base, region_lines=region)],
        [1.0],
        inst_per_mem=ipm,
        mlp=8.0,
        seed=seed,
    )


def make_random_trace(base: int = 0, region: int = 65536, *, ipm: float = 2.0, seed: int = 2) -> TraceGenerator:
    rng = np.random.default_rng(seed)
    return TraceGenerator(
        [RandomStream(ctx=2, base_line=base, region_lines=region, rng=rng)],
        [1.0],
        inst_per_mem=ipm,
        mlp=4.0,
        seed=seed,
    )
