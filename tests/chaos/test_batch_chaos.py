"""Batched-sweep chaos: batch-layer failures must be invisible.

The batch engine sits between sessions and the simulator, so its
failure contract matters: a group that cannot be batched, a lockstep
sweep that dies mid-flight, or a batch path sabotaged outright must
degrade to per-run scalar execution with **identical results** — never
an exception, never a changed payload, never a half-written entry.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.experiments import batch as B
from repro.experiments.batch import BatchRunSpec, simulate_batch
from repro.experiments.config import TINY, ScaleConfig
from repro.experiments.engine import KIND_MECHANISM, ExperimentSession, PlannedRun
from repro.sim.tracestore import TraceStore
from repro.workloads.mixes import make_mixes

SC = ScaleConfig(name="batch-chaos", llc_scale=16, n_cores=4, quantum=512)
MECH_SC = dataclasses.replace(SC, sample_units=512, exec_units=2048, n_epochs=1)


@pytest.fixture(scope="module")
def store():
    return TraceStore(None, mode="memory")


@pytest.fixture(scope="module")
def mix():
    return make_mixes("pref_agg", 1, n_cores=4, seed=2019)[0]


def _static_specs(mix, width=3):
    w = SC.params().llc.ways
    specs = []
    for i in range(width):
        cbm0 = (1 << (2 + i)) - 1
        specs.append(
            BatchRunSpec(
                mix=mix,
                n_accesses=4096,
                masks=(0x0,) * mix.n_cores,
                clos_cbms=((0, cbm0), (1, ((1 << w) - 1) ^ cbm0)),
                core_clos=tuple(c % 2 for c in range(mix.n_cores)),
            )
        )
    return specs


class TestLockstepFailureFallback:
    def test_sweep_crash_degrades_to_per_run(self, store, mix, monkeypatch):
        specs = _static_specs(mix)
        healthy = simulate_batch(specs, SC, trace_store=store)

        def bomb(*a, **kw):
            raise RuntimeError("injected lockstep failure")

        monkeypatch.setattr(B, "run_static_sweep", bomb)
        degraded = simulate_batch(specs, SC, trace_store=store)
        for h, d in zip(healthy, degraded):
            assert np.array_equal(h.totals, d.totals)
            assert h.wall_cycles == d.wall_cycles

    def test_unbatchable_store_degrades_to_scalar(self, mix):
        """Trace plane off: no kernel can be built, results unchanged."""
        warm = TraceStore(None, mode="memory")
        specs = _static_specs(mix, width=2)
        batched = simulate_batch(specs, SC, trace_store=warm)
        off = simulate_batch(specs, SC, trace_store=TraceStore(None, mode="off"))
        for a, b in zip(batched, off):
            assert np.array_equal(a.totals, b.totals)
            assert a.wall_cycles == b.wall_cycles


class TestGroupedCoreMidQuantumCrash:
    def test_core_crash_degrades_per_run_bit_identically(self, store, mix, monkeypatch):
        """A GroupedCore that raises mid-quantum kills the lockstep group;
        the group must degrade to per-run execution with bit-identical
        results and one counted degradation per member."""
        from repro.sim import batch as SB

        specs = [BatchRunSpec(mix=mix, mechanism=m) for m in ("pt", "cmm-a", "dunn")]
        healthy = simulate_batch(specs, MECH_SC, trace_store=store)
        assert all(rs.batch_degradations == 0 for rs in healthy)

        orig = SB.GroupedCore.step
        calls = {"n": 0}

        def flaky(self, *a, **kw):
            calls["n"] += 1
            if calls["n"] == 5:
                raise RuntimeError("injected GroupedCore mid-quantum failure")
            return orig(self, *a, **kw)

        monkeypatch.setattr(SB.GroupedCore, "step", flaky)
        degraded = simulate_batch(specs, MECH_SC, trace_store=store)
        assert calls["n"] >= 5, "injection never fired"
        for h, d in zip(healthy, degraded):
            assert np.array_equal(h.totals, d.totals)
            assert h.wall_cycles == d.wall_cycles
            assert d.batch_degradations == 1


class TestSessionGroupFailureFallback:
    def test_sabotaged_group_dispatch_is_invisible(self, monkeypatch):
        """A crashing compute_mechanism_group must not fail the sweep or
        change any payload — the session retries runs per-run."""
        mix = make_mixes("pref_agg", 1, n_cores=4, seed=2019)[0]
        runs = [
            PlannedRun(KIND_MECHANISM, MECH_SC, mix=mix, mechanism=m)
            for m in ("baseline", "pt")
        ]
        healthy = ExperimentSession(
            cache_dir=None, max_workers=1, trace_cache="memory"
        ).execute(runs)

        def bomb(*a, **kw):
            raise RuntimeError("injected batch-group failure")

        monkeypatch.setattr(B, "compute_mechanism_group", bomb)
        degraded = ExperimentSession(
            cache_dir=None, max_workers=1, trace_cache="memory"
        ).execute(runs)
        assert healthy.keys() == degraded.keys()
        for key in healthy:
            assert json.dumps(healthy[key], sort_keys=True) == json.dumps(
                degraded[key], sort_keys=True
            )
