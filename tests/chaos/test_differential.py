"""With faults disabled, the resilience layer must change *nothing*.

The fingerprints and cache keys below were captured before the
robustness machinery existed (retry wrappers, sample validation,
safe-state fallback, engine hardening).  If any of them drift, the
"resilience on by default, zero behavioral change without faults"
contract is broken — or a cache schema bump is being smuggled in
without invalidating ``SCHEMA_VERSION``.
"""

import dataclasses
import hashlib

import numpy as np

from repro.core.controller import CMMController
from repro.core.epoch import EpochConfig
from repro.core.policies import make_policy
from repro.experiments.config import TINY
from repro.experiments.engine import (
    KIND_ALONE,
    KIND_MECHANISM,
    KIND_PROFILE,
    PlannedRun,
)
from repro.experiments.runner import build_machine
from repro.platform.faults import FaultPlan, FaultyPlatform
from repro.platform.simulated import SimulatedPlatform
from repro.workloads.mixes import make_mixes

SC = dataclasses.replace(
    TINY, name="unit", quantum=256, sample_units=256, exec_units=2048, alone_accesses=4096
)

#: sha256(stats.totals.tobytes() + float64(stats.wall_cycles).tobytes())
#: for SC + the first pref_agg mix (seed 2019), captured pre-hardening.
PRE_HARDENING_FINGERPRINTS = {
    "baseline": "49455a3f0475a441298d02faaf53c874bb45bb4eac8a7c74791d1dccaad1526e",
    "cmm-a": "2322f568afb33f14f4142cee091e0a0ee93112e59b4bd2e0115fe665c7f5167d",
    "pt": "0df1235fa58d11e7f2642650cd8c903cc8891d23f22b49f67dd20541af353e1a",
}

#: Content-addressed cache keys captured pre-hardening: faults-off
#: sessions must keep replaying old on-disk results.
PRE_HARDENING_KEYS = {
    "mech-cmm-a": "487ec95432f344df3af37724a663738135d7dd109e7c6232e97f4a4a784455b8",
    "alone-410.bwaves": "029c125f72c9cf1e9115fbcc5336d69262503209f36c2d9239fdb04e5e6c7f05",
    "profile-453.povray": "75943b3fb8ddbf18a5f02792e2dc5c3d0db08313ce2a9769306798bb976e68cb",
    "tiny-baseline": "9daf036c9e6daeb4dec6548cc9d3f6522f16bb59f17f454aef95d2cafd445346",
}


def the_mix():
    return make_mixes("pref_agg", 1, seed=2019)[0]


def fingerprint(stats):
    return hashlib.sha256(
        stats.totals.tobytes() + np.float64(stats.wall_cycles).tobytes()
    ).hexdigest()


def run_controller(mechanism, wrap=None):
    machine = build_machine(the_mix(), SC)
    platform = SimulatedPlatform(machine)
    if wrap is not None:
        platform = wrap(platform)
    ctl = CMMController(
        platform,
        make_policy(mechanism),
        epoch_cfg=EpochConfig(exec_units=SC.exec_units, sample_units=SC.sample_units),
    )
    return ctl.run(SC.n_epochs)


class TestBitIdenticalCleanPath:
    def test_controller_matches_pre_hardening_fingerprints(self):
        for mech, expected in PRE_HARDENING_FINGERPRINTS.items():
            assert fingerprint(run_controller(mech)) == expected, mech

    def test_zero_rate_fault_wrapper_is_invisible(self):
        wrap = lambda p: FaultyPlatform(p, FaultPlan(seed=123))
        for mech, expected in PRE_HARDENING_FINGERPRINTS.items():
            assert fingerprint(run_controller(mech, wrap=wrap)) == expected, mech


class TestCacheKeyStability:
    def test_keys_match_pre_hardening_captures(self):
        mix = the_mix()
        assert (
            PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="cmm-a").key()
            == PRE_HARDENING_KEYS["mech-cmm-a"]
        )
        assert (
            PlannedRun(KIND_ALONE, SC, bench="410.bwaves").key()
            == PRE_HARDENING_KEYS["alone-410.bwaves"]
        )
        assert (
            PlannedRun(KIND_PROFILE, SC, bench="453.povray", way_sweep=(1, 2)).key()
            == PRE_HARDENING_KEYS["profile-453.povray"]
        )
        assert (
            PlannedRun(KIND_MECHANISM, TINY, mix=mix, mechanism="baseline").key()
            == PRE_HARDENING_KEYS["tiny-baseline"]
        )
