"""Trace-plane chaos: shared-memory segments must never outlive their
session — not after worker crashes, not after KeyboardInterrupt, not
after a session is simply dropped.

Uses the ``fork`` start method and real mechanism runs (which publish
segments) mixed with the misbehaving ``KIND_HOOK`` workers from
``tests.chaos.workers``, so the leak paths exercised are the
production pool paths.
"""

import dataclasses
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.experiments.config import TINY
from repro.experiments.engine import (
    KIND_HOOK,
    KIND_MECHANISM,
    ExperimentSession,
    PlannedRun,
)
from repro.platform.faults import verify_no_segment_leaks
from repro.sim.tracestore import shm_residue
from repro.workloads.mixes import make_mixes

SC = dataclasses.replace(
    TINY, name="unit", quantum=256, sample_units=256, exec_units=2048, alone_accesses=4096
)
FORK = multiprocessing.get_context("fork")

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no POSIX shared-memory filesystem"
)


@pytest.fixture(autouse=True)
def plenty_of_cpus(monkeypatch):
    monkeypatch.setattr("os.cpu_count", lambda: 8)


def hook(name):
    return PlannedRun(KIND_HOOK, SC, bench=f"tests.chaos.workers:{name}")


def mech(mechanism):
    mix = make_mixes("pref_agg", 1, seed=2019)[0]
    return PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism=mechanism)


def make_session(tmp_path, **kw):
    kw.setdefault("max_workers", 2)
    kw.setdefault("mp_context", FORK)
    kw.setdefault("trace_cache", "memory")
    kw.setdefault("run_timeout", 120)
    return ExperimentSession(cache_dir=tmp_path / "cache", **kw)


class TestWorkerCrash:
    def test_crash_mid_batch_completes_and_leaks_nothing(self, tmp_path):
        """A worker dies while segments are published: the respawned
        pool finishes the mechanism runs, and close() leaves /dev/shm
        clean — the dead worker only ever *attached*."""
        session = make_session(tmp_path)
        runs = [mech("baseline"), hook("crash"), mech("cmm-a")]
        out = session.execute(runs, strict=False)
        assert len(out) == 2  # both mechanism runs completed
        assert list(session.failed) == [hook("crash").key()]
        assert session.trace_store.stats().shm_segments > 0  # plane was used
        session.close()
        assert verify_no_segment_leaks() == []
        assert shm_residue() == []

    def test_segments_survive_respawn_for_retried_runs(self, tmp_path):
        # The store (and its segments) belongs to the session, not the
        # pool: a pool crash must not invalidate published segments.
        session = make_session(tmp_path)
        session.execute([mech("baseline"), hook("crash")], strict=False)
        before = session.trace_store.stats().shm_segments
        out = session.execute([mech("pt")])
        assert len(out) == 1
        assert session.trace_store.stats().shm_segments == before  # reused
        session.close()
        assert shm_residue() == []

    def test_hang_then_timeout_leaks_nothing(self, tmp_path):
        session = make_session(tmp_path, run_timeout=0.6)
        out = session.execute([hook("hang"), hook("ok_a")], strict=False)
        assert len(out) == 1
        session.close()
        assert shm_residue() == []


class TestIsolatedPoolReuse:
    def test_isolation_pool_is_reused_until_it_breaks(self, tmp_path):
        """pool_respawns=0 sends the batch to the isolation pool after
        the first crash; the healthy stragglers then share ONE
        single-worker pool instead of paying one pool per run.

        The healthy runs are ``slow`` hooks, so the crash breaks the
        batch pool while they are still in flight — a broken pool
        fails *every* outstanding future, running ones included — and
        all three deterministically reach the isolation pool."""
        session = make_session(tmp_path, pool_respawns=0)
        runs = [hook("crash"), hook("slow_a"), hook("slow_b"), hook("slow_c")]
        out = session.execute(runs, strict=False)
        assert len(out) == 3
        assert all(p["ok"] for p in out.values())
        # The isolation pool survived the batch for the next one.
        iso = session._pools["iso"]
        assert iso is not None
        session.execute([hook("slow_a")])  # cached — pool untouched
        assert session._pools["iso"] is iso
        session.close()
        assert session._pools["iso"] is None
        assert shm_residue() == []

    def test_isolated_crash_respawns_only_then(self, tmp_path):
        session = make_session(tmp_path)
        done, failed = [], []
        finish = lambda key, r, payload, secs: done.append(key)
        fail = lambda key, r, err: failed.append(key)
        # A healthy isolated run creates the pool...
        session._execute_isolated({hook("ok_a").key(): hook("ok_a")}, finish, fail)
        iso = session._pools["iso"]
        assert iso is not None and done
        # ...a second healthy run reuses exactly that pool...
        session._execute_isolated({hook("ok_b").key(): hook("ok_b")}, finish, fail)
        assert session._pools["iso"] is iso
        # ...and only a crash discards it; the next run respawns fresh.
        session._execute_isolated({hook("crash").key(): hook("crash")}, finish, fail)
        assert session._pools["iso"] is None and failed
        session._execute_isolated({hook("ok_c").key(): hook("ok_c")}, finish, fail)
        assert session._pools["iso"] is not None
        session.close()


class TestSessionLifecycle:
    def test_close_is_idempotent_and_contextmanager_closes(self, tmp_path):
        with make_session(tmp_path, max_workers=1) as session:
            session.execute([mech("baseline")])
        session.close()
        assert shm_residue() == []

    def test_abandoned_session_finalizes_on_gc(self, tmp_path):
        session = make_session(tmp_path)
        assert session._manifest_for(mech("baseline"))  # publishes segments
        assert shm_residue() != []
        del session
        import gc

        gc.collect()
        assert shm_residue() == []

    def test_keyboard_interrupt_leaks_nothing(self, tmp_path):
        """SIGINT → KeyboardInterrupt → interpreter exit must unlink
        every published segment via the finalizer backstop."""
        script = textwrap.dedent(
            """
            import dataclasses, os, signal
            from repro.experiments.config import TINY
            from repro.experiments.engine import (
                KIND_MECHANISM, ExperimentSession, PlannedRun,
            )
            from repro.sim.tracestore import shm_residue
            from repro.workloads.mixes import make_mixes

            SC = dataclasses.replace(
                TINY, name="unit", quantum=256, sample_units=256,
                exec_units=2048, alone_accesses=4096,
            )
            session = ExperimentSession(
                cache_dir=None, max_workers=1, trace_cache="memory"
            )
            mix = make_mixes("pref_agg", 1, seed=2019)[0]
            run = PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="baseline")
            assert session._manifest_for(run), "expected published segments"
            assert shm_residue(), "expected live segments before interrupt"
            print("SEGMENTS-LIVE", flush=True)
            signal.raise_signal(signal.SIGINT)
            """
        )
        env = dict(os.environ)
        src = str((os.path.dirname(__file__) or ".") + "/../../src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True,
            timeout=120,
        )
        assert "SEGMENTS-LIVE" in proc.stdout
        assert proc.returncode != 0  # died to the interrupt, not cleanly
        assert shm_residue() == []


class TestLeakVerifier:
    def test_reports_each_leaked_segment(self, tmp_path):
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=64, name="repro-tr-leaktest")
        try:
            problems = verify_no_segment_leaks()
            assert any("repro-tr-leaktest" in p for p in problems)
        finally:
            seg.close()
            seg.unlink()
        assert verify_no_segment_leaks() == []
