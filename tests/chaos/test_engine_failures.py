"""Engine failure paths: worker exceptions, crashes, hangs, broken pools.

Drives real misbehaving workers through the production pool via
``KIND_HOOK`` runs.  Uses the ``fork`` start method so hook paths in
``tests.chaos.workers`` resolve inside children without installation.
"""

import dataclasses
import multiprocessing

import pytest

from repro.experiments.config import TINY
from repro.experiments.engine import (
    KIND_HOOK,
    ExperimentError,
    ExperimentSession,
    PlannedRun,
)

SC = dataclasses.replace(TINY, name="unit")
FORK = multiprocessing.get_context("fork")


@pytest.fixture(autouse=True)
def plenty_of_cpus(monkeypatch):
    """Defeat the worker clamp on small CI boxes.

    These tests need the *pool* path (a crashing hook run in-process
    would take pytest down with it); on a 1-CPU container the clamp
    would silently force every session serial.
    """
    monkeypatch.setattr("os.cpu_count", lambda: 8)


def hook(name):
    return PlannedRun(KIND_HOOK, SC, bench=f"tests.chaos.workers:{name}")


def make_session(tmp_path, **kw):
    kw.setdefault("max_workers", 2)
    kw.setdefault("mp_context", FORK)
    return ExperimentSession(cache_dir=tmp_path / "cache", **kw)


class TestWorkerExceptions:
    def test_raising_worker_fails_only_itself(self, tmp_path):
        session = make_session(tmp_path)
        runs = [hook("ok_a"), hook("ok_b"), hook("boom")]
        with pytest.raises(ExperimentError) as ei:
            session.execute(runs)
        assert len(ei.value.errors) == 1
        assert "injected worker exception" in str(ei.value)
        # The healthy runs completed and were cached despite the failure.
        out = session.execute([hook("ok_a"), hook("ok_b")])
        assert all(p["ok"] for p in out.values())

    def test_strict_false_reports_instead_of_raising(self, tmp_path):
        session = make_session(tmp_path)
        out = session.execute([hook("ok_a"), hook("boom")], strict=False)
        assert len(out) == 1
        failed = [r for r in session.records if r.error]
        assert len(failed) == 1 and "boom" in failed[0].label

    def test_failed_key_is_remembered_not_rerun(self, tmp_path):
        session = make_session(tmp_path)
        session.execute([hook("ok_a"), hook("boom")], strict=False)
        records_before = len(session.records)
        with pytest.raises(ExperimentError):
            session.execute([hook("boom")])
        # Re-reported from session memory: exactly one new record, no pool.
        assert len(session.records) == records_before + 1
        assert session.records[-1].error is not None

    def test_serial_path_retries_then_fails(self, tmp_path):
        session = make_session(tmp_path, max_workers=1, run_retries=1)
        with pytest.raises(ExperimentError):
            session.execute([hook("boom")])
        assert hook("boom").key() in session.failed


class TestBrokenPool:
    def test_crashing_worker_does_not_sink_the_batch(self, tmp_path):
        session = make_session(tmp_path)
        runs = [hook("ok_a"), hook("ok_b"), hook("ok_c"), hook("crash")]
        out = session.execute(runs, strict=False)
        # Every healthy run completed; only the crasher is reported failed.
        assert len(out) == 3
        assert all(p["ok"] for p in out.values())
        assert list(session.failed) == [hook("crash").key()]

    def test_completed_results_survive_a_pool_crash(self, tmp_path):
        session = make_session(tmp_path)
        session.execute([hook("ok_a"), hook("ok_b"), hook("crash")], strict=False)
        # A fresh session sees the healthy results on disk.
        fresh = make_session(tmp_path, max_workers=1)
        fresh.execute([hook("ok_a"), hook("ok_b")])
        assert all(r.cached for r in fresh.records)


class TestTimeouts:
    def test_hung_worker_times_out_without_sinking_the_batch(self, tmp_path):
        session = make_session(tmp_path, run_timeout=0.6)
        runs = [hook("ok_a"), hook("ok_b"), hook("hang")]
        out = session.execute(runs, strict=False)
        assert len(out) == 2
        (msg,) = [r.error for r in session.records if r.error]
        assert "timeout" in msg

    def test_timeout_env_parsing(self, monkeypatch):
        from repro.experiments.engine import default_run_timeout

        monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
        assert default_run_timeout() is None
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "2.5")
        assert default_run_timeout() == 2.5
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "-1")
        with pytest.raises(ValueError):
            default_run_timeout()
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "soon")
        with pytest.raises(ValueError):
            default_run_timeout()


class TestSweepResilience:
    def test_sweep_skips_broken_workloads_and_warns(self, tmp_path, monkeypatch):
        from repro.experiments import engine as E

        # Pin the scalar engine: the sabotage point is the per-run
        # compute hook, which batched group dispatch legitimately
        # bypasses (batch-layer failure fallback is covered in
        # test_batch_chaos.py).
        session = make_session(tmp_path, max_workers=1, engine="fast")
        sc = dataclasses.replace(
            TINY, name="unit", quantum=256, sample_units=256,
            exec_units=2048, alone_accesses=4096,
        )
        real_compute = E._compute_mechanism

        def sabotaged(run):
            if run.mix.name.endswith("-01") and run.mechanism == "cmm-a":
                raise RuntimeError("injected mechanism failure")
            return real_compute(run)

        monkeypatch.setitem(E._COMPUTE, E.KIND_MECHANISM, sabotaged)
        with pytest.warns(RuntimeWarning, match="skipping workload"):
            evals = list(session.sweep(("cmm-a",), sc, categories=("pref_agg",)))
        # The unbroken workload still evaluated.
        assert len(evals) == 1
