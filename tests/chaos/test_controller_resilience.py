"""Controller hardening: retries, sample quarantine, safe-state fallback."""

import numpy as np
import pytest

from repro.core.controller import CMMController, DegradedState, ResilienceConfig
from repro.core.epoch import EpochConfig
from repro.core.frontend import SampleValidationConfig, SampleValidator
from repro.core.policies import make_policy
from repro.platform.base import PlatformError
from repro.platform.faults import FaultPlan, FaultyPlatform, verify_safe_state
from repro.sim.msr import PF_ALL_ON
from repro.sim.pmu import N_EVENTS, PmuSample

from tests.core.fakes import FakePlatform

EPOCH_CFG = EpochConfig(exec_units=512, sample_units=128, warmup_units=0)
NO_SLEEP = ResilienceConfig(backoff_base_s=0.0)


def make_controller(platform, *, resilience=NO_SLEEP, policy="cmm-a"):
    sleeps = []
    ctl = CMMController(
        platform,
        make_policy(policy),
        epoch_cfg=EPOCH_CFG,
        resilience_cfg=resilience,
        sleep=sleeps.append,
    )
    return ctl, sleeps


class FlakyWrites(FakePlatform):
    """Fails the first ``fail_first`` prefetch-mask writes, then recovers."""

    def __init__(self, fail_first: int):
        super().__init__()
        self.fail_first = fail_first
        self.write_calls = 0

    def set_prefetch_mask(self, core, mask):
        self.write_calls += 1
        if self.write_calls <= self.fail_first:
            raise PlatformError("transient write failure")
        super().set_prefetch_mask(core, mask)


class DeadSampling(FakePlatform):
    """Every PMU read is lost — the workload still advances."""

    def run_interval(self, units):
        super().run_interval(units)
        raise PlatformError("sample lost")


class TestWriteRetry:
    def test_transient_write_failures_are_retried_away(self):
        platform = FlakyWrites(fail_first=2)
        ctl, _ = make_controller(platform)
        stats = ctl.run(2)
        assert stats.failures == []
        assert stats.degraded is None

    def test_backoff_grows_exponentially(self):
        platform = FlakyWrites(fail_first=3)
        cfg = ResilienceConfig(backoff_base_s=0.001, backoff_factor=2.0)
        ctl, sleeps = make_controller(platform, resilience=cfg)
        ctl.run(1)
        assert sleeps[:3] == [0.001, 0.002, 0.004]

    def test_retries_are_bounded(self):
        platform = FlakyWrites(fail_first=10**9)
        cfg = ResilienceConfig(
            backoff_base_s=0.0, max_write_retries=2, failure_threshold=100
        )
        ctl, _ = make_controller(platform, resilience=cfg)
        stats = ctl.run(1)
        # The epoch fails gracefully instead of retrying forever.
        assert len(stats.failures) == 1
        assert stats.epochs[0].failure is not None


class TestSampleQuarantine:
    def test_corrupt_samples_never_reach_totals(self):
        platform = FaultyPlatform(FakePlatform(), FaultPlan(seed=0, sample_nan=0.5))
        ctl, _ = make_controller(platform)
        stats = ctl.run(4)
        assert stats.totals is not None
        assert np.all(np.isfinite(stats.totals))

    def test_stale_reuse_then_rejection(self):
        v = SampleValidator(SampleValidationConfig(staleness_limit=2))
        good = PmuSample(np.ones((4, N_EVENTS)), wall_cycles=1e6)
        bad = PmuSample(np.full((4, N_EVENTS), np.nan), wall_cycles=1e6)
        admitted, fresh = v.admit(good)
        assert fresh and admitted is good
        for _ in range(2):  # last-good stands in, up to the limit
            admitted, fresh = v.admit(bad)
            assert not fresh and admitted is good
        from repro.core.frontend import SampleRejected

        with pytest.raises(SampleRejected):
            v.admit(bad)
        assert v.rejected == 3
        assert v.stale_reuses == 2


class TestSafeStateFallback:
    def test_k_consecutive_failures_trip_the_fallback(self):
        platform = DeadSampling()
        cfg = ResilienceConfig(backoff_base_s=0.0, failure_threshold=3, staleness_limit=0)
        ctl, _ = make_controller(platform, resilience=cfg)
        stats = ctl.run(6)  # never raises
        assert isinstance(stats.degraded, DegradedState)
        assert stats.degraded.consecutive_failures == 3
        assert stats.degraded.epoch_index == 2
        assert stats.degraded.safe_state_applied
        assert len(stats.epochs) == 6

    def test_safe_state_is_verifiable_on_the_platform(self):
        platform = DeadSampling()
        cfg = ResilienceConfig(backoff_base_s=0.0, failure_threshold=2, staleness_limit=0)
        ctl, _ = make_controller(platform, resilience=cfg)
        ctl.run(4)
        assert all(m == PF_ALL_ON for m in platform.masks)
        assert platform.core_clos == [0] * platform.n_cores
        assert verify_safe_state(platform) == []

    def test_fallback_survives_flaky_restore_writes(self):
        # Even the safe-state restore goes through a faulty platform;
        # per-core retries make it stick with overwhelming probability.
        inner = FakePlatform()
        platform = FaultyPlatform(
            inner, FaultPlan(seed=11, write_fail=0.5, sample_drop=1.0)
        )
        cfg = ResilienceConfig(backoff_base_s=0.0, failure_threshold=2, staleness_limit=0)
        ctl, _ = make_controller(platform, resilience=cfg)
        stats = ctl.run(4)
        assert stats.degraded is not None
        assert stats.degraded.safe_state_applied
        assert verify_safe_state(inner) == []

    def test_clean_epoch_resets_the_failure_streak(self):
        from repro.core.controller import EpochRecord, RunStats

        platform = FakePlatform()
        cfg = ResilienceConfig(backoff_base_s=0.0, failure_threshold=3)
        ctl, _ = make_controller(platform, resilience=cfg)
        stats = RunStats(platform.n_cores, platform.cycles_per_second)

        def record(failure):
            rec = EpochRecord(ctl._baseline(), 0, None, failure=failure)
            ctl._record_outcome(stats, rec, len(stats.epochs))

        # fail, fail, clean, fail, fail: the streak never reaches 3.
        for failure in ["lost", "lost", None, "lost", "lost"]:
            record(failure)
        assert stats.degraded is None
        record("lost")  # third consecutive failure trips the fallback
        assert stats.degraded is not None

    def test_degraded_run_keeps_accumulating_counters(self):
        class DiesThenRecovers(FakePlatform):
            def __init__(self):
                super().__init__()
                self._n = 0

            def run_interval(self, units):
                sample = super().run_interval(units)
                self._n += 1
                if self._n <= 40:
                    raise PlatformError("sample lost")
                return sample

        platform = DiesThenRecovers()
        cfg = ResilienceConfig(backoff_base_s=0.0, failure_threshold=2, staleness_limit=0)
        ctl, _ = make_controller(platform, resilience=cfg)
        stats = ctl.run(50)
        assert stats.degraded is not None
        assert len(stats.epochs) == 50
        # Post-recovery degraded epochs still record workload progress.
        assert stats.totals is not None and stats.totals.sum() > 0
