"""The fault-injection layer itself: plans, determinism, injection."""

import dataclasses

import numpy as np
import pytest

from repro.platform.base import PlatformError
from repro.platform.faults import (
    SCENARIOS,
    WRAP_DELTA,
    FaultPlan,
    FaultyPlatform,
    scenario_plan,
    verify_safe_state,
)
from repro.sim.msr import PF_ALL_ON

from tests.core.fakes import FakePlatform


class TestFaultPlan:
    def test_defaults_inject_nothing(self):
        plan = FaultPlan()
        assert all(
            getattr(plan, f.name) == 0.0
            for f in dataclasses.fields(plan)
            if f.name != "seed"
        )

    @pytest.mark.parametrize("field", ["write_fail", "sample_drop", "sample_nan"])
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, rate):
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: rate})

    def test_json_roundtrip(self):
        plan = scenario_plan("meltdown", seed=42)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_scenarios_all_resolve(self):
        for name in SCENARIOS:
            plan = scenario_plan(name, seed=7)
            assert plan.seed == 7

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="no-such-scenario"):
            scenario_plan("no-such-scenario")


class TestFaultyPlatform:
    def test_zero_rate_plan_is_transparent(self):
        inner = FakePlatform()
        faulty = FaultyPlatform(inner, FaultPlan(seed=3))
        faulty.set_prefetch_mask(1, 0xF)
        faulty.set_clos_cbm(1, 0b1111)
        faulty.assign_core_clos(1, 1)
        sample = faulty.run_interval(100)
        assert inner.masks[1] == 0xF
        assert inner.cbm[1] == 0b1111
        assert inner.core_clos[1] == 1
        assert np.all(np.isfinite(sample.deltas))
        assert faulty.injected == {}

    def test_injection_is_deterministic_per_seed(self):
        def drive(seed):
            p = FaultyPlatform(FakePlatform(), scenario_plan("meltdown", seed))
            outcomes = []
            for i in range(200):
                try:
                    p.set_prefetch_mask(i % 4, 0)
                    outcomes.append("w-ok")
                except (PlatformError, OSError) as e:
                    outcomes.append(type(e).__name__)
                try:
                    s = p.run_interval(10)
                    outcomes.append(float(np.nansum(s.deltas)))
                except PlatformError:
                    outcomes.append("dropped")
            return outcomes, dict(p.injected)

        assert drive(5) == drive(5)
        assert drive(5) != drive(6)

    def test_write_fault_precedes_the_write(self):
        inner = FakePlatform()
        faulty = FaultyPlatform(inner, FaultPlan(seed=0, write_fail=1.0))
        with pytest.raises(PlatformError, match="set_prefetch_mask"):
            faulty.set_prefetch_mask(2, 0xF)
        assert inner.masks[2] == 0  # the write never reached the backend

    def test_oserror_is_ebusy(self):
        faulty = FaultyPlatform(FakePlatform(), FaultPlan(seed=0, write_oserror=1.0))
        with pytest.raises(OSError) as ei:
            faulty.set_clos_cbm(0, 0xFF)
        import errno

        assert ei.value.errno == errno.EBUSY

    def test_dropped_sample_still_advances_the_workload(self):
        inner = FakePlatform()
        faulty = FaultyPlatform(inner, FaultPlan(seed=0, sample_drop=1.0))
        with pytest.raises(PlatformError, match="dropped"):
            faulty.run_interval(100)
        assert inner.intervals_run == 1

    def test_nan_injection_never_mutates_inner_counters(self):
        inner = FakePlatform()
        faulty = FaultyPlatform(inner, FaultPlan(seed=1, sample_nan=1.0))
        clean = inner.behavior(inner)
        corrupted = faulty.run_interval(100)
        assert np.isnan(corrupted.deltas).any()
        assert np.all(np.isfinite(clean))  # fake's counters untouched

    def test_wrap_injection_magnitude(self):
        faulty = FaultyPlatform(FakePlatform(), FaultPlan(seed=2, sample_wrap=1.0))
        s = faulty.run_interval(100)
        assert np.abs(s.deltas).max() >= WRAP_DELTA / 2

    def test_multiplex_scales_whole_sample(self):
        inner = FakePlatform()
        clean = inner.run_interval(100)
        faulty = FaultyPlatform(FakePlatform(), FaultPlan(seed=3, sample_multiplex=1.0))
        s = faulty.run_interval(100)
        ratio = s.deltas[clean.deltas > 0] / clean.deltas[clean.deltas > 0]
        assert np.allclose(ratio, ratio.flat[0])
        assert 1.5 <= ratio.flat[0] <= 4.0

    def test_reset_partitions_is_never_faulted(self):
        inner = FakePlatform()
        faulty = FaultyPlatform(inner, FaultPlan(seed=0, write_fail=1.0, write_oserror=1.0))
        faulty.reset_partitions()  # must not raise
        assert inner.core_clos == [0] * inner.n_cores


class TestVerifySafeState:
    def test_clean_platform_is_safe(self):
        p = FakePlatform()
        for c in range(p.n_cores):
            p.set_prefetch_mask(c, PF_ALL_ON)
        assert verify_safe_state(p) == []

    def test_disabled_prefetcher_is_reported(self):
        p = FakePlatform()
        p.set_prefetch_mask(2, 0xF)
        problems = verify_safe_state(p)
        assert any("core 2" in msg for msg in problems)
