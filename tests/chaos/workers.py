"""Hook workers for the engine failure tests.

Resolved inside pool workers via ``KIND_HOOK`` runs
(``bench="tests.chaos.workers:<name>"``), so every function must be a
top-level callable taking the :class:`PlannedRun`.  Requires the
``fork`` start method (the child inherits the parent's ``sys.path``).
"""

import os
import time

#: How long ``hang`` sleeps — longer than any test timeout, short
#: enough that abandoned workers don't stall interpreter teardown.
HANG_SECONDS = 2.5


def ok(run):
    return {"ok": True, "hook": run.bench}


# Aliases give each successful run a distinct content key.
ok_a = ok
ok_b = ok
ok_c = ok


#: ``slow`` sleeps long enough that a crash elsewhere in the batch
#: breaks the pool while these runs are still in flight.
SLOW_SECONDS = 0.4


def slow(run):
    time.sleep(SLOW_SECONDS)
    return {"ok": True, "hook": run.bench}


slow_a = slow_b = slow_c = slow


def boom(run):
    raise ValueError("injected worker exception")


def crash(run):
    os._exit(17)  # kills the worker process: BrokenProcessPool upstream


def hang(run):
    time.sleep(HANG_SECONDS)
    return {"ok": True, "hook": run.bench}
