"""Service chaos: single-flight under concurrent clients and faults.

The scenario runner (``repro chaos --scenario all-service`` in CI)
hammers an in-process service with 8 threaded clients submitting
overlapping batches while the remote cache tier misbehaves; here it is
exercised directly, plus a worker-crash variant that the network
scenarios cannot cover (the crash happens inside the execution pool,
not the cache path).
"""

import dataclasses
import multiprocessing
import threading

import pytest

from repro.experiments.chaos import run_service_chaos_scenario
from repro.experiments.config import TINY
from repro.experiments.engine import KIND_HOOK, ExperimentSession, PlannedRun
from repro.platform.faults import SERVICE_SCENARIOS
from repro.service import ExperimentService, ServiceClient

SC = dataclasses.replace(TINY, name="unit", alone_accesses=2000)
FORK = multiprocessing.get_context("fork")


def hook(name: str) -> PlannedRun:
    return PlannedRun(KIND_HOOK, SC, bench=f"tests.chaos.workers:{name}")


class TestScenarioRunner:
    @pytest.mark.parametrize("scenario", ["network-down", "flapping-remote"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_scenario_holds_the_contract(self, scenario, seed):
        report = run_service_chaos_scenario(scenario, seed, sc=SC)
        assert report.ok, report.problems
        # Single-flight cap: executions never exceed the unique keys.
        assert report.executions <= report.unique_keys
        # Every client's failing-hook outcome arrived as a structured error.
        assert report.structured_errors > 0

    def test_all_scenarios_are_registered(self):
        assert set(SERVICE_SCENARIOS) == {
            "network-flaky", "network-down", "slow-remote",
            "truncated-bodies", "flapping-remote", "torn-storage",
        }


class TestWorkerCrash:
    @pytest.fixture(autouse=True)
    def plenty_of_cpus(self, monkeypatch):
        # Force the pool path even on 1-CPU CI boxes: a crashing hook
        # in-process would take pytest down with it.
        monkeypatch.setattr("os.cpu_count", lambda: 8)

    def test_crashing_worker_yields_structured_errors_not_hangs(self, tmp_path):
        session = ExperimentSession(
            cache_dir=tmp_path / "cache", max_workers=2, mp_context=FORK)
        service = ExperimentService(session=session, journal_dir=tmp_path / "wal")
        runs = [hook("ok_a"), hook("crash"), hook("ok_b")]
        responses: dict[int, dict] = {}

        def drive(idx: int) -> None:
            with ServiceClient(service=service, client_name=f"c{idx}") as cli:
                rot = idx % len(runs)
                responses[idx] = cli.submit(runs[rot:] + runs[:rot])

        with service:
            threads = [threading.Thread(target=drive, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive(), "client hung on a crashed worker"

        crash_key = hook("crash").key()
        for idx, resp in responses.items():
            assert resp["ok"], resp
            for outcome in resp["results"]:
                if outcome["key"] == crash_key:
                    assert outcome["ok"] is False
                    assert outcome["error"]["type"] == "run-failed"
                else:
                    assert outcome["ok"] is True

        # Single-flight held even through the pool crash: each healthy
        # key ran at most once, the crashed key is failed exactly once.
        per_key: dict[str, int] = {}
        for rec in session.records:
            if not rec.cached and rec.error is None:
                per_key[rec.key] = per_key.get(rec.key, 0) + 1
        assert all(n == 1 for n in per_key.values())
        assert crash_key in session.failed
        session.close()
