"""Rand Access micro-benchmark registry entry."""

from repro.workloads.randaccess import NAME, spec


class TestRandAccess:
    def test_registered(self):
        s = spec()
        assert s.name == NAME
        assert s.pref_aggressive
        assert not s.pref_friendly
        assert not s.llc_sensitive

    def test_random_over_large_region(self):
        s = spec()
        assert s.streams[0].kind == "random"
        assert s.streams[0].region >= 4.0  # several times the LLC
