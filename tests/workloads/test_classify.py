"""Measured classification (Figs. 1-3 criteria) matches intended flags.

These run the simulator; they use a small machine and reduced access
counts, and mark the exhaustive sweep as slow.
"""

import pytest

from repro.sim.params import scaled_params
from repro.workloads.classify import (
    AloneProfile,
    classify,
    profile_benchmark,
    run_alone,
)
from repro.workloads.speclike import BENCHMARKS, benchmark

PARAMS = scaled_params(16)
N = 24576


class TestClassifyThresholds:
    def make_profile(self, **kw):
        base = dict(
            name="x", ipc_on=1.0, ipc_off=1.0, demand_bw_off_mbs=0.0,
            total_bw_on_mbs=0.0, demand_bw_on_mbs=0.0, ipc_by_ways={},
        )
        base.update(kw)
        return AloneProfile(**base)

    def test_aggressive_needs_bw_and_increase(self):
        p = self.make_profile(demand_bw_off_mbs=2000.0, total_bw_on_mbs=3500.0)
        assert classify(p).pref_aggressive
        p = self.make_profile(demand_bw_off_mbs=1000.0, total_bw_on_mbs=2500.0)
        assert not classify(p).pref_aggressive  # BW below 1500 MB/s
        p = self.make_profile(demand_bw_off_mbs=2000.0, total_bw_on_mbs=2500.0)
        assert not classify(p).pref_aggressive  # increase below 50%

    def test_friendly_requires_aggressive_and_speedup(self):
        p = self.make_profile(
            ipc_on=1.4, ipc_off=1.0, demand_bw_off_mbs=2000.0, total_bw_on_mbs=3500.0
        )
        assert classify(p).pref_friendly
        p = self.make_profile(ipc_on=1.4, ipc_off=1.0)  # not aggressive
        assert not classify(p).pref_friendly

    def test_llc_sensitive_min_ways(self):
        p = self.make_profile(ipc_by_ways={1: 0.2, 4: 0.4, 8: 0.85, 12: 0.95, 20: 1.0})
        assert classify(p).llc_sensitive
        assert p.min_ways_for_frac(0.80) == 8
        p = self.make_profile(ipc_by_ways={1: 0.95, 8: 1.0, 20: 1.0})
        assert not classify(p).llc_sensitive

    def test_min_ways_requires_sweep(self):
        with pytest.raises(ValueError):
            self.make_profile().min_ways_for_frac()


class TestRunAlone:
    def test_warmup_snapshot_excludes_cold_start(self):
        m, snap = run_alone("416.gamess", PARAMS, 2048, warmup=4096)
        sample = m.pmu.delta_since(snap)
        # working set fits L2: warm window has (almost) no memory traffic
        from repro.sim.pmu import Event
        assert sample.get(0, Event.L3_LOAD_MISS) < 20

    def test_way_restriction_applied(self):
        m, _ = run_alone("429.mcf", PARAMS, 1024, ways=2)
        assert m.cat.allowed_ways(0) == (0, 1)


class TestMeasuredClassification:
    @pytest.mark.parametrize("name", ["410.bwaves", "rand_access", "453.povray"])
    def test_key_benchmarks_fast(self, name):
        spec = benchmark(name)
        prof = profile_benchmark(spec, PARAMS, N)
        c = classify(prof)
        assert c.pref_aggressive == spec.pref_aggressive
        assert c.pref_friendly == spec.pref_friendly

    def test_rand_access_slows_down_with_prefetching(self):
        prof = profile_benchmark("rand_access", PARAMS, N)
        assert prof.prefetch_speedup < -0.10  # paper: ~-25% when alone

    @pytest.mark.slow
    def test_all_benchmarks_match_intended_classes(self):
        sweep = (1, 2, 4, 8, 12, 20)
        for name, spec in BENCHMARKS.items():
            prof = profile_benchmark(spec, PARAMS, N, way_sweep=sweep)
            c = classify(prof)
            assert c.pref_aggressive == spec.pref_aggressive, name
            assert c.pref_friendly == spec.pref_friendly, name
            assert c.llc_sensitive == spec.llc_sensitive, name

    def test_friendly_benchmark_way_insensitive(self):
        prof = profile_benchmark("462.libquantum", PARAMS, N, way_sweep=(1, 2, 8, 20))
        assert prof.min_ways_for_frac(0.90) <= 2  # the paper's Fig. 3 observation

    def test_sensitive_benchmark_needs_many_ways(self):
        prof = profile_benchmark("429.mcf", PARAMS, N, way_sweep=(1, 2, 8, 12, 20))
        assert prof.min_ways_for_frac(0.80) >= 8
