"""Benchmark registry and trace building."""

import numpy as np
import pytest

from repro.sim.trace import TraceGenerator
from repro.workloads.speclike import (
    BENCHMARKS,
    BenchmarkSpec,
    StreamSpec,
    benchmark,
    benchmark_names,
    build_trace,
)


class TestRegistry:
    def test_has_papers_benchmarks(self):
        for name in ("410.bwaves", "462.libquantum", "459.GemsFDTD", "471.omnetpp", "rand_access"):
            assert name in BENCHMARKS

    def test_at_least_twenty_entries(self):
        assert len(BENCHMARKS) >= 20

    def test_lookup(self):
        assert benchmark("410.bwaves").name == "410.bwaves"
        with pytest.raises(KeyError):
            benchmark("nope")

    def test_class_queries(self):
        friendly = benchmark_names(friendly=True)
        assert "410.bwaves" in friendly
        assert "rand_access" not in friendly
        unfriendly = benchmark_names(aggressive=True, friendly=False)
        assert set(unfriendly) == {"rand_access", "471.omnetpp"}
        sensitive = benchmark_names(llc_sensitive=True)
        assert "429.mcf" in sensitive

    def test_friendly_implies_aggressive_in_registry(self):
        for spec in BENCHMARKS.values():
            if spec.pref_friendly:
                assert spec.pref_aggressive

    def test_pools_nonempty_for_all_mix_categories(self):
        assert benchmark_names(friendly=True)
        assert benchmark_names(aggressive=True, friendly=False)
        assert benchmark_names(aggressive=False, llc_sensitive=True)
        assert benchmark_names(aggressive=False, llc_sensitive=False)


class TestSpecValidation:
    def test_stream_kind_checked(self):
        with pytest.raises(ValueError):
            StreamSpec("bogus", 1.0)

    def test_region_positive(self):
        with pytest.raises(ValueError):
            StreamSpec("seq", 0.0)

    def test_friendly_requires_aggressive(self):
        with pytest.raises(ValueError, match="friendly implies aggressive"):
            BenchmarkSpec(
                "x", (StreamSpec("seq", 1.0),), inst_per_mem=1.0, mlp=1.0,
                pref_aggressive=False, pref_friendly=True, llc_sensitive=False,
            )

    def test_needs_streams(self):
        with pytest.raises(ValueError):
            BenchmarkSpec("x", (), inst_per_mem=1.0, mlp=1.0,
                          pref_aggressive=False, pref_friendly=False, llc_sensitive=False)


class TestBuildTrace:
    def test_returns_generator_with_spec_parameters(self):
        spec = benchmark("410.bwaves")
        t = build_trace(spec, llc_lines=10_000, base_line=0, seed=1)
        assert isinstance(t, TraceGenerator)
        assert t.inst_per_mem == spec.inst_per_mem
        assert t.mlp == spec.mlp

    def test_accepts_name(self):
        t = build_trace("429.mcf", llc_lines=10_000, base_line=0)
        assert t.footprint_lines() > 0

    def test_regions_scale_with_llc(self):
        small = build_trace("410.bwaves", llc_lines=1_000, base_line=0)
        large = build_trace("410.bwaves", llc_lines=8_000, base_line=0)
        assert large.footprint_lines() == pytest.approx(8 * small.footprint_lines(), rel=0.01)

    def test_deterministic_across_instances(self):
        a = build_trace("433.milc", llc_lines=4_000, base_line=0, seed=5)
        b = build_trace("433.milc", llc_lines=4_000, base_line=0, seed=5)
        _, la = a.chunk(1000)
        _, lb = b.chunk(1000)
        np.testing.assert_array_equal(la, lb)

    def test_different_seeds_differ(self):
        a = build_trace("rand_access", llc_lines=4_000, base_line=0, seed=1)
        b = build_trace("rand_access", llc_lines=4_000, base_line=0, seed=2)
        _, la = a.chunk(1000)
        _, lb = b.chunk(1000)
        assert not np.array_equal(la, lb)

    def test_streams_within_core_do_not_overlap(self):
        spec = benchmark("459.GemsFDTD")  # two streams
        t = build_trace(spec, llc_lines=10_000, base_line=0)
        ranges = [(s.base_line, s.base_line + s.region_lines) for s in t.streams]
        ranges.sort()
        for (s1, e1), (s2, _) in zip(ranges, ranges[1:]):
            assert e1 <= s2
