"""Workload-mix composition rules (paper Sec. IV-B)."""

import pytest

from repro.workloads.mixes import CATEGORIES, all_mixes, make_mixes
from repro.workloads.speclike import BENCHMARKS, benchmark


class TestComposition:
    def test_categories(self):
        assert CATEGORIES == ("pref_fri", "pref_agg", "pref_unfri", "pref_no_agg")

    @pytest.mark.parametrize("cat", CATEGORIES)
    def test_eight_benchmarks_each(self, cat):
        for mix in make_mixes(cat, 5):
            assert mix.n_cores == 8
            assert all(b in BENCHMARKS for b in mix.benchmarks)

    def test_pref_fri_composition(self):
        for mix in make_mixes("pref_fri", 5):
            friendly = [b for b in mix.benchmarks if benchmark(b).pref_friendly]
            assert len(friendly) == 4
            non_agg = [b for b in mix.benchmarks if not benchmark(b).pref_aggressive]
            assert len(non_agg) == 4

    def test_pref_agg_composition(self):
        for mix in make_mixes("pref_agg", 5):
            friendly = [b for b in mix.benchmarks if benchmark(b).pref_friendly]
            unfriendly = [
                b for b in mix.benchmarks
                if benchmark(b).pref_aggressive and not benchmark(b).pref_friendly
            ]
            assert len(friendly) == 2
            assert len(unfriendly) == 2

    def test_pref_unfri_composition(self):
        for mix in make_mixes("pref_unfri", 5):
            unfriendly = [
                b for b in mix.benchmarks
                if benchmark(b).pref_aggressive and not benchmark(b).pref_friendly
            ]
            assert len(unfriendly) == 4

    def test_pref_no_agg_composition(self):
        for mix in make_mixes("pref_no_agg", 5):
            assert all(not benchmark(b).pref_aggressive for b in mix.benchmarks)

    def test_min_two_llc_sensitive_non_agg(self):
        for cat in CATEGORIES:
            for mix in make_mixes(cat, 5):
                sensitive_na = [
                    b for b in mix.benchmarks
                    if benchmark(b).llc_sensitive and not benchmark(b).pref_aggressive
                ]
                assert len(sensitive_na) >= 2


class TestDeterminismAndNaming:
    def test_seeded_reproducibility(self):
        a = make_mixes("pref_agg", 10, seed=7)
        b = make_mixes("pref_agg", 10, seed=7)
        assert [m.benchmarks for m in a] == [m.benchmarks for m in b]
        assert [m.seed for m in a] == [m.seed for m in b]

    def test_different_seeds_differ(self):
        a = make_mixes("pref_agg", 10, seed=1)
        b = make_mixes("pref_agg", 10, seed=2)
        assert [m.benchmarks for m in a] != [m.benchmarks for m in b]

    def test_names_unique(self):
        mixes = all_mixes(10)
        names = [m.name for m in mixes]
        assert len(set(names)) == len(names)

    def test_all_mixes_order_matches_paper(self):
        mixes = all_mixes(3)
        cats = [m.category for m in mixes]
        assert cats == ["pref_fri"] * 3 + ["pref_agg"] * 3 + ["pref_unfri"] * 3 + ["pref_no_agg"] * 3

    def test_unknown_category(self):
        with pytest.raises(ValueError):
            make_mixes("bogus")

    def test_instances_get_distinct_workload_seeds(self):
        mixes = make_mixes("pref_unfri", 10)
        assert len({m.seed for m in mixes}) == len(mixes)

    def test_custom_core_count(self):
        mixes = make_mixes("pref_agg", 2, n_cores=6)
        assert all(m.n_cores == 6 for m in mixes)

    def test_too_few_cores_rejected(self):
        with pytest.raises(ValueError):
            make_mixes("pref_agg", 1, n_cores=2)
