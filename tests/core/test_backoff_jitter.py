"""Seeded full-jitter backoff in the controller's retry loop."""

from repro.core.controller import CMMController, ResilienceConfig
from repro.core.epoch import EpochConfig
from repro.core.policies import make_policy

from tests.core.fakes import FakePlatform

EPOCH_CFG = EpochConfig(exec_units=512, sample_units=128, warmup_units=0)


def make_controller(resilience: ResilienceConfig):
    sleeps: list[float] = []
    ctl = CMMController(
        FakePlatform(),
        make_policy("cmm-a"),
        epoch_cfg=EPOCH_CFG,
        resilience_cfg=resilience,
        sleep=sleeps.append,
    )
    return ctl, sleeps


class TestBackoffJitter:
    def test_default_off_keeps_exact_exponential_delays(self):
        cfg = ResilienceConfig(backoff_base_s=0.001, backoff_factor=2.0)
        assert cfg.backoff_jitter is False
        ctl, sleeps = make_controller(cfg)
        for attempt in (1, 2, 3):
            ctl._backoff(attempt)
        # Bit-identical to the pre-jitter behavior: no randomness at all.
        assert sleeps == [0.001, 0.002, 0.004]

    def test_jitter_draws_within_the_exponential_ceiling(self):
        cfg = ResilienceConfig(
            backoff_base_s=0.001, backoff_factor=2.0,
            backoff_jitter=True, backoff_jitter_seed=3,
        )
        ctl, sleeps = make_controller(cfg)
        for attempt in (1, 2, 3, 4):
            ctl._backoff(attempt)
        assert len(sleeps) == 4
        for attempt, delay in zip((1, 2, 3, 4), sleeps):
            assert 0.0 <= delay <= 0.001 * 2.0 ** (attempt - 1)
        assert len(set(sleeps)) > 1  # actually jittered, not constant

    def test_jitter_stream_is_seed_deterministic(self):
        def stream(seed: int) -> list[float]:
            ctl, sleeps = make_controller(ResilienceConfig(
                backoff_base_s=0.001, backoff_jitter=True, backoff_jitter_seed=seed,
            ))
            for attempt in (1, 2, 3):
                ctl._backoff(attempt)
            return sleeps

        assert stream(5) == stream(5)
        assert stream(5) != stream(6)
