"""EpochTrace serialization: round-trip, schema gating, golden trace."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.allocation import ResourceConfig
from repro.core.controller import CMMController
from repro.core.epoch import EpochConfig
from repro.core.policies import make_policy
from repro.core.trace import (
    TRACE_SCHEMA_VERSION,
    EpochTrace,
    StageTrace,
    TraceSchemaError,
    config_summary,
    json_safe_detail,
    traces_from_dicts,
    traces_to_dicts,
)
from repro.experiments.config import TINY
from repro.experiments.runner import build_machine
from repro.platform.simulated import SimulatedPlatform
from repro.workloads.mixes import make_mixes

SC = dataclasses.replace(
    TINY, name="unit", quantum=256, sample_units=256, exec_units=2048, alone_accesses=4096
)


def sample_trace():
    return EpochTrace(
        epoch=3,
        policy="cmm-a",
        stages=[
            StageTrace("sense", {"hm_ipc": 0.75, "active": [0, 1]}),
            StageTrace("classify", {"agg_set": [0], "friendly": [0], "unfriendly": []}),
            StageTrace("decide:dunn", {"reason": "not-applicable"}, skipped=True),
            StageTrace(
                "decide:coordinated-throttle",
                {
                    "candidates": [{"off": [], "hm_ipc": 0.75}, {"off": [0], "hm_ipc": 0.8}],
                    "reason": "adopted",
                },
            ),
            StageTrace("actuate", {"applied": True}),
        ],
        winner={"throttled": [0], "clos_cbm": {"0": 255}},
        sampling_intervals=4,
    )


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        trace = sample_trace()
        payload = json.dumps(traces_to_dicts([trace]))
        (back,) = traces_from_dicts(json.loads(payload))
        assert back == trace

    def test_round_trip_preserves_skipped_and_failure(self):
        trace = EpochTrace(
            epoch=0,
            policy="pt",
            stages=[StageTrace("sense", {}, skipped=True)],
            failure="apply failed: boom",
            degraded=True,
        )
        (back,) = traces_from_dicts(json.loads(json.dumps(traces_to_dicts([trace]))))
        assert back == trace
        assert back.stages[0].skipped
        assert back.degraded

    def test_dicts_are_json_serializable(self):
        # No tuples, numpy scalars, or non-string keys may survive.
        json.dumps(sample_trace().to_dict())


class TestSchemaGate:
    def test_current_schema_accepted(self):
        d = sample_trace().to_dict()
        assert d["schema"] == TRACE_SCHEMA_VERSION
        assert EpochTrace.from_dict(d).schema == TRACE_SCHEMA_VERSION

    def test_future_schema_rejected(self):
        d = sample_trace().to_dict()
        d["schema"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(TraceSchemaError):
            EpochTrace.from_dict(d)

    def test_missing_schema_rejected(self):
        d = sample_trace().to_dict()
        del d["schema"]
        with pytest.raises(TraceSchemaError):
            EpochTrace.from_dict(d)


class TestConveniences:
    def test_agg_set_and_candidates(self):
        trace = sample_trace()
        assert trace.agg_set == (0,)
        assert len(trace.candidates) == 2
        assert trace.decision_reason == "adopted"

    def test_stage_lookup(self):
        trace = sample_trace()
        assert trace.stage("classify").detail["agg_set"] == [0]
        assert trace.stage("nonexistent") is None


class TestJsonSafeDetail:
    def test_numpy_and_tuples_coerced(self):
        detail = json_safe_detail(
            {"hm": np.float64(1.5), "agg": (0, 1), "nested": {2: np.int64(7)}}
        )
        assert detail == {"hm": 1.5, "agg": [0, 1], "nested": {"2": 7}}
        json.dumps(detail)

    def test_config_summary_is_json_safe(self):
        summary = config_summary(ResourceConfig.all_on(4, 8))
        json.dumps(summary)
        assert summary["throttled"] == []
        assert summary["clos_cbm"] == {"0": 0xFF}


class TestGoldenCmmATrace:
    """One cmm-a epoch on the tiny pref_agg mix: the trace must tell
    the full sense → classify → decide → actuate story and survive a
    serialization round trip bit-for-bit."""

    @pytest.fixture(scope="class")
    def record(self):
        machine = build_machine(make_mixes("pref_agg", 1, seed=2019)[0], SC)
        ctl = CMMController(
            SimulatedPlatform(machine),
            make_policy("cmm-a"),
            epoch_cfg=EpochConfig(exec_units=SC.exec_units, sample_units=SC.sample_units),
        )
        stats = ctl.run(1)
        assert len(stats.traces) == 1
        return stats.epochs[0], stats.traces[0]

    def test_stage_sequence(self, record):
        _, trace = record
        names = [s.stage for s in trace.stages]
        assert names == [
            "sense",
            "classify",
            "decide:dunn",
            "decide:partition",
            "decide:coordinated-throttle",
            "actuate",
        ]

    def test_classification_detail(self, record):
        _, trace = record
        classify = trace.stage("classify")
        assert not classify.skipped
        assert trace.agg_set == tuple(classify.detail["agg_set"])
        assert trace.agg_set  # the pref_agg mix must trip the detector
        split = set(classify.detail["friendly"]) | set(classify.detail["unfriendly"])
        assert split == set(trace.agg_set)

    def test_dunn_skipped_when_agg_nonempty(self, record):
        _, trace = record
        assert trace.stage("decide:dunn").skipped

    def test_sweep_scored_candidates(self, record):
        _, trace = record
        sweep = trace.stage("decide:coordinated-throttle")
        assert not sweep.skipped
        assert sweep.detail["candidates"]
        for cand in sweep.detail["candidates"]:
            assert set(cand) >= {"off", "hm_ipc"}
        assert trace.decision_reason in ("adopted", "margin-not-met", "budget-exhausted")

    def test_winner_matches_applied_config(self, record):
        epoch, trace = record
        assert trace.winner == config_summary(epoch.chosen)
        assert trace.stage("actuate").detail["applied"] is True
        assert trace.failure is None and not trace.degraded

    def test_sampling_interval_budget(self, record):
        _, trace = record
        assert 0 < trace.sampling_intervals <= EpochConfig().max_sampling_intervals

    def test_round_trip_identity(self, record):
        _, trace = record
        payload = json.dumps(traces_to_dicts([trace]))
        (back,) = traces_from_dicts(json.loads(payload))
        assert back == trace
