"""Fig. 5 Agg-set detection pipeline."""

import pytest

from repro.core.frontend import AggDetector, DetectorConfig
from repro.core.metrics_defs import CoreSummary, TableIMetrics


def summary(
    cpu: int,
    *,
    active: bool = True,
    pga: float = 0.0,
    pmr: float = 0.0,
    ptr: float = 0.0,
    llc_pt: float = 0.0,
) -> CoreSummary:
    return CoreSummary(
        cpu=cpu,
        active=active,
        ipc=1.0 if active else 0.0,
        instructions=100.0 if active else 0.0,
        cycles=100.0,
        stalls_l2_pending=0.0,
        mem_bytes_per_sec=0.0,
        metrics=TableIMetrics(
            l2_llc_traffic=0.0,
            l2_pref_miss_frac=0.0,
            l2_ptr=ptr,
            pga=pga,
            l2_pmr=pmr,
            l2_ppm=0.0,
            llc_pt=llc_pt,
        ),
    )


AGGRESSIVE = dict(pga=1.5, pmr=0.95, ptr=1e8, llc_pt=5e9)
QUIET = dict(pga=0.01, pmr=0.0, ptr=0.0, llc_pt=0.0)


class TestDetector:
    def test_detects_clear_aggressor(self):
        s = [summary(0, **AGGRESSIVE), summary(1, **QUIET), summary(2, **QUIET)]
        report = AggDetector().detect(s)
        assert report.agg_set == (0,)

    def test_empty_input(self):
        assert AggDetector().detect([]).agg_set == ()

    def test_all_idle(self):
        s = [summary(0, active=False), summary(1, active=False)]
        assert AggDetector().detect(s).agg_set == ()

    def test_stage1_pga_above_mean(self):
        s = [summary(0, pga=2.0, pmr=1.0, ptr=1e9, llc_pt=1e10),
             summary(1, pga=0.2), summary(2, pga=0.2)]
        report = AggDetector().detect(s)
        assert report.candidates_pga == (0,)
        assert report.pga_mean == pytest.approx(0.8)

    def test_stage1_strong_absolute_pga_passes_below_mean(self):
        # One extreme core inflates the mean; the 0.9-PGA core must
        # still pass via the absolute rule.
        s = [summary(0, pga=5.0, pmr=1.0, ptr=1e9, llc_pt=1e10),
             summary(1, pga=0.9, pmr=1.0, ptr=1e9, llc_pt=1e10),
             summary(2, **QUIET), summary(3, **QUIET)]
        report = AggDetector().detect(s)
        assert 1 in report.candidates_pga
        assert report.agg_set == (0, 1)

    def test_stage2_pmr_filters_l2_local_prefetchers(self):
        # High PGA but prefetches hit L2 -> high locality -> not aggressive.
        s = [summary(0, pga=2.0, pmr=0.1, ptr=1e9, llc_pt=1e10), summary(1, **QUIET)]
        report = AggDetector().detect(s)
        assert report.candidates_pga == (0,)
        assert report.candidates_pmr == ()
        assert report.agg_set == ()

    def test_stage3_ptr_pressure_floor(self):
        s = [summary(0, pga=2.0, pmr=0.9, ptr=1e3, llc_pt=1e10), summary(1, **QUIET)]
        report = AggDetector().detect(s)
        assert report.candidates_pmr == (0,)
        assert report.candidates_ptr == ()

    def test_stage4_llc_pt_floor(self):
        # LLC-resident chase: prefetches hit the LLC, low traffic to memory.
        s = [summary(0, pga=0.9, pmr=1.0, ptr=1e8, llc_pt=1e6), summary(1, **QUIET)]
        report = AggDetector().detect(s)
        assert report.candidates_ptr == (0,)
        assert report.agg_set == ()

    def test_llc_pt_filter_can_be_disabled(self):
        cfg = DetectorConfig(llc_pt_min=0.0)
        s = [summary(0, pga=0.9, pmr=1.0, ptr=1e8, llc_pt=1e6), summary(1, **QUIET)]
        assert AggDetector(cfg).detect(s).agg_set == (0,)

    def test_pga_floor_excludes_noise(self):
        # Every core near zero PGA: nothing detected even above the mean.
        s = [summary(0, pga=0.04, pmr=1.0, ptr=1e9, llc_pt=1e10),
             summary(1, pga=0.0), summary(2, pga=0.0)]
        assert AggDetector().detect(s).agg_set == ()

    def test_multiple_aggressors_sorted(self):
        s = [summary(2, **AGGRESSIVE), summary(0, **AGGRESSIVE), summary(1, **QUIET)]
        assert AggDetector().detect(s).agg_set == (0, 2)

    def test_idle_cores_excluded_from_mean(self):
        s = [summary(0, **AGGRESSIVE), summary(1, active=False)]
        report = AggDetector().detect(s)
        assert report.pga_mean == pytest.approx(1.5)


class TestDetectorConfig:
    def test_pmr_range_checked(self):
        with pytest.raises(ValueError):
            DetectorConfig(pmr_threshold=1.5)

    def test_negative_floors_rejected(self):
        with pytest.raises(ValueError):
            DetectorConfig(ptr_min=-1.0)
