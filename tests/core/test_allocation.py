"""ResourceConfig derivations and application."""

import pytest

from repro.core.allocation import ResourceConfig
from repro.platform.simulated import SimulatedPlatform
from repro.sim.machine import Machine
from repro.sim.msr import PF_ALL_OFF, PF_ALL_ON


class TestConstruction:
    def test_all_on(self):
        rc = ResourceConfig.all_on(4, 20)
        assert rc.prefetch_masks == (PF_ALL_ON,) * 4
        assert rc.clos_cbm == ((0, 0xFFFFF),)
        assert rc.core_clos == (0,) * 4

    def test_validates_mask_range(self):
        with pytest.raises(ValueError):
            ResourceConfig((0x10,), ((0, 1),), (0,))

    def test_validates_core_clos_defined(self):
        with pytest.raises(ValueError):
            ResourceConfig((0,), ((0, 1),), (3,))

    def test_validates_duplicate_clos(self):
        with pytest.raises(ValueError):
            ResourceConfig((0,), ((0, 1), (0, 3)), (0,))

    def test_validates_length_mismatch(self):
        with pytest.raises(ValueError):
            ResourceConfig((0, 0), ((0, 1),), (0,))


class TestDerivations:
    def test_with_prefetch_off(self):
        rc = ResourceConfig.all_on(4, 8).with_prefetch_off([1, 3])
        assert rc.prefetch_masks == (PF_ALL_ON, PF_ALL_OFF, PF_ALL_ON, PF_ALL_OFF)
        assert rc.throttled_cores() == (1, 3)

    def test_with_prefetch_on_restores(self):
        rc = ResourceConfig.all_on(2, 8).with_prefetch_off([0, 1]).with_prefetch_on([0])
        assert rc.throttled_cores() == (1,)

    def test_original_unchanged(self):
        rc = ResourceConfig.all_on(2, 8)
        rc.with_prefetch_off([0])
        assert rc.throttled_cores() == ()

    def test_with_partition(self):
        rc = ResourceConfig.all_on(4, 8).with_partition(1, 0b11, [2, 3])
        assert dict(rc.clos_cbm) == {0: 0xFF, 1: 0b11}
        assert rc.core_clos == (0, 0, 1, 1)
        assert rc.cbm_of_core(2) == 0b11
        assert rc.cbm_of_core(0) == 0xFF

    def test_partitions_compose(self):
        rc = (
            ResourceConfig.all_on(4, 8)
            .with_partition(1, 0b11, [0])
            .with_partition(2, 0b1100, [1])
        )
        assert rc.cbm_of_core(0) == 0b11
        assert rc.cbm_of_core(1) == 0b1100
        assert rc.cbm_of_core(2) == 0xFF


class TestApply:
    def test_apply_to_platform(self, tiny_params):
        m = Machine(tiny_params)
        plat = SimulatedPlatform(m)
        rc = (
            ResourceConfig.all_on(2, tiny_params.llc.ways)
            .with_partition(1, 0b11, [1])
            .with_prefetch_off([0])
        )
        rc.apply(plat)
        assert plat.prefetch_mask(0) == PF_ALL_OFF
        assert plat.prefetch_mask(1) == PF_ALL_ON
        assert m.cat.core_clos(1) == 1
        assert m.cat.allowed_ways(1) == (0, 1)

    def test_apply_is_idempotent(self, tiny_params):
        m = Machine(tiny_params)
        plat = SimulatedPlatform(m)
        rc = ResourceConfig.all_on(2, tiny_params.llc.ways).with_partition(1, 0b11, [0])
        rc.apply(plat)
        rc.apply(plat)
        assert m.cat.core_clos(0) == 1
